"""Property-based executor checks (hypothesis): any valid contiguous
assignment on any host simulates the guest bit-exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.executor import run_assignment
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram, TokenProgram


@st.composite
def host_and_assignment(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    delays = draw(
        st.lists(
            st.integers(min_value=1, max_value=12), min_size=n - 1, max_size=n - 1
        )
    )
    m = draw(st.integers(min_value=n, max_value=2 * n + 2))
    # Build a random contiguous cover with overlaps: each position's
    # range starts no later than the previous end + 1.
    ranges = []
    lo = 1
    for p in range(n):
        remaining_positions = n - p
        max_width = m - lo + 1
        min_w = max(1, (m - lo + 1 + remaining_positions - 1) // remaining_positions)
        max_w = max(min_w, max(1, min(max_width, 2 * m // n + 2)))
        width = draw(st.integers(min_value=min_w, max_value=max_w))
        hi = min(m, lo + width - 1)
        if p == n - 1:
            hi = m
        ranges.append((lo, hi))
        # next start: anywhere from lo+1 to hi+1 (keeps coverage)
        lo = draw(st.integers(min_value=min(lo + 1, m), max_value=min(hi + 1, m)))
    return HostArray(delays), Assignment(ranges, m)


@given(host_and_assignment(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_any_cover_simulates_exactly(ha, steps):
    host, asg = ha
    asg.validate()
    prog = CounterProgram()
    result = run_assignment(host, asg, prog, steps)
    ref = GuestArray(asg.m, prog).run_reference(steps)
    verify_execution(result, ref, prog)


@given(host_and_assignment())
@settings(max_examples=25, deadline=None)
def test_makespan_at_least_serial_bound(ha):
    """No execution can beat work / processors."""
    host, asg = ha
    steps = 4
    result = run_assignment(host, asg, CounterProgram(), steps)
    used = len(asg.used_positions())
    assert result.stats.makespan >= result.stats.pebbles / used


@given(host_and_assignment())
@settings(max_examples=25, deadline=None)
def test_makespan_at_least_steps(ha):
    """Rows are sequential: at least one step per guest row."""
    host, asg = ha
    steps = 5
    result = run_assignment(host, asg, CounterProgram(), steps)
    assert result.stats.makespan >= steps


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_uniform_one_to_one_closed_form(n, d, steps):
    """One column per processor on a uniform host has a known makespan:
    1 + (steps-1) * (d+1) — each later row waits one exchange."""
    host = HostArray.uniform(n, d)
    asg = Assignment([(i + 1, i + 1) for i in range(n)], n)
    result = run_assignment(host, asg, TokenProgram(), steps)
    expected = 1 + (steps - 1) * (d + 1) if steps >= 1 else 0
    assert result.stats.makespan == expected
