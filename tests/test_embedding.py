"""Fact 3: the dilation-3 linear-array embedding."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.routing import DELAY_ATTR
from repro.topology.embedding import embed_linear_array, tree_cube_order
from repro.topology.generators import (
    clique_chain_host,
    now_cluster_host,
    random_regular_host,
)


def check_order(tree, order):
    assert sorted(order) == sorted(tree.nodes())
    lengths = dict(nx.all_pairs_shortest_path_length(tree))
    for a, b in zip(order, order[1:]):
        assert lengths[a][b] <= 3, f"dilation violated between {a} and {b}"


def test_path_tree_order():
    t = nx.path_graph(10)
    check_order(t, tree_cube_order(t))


def test_star_tree_order():
    t = nx.star_graph(9)
    check_order(t, tree_cube_order(t))


def test_balanced_tree_order():
    t = nx.balanced_tree(2, 4)
    check_order(t, tree_cube_order(t))


def test_caterpillar_tree_order():
    t = nx.path_graph(8)
    for i in range(8):
        t.add_edge(i, 100 + i)
    check_order(t, tree_cube_order(t))


@given(st.integers(min_value=2, max_value=80), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_random_tree_order_property(n, seed):
    t = nx.random_labeled_tree(n, seed=seed)
    check_order(t, tree_cube_order(t))


def test_deep_path_no_recursion_limit():
    t = nx.path_graph(5000)
    order = tree_cube_order(t)
    assert len(order) == 5000


def test_singleton_and_edge_cases():
    g = nx.Graph()
    g.add_node(0)
    assert tree_cube_order(g) == [0]
    assert tree_cube_order(nx.Graph()) == []


def test_start_edge_respected():
    t = nx.path_graph(6)
    order = tree_cube_order(t, start_edge=(2, 3))
    assert order[0] == 2
    assert order[-1] == 3


def test_non_tree_rejected():
    g = nx.cycle_graph(4)
    with pytest.raises(ValueError):
        tree_cube_order(g)


def test_bad_start_edge_rejected():
    t = nx.path_graph(4)
    with pytest.raises(ValueError):
        tree_cube_order(t, start_edge=(0, 3))


class TestEmbedLinearArray:
    def test_now_cluster_dilation_and_delays(self):
        host = now_cluster_host(6, 6, intra_delay=1, inter_delay=40)
        emb = embed_linear_array(host)
        assert emb.n == host.n
        assert emb.dilation <= 3
        assert len(emb.link_delays) == host.n - 1
        assert all(d >= 1 for d in emb.link_delays)

    def test_bounded_degree_average_delay_preserved(self):
        # Paper: bounded degree delta => embedded array's average delay
        # is O(delta * d_ave).
        host = random_regular_host(64, 3, [2] * 96, seed=5)
        emb = embed_linear_array(host)
        arr = emb.host_array()
        assert arr.d_ave <= 3 * 3 * host.d_ave

    def test_congestion_bounded_on_bounded_degree(self):
        host = random_regular_host(64, 3, [1] * 96, seed=2)
        emb = embed_linear_array(host)
        assert emb.congestion <= 12  # O(delta^2) constant

    def test_position_map_inverse(self):
        host = now_cluster_host(3, 4)
        emb = embed_linear_array(host)
        pos = emb.position_of()
        for j, node in enumerate(emb.order):
            assert pos[node] == j

    def test_clique_chain_embeddable(self):
        host = clique_chain_host(3, 3)
        emb = embed_linear_array(host)
        assert emb.n == 9
        assert emb.dilation <= 3

    def test_bfs_tree_variant(self):
        host = now_cluster_host(3, 4)
        emb = embed_linear_array(host, use_mst=False)
        assert emb.dilation <= 3
        assert emb.n == host.n

    def test_raw_graph_accepted(self):
        g = nx.path_graph(5)
        nx.set_edge_attributes(g, 2, DELAY_ATTR)
        emb = embed_linear_array(g)
        assert emb.n == 5
