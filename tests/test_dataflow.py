"""The dataflow-model executor (no-redundancy contrast)."""

import pytest

from repro.core.dataflow import (
    DataflowResult,
    dataflow_vs_database_summary,
    simulate_dataflow,
)
from repro.machine.programs import CounterProgram, DataflowProgram


def test_verified_run():
    res = simulate_dataflow(4, 16, steps=8)
    assert res.verified
    assert res.m == 2 * 4 * 4  # 2q per proc


def test_redundancy_exactly_one():
    for d in (4, 16, 64):
        res = simulate_dataflow(5, d, verify=True)
        assert res.redundancy == 1.0
        assert res.pebbles == res.m * res.steps


def test_sqrt_scaling():
    slows = []
    for d in (16, 64, 256):
        res = simulate_dataflow(4, d, verify=False)
        slows.append(res.normalized())
    # slow/sqrt(d) is flat.
    assert max(slows) / min(slows) < 1.6


def test_rejects_database_programs():
    with pytest.raises(ValueError, match="database"):
        simulate_dataflow(4, 16, program=CounterProgram())


def test_rejects_tiny_configs():
    with pytest.raises(ValueError):
        simulate_dataflow(1, 16)
    with pytest.raises(ValueError):
        simulate_dataflow(4, 0)


def test_partial_last_round():
    res = simulate_dataflow(4, 16, steps=10)  # q=4, 2.5 rounds
    assert res.verified
    assert res.steps == 10


def test_q_one_degenerate():
    res = simulate_dataflow(4, 1, steps=4)
    assert res.verified
    assert res.q == 1


def test_shipping_happens():
    res = simulate_dataflow(4, 16, steps=8, verify=False)
    assert res.shipped > 0


def test_contrast_summary():
    s = dataflow_vs_database_summary(4, 16, steps=8)
    assert s["dataflow redundancy"] == 1.0
    assert s["database redundancy"] > 2.0


def test_explicit_q_override():
    res = simulate_dataflow(4, 64, q=4, steps=8)
    assert res.q == 4
    assert res.verified


def test_bandwidth_affects_makespan():
    wide = simulate_dataflow(4, 64, bandwidth=16, verify=False)
    narrow = simulate_dataflow(4, 64, bandwidth=1, verify=False)
    assert narrow.makespan >= wide.makespan
