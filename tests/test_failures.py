"""Fault tolerance: OVERLAP reconfigures around failed workstations."""

import numpy as np
import pytest

from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray


def test_forced_dead_excluded_from_liveness():
    host = HostArray.uniform(32, 2)
    res = kill_and_label(host, forced_dead={3, 10, 11})
    assert not res.live[3] and not res.live[10] and not res.live[11]
    assert res.n_live <= 29


def test_invalid_failure_position_rejected():
    with pytest.raises(ValueError):
        kill_and_label(HostArray.uniform(8, 1), forced_dead={99})


def test_overlap_survives_scattered_failures():
    host = HostArray.uniform(64, 2)
    rng = np.random.default_rng(0)
    failed = set(int(p) for p in rng.choice(64, size=8, replace=False))
    res = simulate_overlap(host, steps=8, forced_dead=failed)
    assert res.verified
    # Failed positions hold no databases.
    for p in failed:
        assert res.assignment.ranges[p] is None


def test_overlap_survives_contiguous_outage():
    # A whole rack goes down; its neighbours relay traffic across it.
    host = HostArray.uniform(64, 2)
    failed = set(range(24, 32))
    res = simulate_overlap(host, steps=8, forced_dead=failed)
    assert res.verified
    assert res.m >= 32  # most of the guest survives


def test_failures_shrink_guest_but_preserve_correctness():
    host = HostArray.uniform(48, 2)
    healthy = simulate_overlap(host, steps=6)
    degraded = simulate_overlap(host, steps=6, forced_dead=set(range(0, 12)))
    assert degraded.verified
    assert degraded.m < healthy.m


def test_failures_near_long_link_compose_with_killing():
    delays = [1] * 63
    delays[31] = 256
    host = HostArray(delays)
    res = simulate_overlap(host, steps=8, block=4, forced_dead={30, 33})
    assert res.verified
