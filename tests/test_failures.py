"""Fault tolerance: OVERLAP reconfigures around failed workstations."""

import numpy as np
import pytest

from repro.core.killing import (
    kill_and_label,
    normalize_forced_dead,
    validate_steps,
)
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray


def test_forced_dead_excluded_from_liveness():
    host = HostArray.uniform(32, 2)
    res = kill_and_label(host, forced_dead={3, 10, 11})
    assert not res.live[3] and not res.live[10] and not res.live[11]
    assert res.n_live <= 29


def test_invalid_failure_position_rejected():
    with pytest.raises(ValueError):
        kill_and_label(HostArray.uniform(8, 1), forced_dead={99})


def test_overlap_survives_scattered_failures():
    host = HostArray.uniform(64, 2)
    rng = np.random.default_rng(0)
    failed = set(int(p) for p in rng.choice(64, size=8, replace=False))
    res = simulate_overlap(host, steps=8, forced_dead=failed)
    assert res.verified
    # Failed positions hold no databases.
    for p in failed:
        assert res.assignment.ranges[p] is None


def test_overlap_survives_contiguous_outage():
    # A whole rack goes down; its neighbours relay traffic across it.
    host = HostArray.uniform(64, 2)
    failed = set(range(24, 32))
    res = simulate_overlap(host, steps=8, forced_dead=failed)
    assert res.verified
    assert res.m >= 32  # most of the guest survives


def test_failures_shrink_guest_but_preserve_correctness():
    host = HostArray.uniform(48, 2)
    healthy = simulate_overlap(host, steps=6)
    degraded = simulate_overlap(host, steps=6, forced_dead=set(range(0, 12)))
    assert degraded.verified
    assert degraded.m < healthy.m


def test_failures_near_long_link_compose_with_killing():
    delays = [1] * 63
    delays[31] = 256
    host = HostArray(delays)
    res = simulate_overlap(host, steps=8, block=4, forced_dead={30, 33})
    assert res.verified


# -- shared input normalisation (one validation point for all layers) -----


def test_normalize_forced_dead_accepts_iterables_and_numpy_ints():
    assert normalize_forced_dead(8, None) == set()
    assert normalize_forced_dead(8, [3, 3, np.int64(5)]) == {3, 5}
    assert normalize_forced_dead(8, (np.int32(0),)) == {0}
    assert normalize_forced_dead(8, {7}) == {7}


def test_normalize_forced_dead_rejects_bad_positions():
    with pytest.raises(ValueError, match="outside"):
        normalize_forced_dead(8, {8})
    with pytest.raises(ValueError, match="outside"):
        normalize_forced_dead(8, {-1})
    with pytest.raises(ValueError, match="not an integer"):
        normalize_forced_dead(8, {2.5})


def test_validate_steps_normalises_integers():
    assert validate_steps(0) == 0
    assert validate_steps(np.int64(7)) == 7
    assert validate_steps(4.0) == 4  # integral float is fine
    with pytest.raises(ValueError, match="non-negative"):
        validate_steps(-1)
    with pytest.raises(ValueError, match="integer"):
        validate_steps(2.5)
    with pytest.raises(ValueError, match="integer"):
        validate_steps(None)


def test_simulate_overlap_normalises_forced_dead_and_steps():
    host = HostArray.uniform(32, 2)
    failed = np.array([4, 4, 9])  # duplicates + numpy dtype
    res = simulate_overlap(host, steps=np.int64(6), forced_dead=failed)
    assert res.verified
    assert res.assignment.ranges[4] is None
    assert res.assignment.ranges[9] is None
    with pytest.raises(ValueError, match="integer"):
        simulate_overlap(host, steps=3.5)
    with pytest.raises(ValueError, match="outside"):
        simulate_overlap(host, steps=4, forced_dead={32})
