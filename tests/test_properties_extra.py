"""Additional property-based suites across subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import simulate_dataflow
from repro.core.killing import kill_and_label
from repro.core.ring import ring_dep_map, simulate_ring
from repro.lower_bounds.audit import windowed_assignment
from repro.lower_bounds.h2 import segment_separation
from repro.machine.host import HostArray
from repro.topology.generators import h2_host


@given(st.integers(min_value=3, max_value=40))
@settings(max_examples=25, deadline=None)
def test_ring_dep_map_is_consistent_permutation(m):
    dep_map, node_of_col = ring_dep_map(m)
    # Every column appears exactly twice as a source (left of one
    # node, right of another) — a 2-regular dependency digraph.
    counts = {}
    for l, r in dep_map.values():
        counts[l] = counts.get(l, 0) + 1
        counts[r] = counts.get(r, 0) + 1
    assert all(v == 2 for v in counts.values())
    assert set(counts) == set(range(1, m + 1))


@given(
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=3, max_value=8),
)
@settings(max_examples=10, deadline=None)
def test_ring_simulation_verifies_on_random_hosts(m, d, steps):
    res = simulate_ring(HostArray.uniform(m, d), steps=steps)
    assert res.verified


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=12, deadline=None)
def test_dataflow_always_redundancy_one(n_procs, d):
    res = simulate_dataflow(n_procs, d, verify=True)
    assert res.redundancy == 1.0


@given(st.integers(min_value=32, max_value=2048))
@settings(max_examples=15, deadline=None)
def test_h2_segments_are_disjoint_and_ordered(n):
    h2 = h2_host(max(16, n))
    segs = sorted(h2.segments, key=lambda s: s.start)
    for a, b in zip(segs, segs[1:]):
        assert a.end < b.start
        assert segment_separation(h2, a, b) >= h2.d


@given(
    st.integers(min_value=4, max_value=32),
    st.integers(min_value=4, max_value=64),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_windowed_assignment_invariants(n, m, copies):
    asg = windowed_assignment(n, m, copies=copies)
    asg.validate()
    owners = asg.owners()
    assert max(len(v) for v in owners.values()) <= copies
    # Load bounded by copies * block size (constant load).
    import math

    assert asg.load() <= copies * math.ceil(m / n)


@given(
    st.integers(min_value=16, max_value=128),
    st.lists(st.integers(min_value=1, max_value=500), min_size=15, max_size=127),
)
@settings(max_examples=20, deadline=None)
def test_killing_never_kills_everything(n, delays):
    if len(delays) < n - 1:
        delays = (delays * ((n - 1) // len(delays) + 1))[: n - 1]
    else:
        delays = delays[: n - 1]
    host = HostArray(delays)
    res = kill_and_label(host)
    # Lemma 1+2: at least (1 - 2/c) of the processors survive usefully.
    assert res.n_prime >= (1 - 2 / res.params.c) * n - 1


@given(st.integers(min_value=4, max_value=9), st.integers(min_value=1, max_value=30))
@settings(max_examples=15, deadline=None)
def test_ring_slowdown_bounded_by_dilation_times_delay(m, d):
    res = simulate_ring(HostArray.uniform(m, d), steps=4, verify=False)
    # Each guest step needs at most two array hops (fold dilation 2)
    # plus the compute; slack factor for pipelining startup.
    assert res.slowdown <= 3 * (2 * d + 2) + 4
