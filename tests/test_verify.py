"""The verifier must catch every class of divergence."""

import pytest

from repro.core.assignment import Assignment
from repro.core.executor import run_assignment
from repro.core.verify import (
    VerificationError,
    reference_column_digest,
    verify_execution,
)
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.mixing import fold_s
from repro.machine.programs import CounterProgram


def good_run(steps=5):
    host = HostArray.uniform(4, 2)
    asg = Assignment([(1, 2), (2, 4), (4, 6), (6, 8)], 8)
    prog = CounterProgram()
    result = run_assignment(host, asg, prog, steps)
    ref = GuestArray(8, prog).run_reference(steps)
    return result, ref, prog


def test_clean_run_passes():
    result, ref, prog = good_run()
    checked = verify_execution(result, ref, prog)
    assert checked == len(result.value_digests)


def test_detects_tampered_value_digest():
    result, ref, prog = good_run()
    key = next(iter(result.value_digests))
    result.value_digests[key] ^= 1
    with pytest.raises(VerificationError, match="pebble values"):
        verify_execution(result, ref, prog)


def test_detects_tampered_update_digest():
    result, ref, prog = good_run()
    key = next(iter(result.replicas))
    result.replicas[key].digest ^= 1
    with pytest.raises(VerificationError, match="update digest"):
        verify_execution(result, ref, prog)


def test_detects_version_skew():
    result, ref, prog = good_run()
    key = next(iter(result.replicas))
    result.replicas[key].version -= 1
    with pytest.raises(VerificationError, match="updates"):
        verify_execution(result, ref, prog)


def test_detects_state_divergence():
    result, ref, prog = good_run()
    key = next(iter(result.replicas))
    result.replicas[key].state ^= 0xFF
    with pytest.raises(VerificationError, match="state"):
        verify_execution(result, ref, prog)


def test_detects_step_mismatch():
    result, ref, prog = good_run()
    ref2 = GuestArray(8, prog).run_reference(3)
    with pytest.raises(VerificationError, match="step"):
        verify_execution(result, ref2, prog)


def test_detects_guest_size_mismatch():
    result, ref, prog = good_run()
    ref2 = GuestArray(9, prog).run_reference(5)
    with pytest.raises(VerificationError, match="size"):
        verify_execution(result, ref2, prog)


def test_reference_column_digest_matches_fold():
    _, ref, _ = good_run()
    col = 3
    expected = fold_s(int(v) for v in ref.values[1:, col])
    assert reference_column_digest(ref, col) == expected
