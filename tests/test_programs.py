"""Guest programs: registry, scalar/vector agreement, semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.mixing import MASK
from repro.machine.programs import (
    CounterProgram,
    DataflowProgram,
    HashChainProgram,
    KeyedStoreProgram,
    RelaxationProgram,
    TokenProgram,
    get_program,
    list_programs,
)

WORD = st.integers(min_value=0, max_value=MASK)
VECTOR_PROGRAMS = [
    CounterProgram,
    DataflowProgram,
    TokenProgram,
    HashChainProgram,
    RelaxationProgram,
]


def test_registry_roundtrip():
    for name in list_programs():
        assert get_program(name).name == name


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        get_program("nope")


def test_registry_contents():
    assert set(list_programs()) == {
        "counter",
        "dataflow",
        "token",
        "hashchain",
        "keyed",
        "ledger",
        "relax",
    }


@pytest.mark.parametrize("cls", VECTOR_PROGRAMS)
def test_init_state_scalar_vector_agree(cls):
    prog = cls()
    m = 17
    vec = prog.init_state_vec(m)
    for i in range(1, m + 1):
        assert prog.init_state(i) == int(vec[i - 1])


@pytest.mark.parametrize("cls", VECTOR_PROGRAMS)
@given(WORD, WORD, WORD, WORD, st.integers(min_value=1, max_value=100))
def test_compute_scalar_vector_agree(cls, state, left, up, right, t):
    prog = cls()
    sv, uv = prog.compute(3, t, state, left, up, right)
    vec_vals, vec_upds = prog.compute_row_vec(
        t,
        np.array([state], dtype=np.uint64),
        np.array([left], dtype=np.uint64),
        np.array([up], dtype=np.uint64),
        np.array([right], dtype=np.uint64),
    )
    assert sv == int(vec_vals[0])
    assert uv == int(vec_upds[0])


@pytest.mark.parametrize("cls", VECTOR_PROGRAMS)
@given(WORD, WORD)
def test_apply_scalar_vector_agree(cls, state, update):
    prog = cls()
    scalar = prog.apply(state, update)
    vec = prog.apply_vec(
        np.array([state], dtype=np.uint64), np.array([update], dtype=np.uint64)
    )
    assert scalar == int(vec[0])


def test_dataflow_ignores_database():
    prog = DataflowProgram()
    assert not prog.uses_database
    v1, u1 = prog.compute(1, 1, 0, 10, 20, 30)
    v2, u2 = prog.compute(1, 1, 999, 10, 20, 30)
    assert v1 == v2
    assert u1 == u2 == 0
    assert prog.apply(7, 123) == 7


def test_counter_state_changes_value():
    prog = CounterProgram()
    v1, _ = prog.compute(1, 1, 0, 1, 2, 3)
    v2, _ = prog.compute(1, 1, 1, 1, 2, 3)
    assert v1 != v2


def test_token_flows_from_left_only():
    prog = TokenProgram()
    v1, _ = prog.compute(1, 1, 5, 10, 0, 0)
    v2, _ = prog.compute(1, 1, 5, 10, 99, 99)
    assert v1 == v2  # up/right irrelevant
    v3, _ = prog.compute(1, 1, 5, 11, 0, 0)
    assert v1 != v3  # left matters


def test_token_counter_increments():
    prog = TokenProgram()
    s = prog.init_state(1)
    _, u = prog.compute(1, 1, s, 0, 0, 0)
    assert u == 1
    assert prog.apply(s, u) == (s + 1) & MASK


def test_hashchain_is_column_local():
    prog = HashChainProgram()
    v1, _ = prog.compute(1, 1, 5, 0, 42, 0)
    v2, _ = prog.compute(1, 1, 5, 77, 42, 88)
    assert v1 == v2  # lateral parents irrelevant


class TestKeyedStore:
    def test_state_shape(self):
        prog = KeyedStoreProgram()
        state = prog.init_state(4)
        assert len(state) == prog.K
        assert len(set(state)) == prog.K

    def test_update_encodes_key(self):
        prog = KeyedStoreProgram()
        state = prog.init_state(1)
        _, update = prog.compute(1, 1, state, 3, 5, 7)
        assert (update & (prog.K - 1)) == (3 ^ 5 ^ 7) % prog.K

    def test_apply_is_pure(self):
        prog = KeyedStoreProgram()
        state = prog.init_state(1)
        before = list(state)
        new = prog.apply(state, 0x1234)
        assert state == before
        assert new != before

    def test_state_digest_order_sensitive(self):
        prog = KeyedStoreProgram()
        s = prog.init_state(1)
        assert prog.state_digest(s) != prog.state_digest(list(reversed(s)))

    def test_reads_depend_on_bucket(self):
        prog = KeyedStoreProgram()
        state = prog.init_state(1)
        # Two parent triples with equal xor hit the same bucket...
        v1, _ = prog.compute(1, 1, state, 1, 2, 3)
        # ...but after mutating that bucket the value changes.
        key = (1 ^ 2 ^ 3) % prog.K
        state2 = list(state)
        state2[key] ^= 0xFF
        v2, _ = prog.compute(1, 1, state2, 1, 2, 3)
        assert v1 != v2


class TestLedger:
    def test_state_structure(self):
        from repro.machine.programs import LedgerProgram

        prog = LedgerProgram()
        s = prog.init_state(3)
        assert len(s["balances"]) == prog.A
        assert s["count"] == 0

    def test_apply_moves_money_and_counts(self):
        from repro.machine.programs import LedgerProgram

        prog = LedgerProgram()
        s = prog.init_state(1)
        _, update = prog.compute(1, 1, s, 11, 22, 33)
        s2 = prog.apply(s, update)
        assert s2["count"] == 1
        assert s2 is not s
        assert s["count"] == 0  # apply is pure

    def test_value_reads_touched_balance(self):
        from repro.machine.programs import LedgerProgram

        prog = LedgerProgram()
        s = prog.init_state(1)
        v1, _ = prog.compute(1, 1, s, 11, 22, 33)
        src = (11 ^ 22) % prog.A
        s2 = dict(s)
        s2["balances"] = list(s["balances"])
        s2["balances"][src] += 1
        v2, _ = prog.compute(1, 1, s2, 11, 22, 33)
        assert v1 != v2

    def test_digest_changes_with_state(self):
        from repro.machine.programs import LedgerProgram

        prog = LedgerProgram()
        s = prog.init_state(1)
        d1 = prog.state_digest(s)
        _, update = prog.compute(1, 1, s, 1, 2, 3)
        d2 = prog.state_digest(prog.apply(s, update))
        assert d1 != d2

    def test_runs_distributed_and_verifies(self):
        from repro.core.overlap import simulate_overlap
        from repro.machine.host import HostArray
        from repro.machine.programs import LedgerProgram

        res = simulate_overlap(
            HostArray.uniform(24, 3), program=LedgerProgram(), steps=6
        )
        assert res.verified


@pytest.mark.parametrize("cls", VECTOR_PROGRAMS)
def test_values_in_word_range(cls):
    prog = cls()
    v, u = prog.compute(2, 3, prog.init_state(2), 123, 456, 789)
    assert 0 <= v <= MASK
    assert 0 <= u <= MASK
