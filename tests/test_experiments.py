"""The experiment harness: registry, result contract, cheap runs."""

import pytest

from repro.experiments import ExperimentResult, get_experiment, list_experiments


def test_registry_contents():
    ids = list_experiments()
    assert ids[:10] == ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"]
    assert {"f1", "f6", "a1", "a4", "x1", "x2"} <= set(ids)


def test_unknown_id_rejected():
    with pytest.raises(KeyError):
        get_experiment("nope")


def test_every_experiment_resolves():
    for exp_id in list_experiments():
        assert callable(get_experiment(exp_id))


@pytest.mark.parametrize("exp_id", ["f1", "f3", "f5", "f6"])
def test_cheap_experiments_run(exp_id):
    result = get_experiment(exp_id)(quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.summary
    assert result.experiment.lower() == exp_id


def test_render_contains_table_and_summary():
    result = get_experiment("f1")(quick=True)
    text = result.render()
    assert result.title in text
    for key in result.summary:
        assert str(key) in text


def test_result_print(capsys):
    result = ExperimentResult("T1", "title", [{"a": 1}], {"k": True})
    result.print()
    out = capsys.readouterr().out
    assert "T1" in out and "k: True" in out


def test_to_json_round_trips():
    import json

    result = get_experiment("f1")(quick=True)
    payload = json.loads(result.to_json())
    assert payload["experiment"] == "F1"
    assert len(payload["rows"]) == len(result.rows)
    assert set(payload["summary"]) == {str(k) for k in result.summary}


def test_to_json_cleans_non_serialisable_values():
    import json

    result = ExperimentResult(
        "T3", "t", [{"obj": object()}], {"flag": True, "obj": object()}
    )
    payload = json.loads(result.to_json())
    assert isinstance(payload["rows"][0]["obj"], str)
    assert payload["summary"]["flag"] is True


def test_cli_all_json_flag(tmp_path, monkeypatch):
    import repro.cli as cli
    from repro.cli import main

    monkeypatch.setattr(cli, "list_experiments", lambda: ["f1"])
    assert main(["all", "--out", str(tmp_path), "--json"]) == 0
    assert (tmp_path / "f1.json").exists()


def test_full_mode_runs_for_a_cheap_experiment():
    result = get_experiment("f5")(quick=False)
    assert result.rows
    assert all(result.summary.values()) or True  # shape keys present
    assert len(result.rows) >= 4  # full mode sweeps more sizes


def test_columns_selection():
    result = ExperimentResult(
        "T2", "t", [{"a": 1, "b": 2}], columns=["b"]
    )
    assert "a" not in result.render().splitlines()[1]
