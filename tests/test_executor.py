"""Greedy executor: correctness, timing sanity, determinism."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.executor import GreedyExecutor, SimulationDeadlock, run_assignment
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import (
    CounterProgram,
    DataflowProgram,
    KeyedStoreProgram,
    TokenProgram,
)


def one_to_one(n):
    return Assignment([(i + 1, i + 1) for i in range(n)], n)


def verify_run(host, assignment, program, steps, bandwidth=None):
    result = run_assignment(host, assignment, program, steps, bandwidth)
    ref = GuestArray(assignment.m, program).run_reference(steps)
    verify_execution(result, ref, program)
    return result


class TestCorrectness:
    @pytest.mark.parametrize(
        "prog_cls", [CounterProgram, DataflowProgram, TokenProgram, KeyedStoreProgram]
    )
    def test_one_to_one_unit_delays(self, prog_cls):
        host = HostArray.uniform(8)
        res = verify_run(host, one_to_one(8), prog_cls(), steps=10)
        assert res.stats.pebbles == 80

    def test_one_to_one_mixed_delays(self):
        host = HostArray([1, 5, 2, 9, 1, 3, 7])
        verify_run(host, one_to_one(8), CounterProgram(), steps=8)

    def test_overlapping_ranges(self):
        host = HostArray.uniform(4, 2)
        asg = Assignment([(1, 3), (2, 5), (4, 7), (6, 8)], 8)
        res = verify_run(host, asg, CounterProgram(), steps=6)
        assert res.stats.redundant > 0

    def test_single_processor_owns_everything(self):
        host = HostArray.uniform(3, 4)
        asg = Assignment([None, (1, 6), None], 6)
        res = verify_run(host, asg, CounterProgram(), steps=5)
        # Serial execution: exactly m*T steps, no messages.
        assert res.stats.makespan == 30
        assert res.stats.messages == 0

    def test_relay_through_dead_processor(self):
        # Position 1 holds nothing; messages must relay through it.
        host = HostArray([2, 3])
        asg = Assignment([(1, 1), None, (2, 2)], 2)
        res = verify_run(host, asg, CounterProgram(), steps=4)
        assert res.stats.messages > 0
        assert res.stats.pebble_hops >= 2 * res.stats.messages

    def test_blocked_ranges(self):
        host = HostArray.uniform(4, 3)
        asg = Assignment([(1, 4), (5, 8), (9, 12), (13, 16)], 16)
        verify_run(host, asg, CounterProgram(), steps=6)


class TestTiming:
    def test_unit_host_one_to_one_is_fast(self):
        host = HostArray.uniform(8, 1)
        res = run_assignment(host, one_to_one(8), CounterProgram(), 10)
        # With unit delays and bandwidth, slowdown is a small constant.
        assert res.stats.makespan <= 3 * 10

    def test_makespan_grows_with_delay(self):
        slow = []
        for d in (1, 4, 16):
            host = HostArray.uniform(8, d)
            res = run_assignment(host, one_to_one(8), CounterProgram(), 10)
            slow.append(res.stats.makespan)
        assert slow[0] < slow[1] < slow[2]

    def test_single_copy_tracks_dmax(self):
        d = 32
        host = HostArray.uniform(6, d)
        res = run_assignment(host, one_to_one(6), CounterProgram(), 6)
        # After the free first row, every step needs a neighbour
        # exchange over a d-delay link: makespan ~ 1 + (T-1)(d+1).
        assert res.stats.makespan >= (6 - 1) * d

    def test_bandwidth_one_is_slower_or_equal(self):
        host = HostArray.uniform(6, 4)
        asg = Assignment([(1, 4), (3, 8), (7, 12), (11, 16), (15, 20), (19, 24)], 24)
        wide = run_assignment(host, asg, CounterProgram(), 8, bandwidth=8)
        narrow = run_assignment(host, asg, CounterProgram(), 8, bandwidth=1)
        assert narrow.stats.makespan >= wide.stats.makespan

    def test_zero_steps(self):
        host = HostArray.uniform(4)
        res = run_assignment(host, one_to_one(4), CounterProgram(), 0)
        assert res.stats.makespan == 0
        assert res.stats.pebbles == 0


class TestReporting:
    def test_value_digests_cover_all_replicas(self):
        host = HostArray.uniform(4, 2)
        asg = Assignment([(1, 3), (2, 5), (4, 7), (6, 8)], 8)
        res = run_assignment(host, asg, CounterProgram(), 5)
        expected_replicas = sum(hi - lo + 1 for lo, hi in asg.ranges)
        assert len(res.value_digests) == expected_replicas
        assert len(res.replicas) == expected_replicas

    def test_slowdown_helper(self):
        host = HostArray.uniform(4)
        res = run_assignment(host, one_to_one(4), CounterProgram(), 5)
        assert res.slowdown() == res.stats.makespan / 5

    def test_deterministic_across_runs(self):
        host = HostArray([3, 1, 7])
        asg = Assignment([(1, 2), (2, 3), (3, 3), (3, 4)], 4)
        a = run_assignment(host, asg, CounterProgram(), 6)
        b = run_assignment(host, asg, CounterProgram(), 6)
        assert a.stats.makespan == b.stats.makespan
        assert a.value_digests == b.value_digests


class TestValidation:
    def test_assignment_host_size_mismatch(self):
        with pytest.raises(ValueError):
            GreedyExecutor(HostArray.uniform(3), one_to_one(4), CounterProgram(), 5)

    def test_negative_steps(self):
        with pytest.raises(ValueError):
            GreedyExecutor(HostArray.uniform(4), one_to_one(4), CounterProgram(), -1)

    def test_uncovered_column_rejected(self):
        host = HostArray.uniform(3)
        bad = Assignment([(1, 1), None, (3, 3)], 3)
        with pytest.raises(ValueError):
            GreedyExecutor(host, bad, CounterProgram(), 2)


class TestAgainstReferenceRandomised:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_overlapping_assignments(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        host = HostArray([int(d) for d in rng.integers(1, 9, size=n - 1)])
        m = int(rng.integers(n, 3 * n))
        # Random contiguous cover: walk left to right with overlaps.
        ranges = []
        step = max(1, m // n)
        lo = 1
        for p in range(n):
            width = int(rng.integers(step, step + 3))
            hi = min(m, lo + width - 1)
            if p == n - 1:
                hi = m
            ranges.append((lo, hi))
            lo = min(m, max(lo + 1, hi - int(rng.integers(0, 2))))
        asg = Assignment(ranges, m)
        asg.validate()
        verify_run(host, asg, CounterProgram(), steps=int(rng.integers(3, 10)))
