"""Golden regression pins.

Every run in this repository is deterministic, so a handful of exact
output values guard the whole stack against accidental semantic drift
(a changed mixing constant, a scheduling-order tweak, an off-by-one in
the pipelined-link model would all move these numbers).  If a change
*intentionally* alters semantics, update the pins in the same commit
and say why.
"""

from repro.core.overlap import simulate_overlap
from repro.core.ring import simulate_ring
from repro.core.uniform import simulate_uniform
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram

GOLDEN_HOST = [1, 5, 2, 9, 1, 3, 7, 2, 4, 6, 1, 8, 3, 2, 5]


def test_reference_grid_values_pinned():
    ref = GuestArray(8, CounterProgram()).run_reference(5)
    assert int(ref.values[5, 1]) == 3541152622121647128
    assert int(ref.values[5, 8]) == 17163625588304628634
    assert int(ref.update_digests[2]) == 6276431966630397882


def test_overlap_run_pinned():
    res = simulate_overlap(HostArray(GOLDEN_HOST, "golden"), steps=8, verify=False)
    stats = res.exec_result.stats
    assert res.m == 14
    assert stats.makespan == 47
    assert stats.pebbles == 240


def test_uniform_run_pinned():
    res = simulate_uniform(4, 16, steps=8, verify=False)
    assert res.exec_result.stats.makespan == 98


def test_ring_run_pinned():
    res = simulate_ring(HostArray.uniform(8, 3), steps=6, verify=False)
    assert res.exec_result.stats.makespan == 36


def test_overlap_run_is_also_correct():
    # The pinned run, with full verification on (belt and braces).
    res = simulate_overlap(HostArray(GOLDEN_HOST, "golden"), steps=8, verify=True)
    assert res.verified
