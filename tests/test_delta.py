"""Differential tests: checkpoint suffix-replay must be bit-identical
to full recompute.

Three layers, matching the delta stack:

* **executors** — ``DenseExecutor``/``FaultedDenseExecutor`` restored
  from any captured :class:`~repro.core.checkpoint.ExecutorCheckpoint`
  (including a JSON round-trip of the blob) must finish with the same
  stats, value digests and telemetry timelines as the uninterrupted
  run — and the same holds when the restore replays under an *extended*
  horizon, against a fresh run of that horizon;
* **blast-radius rules** — ``repro.delta``'s rules must bound each
  config edit by the earliest simulated time it can influence, and
  decline everything else;
* **runner** — ``SweepRunner`` serving a one-knob edit grid by suffix
  replay must produce exactly the rows a delta-disabled runner
  computes from scratch, with zero silent fallbacks.

The CI bench-compare gate refuses runs where these tests were skipped,
so keep them dependency-light and fast (the hypothesis property suite
lives in ``tests/test_delta_props.py``).
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core.checkpoint import ExecutorCheckpoint
from repro.core.overlap import simulate_overlap
from repro.delta import (
    DeltaUnsupported,
    cosmetic_rule,
    earliest_affected,
    fault_events_rule,
    horizon_rule,
    policy_rule,
)
from repro.experiments.x5 import _edit_point, base_config, edit_grid
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.runner import SweepCache, SweepRunner, config_hash, shutdown_pool
from repro.telemetry import MetricsTimeline

# ---------------------------------------------------------------------------
# helpers


def _stats(res):
    return dict(res.exec_result.stats.__dict__)


def _tl_dict(timeline):
    d = timeline.as_dict()
    d.pop("meta", None)
    return d


def _roundtrip(ck: ExecutorCheckpoint) -> ExecutorCheckpoint:
    """The checkpoint as the cache would serve it: via JSON."""
    return ExecutorCheckpoint.from_json(json.loads(json.dumps(ck.to_json())))


def _faulted_config() -> dict:
    return base_config(n=16, steps=8)


def _run_faulted(cfg: dict, resume_from=None, stride=8, telemetry=None):
    return simulate_overlap(
        HostArray.uniform(cfg["n"]),
        steps=cfg["steps"],
        min_copies=2,
        faults=FaultPlan.from_spec(cfg["faults"]),
        policy=RecoveryPolicy(**cfg["policy"]),
        verify=cfg["verify"],
        telemetry=telemetry,
        checkpoint_stride=stride,
        resume_from=resume_from,
    )


# ---------------------------------------------------------------------------
# executor capture -> restore


def test_dense_restore_every_checkpoint_bit_identical():
    host = HostArray.uniform(16, delay=3)
    tl = MetricsTimeline()
    base = simulate_overlap(
        host, steps=8, engine="dense", telemetry=tl, checkpoint_stride=8
    )
    assert base.checkpoints, "stride produced no checkpoints"
    for ck in base.checkpoints:
        tl2 = MetricsTimeline()
        res = simulate_overlap(
            host,
            steps=8,
            engine="dense",
            telemetry=tl2,
            resume_from=_roundtrip(ck),
        )
        assert _stats(res) == _stats(base), f"stats diverge from t={ck.time}"
        assert res.exec_result.value_digests == base.exec_result.value_digests
        assert _tl_dict(tl2) == _tl_dict(tl), f"telemetry diverges from t={ck.time}"


def test_faulted_restore_every_checkpoint_bit_identical():
    cfg = _faulted_config()
    tl = MetricsTimeline()
    base = _run_faulted(cfg, telemetry=tl)
    assert base.checkpoints, "faulted run captured no checkpoints"
    labels = {ck.label for ck in base.checkpoints}
    assert "fault-boundary" in labels and "stride" in labels
    for ck in base.checkpoints:
        tl2 = MetricsTimeline()
        res = _run_faulted(cfg, resume_from=_roundtrip(ck), telemetry=tl2)
        assert _stats(res) == _stats(base), f"stats diverge from t={ck.time}"
        assert res.exec_result.value_digests == base.exec_result.value_digests
        assert _tl_dict(tl2) == _tl_dict(tl), f"telemetry diverges from t={ck.time}"


def test_resumed_run_recaptures_usable_suffix_checkpoints():
    """A resumed run re-captures checkpoints past the restore point
    (so a delta hit can serve *further* deltas), and those recaptures
    are themselves valid restore points."""
    cfg = _faulted_config()
    base = _run_faulted(cfg)
    ck = base.checkpoints[0]
    res = _run_faulted(cfg, resume_from=_roundtrip(ck))
    times = [c.time for c in res.checkpoints]
    assert times and times == sorted(times)
    assert all(t > ck.time for t in times)
    again = _run_faulted(cfg, resume_from=_roundtrip(res.checkpoints[-1]))
    assert _stats(again) == _stats(base)
    assert again.exec_result.value_digests == base.exec_result.value_digests


def test_horizon_extension_restores_before_first_top():
    host = HostArray.uniform(16, delay=3)
    base = simulate_overlap(host, steps=8, engine="dense", checkpoint_stride=8)
    fresh = simulate_overlap(host, steps=10, engine="dense")
    assert base.first_top_t is not None
    usable = [ck for ck in base.checkpoints if ck.time < base.first_top_t]
    assert usable, "no checkpoint precedes first_top_t"
    for ck in usable:
        res = simulate_overlap(
            host, steps=10, engine="dense", resume_from=_roundtrip(ck)
        )
        assert _stats(res) == _stats(fresh)
        assert res.exec_result.value_digests == fresh.exec_result.value_digests


def test_greedy_engine_rejects_resume():
    host = HostArray.uniform(12, delay=2)
    base = simulate_overlap(host, steps=6, engine="dense", checkpoint_stride=8)
    with pytest.raises(DeltaUnsupported):
        simulate_overlap(
            host, steps=6, engine="greedy", resume_from=base.checkpoints[0]
        )


def test_checkpoint_kind_mismatch_rejected():
    host = HostArray.uniform(16, delay=2)
    dense_ck = simulate_overlap(
        host, steps=8, engine="dense", checkpoint_stride=8
    ).checkpoints[0]
    plan = FaultPlan.empty().crash(8, 10).declare_horizon(200)
    with pytest.raises(DeltaUnsupported):
        simulate_overlap(
            host,
            steps=8,
            min_copies=2,
            faults=plan,
            resume_from=dense_ck,
        )


def test_fault_free_runs_capture_stride_checkpoints():
    host = HostArray.uniform(16, delay=3)
    res = simulate_overlap(host, steps=8, engine="dense", checkpoint_stride=8)
    times = [ck.time for ck in res.checkpoints]
    assert times == sorted(times)
    assert all(ck.label == "stride" for ck in res.checkpoints)
    assert all(ck.kind == "dense" for ck in res.checkpoints)
    # No stride -> no capture overhead, no checkpoints.
    bare = simulate_overlap(host, steps=8, engine="dense")
    assert bare.checkpoints == []


# ---------------------------------------------------------------------------
# blast-radius rules


class TestRules:
    META = {"first_top_t": 40, "makespan": 100}

    def test_horizon_rule_extension_bounded_by_first_top(self):
        assert horizon_rule(8, 12, {}, {}, self.META) == 40

    def test_horizon_rule_declines_shrink_bool_and_missing_meta(self):
        assert horizon_rule(12, 8, {}, {}, self.META) is None
        assert horizon_rule(8, 8, {}, {}, self.META) is None
        assert horizon_rule(True, 2, {}, {}, self.META) is None
        assert horizon_rule(8, 12, {}, {}, {}) is None

    def test_fault_events_rule_moved_event(self):
        old = FaultPlan.empty().crash(3, 50).drop(1, 70).declare_horizon(200).to_spec()
        new = FaultPlan.empty().crash(3, 50).drop(1, 75).declare_horizon(200).to_spec()
        assert fault_events_rule(old, new, {}, {}, {}) == 70

    def test_fault_events_rule_identical_is_cosmetic(self):
        spec = FaultPlan.empty().crash(3, 50).declare_horizon(200).to_spec()
        assert fault_events_rule(spec, dict(spec), {}, {}, {}) == math.inf

    def test_fault_events_rule_declines_seed_horizon_reorder(self):
        a = FaultPlan.random(16, seed=1, horizon=64, node_crash_rate=0.2)
        b = FaultPlan.random(16, seed=2, horizon=64, node_crash_rate=0.2)
        assert fault_events_rule(a.to_spec(), b.to_spec(), {}, {}, {}) is None
        spec = a.to_spec()
        rehorizon = dict(spec, horizon=128)
        assert fault_events_rule(spec, rehorizon, {}, {}, {}) is None
        two = FaultPlan.empty().drop(1, 50).drop(2, 50).declare_horizon(99).to_spec()
        swapped = dict(two, events=list(reversed(two["events"])))
        assert fault_events_rule(two, swapped, {}, {}, {}) is None

    def test_policy_rule_bounded_by_first_fault(self):
        cfg = {"faults": FaultPlan.empty().crash(3, 33).drop(1, 60).declare_horizon(99).to_spec()}
        old = {"restart_penalty": 8, "max_retries": 32}
        new = {"restart_penalty": 12, "max_retries": 32}
        assert policy_rule(old, new, cfg, cfg, {}) == 33

    def test_policy_rule_declines_cadence_knobs(self):
        cfg = {"faults": FaultPlan.empty().crash(3, 33).declare_horizon(99).to_spec()}
        old = {"retry_factor": 4.0}
        new = {"retry_factor": 6.0}
        assert policy_rule(old, new, cfg, cfg, {}) is None

    def test_policy_rule_no_events_is_cosmetic(self):
        cfg = {"faults": {"events": [], "seed": None, "horizon": 99}}
        old = {"max_retries": 32}
        new = {"max_retries": 16}
        assert policy_rule(old, new, cfg, cfg, {}) == math.inf

    def test_cosmetic_rule(self):
        assert cosmetic_rule(1.0, 2.0, {}, {}, {}) == math.inf

    def test_earliest_affected_min_over_rules(self):
        rules = {"a": lambda *args: 30, "b": lambda *args: 50}
        old = {"a": 1, "b": 1, "c": 9}
        new = {"a": 2, "b": 2, "c": 9}
        affected, diff = earliest_affected(rules, old, new, {})
        assert affected == 30 and set(diff) == {"a", "b"}

    def test_earliest_affected_declines_unruled_and_mismatched_keys(self):
        rules = {"a": lambda *args: 30}
        assert earliest_affected(rules, {"a": 1, "z": 1}, {"a": 2, "z": 2}, {})[0] is None
        assert earliest_affected(rules, {"a": 1}, {"a": 1, "z": 2}, {}) == (None, ())


# ---------------------------------------------------------------------------
# runner: delta-served grids vs full recompute


def _tag() -> str:
    return f"{_edit_point.__module__}:{_edit_point.__qualname__}"


class TestDeltaRunner:
    def _seed(self, tmp_path, base):
        runner = SweepRunner(cache_dir=str(tmp_path / "delta"), delta=True)
        runner.map(_edit_point, [base])
        return runner

    def test_one_knob_grid_bit_identical(self, tmp_path):
        base = base_config(n=16, steps=8)
        edits = edit_grid(base, k=6)
        runner = self._seed(tmp_path, base)
        got = runner.map(_edit_point, edits)
        assert runner.last_delta_hits == len(edits)
        assert runner.last_delta_fallbacks == 0
        assert 0.0 < runner.last_replayed_fraction < 1.0
        ref = SweepRunner(cache_dir=str(tmp_path / "full"), delta=False)
        assert got == ref.map(_edit_point, edits)

    def test_resumed_entries_serve_later_deltas(self, tmp_path):
        base = base_config(n=16, steps=8)
        edits = edit_grid(base, k=3)
        runner = self._seed(tmp_path, base)
        runner.map(_edit_point, edits)
        again = []
        for cfg in edits:
            cfg = json.loads(json.dumps(cfg))
            ev = max(cfg["faults"]["events"], key=lambda e: e["time"])
            ev["time"] += 1
            again.append(cfg)
        got = runner.map(_edit_point, again)
        assert runner.last_delta_hits == len(again)
        ref = SweepRunner(cache_dir=str(tmp_path / "full"), delta=False)
        assert got == ref.map(_edit_point, again)

    def test_no_delta_disables_matching(self, tmp_path):
        base = base_config(n=16, steps=8)
        runner = SweepRunner(cache_dir=str(tmp_path), delta=False)
        runner.map(_edit_point, [base])
        runner.map(_edit_point, edit_grid(base, k=1))
        assert runner.last_delta_hits == 0
        assert runner.last_misses == 1

    def test_delta_strict_raises_when_blobs_missing(self, tmp_path):
        base = base_config(n=16, steps=8)
        runner = self._seed(tmp_path, base)
        key = config_hash(_tag(), "1", base)
        # Tear the sidecar: the entry's manifest still advertises
        # restore points, but the blobs cannot be decoded.
        runner.cache._ckpt_path(key).write_text("{torn", encoding="utf-8")
        strict = SweepRunner(
            cache_dir=str(tmp_path / "delta"), delta=True, delta_strict=True
        )
        with pytest.raises(RuntimeError, match="delta-strict"):
            strict.map(_edit_point, edit_grid(base, k=1))

    def test_delta_strict_passes_on_clean_hits(self, tmp_path):
        base = base_config(n=16, steps=8)
        self._seed(tmp_path, base)
        strict = SweepRunner(
            cache_dir=str(tmp_path / "delta"), delta=True, delta_strict=True
        )
        strict.map(_edit_point, edit_grid(base, k=2))
        assert strict.last_delta_hits == 2

    def test_missing_blobs_fall_back_to_recompute(self, tmp_path):
        base = base_config(n=16, steps=8)
        edits = edit_grid(base, k=2)
        runner = self._seed(tmp_path, base)
        key = config_hash(_tag(), "1", base)
        runner.cache._ckpt_path(key).write_text("{torn", encoding="utf-8")
        got = runner.map(_edit_point, edits)
        assert runner.last_delta_hits == 0
        assert runner.last_delta_fallbacks == len(edits)
        ref = SweepRunner(cache_dir=str(tmp_path / "full"), delta=False)
        assert got == ref.map(_edit_point, edits)

    def test_profile_records_delta(self, tmp_path):
        base = base_config(n=16, steps=8)
        runner = SweepRunner(
            cache_dir=str(tmp_path / "delta"), delta=True, profile=True
        )
        runner.map(_edit_point, [base])
        runner.map(_edit_point, edit_grid(base, k=2))
        delta = runner.profile.as_dict()["delta"]
        assert delta["hits"] == 2
        assert delta["fallbacks"] == 0
        assert 0.0 < delta["mean_replayed_fraction"] < 1.0


# ---------------------------------------------------------------------------
# sweep cache satellites: crash-safety + bounded size


class TestCacheDurability:
    def test_torn_entry_unlinked_on_get(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("ab" + "0" * 62, {"x": 1}, {"y": 2})
        path = cache._path("ab" + "0" * 62)
        path.write_text('{"config": {"x": 1}, "resu', encoding="utf-8")
        assert cache.get("ab" + "0" * 62) is None
        assert not path.exists(), "torn entry must be deleted on sight"
        assert cache.get("ab" + "0" * 62) is None  # and stay gone

    def test_put_leaves_no_tmp_files(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put(
            "cd" + "0" * 62,
            {"x": 1},
            {"y": 2},
            task="t",
            version="1",
            delta={"meta": {}, "checkpoints": [{"time": 3, "label": "stride"}]},
        )
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []
        assert cache.get("cd" + "0" * 62) == {"y": 2}

    def test_eviction_oldest_mtime_first(self, tmp_path):
        cache = SweepCache(tmp_path, max_entries=2)
        keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys[:2]):
            cache.put(key, {"i": i}, {"r": i})
            os.utime(cache._path(key), (1000 + i, 1000 + i))
        cache.put(keys[2], {"i": 2}, {"r": 2})
        assert cache.get(keys[0]) is None, "oldest entry must be evicted"
        assert cache.get(keys[1]) == {"r": 1}
        assert cache.get(keys[2]) == {"r": 2}
        assert len(cache) == 2

    def test_eviction_removes_sidecar_too(self, tmp_path):
        cache = SweepCache(tmp_path, max_entries=1)
        old = "ee" + "0" * 62
        cache.put(
            old,
            {"x": 1},
            {"y": 1},
            task="t",
            version="1",
            delta={"meta": {}, "checkpoints": [{"time": 3, "label": "stride"}]},
        )
        assert cache._ckpt_path(old).exists()
        os.utime(cache._path(old), (1000, 1000))
        cache.put("ff" + "0" * 62, {"x": 2}, {"y": 2})
        assert cache.get(old) is None
        assert not cache._ckpt_path(old).exists(), "sidecar must follow its entry"

    def test_len_and_clear_ignore_sidecars(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put(
            "aa" + "0" * 62,
            {"x": 1},
            {"y": 1},
            task="t",
            version="1",
            delta={"meta": {}, "checkpoints": [{"time": 3, "label": "stride"}]},
        )
        cache.put("bb" + "0" * 62, {"x": 2}, {"y": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.load_checkpoints("aa" + "0" * 62) == []

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCache(tmp_path, max_entries=0)

    def test_runner_wires_cache_limit(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path), cache_limit=7)
        assert runner.cache.max_entries == 7


# ---------------------------------------------------------------------------
# pool shutdown (atexit satellite)


def _double(cfg):
    return {"d": cfg["x"] * 2}


def test_shutdown_pool_idempotent_and_pool_recovers():
    shutdown_pool()
    shutdown_pool()  # second call must be a no-op, not an error
    runner = SweepRunner(workers=2)
    assert runner.map(_double, [{"x": 1}, {"x": 2}]) == [{"d": 2}, {"d": 4}]
    shutdown_pool()


def test_shutdown_pool_registered_atexit():
    import atexit

    import repro.runner as runner_mod

    # The module must register its pool teardown exactly once at import
    # time; re-importing must not stack more handlers.
    assert atexit.unregister(runner_mod.shutdown_pool) is None
    atexit.register(runner_mod.shutdown_pool)  # restore for this process
