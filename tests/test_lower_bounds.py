"""Section 6 machinery: audits, H1/H2 bounds, the zigzag path."""

import math

import pytest

from repro.core.assignment import Assignment
from repro.core.baselines import simulate_single_copy, spread_assignment
from repro.lower_bounds.audit import (
    adjacency_separation_bound,
    audit_assignment,
    max_copies,
    windowed_assignment,
    work_lower_bound,
)
from repro.lower_bounds.h1 import expected_h1_bound, h1_adversarial_pair, theorem9_audit
from repro.lower_bounds.h2 import (
    fact4_violations,
    find_overlap_pattern,
    h2_census,
    path_delay_bound,
    segment_separation,
    theorem10_bound,
    zigzag_is_dependency_path,
    zigzag_path,
)
from repro.machine.host import HostArray
from repro.topology.generators import h1_host, h2_host


class TestAudit:
    def test_work_bound(self):
        asg = Assignment([(1, 4), None, None, None], 4)
        assert work_lower_bound(asg) == 4.0

    def test_separation_bound_simple(self):
        host = HostArray([10])
        asg = Assignment([(1, 1), (2, 2)], 2)
        sep, col = adjacency_separation_bound(host, asg)
        assert sep == 5.0
        assert col == 1

    def test_separation_zero_with_shared_owner(self):
        host = HostArray([10])
        asg = Assignment([(1, 2), (2, 2)], 2)
        sep, _ = adjacency_separation_bound(host, asg)
        assert sep == 0.0

    def test_audit_report(self):
        host = h1_host(64)
        asg = spread_assignment(64, 64)
        rep = audit_assignment(host, asg)
        assert rep.max_copies == 1
        assert rep.slowdown_lower_bound >= rep.work_bound
        assert rep.slowdown_lower_bound >= rep.separation_bound

    def test_windowed_assignment_copies(self):
        asg = windowed_assignment(16, 16, copies=2)
        assert max_copies(asg) == 2
        assert asg.load() <= 2 * math.ceil(16 / 16) + 1
        asg.validate()

    def test_windowed_assignment_three_copies(self):
        asg = windowed_assignment(12, 24, copies=3)
        assert max_copies(asg) == 3
        asg.validate()

    def test_windowed_validates(self):
        with pytest.raises(ValueError):
            windowed_assignment(4, 4, copies=0)


class TestTheorem9:
    def test_audit_separation_horn(self):
        host = h1_host(64)
        asg = spread_assignment(64, 64)
        audit = theorem9_audit(asg, host)
        assert audit.horn == "separation"
        assert audit.bound >= expected_h1_bound(64) - 1
        assert audit.witness_column is not None

    def test_audit_work_horn(self):
        host = h1_host(64)
        # Cram everything on 4 < sqrt(n) processors.
        asg = spread_assignment(64, 64, positions=[0, 1, 2, 3])
        audit = theorem9_audit(asg, host)
        assert audit.horn == "work"
        assert audit.bound == 16.0

    def test_rejects_multicopy(self):
        host = h1_host(64)
        asg = windowed_assignment(64, 64, copies=2)
        with pytest.raises(ValueError):
            theorem9_audit(asg, host)

    def test_adversarial_pair_exists_for_spread(self):
        host = h1_host(100)
        asg = spread_assignment(100, 100)
        pair = h1_adversarial_pair(host, asg)
        assert pair is not None
        col, sep = pair
        assert sep >= 10  # sqrt(100)

    def test_measured_slowdown_matches_bound(self):
        host = h1_host(100)
        res = simulate_single_copy(host, steps=10, verify=False)
        audit = theorem9_audit(res.assignment, host)
        assert res.slowdown >= audit.bound


class TestH2:
    def test_census(self):
        h2 = h2_host(512)
        c = h2_census(h2)
        assert c["long_links"] == c["long_links_expected"]
        assert c["d_ave"] < 8

    def test_fact4_holds(self):
        for n in (64, 256, 1024):
            assert fact4_violations(h2_host(n)) == []

    def test_segment_separation_at_least_d(self):
        h2 = h2_host(256)
        segs = h2.segments
        for a, b in zip(segs, segs[1:]):
            assert segment_separation(h2, a, b) >= h2.d

    def test_windowed_2copy_bound_is_logarithmic(self):
        h2 = h2_host(256)
        n = h2.array.n
        asg = windowed_assignment(n, n, copies=2)
        res = theorem10_bound(h2, asg)
        assert res["analytic_bound"] >= h2.log_n / (4 * asg.load())

    def test_overlap_pattern_detection_positive(self):
        h2 = h2_host(256)
        segs = h2.segments
        # Construct an assignment that deliberately overlaps two
        # segments on columns 5..8 (plus flanks).
        a, b = segs[0], segs[1]
        ranges = [None] * h2.array.n
        ranges[a.start] = (4, 8)  # columns i..i+j with i=4, j=4
        ranges[b.start] = (5, 9)  # columns i+1..i+j+1
        asg = Assignment(ranges, 9)
        pattern = find_overlap_pattern(h2, asg)
        assert pattern is not None
        assert pattern.j >= 1


class TestZigzag:
    def test_path_shape(self):
        p = zigzag_path(10, 4, 100)
        assert len(p) == 16
        assert zigzag_is_dependency_path(p)
        # Times strictly decrease.
        times = [t for _, t in p]
        assert times == list(range(99, 83, -1))

    def test_path_columns_zigzag(self):
        j = 4
        p = zigzag_path(0, j, 100)
        cols = [c for c, _ in p]
        # Segment A climbs to i+j, B/C oscillate, D descends, E/F oscillate.
        assert cols[:j] == [1, 2, 3, 4]
        assert set(cols[j : 2 * j]) == {j, j + 1}
        assert set(cols[3 * j :]) == {0, 1}

    def test_path_validation(self):
        with pytest.raises(ValueError):
            zigzag_path(0, 3, 100)  # odd j
        with pytest.raises(ValueError):
            zigzag_path(0, 4, 10)  # t too small

    def test_path_delay_bound_positive_when_split(self):
        h2 = h2_host(256)
        n = h2.array.n
        # One copy per column, spread: adjacent columns on adjacent
        # positions; the zigzag crosses column boundaries repeatedly.
        asg = spread_assignment(n, n)
        p = zigzag_path(n // 2, 4, 100)
        assert path_delay_bound(h2, asg, p) > 0
