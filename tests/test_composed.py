"""Theorems 5-6: the composed sqrt(d_ave) * polylog simulation."""

import numpy as np
import pytest

from repro.analysis.scaling import fit_power_law
from repro.core.composed import (
    composed_assignment,
    simulate_composed,
    simulate_composed_on_graph,
    theorem5_bound,
)
from repro.core.killing import kill_and_label
from repro.machine.host import HostArray
from repro.topology.delays import uniform_delays
from repro.topology.generators import now_cluster_host


def test_assignment_composes_contiguously():
    host = HostArray.uniform(32, 9)
    killing = kill_and_label(host)
    asg = composed_assignment(killing, q=3)
    asg.validate()
    base = killing.n_prime
    assert asg.m == base * 3
    # Each position's guest range is ~3q wider than its base range * q.
    for p, r in enumerate(asg.ranges):
        if r is None:
            continue
        lo, hi = r
        assert hi - lo + 1 >= 3  # at least q columns


def test_q_must_be_positive():
    host = HostArray.uniform(16, 4)
    with pytest.raises(ValueError):
        composed_assignment(kill_and_label(host), q=0)


def test_end_to_end_verified():
    res = simulate_composed(HostArray.uniform(48, 9), steps=6)
    assert res.verified
    assert res.q == 3
    assert res.m == res.assignment.m
    assert res.summary()["verified"]


def test_sqrt_dave_scaling_shape():
    ds, slows = [], []
    for d in (4, 16, 64):
        res = simulate_composed(HostArray.uniform(32, d), steps=None, verify=False)
        ds.append(d)
        slows.append(res.slowdown)
    fit = fit_power_law(ds, slows)
    # Theorem 5: exponent ~ 0.5 in d_ave (the composed form), clearly
    # below the ~1.0 of plain OVERLAP.
    assert fit.exponent <= 0.8, fit


def test_normalized_column_flatish():
    vals = []
    for d in (16, 64):
        res = simulate_composed(HostArray.uniform(32, d), verify=False)
        vals.append(res.normalized())
    assert max(vals) / min(vals) < 4


def test_nonuniform_host():
    rng = np.random.default_rng(3)
    host = HostArray(uniform_delays(47, rng, 1, 16))
    res = simulate_composed(host, steps=6)
    assert res.verified


def test_h0_block_scales_guest():
    host = HostArray.uniform(32, 4)
    a = simulate_composed(host, steps=4, h0_block=1, verify=False)
    b = simulate_composed(host, steps=4, h0_block=2, verify=False)
    assert b.m == 2 * a.m


def test_on_graph_theorem6():
    hg = now_cluster_host(4, 8, intra_delay=1, inter_delay=16)
    res = simulate_composed_on_graph(hg, steps=4)
    assert res.verified
    assert res.embedding is not None
    assert res.embedding.dilation <= 3


def test_theorem5_bound_monotone():
    h1 = HostArray.uniform(64, 4)
    h2 = HostArray.uniform(64, 16)
    assert theorem5_bound(h2) == pytest.approx(2 * theorem5_bound(h1))
