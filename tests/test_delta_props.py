"""Property-based checkpoint checks (hypothesis): capture -> JSON
round-trip -> restore is bit-identical to the uninterrupted run, for
random hosts, horizons, strides and fault plans.

These live apart from ``tests/test_delta.py`` because the CI
bench-smoke job runs that file without hypothesis installed (its
zero-skip differential gate would otherwise trip on the import).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import ExecutorCheckpoint
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.telemetry import MetricsTimeline


def _stats(res):
    return dict(res.exec_result.stats.__dict__)


def _tl_dict(timeline):
    d = timeline.as_dict()
    d.pop("meta", None)
    return d


def _roundtrip(ck: ExecutorCheckpoint) -> ExecutorCheckpoint:
    return ExecutorCheckpoint.from_json(json.loads(json.dumps(ck.to_json())))


@st.composite
def host_steps_stride(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    delays = draw(
        st.lists(
            st.integers(min_value=1, max_value=6), min_size=n - 1, max_size=n - 1
        )
    )
    steps = draw(st.integers(min_value=2, max_value=8))
    stride = draw(st.integers(min_value=2, max_value=24))
    return HostArray(delays), steps, stride


@given(host_steps_stride())
@settings(max_examples=25, deadline=None)
def test_dense_capture_restore_roundtrip(hss):
    host, steps, stride = hss
    tl = MetricsTimeline()
    base = simulate_overlap(
        host, steps=steps, engine="dense", telemetry=tl, checkpoint_stride=stride
    )
    for ck in base.checkpoints:
        tl2 = MetricsTimeline()
        res = simulate_overlap(
            host,
            steps=steps,
            engine="dense",
            telemetry=tl2,
            resume_from=_roundtrip(ck),
        )
        assert _stats(res) == _stats(base)
        assert res.exec_result.value_digests == base.exec_result.value_digests
        assert _tl_dict(tl2) == _tl_dict(tl)


@st.composite
def faulted_scenario(draw):
    n = draw(st.integers(min_value=6, max_value=14))
    steps = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    stride = draw(st.integers(min_value=4, max_value=32))
    plan = FaultPlan.random(
        n,
        seed=seed,
        horizon=12 * steps,
        node_crash_rate=draw(st.floats(min_value=0.0, max_value=0.25)),
        link_outage_rate=draw(st.floats(min_value=0.0, max_value=0.25)),
        jitter_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        drop_rate=draw(st.floats(min_value=0.0, max_value=0.2)),
    )
    return n, steps, plan, stride


@given(faulted_scenario())
@settings(max_examples=20, deadline=None)
def test_faulted_capture_restore_roundtrip(scenario):
    n, steps, plan, stride = scenario

    def run(resume_from=None, telemetry=None):
        return simulate_overlap(
            HostArray.uniform(n),
            steps=steps,
            min_copies=2,
            faults=plan,
            policy=RecoveryPolicy(),
            verify=True,
            telemetry=telemetry,
            checkpoint_stride=stride,
            resume_from=resume_from,
        )

    tl = MetricsTimeline()
    base = run(telemetry=tl)
    for ck in base.checkpoints:
        tl2 = MetricsTimeline()
        res = run(resume_from=_roundtrip(ck), telemetry=tl2)
        assert _stats(res) == _stats(base), f"stats diverge from t={ck.time}"
        assert res.exec_result.value_digests == base.exec_result.value_digests
        assert _tl_dict(tl2) == _tl_dict(tl), f"telemetry diverges at t={ck.time}"
        # Suffix recaptures need not land at the base run's capture
        # times (a stride mark the base caught late may already be
        # behind the resume point), but they must all postdate the
        # restore point and be valid restore points themselves — the
        # merged-sidecar contract for second-generation deltas.
        times = [c.time for c in res.checkpoints]
        assert times == sorted(times)
        assert all(t > ck.time for t in times)
        if res.checkpoints:
            again = run(resume_from=_roundtrip(res.checkpoints[-1]))
            assert _stats(again) == _stats(base)
            assert (
                again.exec_result.value_digests
                == base.exec_result.value_digests
            )


@given(host_steps_stride(), st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_dense_horizon_extension_matches_fresh_run(hss, extra):
    """Restoring any checkpoint strictly before ``first_top_t`` under a
    longer horizon must reproduce the longer run exactly — the bound
    the ``steps`` blast-radius rule relies on."""
    host, steps, stride = hss
    base = simulate_overlap(
        host, steps=steps, engine="dense", checkpoint_stride=stride
    )
    fresh = simulate_overlap(host, steps=steps + extra, engine="dense")
    for ck in base.checkpoints:
        if base.first_top_t is None or ck.time >= base.first_top_t:
            continue
        res = simulate_overlap(
            host,
            steps=steps + extra,
            engine="dense",
            resume_from=_roundtrip(ck),
        )
        assert _stats(res) == _stats(fresh)
        assert res.exec_result.value_digests == fresh.exec_result.value_digests
