"""Constant calibration fits."""

import pytest

from repro.analysis.calibrate import (
    LinearFit,
    calibrate_theorem2,
    calibrate_theorem4,
    calibrate_theorem7_case2,
    fit_linear,
)


def test_fit_linear_exact():
    fit = fit_linear([1, 2, 3], [5, 7, 9])
    assert fit.c1 == pytest.approx(2.0)
    assert fit.c0 == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(23.0)


def test_fit_linear_validates():
    with pytest.raises(ValueError):
        fit_linear([1], [2])
    with pytest.raises(ValueError):
        fit_linear([1, 2], [3])


def test_theorem4_constant_below_paper():
    fit = calibrate_theorem4(d_values=(16, 64, 256))
    assert isinstance(fit, LinearFit)
    assert 0 < fit.c1 <= 5.0
    assert fit.r_squared > 0.95


def test_theorem2_linear_in_dave():
    fit = calibrate_theorem2(d_values=(2, 4, 8, 16), n=64, steps=10)
    assert fit.c1 > 0
    assert fit.r_squared > 0.9


def test_theorem7_constant_near_three():
    fit = calibrate_theorem7_case2()
    assert 0.5 <= fit.c1 <= 3.2
    assert fit.r_squared > 0.9
