"""The user program DSL."""

import pytest

from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.machine.mixing import MASK
from repro.machine.udsl import check_determinism, program_from_step


def simple_step(i, t, state, left, up, right):
    value = (state * 31 + left + 3 * up + 7 * right + i + t) & MASK
    return value, value


def test_wraps_and_runs_end_to_end():
    prog = program_from_step(simple_step, name="weighted-sum")
    res = simulate_overlap(HostArray.uniform(24, 3), program=prog, steps=6)
    assert res.verified


def test_defaults_are_word_state():
    prog = program_from_step(simple_step)
    s = prog.init_state(3)
    assert isinstance(s, int)
    v, u = prog.compute(3, 1, s, 1, 2, 3)
    assert 0 <= v <= MASK
    s2 = prog.apply(s, u)
    assert s2 != s
    assert prog.state_digest(s2) == s2


def test_custom_init_apply_digest():
    prog = program_from_step(
        lambda i, t, s, l, u, r: ((s["x"] + l) & MASK, 1),
        init=lambda i: {"x": i},
        apply=lambda s, upd: {"x": s["x"] + upd},
        digest=lambda s: s["x"],
        name="dicty",
    )
    s = prog.init_state(5)
    v, u = prog.compute(5, 1, s, 2, 0, 0)
    assert v == 7
    assert prog.state_digest(prog.apply(s, u)) == 6


def test_values_masked_to_64_bits():
    prog = program_from_step(lambda i, t, s, l, u, r: (2**70, 2**70 + 1))
    v, upd = prog.compute(1, 1, 0, 0, 0, 0)
    assert v <= MASK and upd <= MASK


def test_determinism_check_passes_for_pure_step():
    check_determinism(program_from_step(simple_step))


def test_determinism_check_catches_randomness():
    import random

    prog = program_from_step(
        lambda i, t, s, l, u, r: (random.getrandbits(64), 0)
    )
    with pytest.raises(AssertionError, match="nondeterministic"):
        check_determinism(prog)


def test_determinism_check_catches_state_mutation():
    def mutating(i, t, state, l, u, r):
        state["x"] = state.get("x", 0) + 1
        return state["x"], 0

    prog = program_from_step(
        mutating, init=lambda i: {"x": 0}, apply=lambda s, u: s,
        digest=lambda s: s["x"],
    )
    # Mutation surfaces either as value nondeterminism (second call
    # sees the mutated state) or as the explicit mutation check.
    with pytest.raises(AssertionError, match="nondeterministic|mutated"):
        check_determinism(prog)


def test_dataflow_style_user_program():
    prog = program_from_step(
        lambda i, t, s, l, u, r: ((l ^ u ^ r) & MASK, 0),
        apply=lambda s, u: s,
        uses_database=False,
        name="xor-flow",
    )
    assert not prog.uses_database
    res = simulate_overlap(HostArray.uniform(16, 2), program=prog, steps=5)
    assert res.verified
