"""Small-surface coverage: helpers and accessors not hit elsewhere."""

import math

import pytest

from repro.analysis.metrics import advantage, polylog
from repro.analysis.report import print_kv
from repro.core.baselines import theoretical_overlap_advantage
from repro.core.composed import theorem5_bound
from repro.core.overlap import default_steps, work_efficient_block
from repro.core.schedule import build_schedule, theorem2_bound
from repro.core.killing import OverlapParams, kill_and_label
from repro.core.uniform import UniformResult, simulate_uniform
from repro.lower_bounds.h1 import expected_h1_bound
from repro.machine.host import HostArray
from repro.netsim.stats import SimStats


def test_polylog_and_advantage():
    assert polylog(1024, 2) == 100.0
    assert advantage(50, 5) == 10.0
    with pytest.raises(ValueError):
        advantage(50, 0)


def test_print_kv_with_iterable(capsys):
    print_kv([("a", 1), ("b", 2.5)])
    out = capsys.readouterr().out
    assert "a: 1" in out and "b: 2.50" in out


def test_theorem5_bound_formula():
    host = HostArray.uniform(64, 16)
    expected = 5 * math.sqrt(16) * 4 * 6**3
    assert theorem5_bound(host) == pytest.approx(expected)


def test_theorem2_bound_components():
    p = OverlapParams.for_host(HostArray.uniform(64, 2))
    b = theorem2_bound(p, base_work=1)
    assert b == pytest.approx(64 / (4 * 6) + 2 * 4 * 2 * 64 * 36)


def test_default_steps_floor():
    killing = kill_and_label(HostArray.uniform(16, 1))
    assert default_steps(killing) >= 4


def test_work_efficient_block_floors_at_one():
    host = HostArray.uniform(4, 1)
    assert work_efficient_block(host, polylog_exponent=0) >= 1


def test_uniform_result_accessors():
    res = simulate_uniform(4, 9, steps=6, verify=False)
    assert isinstance(res, UniformResult)
    assert res.d == 9
    assert res.bound() > 0
    assert res.normalized() == pytest.approx(res.slowdown / 3.0)


def test_theoretical_overlap_advantage_grows_with_dmax():
    a = theoretical_overlap_advantage(HostArray([1] * 31 + [64] + [1] * 31))
    b = theoretical_overlap_advantage(HostArray([1] * 31 + [1024] + [1] * 31))
    assert b > a


def test_expected_h1_bound():
    assert expected_h1_bound(100) == pytest.approx(5.0)


def test_simstats_extras_survive_as_dict():
    s = SimStats(makespan=3)
    s.extras["custom"] = 9
    assert s.as_dict()["custom"] == 9


def test_schedule_table_kmax_property():
    tab = build_schedule(OverlapParams.for_host(HostArray.uniform(256, 2)))
    assert tab.k_max == len(tab.heights) - 1


def test_overlap_result_summary_roundtrip():
    from repro.core.overlap import simulate_overlap

    res = simulate_overlap(HostArray.uniform(32, 2), steps=4, verify=False)
    s = res.summary()
    assert s["n"] == 32
    assert s["verified"] is False
    assert s["makespan"] == res.exec_result.stats.makespan


def test_host_graph_name_default():
    import networkx as nx

    from repro.machine.host import HostGraph
    from repro.netsim.routing import DELAY_ATTR

    g = nx.path_graph(3)
    nx.set_edge_attributes(g, 1, DELAY_ATTR)
    assert HostGraph(g).name == "host-graph"


def test_assignment_block_attribute():
    from repro.core.assignment import assign_databases

    killing = kill_and_label(HostArray.uniform(32, 1))
    asg = assign_databases(killing, block=3)
    assert asg.block == 3
    assert asg.m % 3 == 0
