"""SweepRunner: parallel fan-out, content-hash caching, seeding contract."""

import json

import pytest

from repro.experiments import get_experiment, run_experiment
from repro.runner import (
    SweepCache,
    SweepRunner,
    active_runner,
    canonical_json,
    config_hash,
    config_seed,
    sweep,
    using,
)


def _square(cfg: dict) -> dict:
    """Module-level so worker processes can import it by name."""
    return {"value": cfg["x"] * cfg["x"], "seed": cfg.get("seed")}


def _echo_seed(cfg: dict) -> dict:
    return {"seed": cfg["seed"]}


class TestHashingAndSeeding:
    def test_canonical_json_is_key_order_invariant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_canonical_json_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_config_hash_distinguishes_task_version_config(self):
        base = config_hash("t", "1", {"x": 1})
        assert config_hash("t", "1", {"x": 1}) == base
        assert config_hash("u", "1", {"x": 1}) != base
        assert config_hash("t", "2", {"x": 1}) != base
        assert config_hash("t", "1", {"x": 2}) != base

    def test_config_seed_deterministic_and_salted(self):
        cfg = {"n": 64, "d": 4}
        s = config_seed(cfg)
        assert s == config_seed(dict(reversed(list(cfg.items()))))
        assert 0 <= s < 2**63
        assert config_seed(cfg, salt="other") != s

    def test_seed_key_injected_only_when_missing(self):
        runner = SweepRunner()
        out = runner.map(_echo_seed, [{"x": 1}, {"x": 2, "seed": 7}], seed_key="seed")
        assert out[0]["seed"] == config_seed({"x": 1})
        assert out[1]["seed"] == 7


class TestSweepCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("ab" * 32, {"x": 1}, {"y": 2})
        assert cache.get("ab" * 32) == {"y": 2}
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert SweepCache(tmp_path).get("cd" * 32) is None

    def test_none_results_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCache(tmp_path).put("ab" * 32, {}, None)

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("ab" * 32, {}, 1)
        cache.put("cd" * 32, {}, 2)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSweepRunner:
    def test_results_in_config_order(self):
        out = SweepRunner().map(_square, [{"x": x} for x in (3, 1, 2)])
        assert [r["value"] for r in out] == [9, 1, 4]

    def test_cache_hits_skip_recompute(self, tmp_path):
        configs = [{"x": x} for x in range(4)]
        runner = SweepRunner(cache_dir=tmp_path)
        first = runner.map(_square, configs)
        assert (runner.last_hits, runner.last_misses) == (0, 4)
        second = runner.map(_square, configs)
        assert (runner.last_hits, runner.last_misses) == (4, 0)
        assert first == second

    def test_version_busts_cache(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        runner.map(_square, [{"x": 1}], version="1")
        runner.map(_square, [{"x": 1}], version="2")
        assert runner.last_misses == 1

    def test_fresh_and_cached_results_identical(self, tmp_path):
        # JSON round-trip on miss means a cache hit is bit-identical.
        runner = SweepRunner(cache_dir=tmp_path)
        fresh = runner.map(_square, [{"x": 5}])
        cached = runner.map(_square, [{"x": 5}])
        assert json.dumps(fresh) == json.dumps(cached)

    def test_parallel_matches_serial(self):
        configs = [{"x": x} for x in range(6)]
        serial = SweepRunner(workers=1).map(_square, configs, seed_key="seed")
        parallel = SweepRunner(workers=4).map(_square, configs, seed_key="seed")
        assert serial == parallel

    def test_non_serialisable_result_fails_loudly(self):
        with pytest.raises(TypeError):
            SweepRunner().map(lambda cfg: object(), [{"x": 1}])


class TestCacheCollisions:
    """Cache keys are content hashes: key order must not matter,
    value differences must."""

    def test_nested_key_order_permutations_hash_identically(self):
        # Every insertion-order permutation, at every nesting level, is
        # the same config and must map to the same cache entry.
        import itertools

        inner = {"block": 2, "bw": 1, "copies": 3}
        outer_items = [("n", 64), ("d", 4), ("opts", None)]
        hashes = set()
        for inner_perm in itertools.permutations(inner.items()):
            for outer_perm in itertools.permutations(outer_items):
                cfg = {
                    k: (dict(inner_perm) if k == "opts" else v)
                    for k, v in outer_perm
                }
                hashes.add(config_hash("task", "1", cfg))
        assert len(hashes) == 1

    def test_nested_value_difference_changes_hash(self):
        base = {"n": 64, "opts": {"block": 2, "grid": [1, 2, 3]}}
        for mutant in (
            {"n": 64, "opts": {"block": 3, "grid": [1, 2, 3]}},
            {"n": 64, "opts": {"block": 2, "grid": [1, 2, 4]}},
            {"n": 64, "opts": {"block": 2, "grid": [1, 2]}},
            {"n": 65, "opts": {"block": 2, "grid": [1, 2, 3]}},
        ):
            assert config_hash("t", "1", mutant) != config_hash("t", "1", base)

    def test_key_order_permutation_is_a_cache_hit(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        runner.map(_square, [{"x": 2, "seed": 1}])
        runner.map(_square, [{"seed": 1, "x": 2}])
        assert (runner.last_hits, runner.last_misses) == (1, 0)
        assert len(runner.cache) == 1

    def test_differing_values_do_not_share_entries(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        out2 = runner.map(_square, [{"x": 2}])
        out3 = runner.map(_square, [{"x": 3}])
        assert runner.last_misses == 1  # no false hit on the second map
        assert out2[0]["value"] == 4 and out3[0]["value"] == 9
        assert len(runner.cache) == 2


class TestParallelPool:
    def test_pool_reused_and_chunked_across_maps(self):
        configs = [{"x": x} for x in range(8)]
        runner = SweepRunner(workers=2)
        first = runner.map(_square, configs, seed_key="seed")
        assert runner.last_chunk_size >= 1
        second = runner.map(_square, configs, seed_key="seed")
        assert runner.last_pool_reused
        assert first == second

    def test_serial_map_reports_no_chunking(self):
        runner = SweepRunner(workers=1)
        runner.map(_square, [{"x": 1}])
        assert runner.last_chunk_size == 0
        assert runner.last_pool_reused is False


class TestAmbientRunner:
    def test_default_is_serial_uncached(self):
        runner = active_runner()
        assert runner.workers == 1
        assert runner.cache is None

    def test_using_installs_and_restores(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        with using(runner):
            assert active_runner() is runner
            assert sweep(_square, [{"x": 2}])[0]["value"] == 4
        assert active_runner() is not runner

    def test_run_experiment_wires_the_runner(self, tmp_path):
        res = run_experiment("e3", quick=True, cache_dir=tmp_path)
        assert res.rows
        assert len(SweepCache(tmp_path)) > 0


class TestWorkerCountDeterminism:
    def test_e1_identical_at_any_worker_count(self):
        """Acceptance gate: e1 through SweepRunner with workers=4 is
        bit-for-bit identical to workers=1."""
        e1 = get_experiment("e1")
        with using(SweepRunner(workers=1)):
            serial = e1(quick=True)
        with using(SweepRunner(workers=4)):
            parallel = e1(quick=True)
        assert serial.to_json() == parallel.to_json()


def _nan_task(cfg: dict) -> dict:
    import math

    return {"rows": [{"ok": 1.0}, {"ok": 2.0}, {"ok": 3.0}, {"slowdown": math.nan}]}


class TestNonFiniteRejection:
    """NaN/Infinity have no canonical JSON form; the cache boundary
    rejects them loudly, naming the offending key path."""

    def test_canonical_json_rejects_nan_with_key_path(self):
        with pytest.raises(ValueError, match=r"\$\.rows\[3\]\.slowdown"):
            canonical_json({"rows": [1.0, 2.0, 3.0, {"slowdown": float("nan")}]})

    def test_canonical_json_rejects_infinity(self):
        with pytest.raises(ValueError, match=r"\$\.degradation"):
            canonical_json({"degradation": float("inf")})
        with pytest.raises(ValueError, match=r"\$\[1\]"):
            canonical_json([0.0, float("-inf")])

    def test_canonical_json_accepts_finite_floats(self):
        assert canonical_json({"x": 1.5}) == '{"x":1.5}'

    def test_inline_task_result_rejected(self):
        with pytest.raises(ValueError, match=r"\$\.rows\[3\]\.slowdown"):
            SweepRunner().map(_nan_task, [{"x": 1}])

    def test_parallel_task_result_rejected(self):
        with pytest.raises(ValueError, match=r"sweep task result"):
            SweepRunner(workers=2).map(_nan_task, [{"x": i} for i in range(4)])

    def test_cache_put_rejected(self, tmp_path):
        cache = SweepCache(tmp_path)
        with pytest.raises(ValueError, match=r"\$\.result\.v"):
            cache.put("ab" * 32, {"x": 1}, {"v": float("nan")})
        assert len(cache) == 0  # nothing half-written


class TestProgressMeter:
    """ETA must extrapolate from computed (non-cached) steps only, and
    the meter always terminates its line — even for an empty grid."""

    def _lines(self, stream):
        return stream.getvalue()

    def test_eta_ignores_cached_steps(self):
        import io

        from repro.runner import ProgressMeter

        meter = ProgressMeter(4, "t", io.StringIO())
        # A burst of instant cache hits must not fabricate an ETA.
        meter.step(cached=True)
        meter.step(cached=True)
        out = meter.stream.getvalue()
        assert "eta" not in out  # no computed step yet: no estimate
        meter.t0 -= 10.0  # pretend the first computed step took ~10s
        meter.step()
        eta_line = meter.stream.getvalue().split("\r")[-1]
        assert "eta" in eta_line
        # Per-step cost comes from the 1 computed step (~10s), not from
        # done=3 steps (~3.3s): the remaining step costs ~10s.
        eta = float(eta_line.split("eta ")[1].split("s")[0])
        assert eta > 5.0

    def test_empty_grid_writes_terminated_line(self):
        import io

        stream = io.StringIO()
        runner = SweepRunner(progress=True, stream=stream)
        assert runner.map(_square, []) == []
        out = stream.getvalue()
        assert out.endswith("\n")
        assert "0/0" in out

    def test_full_grid_still_terminates_line(self):
        import io

        stream = io.StringIO()
        SweepRunner(progress=True, stream=stream).map(_square, [{"x": 1}])
        assert stream.getvalue().endswith("\n")
