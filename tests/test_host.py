"""HostArray / HostGraph descriptors."""

import networkx as nx
import pytest

from repro.machine.host import HostArray, HostGraph, delays_from_positions
from repro.netsim.routing import DELAY_ATTR


class TestHostArray:
    def test_basic_stats(self):
        h = HostArray([1, 3, 8])
        assert h.n == 4
        assert h.d_ave == 4.0
        assert h.d_max == 8
        assert h.total_delay == 12

    def test_distance(self):
        h = HostArray([2, 5, 1])
        assert h.distance(0, 3) == 8
        assert h.distance(3, 1) == 6
        assert h.distance(2, 2) == 0

    def test_interval_delay(self):
        h = HostArray([2, 5, 1])
        assert h.interval_delay(1, 3) == 6

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            HostArray([1, 0])

    def test_uniform_constructor(self):
        h = HostArray.uniform(5, 7)
        assert h.n == 5
        assert h.link_delays == [7, 7, 7, 7]

    def test_single_processor(self):
        h = HostArray.uniform(1)
        assert h.n == 1
        assert h.d_ave == 1.0
        assert h.d_max == 1

    def test_default_bandwidth_is_log2(self):
        assert HostArray.uniform(64).default_bandwidth() == 6
        assert HostArray.uniform(65).default_bandwidth() == 7
        assert HostArray.uniform(2).default_bandwidth() == 1

    def test_fabric_inherits_delays(self):
        h = HostArray([4, 9])
        f = h.fabric(bandwidth=2)
        assert f.link_delays == [4, 9]
        assert f.bandwidth == 2

    def test_as_graph_round_trip(self):
        h = HostArray([3, 6])
        g = h.as_graph()
        assert g.number_of_nodes() == 3
        assert g[0][1][DELAY_ATTR] == 3
        assert g[1][2][DELAY_ATTR] == 6


class TestHostGraph:
    def make(self):
        g = nx.cycle_graph(6)
        nx.set_edge_attributes(g, 2, DELAY_ATTR)
        return HostGraph(g, "ring6")

    def test_stats(self):
        h = self.make()
        assert h.n == 6
        assert h.d_ave == 2.0
        assert h.d_max == 2
        assert h.max_degree == 2
        assert h.is_bounded_degree(2)

    def test_unbounded_degree_detected(self):
        g = nx.star_graph(7)
        nx.set_edge_attributes(g, 1, DELAY_ATTR)
        h = HostGraph(g, "star")
        assert h.max_degree == 7
        assert not h.is_bounded_degree(4)

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1, **{DELAY_ATTR: 1})
        g.add_node(2)
        with pytest.raises(ValueError):
            HostGraph(g)

    def test_rejects_missing_delay(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            HostGraph(g)


def test_delays_from_positions():
    d = delays_from_positions([0.0, 1.2, 1.3, 9.0])
    assert d == [1, 1, 8]
