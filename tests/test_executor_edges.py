"""Executor edge paths: dep_map validation, col_label, degenerate runs."""

import pytest

from repro.core.assignment import Assignment
from repro.core.executor import GreedyExecutor, run_assignment
from repro.machine.host import HostArray
from repro.machine.pebbles import initial_value
from repro.machine.programs import CounterProgram


def one_to_one(n):
    return Assignment([(i + 1, i + 1) for i in range(n)], n)


class TestDepMapValidation:
    def test_missing_column_rejected(self):
        host = HostArray.uniform(3)
        with pytest.raises(ValueError, match="missing column"):
            GreedyExecutor(
                host, one_to_one(3), CounterProgram(), 2, dep_map={1: (2, 3)}
            )

    def test_out_of_range_source_rejected(self):
        host = HostArray.uniform(3)
        dep_map = {1: (2, 3), 2: (1, 3), 3: (2, 4)}  # 4 is out of range
        with pytest.raises(ValueError, match="outside"):
            GreedyExecutor(host, one_to_one(3), CounterProgram(), 2, dep_map=dep_map)

    def test_valid_custom_dep_map_runs(self):
        # A 3-cycle of columns on a 3-processor host.
        host = HostArray.uniform(3, 2)
        dep_map = {1: (3, 2), 2: (1, 3), 3: (2, 1)}
        res = GreedyExecutor(
            host, one_to_one(3), CounterProgram(), 4, dep_map=dep_map
        ).run()
        assert res.stats.pebbles == 12


class TestColLabel:
    def test_labels_feed_program_identity(self):
        host = HostArray.uniform(2, 1)
        asg = one_to_one(2)
        prog = CounterProgram()
        # Swap labels: column 1 behaves as guest processor 2 and v.v.
        res = GreedyExecutor(
            host, asg, prog, 1, col_label=lambda c: 3 - c
        ).run()
        plain = GreedyExecutor(host, asg, prog, 1).run()
        # Row-0 initial values are swapped, so digests differ per slot.
        assert res.value_digests[(0, 1)] != plain.value_digests[(0, 1)]
        assert res.replicas[(0, 1)].column == 2

    def test_initial_values_follow_label(self):
        host = HostArray.uniform(2, 1)
        ex = GreedyExecutor(
            host, one_to_one(2), CounterProgram(), 0, col_label=lambda c: c + 10
        )
        assert ex.vals[0][1][0] == initial_value(11)


class TestDegenerate:
    def test_single_position_single_column(self):
        host = HostArray.uniform(1)
        res = run_assignment(host, Assignment([(1, 1)], 1), CounterProgram(), 5)
        assert res.stats.makespan == 5
        assert res.stats.messages == 0

    def test_guest_much_bigger_than_host(self):
        host = HostArray.uniform(2, 3)
        asg = Assignment([(1, 10), (9, 20)], 20)
        res = run_assignment(host, asg, CounterProgram(), 4)
        assert res.stats.pebbles == (10 + 12) * 4

    def test_all_columns_on_one_end(self):
        host = HostArray([5, 5, 5])
        asg = Assignment([(1, 6), None, None, None], 6)
        res = run_assignment(host, asg, CounterProgram(), 3)
        assert res.stats.messages == 0
        assert res.stats.makespan == 18

    def test_trace_and_multicast_compose(self):
        from repro.netsim.trace import Trace

        host = HostArray.uniform(5, 2)
        asg = Assignment([(1, 5), None, (6, 10), None, (6, 10)], 10)
        trace = Trace()
        res = GreedyExecutor(
            host, asg, CounterProgram(), 4, trace=trace, multicast=True
        ).run()
        assert len(trace.records) == res.stats.pebbles


class TestStatsAccounting:
    def test_redundant_counts_extra_copies_only(self):
        host = HostArray.uniform(3, 1)
        asg = Assignment([(1, 2), (2, 3), (3, 4)], 4)  # cols 2,3 doubled
        res = run_assignment(host, asg, CounterProgram(), 5)
        assert res.stats.pebbles == 6 * 5
        assert res.stats.redundant == 2 * 5

    def test_pebble_hops_at_least_messages(self):
        host = HostArray.uniform(4, 2)
        asg = Assignment([(1, 2), (2, 4), (4, 6), (6, 8)], 8)
        res = run_assignment(host, asg, CounterProgram(), 5)
        assert res.stats.pebble_hops >= res.stats.messages
