"""Mid-run detection and recovery: crashes, retries, epoch restarts.

The chaos-style contract these tests pin down: any fault schedule
either completes ``verified=True`` (possibly on a reduced surviving
guest) or raises :class:`SimulationDeadlock` — never silently-wrong
pebble values.
"""

import pytest

from repro.core.assignment import assign_databases
from repro.core.executor import GreedyExecutor, SimulationDeadlock
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.netsim.trace import Trace

HOST_N = 48
STEPS = 8


def _host():
    return HostArray.uniform(HOST_N)


def test_single_crash_recovers_with_smaller_guest():
    host = _host()
    clean = simulate_overlap(host, steps=STEPS, min_copies=2)
    plan = FaultPlan().crash(10, 5)
    res = simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    stats = res.exec_result.stats
    assert res.verified
    assert res.m_surviving < res.m
    assert stats.recoveries == 1
    assert stats.crashed_nodes == 1
    assert stats.columns_lost == res.m - res.m_surviving
    # The epoch restart costs real host time.
    assert stats.makespan > clean.exec_result.stats.makespan
    assert res.summary()["m_surviving"] == res.m_surviving


def test_scattered_quarter_kill_completes_verified():
    host = _host()
    plan = FaultPlan()
    scattered = [3, 11, 19, 27, 35, 43]  # 6/48 = 12.5%, well under 25%
    for i, pos in enumerate(scattered):
        plan.crash(pos, 4 + 3 * i)
    res = simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    assert res.verified
    assert res.m_surviving < res.m
    assert res.exec_result.stats.recoveries >= 1
    dead_held = [p for p in scattered if res.exec_result.assignment.ranges[p]]
    assert not dead_held  # crashed nodes hold nothing in the final epoch


def test_killing_all_replicas_of_interval_deadlocks_with_diagnostics():
    host = _host()
    base = simulate_overlap(host, steps=STEPS, min_copies=2)
    owners = base.assignment.owners()
    col = 5
    plan = FaultPlan()
    for pos in sorted(set(owners[col])):
        plan.crash(pos, 5)  # correlated: all replicas die at once
    with pytest.raises(SimulationDeadlock) as info:
        simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    exc = info.value
    assert "replica" in str(exc)
    assert exc.pending  # stuck pebbles attached
    assert exc.fault_log  # fault events seen so far attached
    assert any("crash" in line for line in exc.fault_log)


def test_crash_of_relay_only_node_needs_no_recovery():
    host = _host()
    # Position 5 is forced dead up front: it holds no databases and
    # only relays.  Its mid-run "crash" must not trigger an epoch
    # restart.
    plan = FaultPlan().crash(5, 6)
    res = simulate_overlap(
        host, steps=STEPS, min_copies=2, forced_dead={5}, faults=plan
    )
    stats = res.exec_result.stats
    assert res.verified
    assert stats.crashed_nodes == 1
    assert stats.recoveries == 0
    assert res.m_surviving == res.m


def test_permanent_partition_deadlocks_after_retry_budget():
    host = _host()
    plan = FaultPlan().link_down(HOST_N // 2, 3)  # permanent, mid-array
    with pytest.raises(SimulationDeadlock) as info:
        simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    msg = str(info.value)
    assert "stalled" in msg or "progress" in msg
    assert info.value.undelivered  # the starved streams are attached


def test_drops_and_jitter_are_absorbed_by_retries():
    host = _host()
    plan = (
        FaultPlan()
        .jitter(10, 2, 30, 5)
        .drop(30, 4)
        .drop(15, 6, direction=-1)
    )
    res = simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    stats = res.exec_result.stats
    assert res.verified
    assert stats.lost_messages >= 2  # both drops fired
    assert stats.retries >= 1  # and were re-requested
    assert stats.recoveries == 0  # no node died, no epoch restart


def test_transient_outage_recovers():
    host = _host()
    plan = FaultPlan().link_down(20, 4, duration=12)
    res = simulate_overlap(host, steps=STEPS, min_copies=2, faults=plan)
    assert res.verified
    assert res.exec_result.stats.lost_messages >= 1


def test_restart_penalty_is_charged():
    host = _host()
    plan = FaultPlan().crash(10, 5)
    cheap = simulate_overlap(
        host, steps=STEPS, min_copies=2, faults=plan,
        policy=RecoveryPolicy(restart_penalty=0),
    )
    costly = simulate_overlap(
        host, steps=STEPS, min_copies=2, faults=plan,
        policy=RecoveryPolicy(restart_penalty=500),
    )
    assert costly.verified and cheap.verified
    assert (
        costly.exec_result.stats.makespan
        >= cheap.exec_result.stats.makespan + 500
    )


def test_trace_marks_crash_and_recovery():
    host = _host()
    trace = Trace()
    killing = kill_and_label(host)
    assignment = assign_databases(killing, min_copies=2)
    GreedyExecutor(
        host, assignment, CounterProgram(), STEPS,
        faults=FaultPlan().crash(10, 5), trace=trace,
    ).run()
    kinds = {kind for _t, kind, _d in trace.fault_marks}
    assert "crash" in kinds and "recovery" in kinds
    assert trace.summary()["fault_kinds"]["crash"] == 1


def test_executor_default_reassign_used_without_overlap_frontend():
    host = _host()
    killing = kill_and_label(host)
    assignment = assign_databases(killing, min_copies=2)
    res = GreedyExecutor(
        host, assignment, CounterProgram(), STEPS,
        faults=FaultPlan().crash(10, 5),
    ).run()
    assert res.assignment.m < assignment.m
    assert res.stats.recoveries == 1


def test_faults_reject_dep_map_guests():
    from repro.core.ring import ring_dep_map

    host = HostArray.uniform(8)
    from repro.core.baselines import spread_assignment

    dep_map, _ = ring_dep_map(8)
    with pytest.raises(ValueError, match="dep_map"):
        GreedyExecutor(
            host, spread_assignment(8, 8), CounterProgram(), 4,
            dep_map=dep_map, faults=FaultPlan().crash(1, 2),
        )


def test_overlap_result_summary_plain_when_no_faults():
    host = _host()
    res = simulate_overlap(host, steps=STEPS)
    assert "m_surviving" not in res.summary()
    assert res.m_surviving == res.m


def test_chaos_property_verified_or_deadlock():
    """Any random fault schedule completes verified or deadlocks —
    never returns silently-wrong values (Hypothesis-style loop)."""
    host = HostArray.uniform(32)
    completed = deadlocked = 0
    for seed in range(12):
        plan = FaultPlan.random(
            host.n,
            seed=seed,
            horizon=60,
            node_crash_rate=0.15,
            link_outage_rate=0.1,
            jitter_rate=0.2,
            drop_rate=0.2,
            mean_outage=8,
        )
        try:
            res = simulate_overlap(
                host, steps=6, min_copies=2, faults=plan, verify=True
            )
            assert res.verified
            completed += 1
        except SimulationDeadlock:
            deadlocked += 1
    assert completed + deadlocked == 12
    assert completed >= 1  # the sweep isn't vacuous


def test_simulation_deadlock_carries_diagnostics():
    exc = SimulationDeadlock(
        "boom",
        pending=[(0, 1, 0), (1, 2, 3)],
        undelivered=[(2, 5, 1)],
        fault_log=["t=4 crash node 2"],
    )
    msg = str(exc)
    assert "boom" in msg
    assert "2 stuck replicas" in msg
    assert "1 stalled streams" in msg
    assert "fault events" in msg
    assert exc.pending == [(0, 1, 0), (1, 2, 3)]
    assert exc.undelivered == [(2, 5, 1)]
    assert exc.fault_log == ["t=4 crash node 2"]
    bare = SimulationDeadlock("quiet")
    assert str(bare) == "quiet"
    assert bare.pending == [] and bare.fault_log == []
