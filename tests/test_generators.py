"""Host topology generators, including the adversarial constructions."""

import math

import networkx as nx
import pytest

from repro.netsim.routing import DELAY_ATTR
from repro.topology.generators import (
    clique_chain_host,
    h1_host,
    h2_host,
    hypercube_host,
    mesh_host,
    now_cluster_host,
    random_regular_host,
    ring_host,
    tree_host,
)


def test_ring_host():
    h = ring_host(8, [2] * 8)
    assert h.n == 8
    assert h.d_ave == 2.0
    assert h.max_degree == 2


def test_mesh_host():
    h = mesh_host(3, 4, [1] * 17)
    assert h.n == 12
    assert h.max_degree <= 4


def test_tree_host():
    h = tree_host(3, [1] * 14, branching=2)
    assert h.n == 15
    assert h.max_degree <= 3


def test_hypercube_host():
    h = hypercube_host(4, [1] * 32)
    assert h.n == 16
    assert h.max_degree == 4


def test_butterfly_structure():
    from repro.topology.generators import butterfly_host

    k = 3
    h = butterfly_host(k, [1] * (2 * k * 2**k))
    assert h.n == (k + 1) * 2**k
    assert h.max_degree <= 4
    assert nx.is_connected(h.graph)


def test_butterfly_validates():
    from repro.topology.generators import butterfly_host

    with pytest.raises(ValueError):
        butterfly_host(0, [])


def test_random_regular_connected_and_regular():
    h = random_regular_host(30, 3, [1] * 45, seed=1)
    assert h.n == 30
    degrees = {deg for _, deg in h.graph.degree}
    assert degrees == {3}


def test_delay_vector_length_checked():
    with pytest.raises(ValueError):
        ring_host(5, [1, 1])


class TestNowCluster:
    def test_structure(self):
        h = now_cluster_host(4, 5, intra_delay=1, inter_delay=50)
        assert h.n == 20
        delays = [d for _, _, d in h.graph.edges(data=DELAY_ATTR)]
        assert set(delays) == {1, 50}
        assert h.d_max == 50

    def test_bounded_degree(self):
        h = now_cluster_host(4, 6)
        assert h.is_bounded_degree(4)


class TestCliqueChain:
    def test_section4_parameters(self):
        # sqrt(n) cliques of sqrt(n) nodes, inter delay n.
        h = clique_chain_host(4, 4)
        assert h.n == 16
        assert h.d_max == 16
        # d_ave < 4 as the paper claims.
        assert h.d_ave < 4

    def test_unbounded_degree(self):
        h = clique_chain_host(3, 5)
        assert h.max_degree >= 4  # clique of 5 => degree >= 4

    def test_connected(self):
        h = clique_chain_host(5, 3)
        assert nx.is_connected(h.graph)


class TestH1:
    def test_delay_pattern(self):
        h = h1_host(64)
        r = 8
        assert h.n == 64
        for j, d in enumerate(h.link_delays, start=1):
            assert d == (r if j % r == 0 else 1)

    def test_constant_average_but_large_max(self):
        h = h1_host(400)
        assert h.d_ave < 2
        assert h.d_max == 20

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            h1_host(3)


class TestH2:
    def test_census_matches_closed_forms(self):
        h2 = h2_host(256)
        k, d = h2.level, h2.d
        delays = h2.array.link_delays
        assert sum(1 for x in delays if x == d) == 2**k
        unit = sum(1 for x in delays if x == 1)
        expected = k * 2**k * d / h2.log_n
        assert 0.5 * expected <= unit <= 2.5 * expected

    def test_constant_average_delay(self):
        for n in (64, 256, 1024):
            h2 = h2_host(n)
            assert h2.array.d_ave < 8

    def test_segments_cover_only_unit_links(self):
        h2 = h2_host(256)
        for seg in h2.segments:
            for pos in range(seg.start, seg.end):
                # links inside a segment are unit links
                assert h2.array.link_delays[pos] == 1

    def test_segment_of_lookup(self):
        h2 = h2_host(256)
        seg = h2.segments[0]
        assert h2.segment_of(seg.start) is seg
        assert h2.segment_of(seg.end) is seg
        # position 0 is a level-0 box endpoint, in no segment
        assert h2.segment_of(0) is None

    def test_segment_sizes_follow_levels(self):
        h2 = h2_host(1024)
        for seg in h2.segments:
            expected = max(1, math.ceil(2**seg.level * h2.d / h2.log_n))
            assert seg.size == expected

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            h2_host(8)
