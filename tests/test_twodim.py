"""Section 5: the 2-D array simulation (Theorems 7-8)."""

import math

import pytest

from repro.core.twodim import (
    simulate_2d_on_uniform_array,
    theorem8_slowdown_estimate,
    twodim_slowdown_estimate,
)
from repro.machine.guest2d import Dataflow2DProgram


class TestCase1:
    """One column per processor (g = 1, the d_ave < n0 case)."""

    def test_verified(self):
        res = simulate_2d_on_uniform_array(8, 8, 3, steps=4)
        assert res.verified
        assert res.g == 1

    def test_slowdown_near_m_plus_d(self):
        m, d = 10, 4
        res = simulate_2d_on_uniform_array(m, m, d, steps=4)
        est = twodim_slowdown_estimate(m, m, d)
        assert est == m + d
        assert res.slowdown <= 3 * est

    def test_no_redundant_work_when_g1(self):
        m = 6
        res = simulate_2d_on_uniform_array(m, m, 2, steps=3)
        # With tau = 1 the shrinking region is exactly the own block.
        assert res.pebbles == m * m * res.steps


class TestCase2:
    """Column blocks (g > 1, the d_ave >= n0 case)."""

    def test_verified(self):
        res = simulate_2d_on_uniform_array(12, 4, 9, steps=6)
        assert res.verified
        assert res.g == 3

    def test_redundant_recomputation_counted(self):
        m = 12
        res = simulate_2d_on_uniform_array(m, 3, 5, steps=4)
        assert res.pebbles > m * m * res.steps
        # Paper's factor: at most ~3x redundancy.
        assert res.pebbles <= 3.2 * m * m * res.steps

    def test_partial_last_batch(self):
        res = simulate_2d_on_uniform_array(8, 2, 3, steps=5)  # tau=4, 5 steps
        assert res.verified

    def test_exchange_volume_positive(self):
        res = simulate_2d_on_uniform_array(8, 2, 3, steps=8)
        assert res.exchanged_cells > 0

    def test_dataflow_program(self):
        res = simulate_2d_on_uniform_array(
            6, 2, 4, steps=6, program=Dataflow2DProgram()
        )
        assert res.verified


class TestEstimates:
    def test_estimate_cases(self):
        assert twodim_slowdown_estimate(10, 10, 7) == 17
        est = twodim_slowdown_estimate(12, 4, 8)
        assert est == pytest.approx(3 * 12 * 3 + 8 / 3)

    def test_theorem8_shape(self):
        # For fixed m, growing d_ave raises only the second term.
        a = theorem8_slowdown_estimate(32, 1024, 4)
        b = theorem8_slowdown_estimate(32, 1024, 64)
        assert b > a
        assert b / a < 3  # sqrt(N) term dominates at small d

    def test_slowdown_grows_with_m_over_n0(self):
        s1 = simulate_2d_on_uniform_array(8, 8, 2, steps=2).slowdown
        s2 = simulate_2d_on_uniform_array(8, 2, 2, steps=4).slowdown
        assert s2 > s1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_2d_on_uniform_array(0, 2, 2)
