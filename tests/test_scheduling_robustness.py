"""Correctness must be independent of scheduling order.

Any work-conserving greedy order simulates the guest exactly (the
database forces per-column order; everything else is free).  These
tests sweep tie-breaking seeds and check bit-exact verification every
time, plus bounded makespan spread — giving confidence that the
measured slowdowns are properties of the *assignment*, not of one
lucky schedule.
"""

import pytest

from repro.core.assignment import Assignment
from repro.core.executor import GreedyExecutor
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram


def overlapped_setup():
    host = HostArray([3, 1, 7, 2])  # 5 positions
    asg = Assignment([(1, 4), (3, 7), (6, 10), (9, 13), (12, 15)], 15)
    return host, asg


@pytest.mark.parametrize("seed", [None, 0, 1, 2, 3, 4])
def test_every_tiebreak_order_verifies(seed):
    host, asg = overlapped_setup()
    prog = CounterProgram()
    res = GreedyExecutor(host, asg, prog, 8, tie_seed=seed).run()
    ref = GuestArray(15, prog).run_reference(8)
    verify_execution(res, ref, prog)


def test_makespan_spread_is_bounded():
    host, asg = overlapped_setup()
    prog = CounterProgram()
    spans = [
        GreedyExecutor(host, asg, prog, 8, tie_seed=s).run().stats.makespan
        for s in range(8)
    ]
    assert max(spans) <= 1.5 * min(spans)


def test_same_seed_reproduces():
    host, asg = overlapped_setup()
    prog = CounterProgram()
    a = GreedyExecutor(host, asg, prog, 8, tie_seed=7).run()
    b = GreedyExecutor(host, asg, prog, 8, tie_seed=7).run()
    assert a.stats.makespan == b.stats.makespan
    assert a.value_digests == b.value_digests


def test_jitter_can_change_the_timeline():
    # With overlapping replicas there is real scheduling freedom: some
    # seed should differ from the natural order's makespan or message
    # pattern (not required for any particular seed, so scan a few).
    host, asg = overlapped_setup()
    prog = CounterProgram()
    base = GreedyExecutor(host, asg, prog, 8).run()
    diffs = []
    for s in range(8):
        r = GreedyExecutor(host, asg, prog, 8, tie_seed=s).run()
        diffs.append(
            r.stats.makespan != base.stats.makespan
            or r.stats.pebble_hops != base.stats.pebble_hops
        )
    assert any(diffs)
