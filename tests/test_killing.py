"""Killing and labelling: Lemmas 1-4 as executable invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.killing import (
    OverlapParams,
    kill_and_label,
    lemma1_bound,
    lemma2_bound,
    lemma4_checks,
)
from repro.machine.host import HostArray
from repro.topology.delays import bimodal_delays, pareto_delays


def host_from_seed(n, seed, style="bimodal"):
    rng = np.random.default_rng(seed)
    if style == "bimodal":
        return HostArray(bimodal_delays(n - 1, rng, near=1, far=n, p_far=0.03))
    return HostArray(pareto_delays(n - 1, rng, alpha=1.1, cap=n * 4))


class TestParams:
    def test_paper_formulas(self):
        host = HostArray.uniform(256, 4)
        p = OverlapParams.for_host(host, c=4.0)
        assert p.lg == 8.0
        assert p.D(0) == 256 * 4 * 4 * 8
        assert p.D(3) == (256 / 8) * 4 * 4 * 8
        assert p.m(0) == 256 / (4 * 8)
        # m_k halves per level
        assert p.m(1) == pytest.approx(p.m(0) / 2)

    def test_k_max_has_unit_box(self):
        host = HostArray.uniform(1024, 2)
        p = OverlapParams.for_host(host)
        assert p.m_int(p.k_max) == 1
        assert p.m(p.k_max) >= 1
        assert p.m(p.k_max + 1) < 2

    def test_c_must_exceed_two(self):
        with pytest.raises(ValueError):
            OverlapParams.for_host(HostArray.uniform(8), c=2.0)


class TestKilling:
    def test_uniform_host_nothing_killed(self):
        # On a uniform host no interval exceeds its killing delay.
        host = HostArray.uniform(128, 3)
        res = kill_and_label(host)
        assert res.n_live == 128
        assert res.killed_fraction() == 0.0

    def test_lemma1_stage1_kill_bound(self):
        for seed in range(5):
            host = host_from_seed(128, seed, "pareto")
            res = kill_and_label(host)
            killed, bound = lemma1_bound(res)
            assert killed <= bound + 1e-9

    def test_lemma2_root_label_bound(self):
        for seed in range(5):
            host = host_from_seed(128, seed)
            res = kill_and_label(host)
            label, bound = lemma2_bound(res)
            assert label >= bound - 1e-6

    def test_lemma4_stage3_labels(self):
        for seed in range(5):
            host = host_from_seed(256, seed)
            res = kill_and_label(host)
            checks = lemma4_checks(res)
            assert checks, "tree should have remaining nodes"
            lg = res.params.lg
            for depth, label, threshold in checks:
                if depth < lg:  # the lemma's range k < log n
                    assert label >= threshold - 1e-6
            # Root specifically:
            assert res.root_label >= (1 - 2 / res.params.c) * host.n - 1e-6

    def test_stage3_labels_at_least_stage2(self):
        host = host_from_seed(128, 3)
        res = kill_and_label(host)
        for node in res.tree.all_nodes():
            if not node.removed and node.label2 is not None:
                assert node.label3 >= node.label2 - 1e-9

    def test_total_killed_fraction_bounded(self):
        # Lemmas 1+2 jointly: at most ~2n/c killed.
        for seed in range(5):
            host = host_from_seed(256, seed, "pareto")
            res = kill_and_label(host, c=4.0)
            assert res.killed_fraction() <= 2 / 4.0 + 0.05

    def test_extreme_delay_kills_neighbourhood(self):
        # One gigantic link: stage 1 kills the small intervals spanning it.
        delays = [1] * 127
        delays[60] = 10**7
        host = HostArray(delays)
        res = kill_and_label(host)
        assert res.n_live < 128
        assert res.killed_stage1
        # Live processors still form a usable majority.
        assert res.n_live >= 64

    def test_live_positions_sorted_and_consistent(self):
        host = host_from_seed(64, 9, "pareto")
        res = kill_and_label(host)
        pos = res.live_positions()
        assert pos == sorted(pos)
        assert len(pos) == res.n_live

    @given(st.integers(min_value=16, max_value=200), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_killing_invariants_random_hosts(self, n, seed):
        host = host_from_seed(max(16, n), seed, "pareto")
        res = kill_and_label(host)
        # Removed nodes have no live leaves; remaining have >= 1.
        for node in res.tree.all_nodes():
            live_in = any(res.live[p] for p in range(node.lo, node.hi + 1))
            assert live_in == (not node.removed)
        # Lemma 3 property 2: remaining internal nodes keep >= 1 child.
        for node in res.tree.all_nodes():
            if not node.removed and not node.is_leaf:
                assert node.live_children()
