"""ASCII plotting utilities."""

import pytest

from repro.analysis.asciiplot import ascii_bars, ascii_plot


def test_plot_renders_all_series():
    out = ascii_plot(
        [1, 10, 100],
        {"a": [1, 10, 100], "b": [2, 2, 2]},
        width=30,
        height=8,
    )
    assert "o = a" in out
    assert "x = b" in out
    assert out.count("\n") >= 8


def test_plot_power_law_is_diagonal():
    xs = [1, 10, 100, 1000]
    out = ascii_plot(xs, {"y": [2 * x for x in xs]}, width=20, height=10)
    rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line and "o" in line]
    # Output rows go top (high y) to bottom (low y): for an increasing
    # power law the x position decreases down the page.
    cols = [row.index("o") for row in rows]
    assert cols == sorted(cols, reverse=True)


def test_plot_validations():
    assert ascii_plot([], {}) == "(nothing to plot)"
    with pytest.raises(ValueError):
        ascii_plot([1, 2], {"a": [1]})
    with pytest.raises(ValueError):
        ascii_plot([0, 1], {"a": [1, 2]})  # log axis, zero x


def test_plot_linear_axes():
    out = ascii_plot([0, 1, 2], {"a": [0, 1, 2]}, logx=False, logy=False)
    assert "o" in out


def test_plot_title():
    out = ascii_plot([1, 2], {"a": [1, 2]}, title="MY TITLE")
    assert out.splitlines()[0] == "MY TITLE"


def test_bars():
    out = ascii_bars(["one", "two"], [1, 4], width=8, unit="x")
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") > lines[0].count("#")
    assert "4x" in lines[1]


def test_bars_validations():
    assert ascii_bars([], []) == "(nothing to plot)"
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1, 2])
