"""IntervalTree structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import IntervalTree


def test_root_and_leaves():
    t = IntervalTree(8)
    assert t.root.lo == 0 and t.root.hi == 7
    leaves = t.leaves()
    assert [leaf.lo for leaf in leaves] == list(range(8))
    assert all(leaf.is_leaf for leaf in leaves)


def test_depth_structure_power_of_two():
    t = IntervalTree(16)
    assert t.height == 4
    for k in range(5):
        nodes = t.nodes_at_depth(k)
        assert len(nodes) == 2**k
        assert all(n.size == 16 // 2**k for n in nodes)


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=50)
def test_invariants_arbitrary_sizes(n):
    t = IntervalTree(n)
    # Every internal node's children partition it.
    for node in t.all_nodes():
        if node.children:
            left, right = node.children
            assert left.lo == node.lo
            assert right.hi == node.hi
            assert left.hi + 1 == right.lo
            assert left.parent is node and right.parent is node
    # Sibling sizes within 1 of each other.
    for node in t.all_nodes():
        if node.children:
            l, r = node.children
            assert abs(l.size - r.size) <= 1
    # Leaves cover all positions exactly once.
    assert [leaf.lo for leaf in t.leaves()] == list(range(n))


def test_leaf_at_descends_correctly():
    t = IntervalTree(13)
    for pos in range(13):
        leaf = t.leaf_at(pos)
        assert leaf.lo == leaf.hi == pos
    with pytest.raises(IndexError):
        t.leaf_at(13)


def test_path_to_root():
    t = IntervalTree(8)
    path = t.path_to_root(5)
    assert path[0].is_leaf and path[0].lo == 5
    assert path[-1] is t.root
    depths = [n.depth for n in path]
    assert depths == sorted(depths, reverse=True)
    for node in path:
        assert node.lo <= 5 <= node.hi


def test_nodes_at_depth_beyond_height_empty():
    t = IntervalTree(4)
    assert t.nodes_at_depth(10) == []


def test_invalid_size():
    with pytest.raises(ValueError):
        IntervalTree(0)
