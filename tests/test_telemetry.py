"""Telemetry layer: metrics timelines, spans, Chrome export, profiling.

The contract under test is threefold:

* **reconciliation** — a :class:`MetricsTimeline` fed by either
  executor sums exactly to the run's :class:`SimStats` (checked over
  e1/e3/r1-shaped configs, fault-free and faulty);
* **non-perturbation** — attaching telemetry never changes a run's
  results (stats, digests) for either engine, and the dense and greedy
  tiers produce *identical* timelines on fault-free runs;
* **export** — the Chrome ``trace_event`` JSON is valid, timestamp-
  monotone, and its counter tracks sum back to the SimStats aggregates.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan
from repro.runner import SweepRunner
from repro.telemetry import (
    MetricsTimeline,
    SpanLog,
    SweepProfile,
    chrome_events,
    format_profile,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.topology.delays import scale_to_average, uniform_delays

# ---------------------------------------------------------------------------
# helpers


def _random_host(n: int, d_ave: float, seed: int = 0) -> HostArray:
    """e1-style host: random link delays scaled to a target average."""
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_ave))


def _uniform_host(n: int, d: int) -> HostArray:
    """e3-style host: every link has delay exactly d."""
    return HostArray([d] * (n - 1))


def _fault_plan(n: int) -> FaultPlan:
    """r1-style random plan known to exercise crashes, drops, retries
    and mid-run recoveries within a short run."""
    return FaultPlan.random(
        n, seed=0, horizon=90, node_crash_rate=0.05, drop_rate=0.05
    )


def _run(host, steps, block=2, engine="greedy", faults=None, telemetry=None):
    return simulate_overlap(
        host,
        steps=steps,
        block=block,
        engine=engine,
        faults=faults,
        min_copies=2 if faults is not None else None,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# MetricsTimeline unit behaviour


class TestTimelineUnit:
    def test_pebble_and_redundant_counting(self):
        tl = MetricsTimeline()
        tl.pebble(1, 0, 0, 0)
        tl.pebble(1, 1, 0, 1)
        tl.pebble(3, 2, 0, 0)  # recomputation of (0, 0)
        assert tl.series("pebbles") == [0, 2, 0, 1]
        assert tl.series("redundant") == [0, 0, 0, 1]
        assert tl.positions == {0, 1, 2}

    def test_in_flight_tracks_injections_minus_arrivals(self):
        tl = MetricsTimeline()
        tl.send(1, 4)  # occupies steps 1..3 (arrives at 4)
        tl.send(2, 4)
        assert tl.series("in_flight") == [0, 1, 2, 2, 0]

    def test_stalled_counts_idle_known_positions(self):
        tl = MetricsTimeline()
        tl.pebble(1, 0, 0, 0)
        tl.pebble(1, 1, 1, 0)
        tl.pebble(3, 0, 0, 1)
        # t=1: both busy; t=2: both idle; t=3: one of two busy.
        assert tl.series("stalled") == [0, 0, 2, 1]

    def test_unknown_series_rejected(self):
        tl = MetricsTimeline()
        with pytest.raises(KeyError):
            tl.series("nope")
        with pytest.raises(KeyError):
            tl.series("meta")  # attribute exists but is not a series

    def test_reconcile_raises_with_counter_name(self):
        from repro.netsim.stats import SimStats

        tl = MetricsTimeline()
        tl.pebble(1, 0, 0, 0)
        with pytest.raises(ValueError, match="pebbles"):
            tl.reconcile(SimStats(pebbles=2))

    def test_empty_timeline_renders(self):
        tl = MetricsTimeline()
        assert tl.ascii_timeline() == "(empty timeline)"
        assert tl.horizon == 0
        assert tl.summary()["mean_utilization"] == 0.0

    def test_as_dict_is_json_ready(self):
        tl = MetricsTimeline()
        tl.pebble(1, 0, 0, 0)
        tl.fault(2, "crash", "node 0")
        tl.spans.begin("epoch", 0, track="epochs")
        tl.spans.end(3)
        json.dumps(tl.as_dict())  # must not raise


# ---------------------------------------------------------------------------
# spans


class TestSpans:
    def test_begin_end_nesting(self):
        log = SpanLog()
        log.begin("outer", 0)
        log.begin("inner", 1)
        assert log.end(2).name == "inner"
        assert log.end(5).name == "outer"
        assert [s.duration for s in log] == [5, 1]

    def test_end_clamps_to_start(self):
        # An epoch span opened at the end of a restart window can be
        # closed by a *second* crash processed at an earlier timestamp;
        # it must report zero duration, never negative.
        log = SpanLog()
        log.begin("epoch", 64)
        span = log.end(6)
        assert span.end == span.start == 64
        assert span.duration == 0

    def test_close_all_and_named(self):
        log = SpanLog()
        log.begin("a", 0)
        log.begin("b", 1)
        log.close_all(9)
        assert all(s.end == 9 for s in log)
        assert len(log.named("a")) == 1

    def test_end_without_open_span_rejected(self):
        with pytest.raises(ValueError):
            SpanLog().end(1)

    def test_context_manager_uses_clock(self):
        ticks = iter(range(10))
        log = SpanLog(clock=lambda: next(ticks))
        with log.span("chunk", worker=3):
            pass
        (span,) = log.spans
        assert (span.start, span.end) == (0, 1)
        assert span.args == {"worker": 3}


# ---------------------------------------------------------------------------
# executor integration: reconciliation


class TestReconciliation:
    @pytest.mark.parametrize("engine", ["greedy", "dense"])
    def test_e1_shape_random_delays(self, engine):
        tl = MetricsTimeline()
        res = _run(_random_host(48, 4.0), steps=12, engine=engine, telemetry=tl)
        totals = tl.reconcile(res.exec_result.stats)
        assert totals["pebbles"] > 0 and totals["hops"] > 0
        assert tl.meta["engine"] == engine

    @pytest.mark.parametrize("engine", ["greedy", "dense"])
    def test_e3_shape_uniform_delays(self, engine):
        tl = MetricsTimeline()
        res = _run(_uniform_host(40, 4), steps=10, block=4, engine=engine, telemetry=tl)
        tl.reconcile(res.exec_result.stats)

    def test_r1_shape_faulty_run(self):
        host = _random_host(64, 3.0, seed=1)
        tl = MetricsTimeline()
        res = _run(host, steps=16, engine="greedy", faults=_fault_plan(64), telemetry=tl)
        stats = res.exec_result.stats
        # The plan must actually bite for this test to mean anything.
        assert stats.recoveries > 0
        assert stats.lost_messages > 0
        totals = tl.reconcile(stats)
        assert totals["lost"] == stats.lost_messages
        assert any(k == "recovery" for _t, k, _d in tl.faults)
        # Epoch spans: one per epoch plus one recovery span per restart.
        assert len(tl.spans.named("epoch")) == stats.recoveries + 1
        assert len(tl.spans.named("recovery")) == stats.recoveries

    def test_auto_engine_routes_telemetry(self):
        tl = MetricsTimeline()
        res = _run(_random_host(32, 3.0), steps=8, engine="auto", telemetry=tl)
        assert res.engine == "dense"  # telemetry must not force a fallback
        assert res.telemetry is tl
        tl.reconcile(res.exec_result.stats)


# ---------------------------------------------------------------------------
# executor integration: non-perturbation and tier identity


class TestNonPerturbation:
    @pytest.mark.parametrize("engine", ["greedy", "dense"])
    def test_results_bit_identical_with_and_without_telemetry(self, engine):
        host = _random_host(48, 4.0, seed=2)
        plain = _run(host, steps=12, engine=engine)
        timed = _run(host, steps=12, engine=engine, telemetry=MetricsTimeline())
        assert plain.exec_result.stats.as_dict() == timed.exec_result.stats.as_dict()
        assert plain.exec_result.value_digests == timed.exec_result.value_digests

    def test_faulty_results_identical_with_and_without_telemetry(self):
        host = _random_host(64, 3.0, seed=1)
        plain = _run(host, steps=16, faults=_fault_plan(64))
        timed = _run(
            host, steps=16, faults=_fault_plan(64), telemetry=MetricsTimeline()
        )
        assert plain.exec_result.stats.as_dict() == timed.exec_result.stats.as_dict()
        assert plain.exec_result.value_digests == timed.exec_result.value_digests

    def test_dense_and_greedy_timelines_identical(self):
        # Stronger than both reconciling to the same stats: the per-step
        # series themselves must match, including injection slots.
        host = _random_host(48, 4.0, seed=3)
        tl_g, tl_d = MetricsTimeline(), MetricsTimeline()
        _run(host, steps=12, engine="greedy", telemetry=tl_g)
        _run(host, steps=12, engine="dense", telemetry=tl_d)
        assert tl_g.totals() == tl_d.totals()
        for name in ("pebbles", "redundant", "messages", "hops",
                     "deliveries", "in_flight", "stalled"):
            assert tl_g.series(name) == tl_d.series(name), name
        assert tl_g.positions == tl_d.positions


# ---------------------------------------------------------------------------
# Chrome trace export


class TestChromeExport:
    def _timeline_and_trace(self):
        from repro.core.assignment import assign_databases
        from repro.core.executor import GreedyExecutor
        from repro.core.killing import kill_and_label
        from repro.machine.programs import get_program
        from repro.netsim.trace import Trace

        host = _random_host(32, 3.0, seed=4)
        killing = kill_and_label(host)
        assignment = assign_databases(killing, block=2)
        trace, tl = Trace(), MetricsTimeline()
        result = GreedyExecutor(
            host,
            assignment,
            get_program("counter"),
            steps=8,
            trace=trace,
            telemetry=tl,
        ).run()
        return tl, trace, result

    def test_document_round_trips_as_json(self, tmp_path):
        tl, trace, _res = self._timeline_and_trace()
        path = tmp_path / "run.json"
        doc = write_chrome_trace(path, timeline=tl, trace=trace, label="test")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]

    def test_timestamps_monotone_after_metadata(self):
        tl, trace, _res = self._timeline_and_trace()
        events = chrome_events(timeline=tl, trace=trace)
        body = [e for e in events if e["ph"] != "M"]
        assert body, "export produced no body events"
        assert all(
            a["ts"] <= b["ts"] for a, b in zip(body, body[1:])
        ), "body timestamps must be non-decreasing"
        # Metadata first, and every event shape Perfetto requires.
        assert events[0]["ph"] == "M"
        for e in events:
            assert {"ph", "name", "pid", "tid", "ts"} <= set(e)

    def test_counters_sum_to_stats(self):
        tl, trace, res = self._timeline_and_trace()
        events = chrome_events(timeline=tl, trace=trace)
        stats = res.stats

        def counter_sum(track, key):
            return sum(
                e["args"].get(key, 0)
                for e in events
                if e["ph"] == "C" and e["name"] == track
            )

        assert counter_sum("computation", "pebbles") == stats.pebbles
        assert counter_sum("computation", "redundant") == stats.redundant
        assert counter_sum("message flow", "messages") == stats.messages
        assert counter_sum("message flow", "lost") == stats.lost_messages
        # One "X" pebble event per pebble computed.
        pebble_events = [e for e in events if e.get("cat") == "pebble"]
        assert len(pebble_events) == stats.pebbles

    def test_span_and_fault_events_exported(self):
        host = _random_host(64, 3.0, seed=1)
        tl = MetricsTimeline()
        _run(host, steps=16, faults=_fault_plan(64), telemetry=tl)
        events = chrome_events(timeline=tl)
        spans = [e for e in events if e.get("cat") == "span"]
        faults = [e for e in events if e.get("cat") == "fault"]
        assert spans and faults
        assert all(e["dur"] >= 0 for e in spans)
        assert {e["name"] for e in spans} >= {"epoch", "recovery"}

    def test_trace_to_chrome_events_delegates(self):
        _tl, trace, res = self._timeline_and_trace()
        events = trace.to_chrome_events(label="t")
        assert sum(1 for e in events if e["ph"] == "X") == res.stats.pebbles

    def test_timeline_only_document(self):
        tl = MetricsTimeline()
        tl.pebble(1, 0, 0, 0)
        doc = to_chrome_trace(timeline=tl)
        assert any(e["ph"] == "C" for e in doc["traceEvents"])


# ---------------------------------------------------------------------------
# sweep profiling


def _square(cfg: dict) -> dict:
    """Module-level so pool workers can import it by name."""
    return {"value": cfg["x"] * cfg["x"]}


class TestSweepProfiling:
    def test_profile_off_by_default(self):
        assert SweepRunner().profile is None

    def test_inline_profile_records_compute_and_maps(self):
        runner = SweepRunner(profile=True)
        out = runner.map(_square, [{"x": x} for x in range(4)])
        assert [r["value"] for r in out] == [0, 1, 4, 9]
        prof = runner.profile
        assert len(prof.maps) == 1
        assert prof.maps[0]["configs"] == 4
        assert prof.compute_s > 0
        assert prof.chunks == []  # inline path: no worker chunks

    def test_parallel_profile_attributes_chunks_to_pids(self):
        runner = SweepRunner(workers=2, profile=True)
        out = runner.map(_square, [{"x": x} for x in range(8)])
        assert [r["value"] for r in out] == [x * x for x in range(8)]
        prof = runner.profile
        assert prof.chunks
        assert sum(c["configs"] for c in prof.chunks) == 8
        per = prof.per_worker()
        assert 1 <= len(per) <= 2
        assert all(agg["wall_s"] >= 0 for agg in per.values())

    def test_cache_hits_recorded(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path, profile=True)
        configs = [{"x": x} for x in range(3)]
        runner.map(_square, configs)
        runner.map(_square, configs)
        assert runner.profile.cache_hits == 3
        assert runner.profile.cache_misses == 3

    def test_results_identical_with_and_without_profile(self, tmp_path):
        configs = [{"x": x} for x in range(5)]
        plain = SweepRunner(workers=2).map(_square, configs)
        profiled = SweepRunner(workers=2, profile=True).map(_square, configs)
        assert json.dumps(plain) == json.dumps(profiled)

    def test_as_dict_round_trips_as_json(self):
        runner = SweepRunner(profile=True)
        runner.map(_square, [{"x": 1}])
        d = runner.profile.as_dict()
        assert json.loads(json.dumps(d)) == d

    def test_format_profile_accepts_both_forms(self):
        prof = SweepProfile()
        prof.record_map(4, 0.5, workers=2, chunk_size=2, pool_reused=True)
        prof.record_chunk(111, 2, 0.2)
        prof.record_chunk(222, 2, 0.25)
        prof.record_cache(3, 1, 0.001)
        for form in (prof, prof.as_dict()):
            text = format_profile(form)
            assert "sweep profile: 1 sweep(s), 4 config(s)" in text
            assert "cache: 3 hit / 1 recompute" in text
            assert "pid 111" in text and "pid 222" in text

    def test_run_experiment_attaches_profile_dict(self, tmp_path):
        from repro.experiments import run_experiment

        res = run_experiment("e3", quick=True, cache_dir=tmp_path, profile=True)
        assert isinstance(res.profile, dict)
        assert res.profile["maps"]
        assert res.profile["cache"]["misses"] > 0
        # And off by default:
        res2 = run_experiment("e3", quick=True, cache_dir=tmp_path)
        assert res2.profile is None
        assert res.rows == res2.rows
