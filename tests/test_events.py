"""EventQueue and Clock semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.events import Clock, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(5, "a")
    q.push(1, "b")
    q.push(3, "c")
    assert [q.pop().kind for _ in range(3)] == ["b", "c", "a"]


def test_fifo_among_simultaneous_events():
    q = EventQueue()
    for i in range(10):
        q.push(7, i)
    assert [q.pop().kind for _ in range(10)] == list(range(10))


def test_peek_time_and_len():
    q = EventQueue()
    assert q.peek_time() is None
    assert not q
    q.push(4, "x")
    assert q.peek_time() == 4
    assert len(q) == 1
    assert q


def test_drain_processes_events_pushed_during_iteration():
    q = EventQueue()
    q.push(0, "start")
    seen = []
    for ev in q.drain():
        seen.append((ev.time, ev.kind))
        if ev.kind == "start":
            q.push(2, "later")
            q.push(1, "middle")
    assert seen == [(0, "start"), (1, "middle"), (2, "later")]


def test_push_pop_counters():
    q = EventQueue()
    q.push(1, "a")
    q.push(2, "b")
    q.pop()
    assert q.pushes == 2
    assert q.pops == 1


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
def test_pop_sequence_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, None)
    out = [q.pop().time for _ in range(len(times))]
    assert out == sorted(times)


def test_clock_advances_and_rejects_time_travel():
    c = Clock()
    c.advance_to(5)
    c.advance_to(5)
    c.advance_to(9)
    assert c.now == 9
    assert c.horizon == 9
    with pytest.raises(ValueError):
        c.advance_to(3)


def test_clock_horizon_tracks_max():
    c = Clock()
    c.advance_to(10)
    assert c.horizon == 10
