"""Execution policies: redundant-issue racing and work stealing.

Differential suite (no hypothesis import — the bench-smoke zero-skip
gate runs this file alongside tests/test_dense*.py): racing and
stealing may only ever change *when* pebbles complete, never their
values, so every policy run here is checked digest-identical to the
single-issue ground truth.  The seeded-grid property tests live in
``tests/test_racing_props.py``.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import Assignment, steal_rebalance
from repro.core.overlap import simulate_overlap
from repro.core.racing import (
    DEFAULT_FANOUT,
    POLICIES,
    SINGLE,
    ExecPolicy,
    resolve_policy,
    split_policy,
)
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.telemetry import MetricsTimeline


def _jitter_plan(n: int, seed: int = 7, horizon: int = 80) -> FaultPlan:
    return FaultPlan.random(
        n,
        seed=seed,
        horizon=horizon,
        jitter_rate=0.9,
        drop_rate=0.3,
        max_jitter=12,
    )


def _column_digests(res) -> dict[int, int]:
    """Per-column value digests (ownership-independent: replicated and
    stolen copies of a column must fold to the same digest)."""
    out: dict[int, int] = {}
    for (_p, c), d in res.exec_result.value_digests.items():
        if c in out:
            assert out[c] == d, f"replicas of column {c} disagree"
        else:
            out[c] = d
    return out


# -- policy resolution -------------------------------------------------


def test_policy_names_and_registry():
    assert SINGLE.is_single and SINGLE.name == "single"
    assert resolve_policy(None) is SINGLE
    assert resolve_policy("racing").racing
    assert resolve_policy("stealing").stealing
    both = resolve_policy("racing+stealing")
    assert both.racing and both.stealing
    assert both.name == "racing+stealing"
    # Registry aliases resolve to equal policies.
    assert POLICIES["stealing+racing"] == POLICIES["racing+stealing"]
    assert resolve_policy(ExecPolicy(racing=True)).racing


def test_resolve_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown execution policy"):
        resolve_policy("fastest")


def test_split_policy_dispatch():
    rp = RecoveryPolicy()
    # Legacy route: a RecoveryPolicy passed as `policy` is a recovery.
    exec_policy, recovery = split_policy(rp, None)
    assert exec_policy is SINGLE and recovery is rp
    # New route: strings and ExecPolicy are execution policies.
    exec_policy, recovery = split_policy("racing", rp)
    assert exec_policy.racing and recovery is rp
    with pytest.raises(ValueError):
        split_policy(rp, rp)


def test_racing_forces_greedy_dense_refuses():
    host = HostArray.uniform(12)
    res = simulate_overlap(host, steps=4, min_copies=2, policy="racing")
    assert res.engine == "greedy"
    with pytest.raises(ValueError, match="racing"):
        simulate_overlap(
            host, steps=4, min_copies=2, policy="racing", engine="dense"
        )


def test_racing_with_multicast_raises():
    from repro.core.executor import GreedyExecutor
    from repro.machine.programs import CounterProgram

    host = HostArray.uniform(12)
    asg = _skewed_assignment(12, 2, 0, heavy=())
    with pytest.raises(ValueError, match="mutually exclusive"):
        GreedyExecutor(
            host,
            asg,
            CounterProgram(),
            4,
            multicast=True,
            exec_policy="racing",
        )


# -- racing: values, counters, telemetry -------------------------------


def test_racing_digest_identical_to_single_issue():
    host = HostArray.uniform(24)
    plan = _jitter_plan(24)
    base = simulate_overlap(
        host, steps=8, min_copies=2, faults=plan, engine="greedy"
    )
    raced = simulate_overlap(
        host, steps=8, min_copies=2, faults=plan, policy="racing"
    )
    assert base.verified and raced.verified
    assert _column_digests(raced) == _column_digests(base)
    extras = raced.exec_result.stats.extras
    assert extras["raced_wins"] > 0
    assert raced.summary()["policy"] == "racing"


def test_racing_improves_tail_under_drops():
    host = HostArray.uniform(48)
    plan = _jitter_plan(48, seed=1996)
    p99 = {}
    for pol in ("single", "racing"):
        res = simulate_overlap(
            host, steps=16, min_copies=2, faults=plan, policy=pol
        )
        p99[pol] = res.exec_result.stats.step_latency_summary()["p99"]
    assert p99["racing"] < p99["single"]


def test_racing_counters_match_timeline():
    host = HostArray.uniform(24)
    tl = MetricsTimeline()
    res = simulate_overlap(
        host,
        steps=8,
        min_copies=2,
        faults=_jitter_plan(24),
        policy="racing",
        telemetry=tl,
    )
    stats = res.exec_result.stats
    assert tl.totals()["cancelled"] == stats.extras.get("cancelled_messages", 0)
    tl.reconcile(stats)  # cross-checks cancelled + step-latency samples
    lat = stats.step_latency_summary()
    assert lat["count"] == 8
    assert sum(stats.step_latency_samples()) == stats.makespan
    summary = tl.summary()
    assert summary["step_p99"] == lat["p99"]


def test_single_policy_run_records_no_racing_extras():
    host = HostArray.uniform(16)
    res = simulate_overlap(host, steps=4, min_copies=2)
    extras = res.exec_result.stats.extras
    assert "raced_wins" not in extras
    assert "cancelled_messages" not in extras
    assert "policy" not in res.summary()
    lat = res.exec_result.stats.step_latency_summary()
    assert lat is not None and lat["count"] == 4


# -- work stealing -----------------------------------------------------


def _skewed_assignment(n: int, per: int, extra: int, heavy: tuple) -> Assignment:
    sizes = [per + (extra if p in heavy else 0) for p in range(n)]
    ranges, lo = [], 1
    for s in sizes:
        ranges.append((lo, lo + s - 1))
        lo += s
    return Assignment(ranges, lo - 1)


def test_steal_rebalance_preserves_coverage_and_lowers_peak():
    host = HostArray.uniform(16, delay=2)
    asg = _skewed_assignment(16, 2, 6, heavy=(3, 11))
    out, moves = steal_rebalance(asg, host, seed=0)
    assert moves, "a 4x-overloaded victim must shed columns"
    out.validate()
    assert out.m == asg.m
    owners = out.owners()
    assert sorted(owners) == list(range(1, asg.m + 1))

    def peak(a: Assignment) -> int:
        return max(hi - lo + 1 for lo, hi in a.ranges if a is not None)

    assert peak(out) < peak(asg)
    for mv in moves:
        assert set(mv) == {"column", "victim", "thief"}


def test_steal_rebalance_deterministic_and_pure():
    host = HostArray.uniform(16, delay=2)
    asg = _skewed_assignment(16, 2, 6, heavy=(3, 11))
    before = list(asg.ranges)
    out1, moves1 = steal_rebalance(asg, host, seed=5)
    out2, moves2 = steal_rebalance(asg, host, seed=5)
    assert moves1 == moves2
    assert out1.ranges == out2.ranges
    assert asg.ranges == before  # input never mutated


def test_steal_rebalance_balanced_input_untouched():
    host = HostArray.uniform(8, delay=2)
    asg = _skewed_assignment(8, 3, 0, heavy=())
    out, moves = steal_rebalance(asg, host, seed=0)
    assert moves == []
    assert out is asg  # byte-identical single-policy runs


def test_steal_rebalance_max_moves():
    host = HostArray.uniform(16, delay=2)
    asg = _skewed_assignment(16, 2, 6, heavy=(3, 11))
    out, moves = steal_rebalance(asg, host, seed=0, max_moves=2)
    assert len(moves) == 2


def test_stealing_digest_identical_and_counted():
    host = HostArray.uniform(24)
    plan = _jitter_plan(24, seed=3)
    base = simulate_overlap(
        host, steps=8, min_copies=2, faults=plan, engine="greedy"
    )
    stolen = simulate_overlap(
        host, steps=8, min_copies=2, faults=plan, policy="stealing"
    )
    assert stolen.verified
    assert _column_digests(stolen) == _column_digests(base)
    if stolen.exec_result.stats.extras.get("steal_moves"):
        assert stolen.summary()["steal_moves"] > 0


def test_policy_default_fanout():
    assert DEFAULT_FANOUT == 2
    assert resolve_policy("racing").fanout == DEFAULT_FANOUT


# -- sweep integration -------------------------------------------------


def test_policy_sweep_identical_across_worker_counts():
    from repro.experiments.w1 import _policy_point
    from repro.runner import SweepRunner

    configs = [
        {
            "n": 16,
            "delay": 2,
            "steps": 4,
            "policy": pol,
            "max_jitter": 8,
            "jitter_rate": 0.9,
            "drop_rate": 0.3,
            "seed": 11,
            "horizon": 32,
        }
        for pol in ("single", "racing", "stealing", "racing+stealing")
    ]
    serial = SweepRunner(workers=1).map(_policy_point, configs)
    pooled = SweepRunner(workers=2).map(_policy_point, configs)
    assert pooled == serial
