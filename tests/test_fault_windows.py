"""Property tests pinning the half-open ``[t0, t1)`` fault-window
convention across every :class:`~repro.netsim.faults.FaultTables`
query.

Outage and jitter windows are closed on the left and open on the
right: an event scripted at ``t0`` with duration ``w`` affects
injections at ``t0 <= t < t0 + w`` and nothing at ``t = t0 + w``.
Node crashes are closed-left and permanent (``t >= t0``).  One-shot
drops arm at ``t0`` and consume the first injection at or after it.

Both executors lean on these exact semantics for bit-identity — the
segmented dense tier additionally derives its replay boundaries from
them — so the convention is pinned here, including the ``t == t0`` and
``t == t1`` edges, with hypothesis sweeping the window shapes.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.host import HostArray
from repro.netsim.faults import LOST, FaultPlan

N = 8  # host size for every compiled plan; links 0..6
_times = st.integers(min_value=0, max_value=60)
_durations = st.integers(min_value=1, max_value=20)
_links = st.integers(min_value=0, max_value=N - 2)
_dirs = st.sampled_from([1, -1])
_extras = st.integers(min_value=1, max_value=9)


def _compile(plan: FaultPlan):
    return plan.compile(HostArray.uniform(N, 2))


# ---------------------------------------------------------------------------
# outage windows: is_link_down and link_outcome agree on [t0, t1)


@settings(max_examples=60, deadline=None)
@given(link=_links, d=_dirs, t0=_times, w=_durations)
def test_outage_window_half_open(link, d, t0, w):
    tables = _compile(FaultPlan().link_down(link, t0, w, direction=d))
    t1 = t0 + w
    probes = {t0 - 1: False, t0: True, t1 - 1: True, t1: False}
    for t, inside in probes.items():
        if t < 0:
            continue
        assert tables.is_link_down(link, d, t) is inside, (t, inside)
        # link_outcome agrees (pure here: no drops to consume).
        outcome = tables.link_outcome(link, d, t)
        assert (outcome is LOST) == inside, (t, inside)
    # The opposite direction is never affected.
    assert not tables.is_link_down(link, -d, t0)
    # Window edges are exactly the segment boundaries.
    assert set(tables.boundaries()) == {t0, t1}


@settings(max_examples=40, deadline=None)
@given(link=_links, t0=_times)
def test_permanent_outage_closed_left(link, t0):
    tables = _compile(FaultPlan().link_down(link, t0))
    if t0 > 0:
        assert not tables.is_link_down(link, 1, t0 - 1)
    for t in (t0, t0 + 1, t0 + 10_000):
        assert tables.is_link_down(link, 1, t)
        assert tables.is_link_down(link, -1, t)  # direction=None: both


# ---------------------------------------------------------------------------
# jitter windows: extra_delay is [t0, t1) and additive across overlaps


@settings(max_examples=60, deadline=None)
@given(link=_links, d=_dirs, t0=_times, w=_durations, e=_extras)
def test_jitter_window_half_open(link, d, t0, w, e):
    tables = _compile(FaultPlan().jitter(link, t0, w, e, direction=d))
    t1 = t0 + w
    probes = {t0 - 1: 0, t0: e, t1 - 1: e, t1: 0}
    for t, want in probes.items():
        if t < 0:
            continue
        assert tables.extra_delay(link, d, t) == want, (t, want)
        assert tables.link_outcome(link, d, t) == want, (t, want)
    assert tables.extra_delay(link, -d, t0) == 0


@settings(max_examples=40, deadline=None)
@given(
    link=_links,
    t0=_times,
    w1=_durations,
    w2=_durations,
    e1=_extras,
    e2=_extras,
    gap=st.integers(min_value=0, max_value=10),
)
def test_jitter_overlap_sums(link, t0, w1, w2, e1, e2, gap):
    # Second window opens inside (or right at the end of) the first.
    s2 = t0 + min(gap, w1)
    plan = FaultPlan().jitter(link, t0, w1, e1).jitter(link, s2, w2, e2)
    tables = _compile(plan)
    for t in (t0, s2, t0 + w1 - 1, s2 + w2 - 1, t0 + w1, s2 + w2):
        want = (e1 if t0 <= t < t0 + w1 else 0) + (e2 if s2 <= t < s2 + w2 else 0)
        assert tables.extra_delay(link, 1, t) == want, t


# ---------------------------------------------------------------------------
# crashes: closed-left, permanent


@settings(max_examples=40, deadline=None)
@given(pos=st.integers(min_value=0, max_value=N - 1), t0=_times)
def test_crash_closed_left_permanent(pos, t0):
    tables = _compile(FaultPlan().crash(pos, t0))
    if t0 > 0:
        assert not tables.is_crashed(pos, t0 - 1)
    for t in (t0, t0 + 1, t0 + 10_000):
        assert tables.is_crashed(pos, t)
    assert not tables.is_crashed((pos + 1) % N, t0 + 10_000)
    assert tables.boundaries() == [t0]


# ---------------------------------------------------------------------------
# drops: armed at t0, one-shot, consumed by the first injection at/after


@settings(max_examples=60, deadline=None)
@given(link=_links, d=_dirs, t0=_times, late=st.integers(min_value=0, max_value=9))
def test_drop_one_shot_at_or_after(link, d, t0, late):
    tables = _compile(FaultPlan().drop(link, t0, direction=d))
    if t0 > 0:
        # Probing before the arm time neither loses nor consumes.
        assert tables.link_outcome(link, d, t0 - 1) == 0
    # Pure queries never consume the drop.
    assert not tables.is_link_down(link, d, t0)
    assert tables.extra_delay(link, d, t0) == 0
    # First injection at/after t0 eats it; the next one sails through.
    assert tables.link_outcome(link, d, t0 + late) is LOST
    assert tables.link_outcome(link, d, t0 + late) == 0


@settings(max_examples=30, deadline=None)
@given(link=_links, t0=_times)
def test_drop_direction_isolated(link, t0):
    tables = _compile(FaultPlan().drop(link, t0, direction=1))
    assert tables.link_outcome(link, -1, t0) == 0  # other direction clean
    assert tables.link_outcome(link, 1, t0) is LOST
