"""Cross-module integration scenarios — the full pipelines a user runs."""

import numpy as np
import pytest

from repro import (
    GuestArray,
    HostArray,
    simulate_overlap,
    simulate_overlap_on_graph,
)
from repro.core.baselines import simulate_single_copy
from repro.core.composed import simulate_composed_on_graph
from repro.core.ring import simulate_ring
from repro.machine.programs import get_program, list_programs
from repro.netsim.trace import Trace
from repro.topology.delays import bimodal_delays, pareto_delays, scale_to_average
from repro.topology.embedding import embed_linear_array
from repro.topology.generators import (
    h1_host,
    mesh_host,
    now_cluster_host,
    random_regular_host,
)


class TestFullPipelines:
    def test_every_program_runs_through_overlap(self):
        host = HostArray.uniform(32, 3)
        for name in list_programs():
            res = simulate_overlap(host, program=get_program(name), steps=6)
            assert res.verified, name

    def test_graph_to_overlap_to_verification(self):
        for maker in (
            lambda: now_cluster_host(4, 6, 1, 24),
            lambda: mesh_host(5, 5, [2] * 40),
            lambda: random_regular_host(32, 3, [3] * 48, seed=1),
        ):
            res = simulate_overlap_on_graph(maker(), steps=8)
            assert res.verified
            assert res.embedding.dilation <= 3

    def test_composed_on_graph_pipeline(self):
        hg = now_cluster_host(4, 6, 1, 16)
        res = simulate_composed_on_graph(hg, steps=4)
        assert res.verified

    def test_overlap_with_trace_matches_stats(self):
        host = HostArray.uniform(24, 2)
        from repro.core.assignment import assign_databases
        from repro.core.executor import GreedyExecutor
        from repro.core.killing import kill_and_label
        from repro.machine.programs import CounterProgram

        killing = kill_and_label(host)
        asg = assign_databases(killing, block=2)
        trace = Trace()
        res = GreedyExecutor(host, asg, CounterProgram(), 8, trace=trace).run()
        assert len(trace.records) == res.stats.pebbles
        assert trace.makespan == res.stats.makespan

    def test_heavy_tail_now_story(self):
        """The README quickstart invariants, pinned."""
        rng = np.random.default_rng(7)
        host = HostArray(pareto_delays(127, rng, alpha=1.1, cap=2048))
        overlap = simulate_overlap(host, steps=16, block=8, verify=False)
        single = simulate_single_copy(host, steps=16, verify=False)
        assert overlap.slowdown < host.d_max + 1
        assert overlap.slowdown < single.slowdown
        assert overlap.m > host.n  # work-preserving: bigger guest than host

    def test_ring_and_array_guests_share_host(self):
        host = HostArray.uniform(18, 2)
        ring = simulate_ring(host, steps=6)
        arr = simulate_single_copy(host, m=18, steps=6)
        assert ring.verified and arr.verified

    def test_h1_pipeline_with_scaled_delays(self):
        host = h1_host(100)
        rescaled = HostArray(scale_to_average(host.link_delays, 4))
        res = simulate_overlap(rescaled, steps=8)
        assert res.verified


class TestDeterminismEndToEnd:
    def test_same_seed_same_everything(self):
        def run():
            rng = np.random.default_rng(3)
            host = HostArray(bimodal_delays(63, rng, 1, 64, 0.05))
            res = simulate_overlap(host, steps=8, block=2, verify=False)
            return (
                res.slowdown,
                res.m,
                res.exec_result.stats.pebbles,
                sorted(res.exec_result.value_digests.items())[:5],
            )

        assert run() == run()

    def test_embedding_deterministic(self):
        hg = now_cluster_host(4, 5, 1, 10)
        a = embed_linear_array(hg)
        b = embed_linear_array(hg)
        assert a.order == b.order
        assert a.link_delays == b.link_delays


class TestScaleSmoke:
    @pytest.mark.parametrize("n", [16, 48, 96])
    def test_various_host_sizes(self, n):
        rng = np.random.default_rng(n)
        host = HostArray(bimodal_delays(n - 1, rng, 1, 32, 0.05))
        res = simulate_overlap(host, steps=6)
        assert res.verified
        assert res.m >= n // 2  # Lemma 4's constant fraction

    def test_long_run_many_rounds(self):
        host = HostArray.uniform(16, 2)
        res = simulate_overlap(host, steps=64, block=2)
        assert res.verified
