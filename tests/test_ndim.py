"""D-dimensional guests and the slab simulator."""

import numpy as np
import pytest

from repro.core.ndim import ndim_slowdown_estimate, simulate_nd_on_uniform_array
from repro.machine.guestnd import (
    GuestND,
    StencilCounterND,
    frame_value_nd,
    initial_value_nd,
    nd_digest_seed,
)


class TestGuestND:
    def test_reference_shapes(self):
        g = GuestND((4, 4, 4), StencilCounterND())
        ref = g.run_reference(2)
        assert ref.values.shape == (3, 6, 6, 6)
        assert ref.update_digests.shape == (4, 4, 4)

    def test_initial_values_match_scalar(self):
        g = GuestND((3, 5), StencilCounterND())
        ref = g.run_reference(0)
        assert ref.pebble((2, 4), 0) == initial_value_nd((2, 4))

    def test_frame_matches_scalar(self):
        g = GuestND((3, 3), StencilCounterND())
        ref = g.run_reference(2)
        assert int(ref.values[2][0, 1]) == frame_value_nd((0, 1), 2)
        assert int(ref.values[1][4, 2]) == frame_value_nd((4, 2), 1)

    def test_digest_seeds(self):
        g = GuestND((3, 3, 3), StencilCounterND())
        ref = g.run_reference(0)
        assert int(ref.update_digests[1, 2, 0]) == nd_digest_seed((2, 3, 1))

    def test_scalar_cell_matches_grid(self):
        prog = StencilCounterND()
        g = GuestND((4, 4), prog)
        ref = g.run_reference(1)
        v0 = ref.values[0]
        states = prog.init_state_grid((4, 4))
        pairs = [
            (int(v0[1, 2]), int(v0[3, 2])),  # axis 0 neighbours of (2,2)
            (int(v0[2, 1]), int(v0[2, 3])),  # axis 1
        ]
        val, _ = prog.compute_cell(1, int(states[1, 1]), int(v0[2, 2]), pairs)
        assert ref.pebble((2, 2), 1) == val

    def test_deterministic(self):
        g = GuestND((4, 4, 4), StencilCounterND())
        assert np.array_equal(g.run_reference(2).values, g.run_reference(2).values)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            GuestND((0, 3), StencilCounterND())

    def test_1d_nd_machine_runs(self):
        g = GuestND((6,), StencilCounterND())
        ref = g.run_reference(3)
        assert ref.values.shape == (4, 8)


class TestSlabSimulation:
    @pytest.mark.parametrize(
        "m,dims,n0,d", [(8, 2, 4, 4), (6, 3, 3, 4), (6, 3, 6, 2), (4, 4, 2, 4)]
    )
    def test_verified(self, m, dims, n0, d):
        res = simulate_nd_on_uniform_array(m, dims, n0, d, steps=4)
        assert res.verified

    def test_case1_no_redundancy(self):
        res = simulate_nd_on_uniform_array(6, 3, 6, 2, steps=3)
        assert res.g == 1
        assert res.redundancy == 1.0

    def test_case2_redundancy_bounded(self):
        res = simulate_nd_on_uniform_array(6, 3, 2, 4, steps=6)
        assert res.g == 3
        assert 1.0 < res.redundancy <= 3.2

    def test_partial_last_batch(self):
        res = simulate_nd_on_uniform_array(6, 3, 2, 3, steps=5)
        assert res.verified

    def test_slowdown_grows_with_dims(self):
        s2 = simulate_nd_on_uniform_array(6, 2, 3, 4, steps=4, verify=False)
        s3 = simulate_nd_on_uniform_array(6, 3, 3, 4, steps=4, verify=False)
        assert s3.slowdown > s2.slowdown
        # per-step work scales with m^(D-1) slices of the slab sweep
        assert s3.pebbles > s2.pebbles

    def test_estimate_shape(self):
        assert ndim_slowdown_estimate(6, 3, 6, 5) == 36 + 5
        est = ndim_slowdown_estimate(6, 3, 2, 6)
        assert est == pytest.approx(3 * 36 * 3 + 2)

    def test_rejects_dims_one(self):
        with pytest.raises(ValueError):
            simulate_nd_on_uniform_array(6, 1, 3, 4)
