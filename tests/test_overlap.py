"""Algorithm OVERLAP end to end (Theorems 2, 3, 6)."""

import math

import numpy as np
import pytest

from repro.core.overlap import (
    simulate_overlap,
    simulate_overlap_on_graph,
    work_efficient_block,
)
from repro.machine.host import HostArray
from repro.machine.programs import KeyedStoreProgram, TokenProgram
from repro.topology.delays import bimodal_delays, pareto_delays
from repro.topology.generators import now_cluster_host


def now_host(n=128, seed=0, far=64):
    rng = np.random.default_rng(seed)
    return HostArray(bimodal_delays(n - 1, rng, near=1, far=far, p_far=0.05))


class TestEndToEnd:
    def test_verified_run_uniform(self):
        res = simulate_overlap(HostArray.uniform(64, 2), steps=8)
        assert res.verified
        assert res.slowdown > 0
        assert res.load <= 2

    def test_verified_run_skewed(self):
        res = simulate_overlap(now_host(), steps=12)
        assert res.verified
        # m is a constant fraction of n (Lemma 4).
        assert res.m >= 64 // 2

    def test_beats_lockstep_on_skewed_host(self):
        host = now_host(128, seed=1, far=256)
        res = simulate_overlap(host, steps=16)
        assert res.slowdown < host.d_max + 1

    def test_alternate_programs(self):
        res = simulate_overlap(now_host(64, 2), program=TokenProgram(), steps=8)
        assert res.verified
        res2 = simulate_overlap(
            HostArray.uniform(32, 2), program=KeyedStoreProgram(), steps=6
        )
        assert res2.verified

    def test_summary_keys(self):
        res = simulate_overlap(HostArray.uniform(32), steps=4)
        s = res.summary()
        for key in ("n", "m", "slowdown", "load", "verified", "redundancy"):
            assert key in s

    def test_default_steps_one_round(self):
        res = simulate_overlap(HostArray.uniform(64, 2))
        assert res.steps == max(4, res.killing.params.m_int(0))

    def test_no_verify_skips_reference(self):
        res = simulate_overlap(HostArray.uniform(32), steps=4, verify=False)
        assert not res.verified

    def test_efficiency_bounded(self):
        res = simulate_overlap(HostArray.uniform(64, 1), steps=16)
        assert 0 < res.efficiency() <= 1.0


class TestWorkEfficient:
    def test_block_factor_grows_guest(self):
        host = HostArray.uniform(32, 2)
        base = simulate_overlap(host, steps=6)
        blocked = simulate_overlap(host, steps=6, block=4)
        assert blocked.m == 4 * base.m
        assert blocked.verified
        assert blocked.load <= 4 * base.load

    def test_blocking_improves_efficiency(self):
        host = HostArray.uniform(32, 8)
        base = simulate_overlap(host, steps=6)
        blocked = simulate_overlap(host, steps=6, block=8)
        assert blocked.efficiency() > base.efficiency()

    def test_work_efficient_block_formula(self):
        host = HostArray.uniform(64, 4)
        beta = work_efficient_block(host, polylog_exponent=1)
        assert beta == round(4 * 6)
        assert work_efficient_block(host, 0) == 4


class TestOnGraph:
    def test_now_cluster(self):
        hg = now_cluster_host(6, 6, intra_delay=1, inter_delay=24)
        res = simulate_overlap_on_graph(hg, steps=8)
        assert res.verified
        assert res.embedding is not None
        assert res.embedding.dilation <= 3

    def test_schedule_bound_reported(self):
        res = simulate_overlap(HostArray.uniform(64, 2), steps=8)
        assert res.schedule_slowdown_bound() > 0

    def test_forced_dead_graph_nodes_are_translated(self):
        hg = now_cluster_host(4, 6, intra_delay=1, inter_delay=12)
        dead = {next(iter(hg.graph.nodes))}
        res = simulate_overlap_on_graph(hg, steps=6, forced_dead=dead)
        assert res.verified
        # The failed workstation must not survive as a working position.
        position_of = res.embedding.position_of()
        for v in dead:
            assert not res.killing.live[position_of[v]]

    def test_forced_dead_unknown_node_rejected(self):
        hg = now_cluster_host(3, 4)
        with pytest.raises(ValueError, match="not in the host graph"):
            simulate_overlap_on_graph(hg, steps=6, forced_dead={"nope"})

    def test_faults_and_recovery_reach_the_embedded_run(self):
        from repro.netsim.faults import FaultPlan, RecoveryPolicy

        hg = now_cluster_host(4, 6, intra_delay=1, inter_delay=12)
        n = hg.graph.number_of_nodes()
        plan = FaultPlan().crash(n // 2, time=2)
        res = simulate_overlap_on_graph(
            hg,
            steps=6,
            faults=plan,
            policy=RecoveryPolicy(),
            min_copies=2,
            verify=True,
        )
        assert res.verified
        assert res.exec_result.stats.crashed_nodes >= 1


class TestScaling:
    def test_blocking_hides_dmax(self):
        """The headline mechanism: the latency-amortisation window is
        the column-overlap width, so the work-efficient (blocked)
        variant's slowdown is nearly d_max-independent while the
        load-1 variant tracks d_max (Section 3.3's reason to exist)."""

        def sweep(block):
            out = []
            for F in (64, 1024):
                delays = [1] * 127
                delays[63] = F  # long link at the top-level split
                res = simulate_overlap(
                    HostArray(delays), steps=24, block=block, verify=False
                )
                out.append(res.slowdown)
            return out

        thin = sweep(1)
        fat = sweep(16)
        # 16x more d_max: load-1 grows nearly linearly, blocked barely.
        assert thin[1] / thin[0] > 8
        assert fat[1] / fat[0] < 4

    def test_assignment_requires_usable_processors(self):
        from repro.core.assignment import assign_databases
        from repro.core.killing import kill_and_label

        host = HostArray.uniform(16, 2)
        res = kill_and_label(host)
        # Artificially remove the root to exercise the guard.
        res.tree.root.removed = True
        with pytest.raises(ValueError):
            assign_databases(res)
