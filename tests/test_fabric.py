"""Fabric and LineFabric: multi-hop pipelined transport."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.fabric import Fabric, LineFabric
from repro.netsim.faults import FaultPlan, FaultTables
from repro.netsim.routing import DELAY_ATTR


def path_graph(delays):
    g = nx.Graph()
    for i, d in enumerate(delays):
        g.add_edge(i, i + 1, **{DELAY_ATTR: d})
    return g


class TestFabric:
    def test_hop_uses_link_delay(self):
        f = Fabric(path_graph([3, 5]), bandwidth=1)
        assert f.hop(0, 1, 0) == 3
        assert f.hop(1, 2, 3) == 8

    def test_directions_are_independent_pipes(self):
        f = Fabric(path_graph([2]), bandwidth=1)
        assert f.hop(0, 1, 0) == 2
        assert f.hop(1, 0, 0) == 2  # no contention with the other direction

    def test_unknown_link_rejected(self):
        f = Fabric(path_graph([1, 1]))
        with pytest.raises(KeyError):
            f.hop(0, 2, 0)

    def test_route_and_delay(self):
        g = path_graph([4, 4])
        g.add_edge(0, 2, **{DELAY_ATTR: 3})  # shortcut
        f = Fabric(g)
        assert f.route(0, 2) == [0, 2]
        assert f.route_delay(0, 2) == 3

    def test_send_along_accumulates_hops(self):
        f = Fabric(path_graph([2, 3, 4]), bandwidth=1)
        assert f.send_along([0, 1, 2, 3], 0) == 9

    def test_total_injections_counts_pebble_hops(self):
        f = Fabric(path_graph([1, 1]))
        f.send_along([0, 1, 2], 0)
        assert f.total_injections == 2

    def test_reset(self):
        f = Fabric(path_graph([1]), bandwidth=1)
        f.hop(0, 1, 0)
        f.reset()
        assert f.total_injections == 0
        assert f.hop(0, 1, 0) == 1


class TestLineFabric:
    def test_basic_hops(self):
        lf = LineFabric([2, 7], bandwidth=1)
        assert lf.n == 3
        assert lf.hop(0, +1, 0) == 2
        assert lf.hop(2, -1, 0) == 7

    def test_distance_prefix_sums(self):
        lf = LineFabric([2, 7, 1])
        assert lf.distance(0, 3) == 10
        assert lf.distance(3, 0) == 10
        assert lf.distance(1, 2) == 7
        assert lf.distance(2, 2) == 0

    def test_aggregate_delay_stats(self):
        lf = LineFabric([1, 3, 8])
        assert lf.total_delay() == 12
        assert lf.average_delay() == 4.0
        assert lf.max_delay() == 8

    def test_bandwidth_contention_per_direction(self):
        lf = LineFabric([5], bandwidth=2)
        assert lf.hop(0, +1, 0) == 5
        assert lf.hop(0, +1, 0) == 5
        assert lf.hop(0, +1, 0) == 6  # third pebble spills to next slot

    def test_invalid_direction(self):
        lf = LineFabric([1])
        with pytest.raises(ValueError):
            lf.hop(0, 0, 0)

    def test_invalid_delays_rejected(self):
        with pytest.raises(ValueError):
            LineFabric([1, 0, 2])

    def test_contention_between_streams_sharing_a_link(self):
        # Two streams injecting at the same position/direction share
        # the slot budget; arrivals serialise at bandwidth 1.
        lf = LineFabric([3], bandwidth=1)
        a1 = lf.hop(0, +1, 0)
        a2 = lf.hop(0, +1, 0)
        a3 = lf.hop(0, +1, 0)
        assert (a1, a2, a3) == (3, 4, 5)

    def test_wide_link_absorbs_burst(self):
        lf = LineFabric([3], bandwidth=3)
        arrivals = [lf.hop(0, +1, 0) for _ in range(3)]
        assert arrivals == [3, 3, 3]

    def test_backlog_drains_at_bandwidth_rate(self):
        lf = LineFabric([2], bandwidth=2)
        # 6 pebbles ready at t=0: slots 0,0,1,1,2,2 -> arrivals 2,2,3,3,4,4
        arrivals = [lf.hop(0, +1, 0) for _ in range(6)]
        assert arrivals == [2, 2, 3, 3, 4, 4]

    def test_hop_many_matches_repeated_hop(self):
        a = LineFabric([3, 5], bandwidth=2)
        b = LineFabric([3, 5], bandwidth=2)
        batched = a.hop_many(0, +1, 0, 5)
        single = [b.hop(0, +1, 0) for _ in range(5)]
        assert batched == single
        assert a.hop_many(2, -1, 1, 3) == [b.hop(2, -1, 1) for _ in range(3)]
        assert a.total_injections == b.total_injections

    def test_jitter_end_cannot_reorder_stream(self):
        # A jitter window ending mid-stream: the first pebble is
        # inflated (+5), the second is injected after the window.
        # Unclamped, the second would arrive at 4 < 8 — overtaking a
        # FIFO predecessor.  The clamp pins it to 8.
        plan = FaultPlan().jitter(0, time=0, duration=2, extra=5)
        lf = LineFabric([2], bandwidth=1)
        lf.attach_faults(FaultTables(plan, n=2))
        assert lf.hop_faulty(0, +1, 1) == 8  # slot 1, +2 delay, +5 jitter
        assert lf.hop_faulty(0, +1, 2) == 8  # clamped (raw would be 4)
        assert lf.hop_faulty(0, +1, 7) == 9  # past the clamp: raw again

    def test_jitter_clamp_is_per_directed_link(self):
        plan = FaultPlan().jitter(0, time=0, duration=2, extra=9, direction=+1)
        lf = LineFabric([2], bandwidth=1)
        lf.attach_faults(FaultTables(plan, n=2))
        assert lf.hop_faulty(0, +1, 0) == 11
        # Jitter targets direction +1 only; the reverse pipe is
        # untouched and must not inherit the clamp.
        assert lf.hop_faulty(1, -1, 0) == 2

    @given(
        st.integers(min_value=1, max_value=6),  # jitter extra
        st.integers(min_value=1, max_value=5),  # jitter window length
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=30),
    )
    def test_jittered_arrivals_stay_monotone(self, extra, duration, gaps):
        """FIFO links never reorder pebbles, jitter or not."""
        plan = FaultPlan().jitter(0, time=2, duration=duration, extra=extra)
        lf = LineFabric([2], bandwidth=1)
        lf.attach_faults(FaultTables(plan, n=2))
        t, last = 0, 0
        for gap in gaps:
            t += gap
            arr = lf.hop_faulty(0, +1, t)
            assert arr >= last
            last = arr

    def test_reset_clears_monotone_clamp(self):
        plan = FaultPlan().jitter(0, time=0, duration=1, extra=50)
        lf = LineFabric([2], bandwidth=1)
        lf.attach_faults(FaultTables(plan, n=2))
        assert lf.hop_faulty(0, +1, 0) == 52
        lf.reset()
        lf.attach_faults(None)
        assert lf.hop_faulty(0, +1, 0) == 2  # no stale clamp from last run

    def test_reset_and_injection_count(self):
        lf = LineFabric([1, 1])
        lf.hop(0, +1, 0)
        lf.hop(1, +1, 1)
        lf.hop(1, -1, 0)
        assert lf.total_injections == 3
        lf.reset()
        assert lf.total_injections == 0


class TestFaultAwareRouting:
    """A cached route/delay memo must never mask an outage window."""

    def triangle(self):
        g = nx.Graph()
        g.add_edge(0, 1, **{DELAY_ATTR: 1})  # edge index 0
        g.add_edge(0, 2, **{DELAY_ATTR: 1})  # edge index 1
        g.add_edge(1, 2, **{DELAY_ATTR: 1})  # edge index 2
        return g

    def test_attach_faults_drops_stale_memos(self):
        f = Fabric(self.triangle())
        assert f.route(0, 1) == [0, 1]  # warm the memo pre-attach
        assert f.route_delay(0, 1) == 1
        assert f._route_cache and f._delay_cache
        f.attach_faults(FaultTables(FaultPlan(), n=3, n_links=3))
        assert not f._route_cache and not f._delay_cache

    def test_cached_route_does_not_mask_outage(self):
        f = Fabric(self.triangle())
        assert f.route(0, 1) == [0, 1]  # memoised on the healthy graph
        plan = FaultPlan().link_down(0, time=10, duration=10)
        f.attach_faults(FaultTables(plan, n=3, n_links=3))
        # Inside the window the direct link is down: the fabric must
        # return the detour, not the pre-attach memo.
        assert f.route(0, 1, at=15) == [0, 2, 1]
        assert f.route_delay(0, 1, at=15) == 2
        # Outside the window the direct route is valid again.
        assert f.route(0, 1, at=25) == [0, 1]
        assert f.route_delay(0, 1, at=25) == 1

    def test_outage_can_disconnect(self):
        g = nx.Graph()
        g.add_edge(0, 1, **{DELAY_ATTR: 1})
        f = Fabric(g)
        plan = FaultPlan().link_down(0, time=0, duration=5)
        f.attach_faults(FaultTables(plan, n=2, n_links=1))
        with pytest.raises(nx.NetworkXNoPath):
            f.route(0, 1, at=2)

    def test_is_link_down_is_pure(self):
        # Probing link health must not consume one-shot drops.
        plan = FaultPlan().link_down(0, time=5, duration=5).drop(1, time=0)
        tables = FaultTables(plan, n=3, n_links=3)
        for _ in range(3):
            assert tables.is_link_down(0, 1, 7)
            assert not tables.is_link_down(0, 1, 3)
            assert not tables.is_link_down(1, 1, 0)  # drop is not an outage
        from repro.netsim.faults import LOST

        assert tables.link_outcome(1, 1, 0) is LOST  # drop still armed
        assert tables.link_outcome(1, 1, 0) == 0  # ... and one-shot


class TestPerLinkInjections:
    def test_line_fabric_per_link_sums_to_total(self):
        f = LineFabric([2, 3], bandwidth=1)
        f.hop(0, +1, 0)
        f.hop(0, +1, 0)  # contends for the same rightward pipe
        f.hop(1, -1, 0)  # leftward over link 0
        f.hop(1, +1, 0)  # rightward over link 1
        per = f.per_link_injections()
        assert per == [(0, 2, 1), (1, 1, 0)]
        assert sum(r + l for _j, r, l in per) == f.total_injections == 4

    def test_fabric_per_edge_only_lists_used_edges(self):
        f = Fabric(path_graph([1, 1]))
        f.hop(0, 1, 0)
        f.hop(0, 1, 0)
        per = f.per_edge_injections()
        assert per == {(0, 1): 2}
        assert sum(per.values()) == f.total_injections
