"""The block-factor planner."""

import pytest

from repro.analysis.planner import (
    Boundary,
    plan_block_factor,
    predict_slowdown,
    split_boundaries,
)
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray


def outlier_host(F=512, n=128):
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = F
    return HostArray(delays, f"outlier{F}")


def test_boundaries_extracted_with_delays():
    killing = kill_and_label(outlier_host())
    bs = split_boundaries(killing)
    assert bs
    # The top-level split straddles the big link.
    top = [b for b in bs if b.depth == 0]
    assert top and top[0].delay >= 512


def test_boundary_cost_decreases_with_beta():
    b = Boundary(0, 10, 11, delay=100, overlap=2.0)
    assert b.per_row_cost(1) == 50.0
    assert b.per_row_cost(10) == 5.0


def test_predicted_curve_is_u_shaped():
    killing = kill_and_label(outlier_host())
    costs = [predict_slowdown(killing, b) for b in (1, 8, 64)]
    assert costs[1] < costs[0]
    assert costs[1] < costs[2]


def test_plan_picks_interior_beta_for_outlier():
    plan = plan_block_factor(outlier_host())
    assert 2 <= plan.beta <= 32
    assert plan.binding_boundary is not None
    assert plan.binding_boundary.delay >= 512


def test_plan_picks_small_beta_for_uniform_host():
    plan = plan_block_factor(HostArray.uniform(96, 1))
    assert plan.beta <= 2  # no latency to hide: compute dominates


def test_recommendation_close_to_measured_optimum():
    host = outlier_host()
    plan = plan_block_factor(host, candidates=[1, 4, 8, 16, 32])
    measured = {
        b: simulate_overlap(host, steps=16, block=b, verify=False).slowdown
        for b in (1, 4, 8, 16, 32)
    }
    best_measured = min(measured, key=measured.get)
    # Within one rung of the geometric ladder.
    assert plan.beta in (best_measured // 2, best_measured, best_measured * 2)


def test_predicted_dict_covers_candidates():
    plan = plan_block_factor(outlier_host(), candidates=[1, 3, 9])
    assert set(plan.predicted) == {1, 3, 9}
