"""Delay models."""

import numpy as np
import pytest

from repro.topology.delays import (
    bimodal_delays,
    constant_delays,
    pareto_delays,
    scale_to_average,
    uniform_delays,
)


def rng():
    return np.random.default_rng(42)


def test_constant():
    assert constant_delays(4, 3) == [3, 3, 3, 3]
    with pytest.raises(ValueError):
        constant_delays(4, 0)


def test_uniform_bounds():
    d = uniform_delays(500, rng(), low=2, high=9)
    assert len(d) == 500
    assert min(d) >= 2 and max(d) <= 9
    with pytest.raises(ValueError):
        uniform_delays(5, rng(), low=0, high=3)


def test_bimodal_composition():
    d = bimodal_delays(2000, rng(), near=1, far=100, p_far=0.1)
    assert set(d) <= {1, 100}
    frac_far = sum(1 for x in d if x == 100) / len(d)
    assert 0.05 < frac_far < 0.15
    with pytest.raises(ValueError):
        bimodal_delays(5, rng(), p_far=1.5)


def test_pareto_heavy_tail():
    d = pareto_delays(5000, rng(), alpha=1.2, scale=1.0)
    assert min(d) >= 1
    # Heavy tail: max far exceeds mean.
    assert max(d) > 10 * (sum(d) / len(d))


def test_pareto_cap():
    d = pareto_delays(1000, rng(), alpha=0.8, cap=50)
    assert max(d) <= 50
    with pytest.raises(ValueError):
        pareto_delays(5, rng(), alpha=0)


def test_scale_to_average_hits_target():
    d = uniform_delays(300, rng(), 1, 20)
    scaled = scale_to_average(d, 40.0)
    mean = sum(scaled) / len(scaled)
    assert abs(mean - 40.0) <= 1.0
    assert min(scaled) >= 1


def test_scale_to_average_validates():
    with pytest.raises(ValueError):
        scale_to_average([1, 2], 0.5)
    assert scale_to_average([], 5) == []


def test_reproducible_with_same_seed():
    a = pareto_delays(100, np.random.default_rng(7))
    b = pareto_delays(100, np.random.default_rng(7))
    assert a == b
