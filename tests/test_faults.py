"""The fault-injection layer: plans, tables, fabrics, determinism."""

import pytest

from repro.core.assignment import assign_databases
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram
from repro.netsim.fabric import Fabric, LineFabric
from repro.netsim.faults import (
    LOST,
    FaultEvent,
    FaultPlan,
    FaultTables,
    RecoveryPolicy,
)
from repro.netsim.stats import SimStats
from repro.netsim.trace import Trace


# -- events and plans -----------------------------------------------------


def test_fault_event_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("meteor", 0, 0)
    with pytest.raises(ValueError, match="time"):
        FaultEvent("node_crash", -1, 0)
    with pytest.raises(ValueError, match="duration"):
        FaultEvent("link_down", 0, 0, duration=0)
    with pytest.raises(ValueError, match="jitter"):
        FaultEvent("link_jitter", 0, 0, duration=4, extra=0)
    with pytest.raises(ValueError, match="direction"):
        FaultEvent("msg_drop", 0, 0, direction=2)


def test_plan_builders_chain_and_count():
    plan = (
        FaultPlan()
        .crash(3, 10)
        .link_down(1, 5, duration=8)
        .jitter(2, 0, 16, 3)
        .drop(0, 7, direction=-1)
    )
    assert len(plan) == 4
    assert plan.counts() == {
        "node_crash": 1,
        "link_down": 1,
        "link_jitter": 1,
        "msg_drop": 1,
    }
    assert plan.crash_positions() == {3}
    assert not plan.is_empty
    assert FaultPlan.empty().is_empty
    assert "crash node 3" in plan.describe()


def test_random_plan_is_seed_deterministic():
    kwargs = dict(
        n=32, horizon=64, node_crash_rate=0.2, link_outage_rate=0.2,
        jitter_rate=0.2, drop_rate=0.2,
    )
    a = FaultPlan.random(seed=7, **kwargs)
    b = FaultPlan.random(seed=7, **kwargs)
    c = FaultPlan.random(seed=8, **kwargs)
    assert a.events == b.events
    assert a.events != c.events
    assert a.seed == 7


def test_plan_target_validation_at_compile():
    host = HostArray.uniform(8)
    with pytest.raises(ValueError, match="crash target"):
        FaultPlan().crash(8, 0).compile(host)
    with pytest.raises(ValueError, match="link target"):
        FaultPlan().link_down(7, 0).compile(host)  # links are 0..6


# -- compiled tables ------------------------------------------------------


def test_outage_window_and_permanence():
    plan = FaultPlan().link_down(0, 10, duration=5).link_down(1, 20)
    tables = FaultTables(plan, n=4)
    assert tables.link_outcome(0, 1, 9) == 0
    assert tables.link_outcome(0, 1, 10) is LOST
    assert tables.link_outcome(0, 1, 14) is LOST
    assert tables.link_outcome(0, 1, 15) == 0
    # permanent outage never ends; both directions affected
    assert tables.link_outcome(1, 1, 10_000) is LOST
    assert tables.link_outcome(1, -1, 10_000) is LOST
    assert tables.has_link_faults()


def test_one_shot_drop_consumed_once_per_compile():
    plan = FaultPlan().drop(0, 5, direction=1)
    tables = FaultTables(plan, n=2)
    assert tables.link_outcome(0, -1, 6) == 0  # other direction untouched
    assert tables.link_outcome(0, 1, 6) is LOST
    assert tables.link_outcome(0, 1, 7) == 0  # consumed
    # a fresh compile replays the same fate — plans are reusable
    again = FaultTables(plan, n=2)
    assert again.link_outcome(0, 1, 6) is LOST


def test_jitter_adds_extra_delay_in_window():
    plan = FaultPlan().jitter(0, 10, 10, extra=3)
    tables = FaultTables(plan, n=2)
    assert tables.link_outcome(0, 1, 9) == 0
    assert tables.link_outcome(0, 1, 12) == 3
    assert tables.link_outcome(0, 1, 20) == 0


def test_crash_times_keep_earliest():
    plan = FaultPlan().crash(2, 30).crash(2, 10)
    tables = FaultTables(plan, n=4)
    assert tables.crash_times == {2: 10}


# -- fault-aware fabrics --------------------------------------------------


def test_linefabric_hop_faulty_lost_consumes_slot():
    fabric = LineFabric([2, 2], bandwidth=1)
    fabric.attach_faults(FaultTables(FaultPlan().link_down(0, 0, duration=100), 3))
    assert fabric.hop_faulty(0, +1, 0) is LOST
    # The doomed injection still occupied a slot: the next send queues
    # behind it exactly as a successful one would have.
    assert fabric.total_injections == 1
    assert fabric.hop_faulty(1, +1, 0) == 2  # other link unaffected


def test_linefabric_hop_faulty_jitter_inflates_arrival():
    fabric = LineFabric([2], bandwidth=4)
    fabric.attach_faults(FaultTables(FaultPlan().jitter(0, 0, 50, 5), 2))
    assert fabric.hop_faulty(0, +1, 0) == 2 + 5
    fabric2 = LineFabric([2], bandwidth=4)
    assert fabric2.hop(0, +1, 0) == 2  # same send, no faults


def test_graph_fabric_hop_faulty_uses_edge_enumeration():
    import networkx as nx

    from repro.netsim.routing import DELAY_ATTR

    g = nx.cycle_graph(4)
    nx.set_edge_attributes(g, 1, DELAY_ATTR)
    fabric = Fabric(g)
    edges = list(g.edges())
    u, v = edges[0]
    plan = FaultPlan().link_down(0, 0, duration=100)
    fabric.attach_faults(FaultTables(plan, g.number_of_nodes(), n_links=len(edges)))
    assert fabric.hop_faulty(u, v, 0) is LOST
    assert fabric.hop_faulty(v, u, 0) is LOST  # both directions
    u2, v2 = edges[1]
    assert fabric.hop_faulty(u2, v2, 0) == 1


def test_fabric_pipe_keyerror_has_remediation_hint():
    import networkx as nx

    from repro.netsim.routing import DELAY_ATTR

    g = nx.path_graph(4)
    nx.set_edge_attributes(g, 1, DELAY_ATTR)
    fabric = Fabric(g)
    with pytest.raises(KeyError, match="not a link of the host"):
        fabric.pipe(0, 3)
    try:
        fabric.pipe(0, 3)
    except KeyError as exc:
        msg = str(exc)
        assert "neighbours" in msg and "route" in msg
    with pytest.raises(KeyError, match="not in the host graph"):
        fabric.pipe(99, 0)


# -- recovery policy ------------------------------------------------------


def test_recovery_policy_validation_and_timeout():
    with pytest.raises(ValueError):
        RecoveryPolicy(retry_factor=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(max_retries=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(restart_penalty=-1)
    with pytest.raises(ValueError):
        RecoveryPolicy(watchdog_factor=0.5)
    policy = RecoveryPolicy(retry_factor=3.0)
    assert policy.timeout(10) == 30
    assert policy.timeout(0) >= 4  # floored


# -- determinism ----------------------------------------------------------


def _run_with_plan(plan, trace=None):
    host = HostArray.uniform(32)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, min_copies=2)
    ex = GreedyExecutor(
        host, assignment, CounterProgram(), 6, faults=plan, trace=trace
    )
    return ex.run()


def test_identical_plan_gives_byte_identical_runs():
    plan = FaultPlan.random(
        32, seed=11, horizon=40, node_crash_rate=0.1, drop_rate=0.1
    )
    t1, t2 = Trace(), Trace()
    r1 = _run_with_plan(plan, t1)
    r2 = _run_with_plan(plan, t2)
    assert t1.records == t2.records
    assert t1.fault_marks == t2.fault_marks
    assert r1.value_digests == r2.value_digests
    assert r1.stats.as_dict() == r2.stats.as_dict()
    assert {k: (d.version, d.digest) for k, d in r1.replicas.items()} == {
        k: (d.version, d.digest) for k, d in r2.replicas.items()
    }


def test_empty_plan_bit_identical_to_fault_free():
    host = HostArray.uniform(32)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, min_copies=2)
    prog = CounterProgram()
    t_plain, t_empty = Trace(), Trace()
    plain = GreedyExecutor(host, assignment, prog, 6, trace=t_plain).run()
    empty = GreedyExecutor(
        host, assignment, prog, 6, trace=t_empty, faults=FaultPlan.empty()
    ).run()
    assert t_plain.records == t_empty.records
    assert t_empty.fault_marks == []
    assert plain.stats.makespan == empty.stats.makespan
    assert plain.stats.as_dict() == empty.stats.as_dict()
    assert plain.value_digests == empty.value_digests


# -- stats / trace surfacing ----------------------------------------------


def test_stats_fault_counters_merge_and_dict():
    a = SimStats(faults_injected=2, retries=3, recoveries=1, crashed_nodes=1)
    b = SimStats(faults_injected=1, lost_messages=4, columns_lost=5)
    a.merge(b)
    d = a.as_dict()
    assert d["faults_injected"] == 3
    assert d["retries"] == 3
    assert d["lost_messages"] == 4
    assert d["recoveries"] == 1
    assert d["columns_lost"] == 5
    assert d["crashed_nodes"] == 1


def test_trace_fault_marks_summary():
    t = Trace()
    t.record(1, 0, 1, 1)
    assert "fault_marks" not in t.summary()
    t.record_fault(3, "crash", "node 2")
    t.record_fault(5, "recovery", "epoch 1")
    t.record_fault(9, "retry", "7 col 3 from 9")
    s = t.summary()
    assert s["fault_marks"] == 3
    assert s["fault_kinds"] == {"crash": 1, "recovery": 1, "retry": 1}
