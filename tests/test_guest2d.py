"""2-D guest machine: frames, reference execution, digests."""

import numpy as np
import pytest

from repro.machine.guest2d import (
    Dataflow2DProgram,
    Guest2D,
    StencilCounterProgram,
    db2_digest_seed,
    frame_value,
    initial_value_2d,
)


def test_reference_shapes():
    g = Guest2D(5, StencilCounterProgram())
    ref = g.run_reference(3)
    assert ref.values.shape == (4, 7, 7)
    assert ref.update_digests.shape == (5, 5)
    assert ref.state_digests.shape == (5, 5)


def test_row0_initial_values():
    g = Guest2D(4, StencilCounterProgram())
    ref = g.run_reference(0)
    assert ref.pebble(2, 3, 0) == initial_value_2d(2, 3)


def test_frame_fills_border():
    g = Guest2D(3, StencilCounterProgram())
    ref = g.run_reference(2)
    assert int(ref.values[2, 0, 1]) == frame_value(0, 1, 2)
    assert int(ref.values[1, 4, 4]) == frame_value(4, 4, 1)


def test_deterministic():
    g = Guest2D(6, StencilCounterProgram())
    a = g.run_reference(4)
    b = g.run_reference(4)
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.update_digests, b.update_digests)


def test_scalar_compute_matches_grid():
    prog = StencilCounterProgram()
    m = 4
    g = Guest2D(m, prog)
    ref = g.run_reference(2)
    # Recompute pebble (2, 2, 1) by hand from the t=0 layer.
    v0 = ref.values[0]
    states = prog.init_state_grid(m)
    val, upd = prog.compute(
        2, 2, 1,
        int(states[1, 1]),
        int(v0[1, 2]), int(v0[3, 2]), int(v0[2, 1]), int(v0[2, 3]), int(v0[2, 2]),
    )
    assert ref.pebble(2, 2, 1) == val


def test_init_state_scalar_matches_grid():
    prog = StencilCounterProgram()
    grid = prog.init_state_grid(5)
    for r in range(1, 6):
        for c in range(1, 6):
            assert prog.init_state(r, c) == int(grid[r - 1, c - 1])


def test_db2_digest_seed_matches_reference_seed():
    g = Guest2D(3, StencilCounterProgram())
    ref = g.run_reference(0)
    # With zero steps the digests are the seeds.
    for r in range(1, 4):
        for c in range(1, 4):
            assert int(ref.update_digests[r - 1, c - 1]) == db2_digest_seed(r, c)


def test_dataflow2d_has_constant_state():
    g = Guest2D(4, Dataflow2DProgram())
    ref = g.run_reference(3)
    assert np.all(ref.state_digests == 0)


def test_values_unique_in_small_grid():
    g = Guest2D(4, StencilCounterProgram())
    ref = g.run_reference(3)
    interior = ref.values[1:, 1:5, 1:5].ravel().tolist()
    assert len(set(interior)) == len(interior)


def test_invalid_size():
    with pytest.raises(ValueError):
        Guest2D(0, StencilCounterProgram())
