"""Differential tests: the segmented faulted dense tier must be
bit-identical to GreedyExecutor under scripted faults.

:class:`~repro.core.dense_faults.FaultedDenseExecutor` replays each
fault-free stretch of a run with the vectorised watermark skeleton and
falls back to scalar stepping only inside recovery epochs, so these
tests compare *everything* a faulted run produces — stats, value
digests, replicas, telemetry timelines, and (for runs that cannot
finish) the deadlock diagnostics — across line, ring and graph hosts.

The CI bench-compare gate refuses runs where these tests were skipped,
so keep them dependency-light and fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import assign_databases
from repro.core.dense import DenseExecutor, build_executor, resolve_engine
from repro.core.dense_faults import ExecutorCheckpoint, FaultedDenseExecutor
from repro.core.executor import GreedyExecutor, SimulationDeadlock
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap, simulate_overlap_on_graph
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram, get_program
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.telemetry import MetricsTimeline
from repro.topology.delays import scale_to_average, uniform_delays
from repro.topology.generators import mesh_host, now_cluster_host, tree_host

# ---------------------------------------------------------------------------
# helpers


def _random_host(n: int, d_ave: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_ave))


def _stats_dict(result):
    return dict(result.stats.__dict__)


def _telemetry_dict(timeline):
    """Timeline contents minus ``meta`` (whose ``engine`` tag differs)."""
    d = timeline.as_dict()
    d.pop("meta", None)
    return d


def _run_both(run_one):
    """Run ``run_one(engine, timeline)`` on both tiers; compare outcomes.

    Returns the two results on success.  If one engine deadlocks, both
    must, with identical diagnostics.
    """
    outcomes = []
    for eng in ("greedy", "auto"):
        tl = MetricsTimeline()
        try:
            outcomes.append(("ok", run_one(eng, tl), tl))
        except SimulationDeadlock as exc:
            outcomes.append(
                ("dead", (str(exc), exc.pending, exc.undelivered, exc.fault_log), tl)
            )
    (kind_g, out_g, tl_g), (kind_d, out_d, tl_d) = outcomes
    assert kind_g == kind_d, f"greedy={kind_g} dense={kind_d}"
    if kind_g == "dead":
        assert out_d == out_g, "deadlock diagnostics diverge"
        return None, None
    assert _stats_dict(out_d.exec_result) == _stats_dict(out_g.exec_result)
    assert out_d.exec_result.value_digests == out_g.exec_result.value_digests
    reps_g, reps_d = out_g.exec_result.replicas, out_d.exec_result.replicas
    assert reps_d.keys() == reps_g.keys()
    for key, rep in reps_g.items():
        other = reps_d[key]
        assert (other.column, other.version, other.digest) == (
            rep.column,
            rep.version,
            rep.digest,
        ), key
        assert other.state == rep.state, key
    assert _telemetry_dict(tl_d) == _telemetry_dict(tl_g)
    assert out_d.engine == "dense"
    assert out_g.engine == "greedy"
    return out_g, out_d


# ---------------------------------------------------------------------------
# line hosts: full fault mix (crashes + outages + jitter + drops)

FAULTED_LINE_GRID = [
    # (n, d_ave, steps, min_copies, seed, crash, outage, jitter, drop)
    (16, 2.0, 16, 2, 0, 0.08, 0.10, 0.20, 0.20),
    (24, 3.0, 24, 2, 1, 0.08, 0.10, 0.20, 0.20),
    (24, 3.0, 24, 2, 2, 0.00, 0.15, 0.25, 0.25),  # link-only
    (32, 4.0, 24, 2, 3, 0.10, 0.10, 0.15, 0.15),
    (33, 5.0, 32, 2, 4, 0.06, 0.12, 0.20, 0.20),
    (40, 2.0, 24, 3, 5, 0.08, 0.10, 0.20, 0.20),
    (24, 3.0, 16, 2, 6, 0.15, 0.00, 0.00, 0.00),  # crash-only
    (24, 3.0, 16, 1, 7, 0.00, 0.10, 0.20, 0.30),  # single-copy, link-only
]


@pytest.mark.parametrize(
    "n,d_ave,steps,copies,seed,crash,outage,jitter,drop", FAULTED_LINE_GRID
)
def test_differential_faulted_line(
    n, d_ave, steps, copies, seed, crash, outage, jitter, drop
):
    host = _random_host(n, d_ave, seed)
    horizon = steps * (2 * int(d_ave) + 4)
    plan = FaultPlan.random(
        n,
        seed=1000 + seed,
        horizon=horizon,
        node_crash_rate=crash,
        link_outage_rate=outage,
        jitter_rate=jitter,
        drop_rate=drop,
    )
    _run_both(
        lambda eng, tl: simulate_overlap(
            host,
            steps=steps,
            min_copies=copies,
            faults=plan,
            engine=eng,
            telemetry=tl,
        )
    )


# ---------------------------------------------------------------------------
# ring guests: link-level faults through the dep_map wiring


def _link_plan(n: int, seed: int) -> FaultPlan:
    rng = np.random.default_rng(seed)
    plan = FaultPlan()
    for _ in range(int(rng.integers(1, 4))):
        link = int(rng.integers(0, n - 1))
        plan.link_down(link, int(rng.integers(1, 80)), int(rng.integers(2, 14)))
    for _ in range(int(rng.integers(0, 3))):
        plan.jitter(
            int(rng.integers(0, n - 1)),
            int(rng.integers(0, 80)),
            int(rng.integers(2, 12)),
            int(rng.integers(1, 6)),
        )
    for _ in range(int(rng.integers(0, 4))):
        plan.drop(
            int(rng.integers(0, n - 1)),
            int(rng.integers(1, 80)),
            direction=int(rng.choice([1, -1])),
        )
    return plan


RING_FAULT_GRID = [
    # (n, copies, program, seed)
    (16, 2, "counter", 0),
    (24, 2, "counter", 1),
    (24, 1, "counter", 2),
    (32, 2, "hashchain", 3),
    (32, 3, "token", 4),
]


@pytest.mark.parametrize("n,copies,prog,seed", RING_FAULT_GRID)
def test_differential_faulted_ring(n, copies, prog, seed):
    from repro.core.ring import simulate_ring

    host = _random_host(n, 3.0, 50 + seed)
    plan = _link_plan(n, 500 + seed)

    def run_one(eng, tl):
        return simulate_ring(
            host,
            m=n,
            steps=16,
            program=get_program(prog),
            copies=copies,
            engine=eng,
            telemetry=tl,
            faults=plan,
        )

    _run_both(run_one)


def test_ring_crash_rejected_on_both_engines():
    """Node crashes on a dep_map guest raise identically on both tiers:
    recovery reassignment assumes the standard array adjacency."""
    from repro.core.ring import simulate_ring

    host = HostArray.uniform(16, 2)
    plan = FaultPlan().crash(4, 10)
    for eng in ("greedy", "auto", "dense"):
        with pytest.raises(ValueError, match="dep_map"):
            simulate_ring(host, m=16, steps=8, copies=2, engine=eng, faults=plan)


# ---------------------------------------------------------------------------
# graph hosts: full fault mix in embedded-array coordinates


def _graph_hosts():
    rng = np.random.default_rng(7)
    yield mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    yield tree_host(3, uniform_delays(14, rng, 1, 6))
    yield now_cluster_host(3, 4, intra_delay=1, inter_delay=8)


@pytest.mark.parametrize("host", list(_graph_hosts()), ids=lambda h: h.name)
def test_differential_faulted_graph(host):
    plan = FaultPlan.random(
        host.n,
        seed=hash(host.name) % 1000,
        horizon=300,
        node_crash_rate=0.06,
        link_outage_rate=0.10,
        jitter_rate=0.15,
        drop_rate=0.15,
    )
    _run_both(
        lambda eng, tl: simulate_overlap_on_graph(
            host, steps=24, min_copies=2, faults=plan, engine=eng, telemetry=tl
        )
    )


def test_faulted_composed_engines_agree():
    from repro.core.composed import simulate_composed

    host = HostArray.uniform(24, 4)
    plan = FaultPlan.random(
        24,
        seed=42,
        horizon=2000,
        node_crash_rate=0.05,
        link_outage_rate=0.08,
        jitter_rate=0.10,
        drop_rate=0.10,
    )
    greedy = simulate_composed(host, steps=12, engine="greedy", faults=plan)
    dense = simulate_composed(host, steps=12, engine="auto", faults=plan)
    assert dense.engine == "dense" and greedy.engine == "greedy"
    assert greedy.verified and dense.verified
    assert _stats_dict(dense.exec_result) == _stats_dict(greedy.exec_result)
    assert dense.exec_result.value_digests == greedy.exec_result.value_digests


# ---------------------------------------------------------------------------
# engine selection and verification under faults


def test_faulted_auto_resolves_dense():
    plan = FaultPlan().crash(3, 10).link_down(2, 5, 10)
    assert resolve_engine("auto", faults=plan) == "dense"
    assert resolve_engine("auto", faults=plan, policy=RecoveryPolicy()) == "dense"
    # Greedy-only machinery still wins over faults.
    assert resolve_engine("auto", faults=plan, tie_seed=3) == "greedy"


def test_build_executor_faulted_dispatch():
    host = _random_host(16, 2.0, 90)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1, min_copies=2)
    prog = CounterProgram()
    plan = FaultPlan().link_down(3, 4, 6)
    ex = build_executor("auto", host, assignment, prog, 8, faults=plan)
    assert isinstance(ex, FaultedDenseExecutor)
    ex = build_executor(
        "auto", host, assignment, prog, 8, faults=FaultPlan.empty()
    )
    assert isinstance(ex, DenseExecutor)
    assert not isinstance(ex, FaultedDenseExecutor)
    ex = build_executor("greedy", host, assignment, prog, 8, faults=plan)
    assert isinstance(ex, GreedyExecutor)


def test_faulted_dense_verifies_against_reference():
    host = _random_host(32, 3.0, 91)
    plan = FaultPlan.random(
        host.n, seed=9, horizon=200, link_outage_rate=0.1, drop_rate=0.2
    )
    res = simulate_overlap(
        host, steps=16, min_copies=2, faults=plan, engine="auto", verify=True
    )
    assert res.verified and res.engine == "dense"


# ---------------------------------------------------------------------------
# deadlock equivalence: when a run cannot finish, both tiers must fail
# with the same diagnostics


def test_faulted_deadlock_diagnostics_agree():
    host = HostArray.uniform(12, 2)
    # Permanent bidirectional outage on a middle link with single-copy
    # replicas: downstream subscriptions can never be served.
    plan = FaultPlan().link_down(5, 2)

    def run_one(eng, tl):
        return simulate_overlap(
            host,
            steps=8,
            faults=plan,
            engine=eng,
            telemetry=tl,
            verify=False,
        )

    out_g, out_d = _run_both(run_one)
    assert out_g is None and out_d is None  # both deadlocked, identically


# ---------------------------------------------------------------------------
# satellite regression: no-op fault plans must not leave the dense tier
# (one case per event kind), and effect-free runs are bit-identical to
# truly fault-free ones


def _zero_extra_jitter_plan() -> FaultPlan:
    # The builder rejects extra < 1, so a zero-extra window can only
    # come from a hand-rolled event; the compile-time filter is the
    # defensive net for exactly that case.
    from repro.netsim.faults import LINK_JITTER, FaultEvent

    ev = FaultEvent(LINK_JITTER, 5, 2, 10, 1)
    object.__setattr__(ev, "extra", 0)
    return FaultPlan([ev])


def _noop_plans():
    yield "crash-past-horizon", FaultPlan().crash(3, 500).declare_horizon(100)
    yield "outage-past-horizon", FaultPlan().link_down(2, 500, 10).declare_horizon(100)
    yield "jitter-past-horizon", FaultPlan().jitter(2, 500, 10, 4).declare_horizon(100)
    yield "drop-past-horizon", FaultPlan().drop(2, 500).declare_horizon(100)
    yield "jitter-zero-extra", _zero_extra_jitter_plan()


@pytest.mark.parametrize(
    "label,plan", list(_noop_plans()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_noop_plan_stays_dense(label, plan):
    host = HostArray.uniform(16, 2)
    assert not plan.is_empty  # the plan has events...
    assert plan.compile(host).is_effect_free  # ...but they compile away
    baseline = simulate_overlap(host, steps=12, engine="auto")
    res = simulate_overlap(host, steps=12, faults=plan, engine="auto")
    assert res.engine == "dense"
    assert _stats_dict(res.exec_result) == _stats_dict(baseline.exec_result)
    assert (
        res.exec_result.value_digests == baseline.exec_result.value_digests
    )
    greedy = simulate_overlap(host, steps=12, faults=plan, engine="greedy")
    assert _stats_dict(greedy.exec_result) == _stats_dict(baseline.exec_result)


def test_noop_plan_still_validates_targets():
    host = HostArray.uniform(8, 2)
    bad = FaultPlan().crash(99, 500).declare_horizon(100)
    with pytest.raises(ValueError, match="crash target"):
        bad.compile(host)
    bad = FaultPlan().link_down(99, 500, 5).declare_horizon(100)
    with pytest.raises(ValueError, match="link target"):
        bad.compile(host)


# ---------------------------------------------------------------------------
# checkpoints: the segmented executor snapshots state at every fault
# boundary (the reusable hook for incremental re-simulation)


def test_checkpoints_captured_at_boundaries():
    host = HostArray.uniform(24, 3)
    killing = kill_and_label(host, 4.0)
    assignment = assign_databases(killing, 1, min_copies=2)
    plan = FaultPlan().crash(5, 40).link_down(3, 10, 15)
    ex = FaultedDenseExecutor(
        host, assignment, CounterProgram(), 64, faults=plan
    )
    result = ex.run()
    assert result.stats.makespan > 0
    assert ex.checkpoints, "no checkpoints captured"
    for cp in ex.checkpoints:
        assert isinstance(cp, ExecutorCheckpoint)
        assert cp.label in ("fault-boundary", "resume")
        summary = cp.summary()
        assert summary["time"] == cp.time
        assert summary["remaining"] >= 0
    times = [cp.time for cp in ex.checkpoints]
    assert times == sorted(times)
    # The crash boundary and the post-recovery resume are both present.
    assert any(cp.label == "resume" for cp in ex.checkpoints)
    boundary_times = {cp.time for cp in ex.checkpoints}
    assert 10 in boundary_times or 25 in boundary_times or 40 in boundary_times
