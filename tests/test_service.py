"""Service-layer tests: lifecycle, coalescing, backpressure, caching.

The service's contract is behavioural, so these tests drive real
asyncio schedules (``asyncio.run`` inside sync tests — the suite has no
asyncio plugin) against small in-process tasks:

* duplicate submissions resolve to **one** execution, byte-identical
  results everywhere (including vs an independent fresh service);
* client cancellation mid-run — of the sole waiter, and of the leader
  while a coalesced follower remains — never corrupts accounting;
* admission control sheds with typed reasons instead of queueing;
* the in-memory LRU stays consistent with the JSON disk cache (an
  evicted entry re-serves from disk with the same bytes);
* ``SweepRunner.submit`` reports the correct origin per serving tier,
  and :class:`ServiceMetrics` reconciles with the runner profile.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.experiments.x5 import base_config, edit_grid, _edit_point
from repro.runner import SweepRunner, shutdown_pool
from repro.service import (
    LRUCache,
    ServiceOverloaded,
    SimulationService,
    get_task,
    request,
    start_server,
)

# ---------------------------------------------------------------------------
# tasks (module-level: the runner tags them by qualified name)

_CALLS = {"n": 0}


def _counting_task(cfg: dict) -> dict:
    """Counts real executions; sleeps long enough for duplicates to
    pile up behind the leader (workers=1 runs tasks on threads, and
    ``time.sleep`` releases the GIL)."""
    _CALLS["n"] += 1
    time.sleep(cfg.get("sleep", 0.05))
    return {"x": cfg["x"], "value": cfg["x"] * 2}


def _slow_task(cfg: dict) -> dict:
    time.sleep(cfg.get("sleep", 0.2))
    return {"x": cfg["x"]}


def _quick_task(cfg: dict) -> dict:
    return {"x": cfg["x"], "value": cfg["x"] + 1}


def _service(tmp_path, cache=True, **kw) -> SimulationService:
    runner = SweepRunner(
        cache_dir=tmp_path / "cache" if cache else None, profile=True
    )
    return SimulationService(runner, **kw)


def _dump(obj) -> str:
    return json.dumps(obj, sort_keys=True)


@pytest.fixture(autouse=True)
def _reset_calls():
    _CALLS["n"] = 0
    yield


# ---------------------------------------------------------------------------
# LRU unit behaviour


def test_lru_eviction_order_and_counters():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # freshens a
    lru.put("c", 3)  # evicts b (LRU)
    assert lru.get("b") is None
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert lru.stats() == {
        "entries": 2,
        "capacity": 2,
        "hits": 3,
        "misses": 1,
        "evictions": 1,
    }


def test_lru_rejects_zero_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_put_refresh_does_not_grow():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("a", 2)
    lru.put("b", 3)
    assert len(lru) == 2 and lru.get("a") == 2


# ---------------------------------------------------------------------------
# serving tiers and consistency


def test_compute_then_memory_hit(tmp_path):
    async def main():
        svc = _service(tmp_path)
        first = await svc.submit(_quick_task, {"x": 3})
        events = []
        second = await svc.submit(_quick_task, {"x": 3}, on_event=events.append)
        assert first == second == {"x": 3, "value": 4}
        assert _dump(first) == _dump(second)
        assert svc.metrics.served["compute"] == 1
        assert svc.metrics.served["memory"] == 1
        assert [e["event"] for e in events] == ["accepted", "cache_hit"]
        assert events[1]["tier"] == "memory"

    asyncio.run(main())


def test_lru_eviction_falls_back_to_disk_identically(tmp_path):
    """An entry evicted from the memory tier re-serves from the JSON
    disk cache with the same bytes (two-tier consistency)."""

    async def main():
        svc = _service(tmp_path, lru_entries=1)
        first = await svc.submit(_quick_task, {"x": 1})
        await svc.submit(_quick_task, {"x": 2})  # evicts x=1 from the LRU
        again = await svc.submit(_quick_task, {"x": 1})
        assert _dump(again) == _dump(first)
        assert svc.metrics.served["cache"] == 1  # disk tier, not memory
        assert svc.metrics.exec_cache == 1
        # and now it is back in memory
        final = await svc.submit(_quick_task, {"x": 1})
        assert _dump(final) == _dump(first)
        assert svc.metrics.served["memory"] == 1

    asyncio.run(main())


def test_memory_hit_is_immune_to_client_mutation(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        first = await svc.submit(_quick_task, {"x": 5})
        first["value"] = "corrupted"
        second = await svc.submit(_quick_task, {"x": 5})
        assert second == {"x": 5, "value": 6}

    asyncio.run(main())


def test_duplicate_submissions_one_execution(tmp_path):
    async def main():
        svc = _service(tmp_path)
        results = await asyncio.gather(
            *(svc.submit(_counting_task, {"x": 7}) for _ in range(6))
        )
        blobs = {_dump(r) for r in results}
        assert len(blobs) == 1
        assert _CALLS["n"] == 1
        assert svc.metrics.served["compute"] == 1
        assert svc.metrics.served["coalesced"] == 5
        assert svc.metrics.exec_compute == 1

    asyncio.run(main())


def test_coalesced_and_independent_results_byte_identical(tmp_path):
    """A coalesced response must be indistinguishable from one computed
    independently on a fresh service (the bench gate's identity check)."""

    async def main():
        svc_a = _service(tmp_path / "a")
        coalesced = await asyncio.gather(
            *(svc_a.submit(_counting_task, {"x": 9}) for _ in range(4))
        )
        svc_b = _service(tmp_path / "b")
        independent = await svc_b.submit(_counting_task, {"x": 9})
        assert {_dump(r) for r in coalesced} == {_dump(independent)}
        assert _CALLS["n"] == 2  # one per service, not one per request

    asyncio.run(main())


# ---------------------------------------------------------------------------
# admission control / backpressure


def test_queue_full_sheds_with_reason(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False, max_queue=1)
        leader = asyncio.ensure_future(svc.submit(_slow_task, {"x": 1}))
        await asyncio.sleep(0)  # leader admits synchronously on first run
        with pytest.raises(ServiceOverloaded) as exc:
            await svc.submit(_slow_task, {"x": 2})
        assert exc.value.reason == "queue_full"
        assert svc.metrics.shed["queue_full"] == 1
        assert await leader == {"x": 1}
        # capacity freed: the same request is admitted now
        assert await svc.submit(_slow_task, {"x": 2, "sleep": 0.01}) == {"x": 2}

    asyncio.run(main())


def test_per_client_limit_sheds_but_other_clients_pass(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False, per_client=1)
        leader = asyncio.ensure_future(
            svc.submit(_slow_task, {"x": 1}, client="alice")
        )
        await asyncio.sleep(0)
        with pytest.raises(ServiceOverloaded) as exc:
            await svc.submit(_slow_task, {"x": 2}, client="alice")
        assert exc.value.reason == "client_limit"
        # a different client name is not blocked by alice's quota
        assert await svc.submit(
            _slow_task, {"x": 3, "sleep": 0.01}, client="bob"
        ) == {"x": 3}
        await leader

    asyncio.run(main())


def test_duplicates_coalesce_instead_of_shedding(tmp_path):
    """Admission counts executions, not requests: a duplicate joins the
    in-flight run even when the queue is otherwise full."""

    async def main():
        svc = _service(tmp_path, cache=False, max_queue=1)
        results = await asyncio.gather(
            *(svc.submit(_counting_task, {"x": 4}) for _ in range(5))
        )
        assert len({_dump(r) for r in results}) == 1
        assert _CALLS["n"] == 1
        assert sum(svc.metrics.shed.values()) == 0

    asyncio.run(main())


# ---------------------------------------------------------------------------
# cancellation


def test_sole_waiter_cancellation_abandons_execution(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        t = asyncio.ensure_future(svc.submit(_slow_task, {"x": 1, "sleep": 0.3}))
        await asyncio.sleep(0.05)  # execution underway
        t.cancel()
        with pytest.raises(asyncio.CancelledError):
            await t
        for _ in range(100):  # cleanup settles via the execution task
            if not svc._inflight and svc._admitted == 0:
                break
            await asyncio.sleep(0.01)
        assert svc.metrics.cancelled == 1
        assert svc.metrics.exec_abandoned == 1
        assert svc.metrics.exec_compute == 0
        # the service still serves fresh requests afterwards
        assert await svc.submit(_slow_task, {"x": 2, "sleep": 0.01}) == {"x": 2}

    asyncio.run(main())


def test_leader_cancellation_keeps_follower_alive(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        leader = asyncio.ensure_future(
            svc.submit(_counting_task, {"x": 2, "sleep": 0.2})
        )
        await asyncio.sleep(0)  # leader dispatches
        follower = asyncio.ensure_future(
            svc.submit(_counting_task, {"x": 2, "sleep": 0.2})
        )
        await asyncio.sleep(0.05)
        leader.cancel()
        with pytest.raises(asyncio.CancelledError):
            await leader
        assert await follower == {"x": 2, "value": 4}
        assert _CALLS["n"] == 1
        assert svc.metrics.cancelled == 1
        assert svc.metrics.served["coalesced"] == 1
        assert svc.metrics.exec_abandoned == 0  # execution was never orphaned

    asyncio.run(main())


# ---------------------------------------------------------------------------
# streaming


def test_stream_event_order_compute_and_memory(tmp_path):
    async def main():
        svc = _service(tmp_path)
        cold = [e async for e in svc.stream(_quick_task, {"x": 1})]
        assert [e["event"] for e in cold] == [
            "accepted",
            "queued",
            "started",
            "done",
        ]
        assert cold[-1]["result"] == {"x": 1, "value": 2}
        warm = [e async for e in svc.stream(_quick_task, {"x": 1})]
        assert [e["event"] for e in warm] == ["accepted", "cache_hit", "done"]
        assert warm[1]["tier"] == "memory"
        assert _dump(warm[-1]["result"]) == _dump(cold[-1]["result"])

    asyncio.run(main())


def test_stream_terminal_shed_event(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False, max_queue=0)
        events = [e async for e in svc.stream(_quick_task, {"x": 1})]
        assert events[-1]["event"] == "shed"
        assert events[-1]["reason"] == "queue_full"
        assert svc.metrics.shed["queue_full"] == 1

    asyncio.run(main())


def test_stream_terminal_failed_event(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        events = [e async for e in svc.stream("no_such_task", {})]
        assert events[-1]["event"] == "failed"
        assert "no_such_task" in events[-1]["error"]
        assert svc.metrics.failed == 1

    asyncio.run(main())


def test_stream_consumer_break_cancels_request(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        gen = svc.stream(_slow_task, {"x": 1, "sleep": 0.3})
        async for event in gen:
            if event["event"] == "started":
                break
        await gen.aclose()
        for _ in range(100):
            if not svc._inflight and svc._admitted == 0:
                break
            await asyncio.sleep(0.01)
        assert svc.metrics.cancelled == 1

    asyncio.run(main())


# ---------------------------------------------------------------------------
# runner submit origins + metrics reconciliation


def test_runner_submit_origins_cache_and_compute(tmp_path):
    runner = SweepRunner(cache_dir=tmp_path / "c", profile=True)
    t1 = runner.submit(_quick_task, {"x": 1})
    assert t1.origin == "compute"
    assert t1.future.result(timeout=10) == {"x": 1, "value": 2}
    t2 = runner.submit(_quick_task, {"x": 1})
    assert t2.origin == "cache"
    assert t2.future.result(timeout=0) == {"x": 1, "value": 2}
    assert runner.profile.cache_hits == 1
    assert runner.profile.cache_misses == 1


def test_runner_submit_delta_origin_matches_recompute(tmp_path):
    base = base_config(n=16, steps=8)
    edit = edit_grid(base, k=2)[1]  # recovery-policy knob tweak
    runner = SweepRunner(cache_dir=tmp_path / "c")
    seed = runner.submit(_edit_point, base)
    assert seed.origin == "compute"
    seeded = seed.future.result(timeout=60)
    ticket = runner.submit(_edit_point, edit)
    assert ticket.origin == "delta"
    replayed = ticket.future.result(timeout=60)
    scratch = SweepRunner(cache_dir=tmp_path / "scratch", delta=False)
    full = scratch.submit(_edit_point, edit).future.result(timeout=60)
    assert _dump(replayed) == _dump(full)
    assert _dump(seeded) != _dump(replayed)  # the edit really changed it


def test_service_metrics_reconcile_with_runner_profile(tmp_path):
    async def main():
        svc = _service(tmp_path, max_queue=1)
        await svc.submit(_quick_task, {"x": 1})  # compute
        await svc.submit(_quick_task, {"x": 1})  # memory
        svc.memory.clear()
        await svc.submit(_quick_task, {"x": 1})  # disk cache
        await asyncio.gather(
            *(svc.submit(_counting_task, {"x": 2}) for _ in range(3))
        )  # one compute + two coalesced
        leader = asyncio.ensure_future(svc.submit(_slow_task, {"x": 3}))
        await asyncio.sleep(0)
        with pytest.raises(ServiceOverloaded):
            await svc.submit(_slow_task, {"x": 4})  # shed
        await leader
        totals = svc.metrics.reconcile(svc.runner.profile)
        assert totals["requests"] == 8
        assert svc.metrics.served == {
            "memory": 1,
            "cache": 1,
            "delta": 0,
            "compute": 3,
            "coalesced": 2,
        }
        # spans: one request span per non-shed request, one execute span
        # per admitted execution
        log = svc.metrics.span_log()
        assert len(log.named("request")) == 8
        assert len(log.named("execute")) == 4

    asyncio.run(main())


def test_reconcile_raises_on_tampered_ledger(tmp_path):
    async def main():
        svc = _service(tmp_path, cache=False)
        await svc.submit(_quick_task, {"x": 1})
        svc.metrics.requests += 1  # simulate a lost request
        with pytest.raises(ValueError, match="ledger"):
            svc.metrics.reconcile()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# TCP transport


def test_tcp_round_trip_and_unknown_task(tmp_path):
    async def main():
        svc = _service(tmp_path)
        server = await start_server(svc, port=0)
        port = server.sockets[0].getsockname()[1]
        payload = {
            "id": "r1",
            "task": "ring_point",
            "config": {"n": 16, "steps": 4},
            "stream": True,
        }
        events = await request("127.0.0.1", port, payload)
        assert [e["event"] for e in events] == [
            "accepted",
            "queued",
            "started",
            "done",
        ]
        assert all(e["id"] == "r1" for e in events)
        direct = await svc.submit(get_task("ring_point"), {"n": 16, "steps": 4})
        assert _dump(events[-1]["result"]) == _dump(direct)
        bad = await request(
            "127.0.0.1", port, {"id": "r2", "task": "nope", "config": {}}
        )
        assert bad[-1]["event"] == "error"
        assert "nope" in bad[-1]["error"]
        server.close()
        await server.wait_closed()

    asyncio.run(main())


def teardown_module(_module) -> None:
    shutdown_pool()
