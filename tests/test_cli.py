"""CLI surface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "f6" in out
    assert "Theorem 2" in out


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SPAA 1996" in out


def test_run_quick_experiment(capsys):
    assert main(["run", "f1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "zz"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_all_writes_files(tmp_path, capsys, monkeypatch):
    # Patch the registry to only run the cheap figure experiments.
    import repro.cli as cli

    monkeypatch.setattr(cli, "list_experiments", lambda: ["f1", "f5"])
    assert main(["all", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "f1.txt").exists()
    assert (tmp_path / "f5.txt").exists()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_subcommand(capsys):
    assert main(["trace", "--preset", "campus", "--steps", "6", "--block", "2"]) == 0
    out = capsys.readouterr().out
    assert "space-time diagram" in out
    assert "slowdown:" in out


def test_trace_rejects_graph_preset(capsys):
    assert main(["trace", "--preset", "smp-cluster", "--steps", "4"]) == 2
    assert "graph host" in capsys.readouterr().err


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
