"""Baseline strategies and their relationship to OVERLAP."""

import numpy as np
import pytest

from repro.core.baselines import (
    lockstep_slowdown,
    prior_efficient_processor_count,
    simulate_lockstep_bound,
    simulate_prior_efficient,
    simulate_single_copy,
    spread_assignment,
    theoretical_overlap_advantage,
)
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.topology.generators import h1_host


class TestSpreadAssignment:
    def test_even_split(self):
        asg = spread_assignment(4, 8)
        assert asg.ranges == [(1, 2), (3, 4), (5, 6), (7, 8)]
        assert asg.redundancy() == 1.0

    def test_uneven_split(self):
        asg = spread_assignment(3, 7)
        widths = [hi - lo + 1 for lo, hi in asg.ranges]
        assert sorted(widths) == [2, 2, 3]
        asg.validate()

    def test_subset_positions(self):
        asg = spread_assignment(6, 6, positions=[0, 3, 5])
        assert asg.ranges[1] is None
        assert asg.ranges[3] == (3, 4)

    def test_more_positions_than_columns(self):
        asg = spread_assignment(5, 3)
        used = asg.used_positions()
        assert len(used) == 3

    def test_validates(self):
        with pytest.raises(ValueError):
            spread_assignment(0, 4)


class TestSingleCopy:
    def test_verified(self):
        res = simulate_single_copy(HostArray.uniform(8, 2), steps=6)
        assert res.verified
        assert res.name == "single-copy"

    def test_tracks_dmax_on_h1(self):
        host = h1_host(64)
        res = simulate_single_copy(host, steps=10)
        # Theorem 9 regime: slowdown ~ d_max/2 or worse.
        assert res.slowdown >= host.d_max / 2 - 1


class TestLockstep:
    def test_formula(self):
        host = HostArray([1, 7, 3])
        assert lockstep_slowdown(host) == 8
        res = simulate_lockstep_bound(host, steps=5)
        assert res.makespan == 5 * 8
        assert res.slowdown == 8.0

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            simulate_lockstep_bound(HostArray([1]), steps=0)


class TestPriorEfficient:
    def test_uses_few_processors(self):
        host = h1_host(64)  # d_max = 8
        res = simulate_prior_efficient(host, steps=8)
        assert res.verified
        used = len(res.assignment.used_positions())
        assert used <= max(1, 64 // 8) + 1

    def test_processor_count_formula(self):
        assert prior_efficient_processor_count(h1_host(64)) == 8

    def test_beats_lockstep_sometimes(self):
        # Amortising over big blocks beats paying d_max every step.
        host = h1_host(144)  # d_max = 12
        prior = simulate_prior_efficient(host, steps=12, verify=False)
        assert prior.slowdown != lockstep_slowdown(host)


class TestComparison:
    def test_overlap_beats_single_copy_with_blocking(self):
        """E9's headline: on a host with one huge link, blocked OVERLAP
        beats every no-redundancy strategy."""
        delays = [1] * 127
        delays[63] = 2048
        host = HostArray(delays)
        single = simulate_single_copy(host, steps=16, verify=False)
        blocked = simulate_overlap(host, steps=16, block=16, verify=False)
        assert blocked.slowdown < single.slowdown

    def test_advantage_formula(self):
        host = HostArray([1] * 63 + [4096] + [1] * 63)
        adv = theoretical_overlap_advantage(host)
        assert adv > 0
