"""LinkPipe semantics: the paper's pipelined-link timing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.links import LinkPipe, batch_transit_time


def test_single_pebble_takes_delay():
    pipe = LinkPipe(delay=7, bandwidth=3)
    assert pipe.inject(0) == 7


def test_burst_matches_paper_formula():
    # P pebbles ready at once cross a d-delay bw-wide link in
    # d + ceil(P/bw) - 1 steps (Section 2).
    d, bw, P = 5, 4, 13
    pipe = LinkPipe(d, bw)
    last = max(pipe.inject(0) for _ in range(P))
    assert last == d + -(-P // bw) - 1 == batch_transit_time(P, d, bw)


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=100),
)
def test_burst_formula_property(d, bw, P):
    pipe = LinkPipe(d, bw)
    last = max(pipe.inject(0) for _ in range(P))
    assert last == batch_transit_time(P, d, bw)


def test_spaced_injections_do_not_queue():
    pipe = LinkPipe(delay=3, bandwidth=1)
    assert pipe.inject(0) == 3
    assert pipe.inject(10) == 13
    assert pipe.inject(20) == 23


def test_bandwidth_slots_fill_before_spilling():
    pipe = LinkPipe(delay=2, bandwidth=2)
    assert pipe.inject(0) == 2  # slot 0 (1/2)
    assert pipe.inject(0) == 2  # slot 0 (2/2)
    assert pipe.inject(0) == 3  # slot 1
    assert pipe.inject(1) == 3  # slot 1 (2/2)
    assert pipe.inject(1) == 4  # slot 2


def test_monotonicity_enforced():
    pipe = LinkPipe(delay=1)
    pipe.inject(5)
    with pytest.raises(AssertionError):
        pipe.inject(4)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        LinkPipe(0)
    with pytest.raises(ValueError):
        LinkPipe(1, 0)


def test_reset_restores_idle_state():
    pipe = LinkPipe(delay=4, bandwidth=1)
    pipe.inject(0)
    pipe.inject(0)
    pipe.reset()
    assert pipe.injected == 0
    assert pipe.inject(0) == 4


def test_busy_until_idle_pipe_is_zero():
    # A fresh (or reset) pipe has no backlog: slot 0 is free, so the
    # earliest fully-usable slot is time 0, not -1.
    pipe = LinkPipe(delay=3, bandwidth=1)
    assert pipe.busy_until() == 0
    pipe.inject(0)
    pipe.reset()
    assert pipe.busy_until() == 0


def test_busy_until_reflects_backlog():
    pipe = LinkPipe(delay=1, bandwidth=1)
    pipe.inject(0)
    assert pipe.busy_until() == 1
    pipe2 = LinkPipe(delay=1, bandwidth=2)
    pipe2.inject(0)
    assert pipe2.busy_until() == 0


def test_inject_many_matches_repeated_inject():
    a = LinkPipe(delay=4, bandwidth=2)
    b = LinkPipe(delay=4, bandwidth=2)
    a.inject(0)  # pre-existing backlog on both
    b.inject(0)
    batched = a.inject_many(1, 5)
    single = [b.inject(1) for _ in range(5)]
    assert batched == single
    assert a.injected == b.injected


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=10),
)
def test_inject_many_property(d, bw, count, t_ready):
    a = LinkPipe(d, bw)
    b = LinkPipe(d, bw)
    assert a.inject_many(t_ready, count) == [b.inject(t_ready) for _ in range(count)]
    assert a.injected == b.injected == count


def test_inject_many_monotonicity_enforced():
    pipe = LinkPipe(delay=1)
    pipe.inject(5)
    with pytest.raises(AssertionError):
        pipe.inject_many(4, 2)


def test_batch_transit_time_edge_cases():
    assert batch_transit_time(0, 5, 2) == 0
    assert batch_transit_time(1, 5, 2) == 5
    with pytest.raises(ValueError):
        batch_transit_time(-1, 5, 2)


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=50),
)
def test_arrivals_are_nondecreasing(d, bw, gaps):
    """FIFO pipes never reorder pebbles."""
    pipe = LinkPipe(d, bw)
    t = 0
    last_arrival = 0
    for gap in gaps:
        t += gap
        arr = pipe.inject(t)
        assert arr >= last_arrival
        assert arr >= t + d  # can never beat the raw delay
        last_arrival = arr
