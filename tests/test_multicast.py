"""Multicast delivery: shared per-direction streams."""

import pytest

from repro.core.assignment import Assignment
from repro.core.executor import GreedyExecutor
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram


def shared_subscriber_setup():
    host = HostArray.uniform(5, 2)
    # Positions 2 and 4 both hold columns 6..10, so both subscribe to
    # position 0 for column 5 — a shared-direction stream.
    asg = Assignment([(1, 5), None, (6, 10), None, (6, 10)], 10)
    return host, asg


def run(multicast, steps=8):
    host, asg = shared_subscriber_setup()
    prog = CounterProgram()
    res = GreedyExecutor(host, asg, prog, steps, multicast=multicast).run()
    verify_execution(res, GuestArray(10, prog).run_reference(steps), prog)
    return res


def test_multicast_correct_and_cheaper():
    uni = run(False)
    multi = run(True)
    assert multi.stats.pebble_hops < uni.stats.pebble_hops
    assert multi.stats.messages < uni.stats.messages


def test_multicast_never_slower_here():
    uni = run(False)
    multi = run(True)
    assert multi.stats.makespan <= uni.stats.makespan


def test_multicast_identical_when_single_subscriber():
    host = HostArray.uniform(4, 2)
    asg = Assignment([(1, 2), (2, 4), (4, 6), (6, 8)], 8)
    prog = CounterProgram()
    a = GreedyExecutor(host, asg, prog, 6, multicast=False).run()
    b = GreedyExecutor(host, asg, prog, 6, multicast=True).run()
    assert a.stats.makespan == b.stats.makespan
    assert a.stats.pebble_hops == b.stats.pebble_hops
    assert a.value_digests == b.value_digests


def test_multicast_both_directions():
    # Supplier in the middle with subscribers on both sides.
    host = HostArray.uniform(5, 2)
    asg = Assignment([(1, 4), None, (5, 8), None, (9, 12)], 12)
    prog = CounterProgram()
    res = GreedyExecutor(host, asg, prog, 6, multicast=True).run()
    verify_execution(res, GuestArray(12, prog).run_reference(6), prog)
