"""The s_t^(k) schedule: rules, recurrence, Theorem 2's bound."""

import pytest

from repro.core.killing import OverlapParams
from repro.core.schedule import (
    build_schedule,
    recurrence_residuals,
    theorem2_bound,
)
from repro.machine.host import HostArray


def params(n=256, d=4, c=4.0):
    return OverlapParams.for_host(HostArray.uniform(n, d), c)


def test_base_case_rule1():
    tab = build_schedule(params())
    assert tab.s[tab.k_max][1] == 1.0


def test_base_case_blocked_variant():
    tab = build_schedule(params(), base_work=16)
    assert tab.s[tab.k_max][1] == 16.0


def test_rule2_adds_Dk():
    p = params()
    tab = build_schedule(p)
    for k in range(tab.k_max):
        m_child = tab.heights[k + 1]
        for t in range(1, m_child + 1):
            assert tab.s[k][t] == pytest.approx(tab.s[k + 1][t] + p.D(k))


def test_rule3_stacks_half_boxes():
    tab = build_schedule(params())
    for k in range(tab.k_max):
        m_child = tab.heights[k + 1]
        for t in range(m_child + 1, tab.heights[k] + 1):
            assert tab.s[k][t] == pytest.approx(
                tab.s[k][t - m_child] + tab.s[k][m_child]
            )


def test_rows_monotone_in_t():
    tab = build_schedule(params())
    for k in range(tab.k_max + 1):
        row = tab.s[k][1:]
        assert all(a <= b for a, b in zip(row, row[1:]))


def test_recurrence_residuals_small():
    # s_{m_k}^(k) = 2 s_{m_{k+1}}^(k+1) + 2 D_k is exact whenever the
    # integer box heights actually halve; rounding at the deepest
    # levels (m_k not a power of two) perturbs it by at most ~1/2.
    tab = build_schedule(params(1024, 2))
    residuals = recurrence_residuals(tab)
    for k, res in enumerate(residuals):
        if tab.heights[k] == 2 * tab.heights[k + 1]:
            assert res < 0.05
        else:
            assert res < 0.6


def test_makespan_within_theorem2_bound():
    for n, d in [(128, 1), (256, 4), (512, 16)]:
        p = params(n, d)
        tab = build_schedule(p)
        assert tab.makespan_bound() <= theorem2_bound(p)
        assert tab.makespan_bound() <= tab.closed_form_bound() * 1.5


def test_slowdown_bound_scales_with_d():
    slows = []
    for d in (1, 4, 16, 64):
        tab = build_schedule(params(256, d))
        slows.append(tab.slowdown_bound())
    # Theorem 2: slowdown ~ d_ave (linear growth).
    assert slows[1] / slows[0] > 2
    assert slows[3] > slows[2] > slows[1] > slows[0]


def test_value_accessor_bounds():
    tab = build_schedule(params())
    with pytest.raises(IndexError):
        tab.value(-1, 1)
    with pytest.raises(IndexError):
        tab.value(0, 0)
    with pytest.raises(IndexError):
        tab.value(0, tab.heights[0] + 1)
    assert tab.value(0, 1) > 0


def test_base_work_validation():
    with pytest.raises(ValueError):
        build_schedule(params(), base_work=0.5)


class TestFeasibility:
    """Theorem 1's physical preconditions, checked on real hosts."""

    def _report(self, host):
        from repro.core.killing import kill_and_label
        from repro.core.schedule import feasibility_report

        killing = kill_and_label(host)
        table = build_schedule(killing.params)
        return feasibility_report(killing, table)

    def test_uniform_host_feasible(self):
        rep = self._report(HostArray.uniform(256, 4))
        assert rep["interval_budgets_hold"]
        assert rep["atomic_rows_feasible"]

    def test_skewed_host_feasible_after_killing(self):
        import numpy as np

        from repro.topology.delays import pareto_delays

        rng = np.random.default_rng(5)
        host = HostArray(pareto_delays(255, rng, alpha=1.1, cap=4096))
        rep = self._report(host)
        assert rep["interval_budgets_hold"]
        assert rep["atomic_rows_feasible"]

    def test_min_row_gap_positive(self):
        from repro.core.schedule import min_row_gap

        tab = build_schedule(params(256, 4))
        assert min_row_gap(tab) > 0

    def test_row_gap_covers_atomic_delay_by_construction(self):
        # The gap is >= D_{k_max-1} while surviving atomic intervals
        # have delay <= D_{k_max}: a factor-2 safety margin.
        p = params(512, 8)
        tab = build_schedule(p)
        from repro.core.schedule import min_row_gap

        if p.k_max >= 1:
            assert min_row_gap(tab) >= p.D(p.k_max)


class TestRowDeadlines:
    """Theorems 1-3 as executable deadlines."""

    def _traced(self, host, block, steps=20):
        from repro.core.assignment import assign_databases
        from repro.core.executor import GreedyExecutor
        from repro.core.killing import kill_and_label
        from repro.machine.programs import CounterProgram
        from repro.netsim.trace import Trace

        killing = kill_and_label(host)
        asg = assign_databases(killing, block=block)
        trace = Trace()
        GreedyExecutor(host, asg, CounterProgram(), steps, trace=trace).run()
        from repro.core.schedule import build_schedule

        table = build_schedule(killing.params, base_work=float(asg.load()))
        return table, trace

    def test_deadline_vector_shape(self):
        from repro.core.schedule import row_deadlines

        tab = build_schedule(params(256, 4))
        m0 = tab.heights[0]
        dl = row_deadlines(tab, 3 * m0)
        assert len(dl) == 3 * m0
        assert dl == sorted(dl)  # deadlines increase
        # Round boundary adds a full round length.
        assert dl[m0] == pytest.approx(tab.s[0][m0] + tab.s[0][1])

    @pytest.mark.parametrize("block", [1, 4])
    def test_greedy_meets_every_deadline_uniform(self, block):
        from repro.core.schedule import check_row_deadlines

        table, trace = self._traced(HostArray.uniform(96, 4), block)
        rep = check_row_deadlines(table, trace.row_completion_times())
        assert rep["all_rows_met_deadline"], rep["missed_rows"]

    def test_greedy_meets_every_deadline_skewed(self):
        from repro.core.schedule import check_row_deadlines

        delays = [1] * 95
        delays[47] = 2048
        table, trace = self._traced(HostArray(delays), 4)
        rep = check_row_deadlines(table, trace.row_completion_times())
        assert rep["all_rows_met_deadline"]

    def test_negative_steps_rejected(self):
        from repro.core.schedule import row_deadlines

        with pytest.raises(ValueError):
            row_deadlines(build_schedule(params()), -1)


def test_heights_halve():
    tab = build_schedule(params(1024, 2))
    for k in range(tab.k_max):
        assert tab.heights[k] >= tab.heights[k + 1]
        assert tab.heights[k] <= 2 * tab.heights[k + 1] + 1
