"""Router: static shortest-delay paths with caching."""

import networkx as nx
import pytest

from repro.netsim.routing import DELAY_ATTR, Router


def weighted_graph():
    g = nx.Graph()
    g.add_edge("a", "b", **{DELAY_ATTR: 1})
    g.add_edge("b", "c", **{DELAY_ATTR: 1})
    g.add_edge("a", "c", **{DELAY_ATTR: 5})
    return g


def test_prefers_lower_total_delay():
    r = Router(weighted_graph())
    assert r.path("a", "c") == ["a", "b", "c"]
    assert r.delay("a", "c") == 2
    assert r.hops("a", "c") == 2


def test_direct_edge_wins_when_cheaper():
    g = weighted_graph()
    g["a"]["c"][DELAY_ATTR] = 1
    r = Router(g)
    assert r.path("a", "c") == ["a", "c"]


def test_rejects_disconnected_graph():
    g = nx.Graph()
    g.add_edge(0, 1, **{DELAY_ATTR: 1})
    g.add_node(2)
    with pytest.raises(ValueError):
        Router(g)


def test_rejects_missing_or_bad_delay():
    g = nx.Graph()
    g.add_edge(0, 1)
    with pytest.raises(ValueError):
        Router(g)
    g2 = nx.Graph()
    g2.add_edge(0, 1, **{DELAY_ATTR: 0})
    with pytest.raises(ValueError):
        Router(g2)


def test_rejects_empty_graph():
    with pytest.raises(ValueError):
        Router(nx.Graph())


def test_invalidate_clears_cache():
    g = weighted_graph()
    r = Router(g)
    assert r.delay("a", "c") == 2
    g["a"]["b"][DELAY_ATTR] = 100
    r.invalidate()
    assert r.delay("a", "c") == 5


def test_path_to_self():
    r = Router(weighted_graph())
    assert r.path("b", "b") == ["b"]
    assert r.delay("b", "b") == 0


def test_large_ring_routing_symmetry():
    g = nx.cycle_graph(20)
    nx.set_edge_attributes(g, 1, DELAY_ATTR)
    r = Router(g)
    assert r.delay(0, 10) == 10
    assert r.delay(0, 3) == 3
    assert r.delay(0, 17) == 3  # shorter way round
