"""Scalar/vector agreement and basic quality of the mixing primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import mixing

WORD = st.integers(min_value=0, max_value=mixing.MASK)


@given(WORD)
def test_splitmix_scalar_vector_agree(x):
    assert mixing.splitmix_s(x) == int(mixing.splitmix_v(np.uint64(x)))


@given(WORD, WORD)
def test_mix2_scalar_vector_agree(a, b):
    assert mixing.mix2_s(a, b) == int(mixing.mix2_v(np.uint64(a), np.uint64(b)))


@given(WORD, WORD, WORD, WORD)
def test_mix4_scalar_vector_agree(a, b, c, d):
    expected = mixing.mix4_s(a, b, c, d)
    got = mixing.mix4_v(np.uint64(a), np.uint64(b), np.uint64(c), np.uint64(d))
    assert expected == int(got)


@given(st.lists(WORD, min_size=0, max_size=20))
def test_fold_matches_incremental_mix2(values):
    acc = mixing.fold_s([])
    for v in values:
        acc = mixing.mix2_s(acc, v)
    assert mixing.fold_s(values) == acc


@given(WORD)
def test_splitmix_in_range(x):
    y = mixing.splitmix_s(x)
    assert 0 <= y <= mixing.MASK


@given(st.lists(WORD, min_size=2, max_size=6))
def test_fold_is_order_sensitive(values):
    # Folding a reversed non-palindromic sequence gives another digest.
    if values == values[::-1]:
        return
    assert mixing.fold_s(values) != mixing.fold_s(values[::-1])


def test_mix2_vector_broadcasts():
    a = np.arange(10, dtype=np.uint64)
    out = mixing.mix2_v(a, np.uint64(7))
    assert out.shape == (10,)
    assert len(set(out.tolist())) == 10  # injective-looking on small input


def test_mix2_not_commutative():
    assert mixing.mix2_s(1, 2) != mixing.mix2_s(2, 1)


def test_tag_accepts_numpy_ints():
    assert mixing.tag_s(np.int64(3), np.uint64(4)) == mixing.tag_s(3, 4)


def test_avalanche_flips_many_bits():
    # Flipping one input bit should flip roughly half the output bits.
    base = mixing.splitmix_s(12345)
    flipped = mixing.splitmix_s(12345 ^ 1)
    diff = bin(base ^ flipped).count("1")
    assert 16 <= diff <= 48


@pytest.mark.parametrize("n", [1, 5, 64])
def test_splitmix_vector_shape(n):
    x = np.arange(n, dtype=np.uint64)
    assert mixing.splitmix_v(x).shape == (n,)
