"""Differential tests: DenseExecutor must be bit-identical to
GreedyExecutor on every fault-free config.

The dense tier is a reimplementation of the same semantics, not an
approximation, so these tests compare *everything* a run produces —
makespan, pebble/message/hop counters, per-processor work (replica
versions), value digests and replica digests — across configs spanning
the e1 (random-delay OVERLAP), e3 (uniform-delay Theorem 4) and e5
(graph-embedded Theorem 6) parameter grids.

The CI bench-compare gate refuses runs where these tests were skipped,
so keep them dependency-light and fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import assign_databases
from repro.core.baselines import (
    simulate_prior_efficient,
    simulate_single_copy,
    spread_assignment,
)
from repro.core.dense import DenseExecutor, build_executor, resolve_engine
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap, simulate_overlap_on_graph
from repro.core.uniform import simulate_uniform, uniform_assignment
from repro.machine.host import HostArray
from repro.machine.programs import (
    CounterProgram,
    KeyedStoreProgram,
    LedgerProgram,
    get_program,
)
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.topology.delays import scale_to_average, uniform_delays
from repro.topology.generators import mesh_host, now_cluster_host, tree_host

# ---------------------------------------------------------------------------
# helpers


def _random_host(n: int, d_ave: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_ave))


def _stats_tuple(result):
    s = result.stats
    return (
        s.makespan,
        s.pebbles,
        s.messages,
        s.pebble_hops,
        s.procs_used,
        s.redundant,
    )


def _per_proc_work(result):
    """Pebbles computed per host position == sum of replica versions."""
    work: dict[int, int] = {}
    for (p, _c), rep in result.replicas.items():
        work[p] = work.get(p, 0) + rep.version
    return work


def assert_bit_identical(host, assignment, program, steps, bandwidth=None):
    greedy = GreedyExecutor(host, assignment, program, steps, bandwidth).run()
    dense = DenseExecutor(host, assignment, program, steps, bandwidth).run()
    assert _stats_tuple(dense) == _stats_tuple(greedy)
    assert _per_proc_work(dense) == _per_proc_work(greedy)
    assert dense.value_digests == greedy.value_digests
    assert dense.replicas.keys() == greedy.replicas.keys()
    for key, rep in greedy.replicas.items():
        assert dense.replicas[key].summary() == rep.summary(), key
    return greedy, dense


# ---------------------------------------------------------------------------
# e1-style grid: OVERLAP assignments on random-delay hosts

E1_GRID = [
    # (n, d_ave, steps, block, bandwidth, min_copies, seed)
    (24, 2.0, 6, 1, None, None, 0),
    (24, 4.0, 6, 1, None, None, 1),
    (32, 2.0, 8, 2, None, None, 2),
    (32, 6.0, 8, 2, None, None, 3),
    (48, 4.0, 8, 1, None, None, 4),
    (48, 4.0, 8, 2, 1, None, 5),  # bandwidth-1 regime: slot contention
    (64, 8.0, 10, 2, None, None, 6),
    (40, 3.0, 8, 1, None, 2, 7),  # min_copies=2: multi-subscriber streams
    (40, 5.0, 12, 3, None, None, 8),
    (56, 2.0, 6, 1, 2, None, 9),
]


@pytest.mark.parametrize("n,d_ave,steps,block,bw,copies,seed", E1_GRID)
def test_differential_e1_overlap(n, d_ave, steps, block, bw, copies, seed):
    host = _random_host(n, d_ave, seed)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, block, min_copies=copies or 1)
    assert_bit_identical(host, assignment, CounterProgram(), steps, bw)


# ---------------------------------------------------------------------------
# e3-style grid: Theorem-4 block assignments on uniform-delay hosts

E3_GRID = [
    # (n, d, steps, bandwidth)
    (6, 4, 4, None),
    (6, 16, 8, None),
    (8, 16, 8, 1),
    (8, 64, 16, None),
    (10, 36, 12, None),
    (12, 9, 6, 2),
]


@pytest.mark.parametrize("n,d,steps,bw", E3_GRID)
def test_differential_e3_uniform(n, d, steps, bw):
    from repro.core.uniform import block_width

    host = HostArray.uniform(n, d)
    assignment = uniform_assignment(n, block_width(d))
    assert_bit_identical(host, assignment, CounterProgram(), steps, bw)


# ---------------------------------------------------------------------------
# e5-style grid: graph hosts reduced to arrays via the Fact-3 embedding


def _e5_hosts():
    rng = np.random.default_rng(7)
    yield mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    yield tree_host(4, uniform_delays(30, rng, 1, 6))
    yield now_cluster_host(4, 4, intra_delay=1, inter_delay=8)


@pytest.mark.parametrize("host", list(_e5_hosts()), ids=lambda h: h.name)
def test_differential_e5_graph(host):
    from repro.topology.embedding import embed_linear_array

    array = embed_linear_array(host).host_array()
    killing = kill_and_label(array)
    assignment = assign_databases(killing, 2)
    assert_bit_identical(array, assignment, CounterProgram(), 8)


# ---------------------------------------------------------------------------
# extra shapes: relay positions, single columns, scalar-state programs


def test_differential_spread_with_relays():
    # prior-efficient layout: most positions hold nothing and only relay
    host = _random_host(32, 6.0, 11)
    assignment = spread_assignment(32, 16, positions=[0, 10, 21, 31])
    assert_bit_identical(host, assignment, CounterProgram(), 8)


def test_differential_single_column_guest():
    host = _random_host(8, 2.0, 12)
    assignment = spread_assignment(8, 1, positions=[3])
    assert_bit_identical(host, assignment, CounterProgram(), 6)


@pytest.mark.parametrize("prog_name", ["ledger", "keyed", "hashchain", "token"])
def test_differential_program_zoo(prog_name):
    # ledger/keyed exercise the scalar (structured-state) value path;
    # hashchain/token the vectorised one with different mixing.
    host = _random_host(24, 3.0, 13)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    assert_bit_identical(host, assignment, get_program(prog_name), 6)


def test_differential_zero_steps():
    host = _random_host(16, 2.0, 14)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    assert_bit_identical(host, assignment, CounterProgram(), 0)


# ---------------------------------------------------------------------------
# front-end equivalence: simulate_* with engine= must agree end to end


def test_simulate_overlap_engines_agree():
    host = _random_host(48, 4.0, 21)
    greedy = simulate_overlap(host, steps=8, block=2, engine="greedy")
    dense = simulate_overlap(host, steps=8, block=2, engine="dense")
    auto = simulate_overlap(host, steps=8, block=2)
    assert dense.engine == "dense" and auto.engine == "dense"
    assert greedy.engine == "greedy"
    assert dense.summary() == greedy.summary() == auto.summary()
    assert (
        _stats_tuple(dense.exec_result)
        == _stats_tuple(greedy.exec_result)
        == _stats_tuple(auto.exec_result)
    )


def test_simulate_uniform_engines_agree():
    greedy = simulate_uniform(8, 16, steps=8, engine="greedy")
    dense = simulate_uniform(8, 16, steps=8, engine="dense")
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)
    assert dense.verified and greedy.verified


def test_simulate_overlap_on_graph_engines_agree():
    rng = np.random.default_rng(3)
    host = mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    greedy = simulate_overlap_on_graph(host, steps=8, engine="greedy")
    dense = simulate_overlap_on_graph(host, steps=8, engine="dense")
    assert dense.engine == "dense"
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)


def test_baselines_engines_agree():
    host = _random_host(32, 5.0, 22)
    for fn in (simulate_single_copy, simulate_prior_efficient):
        greedy = fn(host, steps=8, engine="greedy")
        dense = fn(host, steps=8, engine="dense")
        assert _stats_tuple(dense.exec_result) == _stats_tuple(
            greedy.exec_result
        )
        assert dense.makespan == greedy.makespan


# ---------------------------------------------------------------------------
# engine selection rules


def test_resolve_engine_auto_prefers_dense():
    assert resolve_engine("auto") == "dense"
    assert resolve_engine("greedy") == "greedy"
    assert resolve_engine("dense") == "dense"


def test_resolve_engine_fallback_triggers():
    plan = FaultPlan.random(16, seed=1, horizon=32, node_crash_rate=0.5)
    assert not plan.is_empty
    assert resolve_engine("auto", faults=plan) == "greedy"
    assert resolve_engine("auto", faults=FaultPlan.empty()) == "dense"
    assert resolve_engine("auto", policy=RecoveryPolicy()) == "greedy"
    assert resolve_engine("auto", forced_dead={3}) == "greedy"
    assert resolve_engine("auto", trace=object()) == "greedy"
    assert resolve_engine("auto", multicast=True) == "greedy"
    assert resolve_engine("auto", tie_seed=7) == "greedy"
    assert resolve_engine("auto", dep_map={}) == "greedy"


def test_resolve_engine_dense_refuses_greedy_features():
    plan = FaultPlan.random(16, seed=1, horizon=32, node_crash_rate=0.5)
    with pytest.raises(ValueError, match="fault injection"):
        resolve_engine("dense", faults=plan)
    with pytest.raises(ValueError, match="recovery policy"):
        resolve_engine("dense", policy=RecoveryPolicy())
    with pytest.raises(ValueError):
        resolve_engine("nope")


def test_simulate_overlap_auto_falls_back_on_faults():
    host = _random_host(32, 3.0, 30)
    plan = FaultPlan.random(
        host.n, seed=4, horizon=64, link_outage_rate=0.1
    )
    assert not plan.is_empty
    res = simulate_overlap(host, steps=6, faults=plan, verify=False)
    assert res.engine == "greedy"
    with pytest.raises(ValueError):
        simulate_overlap(host, steps=6, faults=plan, engine="dense")


def test_build_executor_dispatch():
    host = _random_host(16, 2.0, 31)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    prog = CounterProgram()
    assert isinstance(
        build_executor("auto", host, assignment, prog, 4), DenseExecutor
    )
    assert isinstance(
        build_executor("greedy", host, assignment, prog, 4), GreedyExecutor
    )
    assert isinstance(
        build_executor(
            "auto", host, assignment, prog, 4, tie_seed=3
        ),
        GreedyExecutor,
    )


def test_dense_verifies_against_reference():
    # End-to-end: dense results pass the bit-exact reference check.
    host = _random_host(40, 4.0, 33)
    res = simulate_overlap(host, steps=8, engine="dense", verify=True)
    assert res.verified
