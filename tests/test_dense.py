"""Differential tests: DenseExecutor must be bit-identical to
GreedyExecutor on every fault-free config.

The dense tier is a reimplementation of the same semantics, not an
approximation, so these tests compare *everything* a run produces —
makespan, pebble/message/hop counters, per-processor work (replica
versions), value digests and replica digests — across configs spanning
the e1 (random-delay OVERLAP), e3 (uniform-delay Theorem 4) and e5
(graph-embedded Theorem 6) parameter grids.

The CI bench-compare gate refuses runs where these tests were skipped,
so keep them dependency-light and fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import assign_databases
from repro.core.baselines import (
    simulate_prior_efficient,
    simulate_single_copy,
    spread_assignment,
)
from repro.core.dense import DenseExecutor, build_executor, resolve_engine
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap, simulate_overlap_on_graph
from repro.core.uniform import simulate_uniform, uniform_assignment
from repro.machine.host import HostArray
from repro.machine.programs import (
    CounterProgram,
    KeyedStoreProgram,
    LedgerProgram,
    get_program,
)
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.topology.delays import scale_to_average, uniform_delays
from repro.topology.generators import mesh_host, now_cluster_host, tree_host

# ---------------------------------------------------------------------------
# helpers


def _random_host(n: int, d_ave: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_ave))


def _stats_tuple(result):
    s = result.stats
    return (
        s.makespan,
        s.pebbles,
        s.messages,
        s.pebble_hops,
        s.procs_used,
        s.redundant,
    )


def _per_proc_work(result):
    """Pebbles computed per host position == sum of replica versions."""
    work: dict[int, int] = {}
    for (p, _c), rep in result.replicas.items():
        work[p] = work.get(p, 0) + rep.version
    return work


def _telemetry_dict(timeline):
    """Timeline contents minus ``meta`` (whose ``engine`` tag differs)."""
    d = timeline.as_dict()
    d.pop("meta", None)
    return d


def assert_bit_identical(
    host, assignment, program, steps, bandwidth=None, **kwargs
):
    from repro.telemetry import MetricsTimeline

    tg, td = MetricsTimeline(), MetricsTimeline()
    greedy = GreedyExecutor(
        host, assignment, program, steps, bandwidth, telemetry=tg, **kwargs
    ).run()
    dense = DenseExecutor(
        host, assignment, program, steps, bandwidth, telemetry=td, **kwargs
    ).run()
    assert _stats_tuple(dense) == _stats_tuple(greedy)
    assert _per_proc_work(dense) == _per_proc_work(greedy)
    assert dense.value_digests == greedy.value_digests
    assert dense.replicas.keys() == greedy.replicas.keys()
    for key, rep in greedy.replicas.items():
        assert dense.replicas[key].summary() == rep.summary(), key
    assert _telemetry_dict(td) == _telemetry_dict(tg)
    return greedy, dense


# ---------------------------------------------------------------------------
# e1-style grid: OVERLAP assignments on random-delay hosts

E1_GRID = [
    # (n, d_ave, steps, block, bandwidth, min_copies, seed)
    (24, 2.0, 6, 1, None, None, 0),
    (24, 4.0, 6, 1, None, None, 1),
    (32, 2.0, 8, 2, None, None, 2),
    (32, 6.0, 8, 2, None, None, 3),
    (48, 4.0, 8, 1, None, None, 4),
    (48, 4.0, 8, 2, 1, None, 5),  # bandwidth-1 regime: slot contention
    (64, 8.0, 10, 2, None, None, 6),
    (40, 3.0, 8, 1, None, 2, 7),  # min_copies=2: multi-subscriber streams
    (40, 5.0, 12, 3, None, None, 8),
    (56, 2.0, 6, 1, 2, None, 9),
]


@pytest.mark.parametrize("n,d_ave,steps,block,bw,copies,seed", E1_GRID)
def test_differential_e1_overlap(n, d_ave, steps, block, bw, copies, seed):
    host = _random_host(n, d_ave, seed)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, block, min_copies=copies or 1)
    assert_bit_identical(host, assignment, CounterProgram(), steps, bw)


# ---------------------------------------------------------------------------
# e3-style grid: Theorem-4 block assignments on uniform-delay hosts

E3_GRID = [
    # (n, d, steps, bandwidth)
    (6, 4, 4, None),
    (6, 16, 8, None),
    (8, 16, 8, 1),
    (8, 64, 16, None),
    (10, 36, 12, None),
    (12, 9, 6, 2),
]


@pytest.mark.parametrize("n,d,steps,bw", E3_GRID)
def test_differential_e3_uniform(n, d, steps, bw):
    from repro.core.uniform import block_width

    host = HostArray.uniform(n, d)
    assignment = uniform_assignment(n, block_width(d))
    assert_bit_identical(host, assignment, CounterProgram(), steps, bw)


# ---------------------------------------------------------------------------
# e5-style grid: graph hosts reduced to arrays via the Fact-3 embedding


def _e5_hosts():
    rng = np.random.default_rng(7)
    yield mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    yield tree_host(4, uniform_delays(30, rng, 1, 6))
    yield now_cluster_host(4, 4, intra_delay=1, inter_delay=8)


@pytest.mark.parametrize("host", list(_e5_hosts()), ids=lambda h: h.name)
def test_differential_e5_graph(host):
    from repro.topology.embedding import embed_linear_array

    array = embed_linear_array(host).host_array()
    killing = kill_and_label(array)
    assignment = assign_databases(killing, 2)
    assert_bit_identical(array, assignment, CounterProgram(), 8)


# ---------------------------------------------------------------------------
# ring grid: folded-ring dep_map/col_label wiring through the watermark
# skeleton.  Covers single- and multi-copy layouts, every program
# family (vectorised and structured-state), bandwidth contention and
# guests smaller than the host.

RING_GRID = [
    # (n, m, d_ave, steps, program, copies, bandwidth, seed)
    (16, 16, 2.0, 4, "counter", 1, None, 0),
    (16, 8, 2.0, 6, "counter", 1, None, 1),
    (24, 24, 4.0, 6, "counter", 2, None, 2),
    (24, 24, 4.0, 6, "counter", 2, 2, 3),
    (24, 12, 3.0, 8, "dataflow", 1, None, 4),
    (32, 32, 2.0, 8, "hashchain", 1, None, 5),
    (32, 32, 6.0, 8, "hashchain", 3, None, 6),
    (32, 16, 4.0, 6, "token", 2, None, 7),
    (40, 40, 3.0, 8, "ledger", 1, None, 8),
    (40, 40, 5.0, 6, "ledger", 2, 1, 9),
    (40, 20, 4.0, 8, "keyed", 1, None, 10),
    (48, 48, 4.0, 8, "counter", 1, 1, 11),
    (48, 48, 8.0, 10, "relax", 2, 3, 12),
    (48, 24, 2.0, 6, "relax", 1, None, 13),
    (56, 56, 5.0, 8, "token", 1, None, 14),
    (56, 56, 3.0, 6, "keyed", 2, None, 15),
    (64, 64, 8.0, 10, "counter", 2, None, 16),
    (64, 64, 4.0, 8, "dataflow", 3, 2, 17),
    (64, 32, 6.0, 8, "hashchain", 1, None, 18),
    (24, 24, 2.0, 0, "counter", 1, None, 19),  # zero-step ring run
    (16, 5, 2.0, 5, "counter", 1, None, 20),  # odd-size ring fold
]


def _ring_setup(n, m, d_ave, copies, seed):
    from repro.core.ring import ring_dep_map
    from repro.lower_bounds.audit import windowed_assignment

    host = _random_host(n, d_ave, 100 + seed)
    dep_map, node_of_col = ring_dep_map(m)
    label = lambda col: node_of_col[col] + 1  # noqa: E731
    if copies <= 1:
        asg = spread_assignment(n, m)
    else:
        asg = windowed_assignment(n, m, copies=copies)
    return host, asg, dep_map, label


@pytest.mark.parametrize("n,m,d_ave,steps,prog,copies,bw,seed", RING_GRID)
def test_differential_ring(n, m, d_ave, steps, prog, copies, bw, seed):
    host, asg, dep_map, label = _ring_setup(n, m, d_ave, copies, seed)
    assert_bit_identical(
        host, asg, get_program(prog), steps, bw,
        dep_map=dep_map, col_label=label,
    )


def test_simulate_ring_engines_agree():
    from repro.core.ring import simulate_ring

    host = _random_host(32, 3.0, 23)
    greedy = simulate_ring(host, steps=6, engine="greedy")
    dense = simulate_ring(host, steps=6, engine="dense")
    auto = simulate_ring(host, steps=6)
    assert greedy.engine == "greedy"
    assert dense.engine == "dense" and auto.engine == "dense"
    assert greedy.verified and dense.verified and auto.verified
    assert (
        _stats_tuple(dense.exec_result)
        == _stats_tuple(greedy.exec_result)
        == _stats_tuple(auto.exec_result)
    )
    assert dense.exec_result.value_digests == greedy.exec_result.value_digests


def test_simulate_ring_multicopy_engines_agree():
    from repro.core.ring import simulate_ring

    host = _random_host(40, 4.0, 24)
    greedy = simulate_ring(host, steps=6, copies=2, engine="greedy")
    dense = simulate_ring(host, steps=6, copies=2, engine="dense")
    assert dense.engine == "dense"
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)


# ---------------------------------------------------------------------------
# graph-host grid: arbitrary connected hosts reduced to arrays by the
# Fact-3 embedding — the embedding precomputes the per-assignment route
# delays into the induced array's flat link_delays, so the fault-free
# run is a dense-tier workload like any native array.

GRAPH_GRID = [
    # (kind, a, b, block, steps, bandwidth, seed)
    ("mesh", 3, 3, 1, 6, None, 0),
    ("mesh", 3, 4, 2, 6, None, 1),
    ("mesh", 4, 4, 1, 8, None, 2),
    ("mesh", 4, 4, 2, 8, 1, 3),
    ("mesh", 4, 5, 2, 8, None, 4),
    ("mesh", 5, 5, 3, 8, None, 5),
    ("mesh", 4, 6, 1, 10, 2, 6),
    ("mesh", 6, 6, 2, 6, None, 7),
    ("tree", 3, 14, 1, 6, None, 8),
    ("tree", 3, 14, 2, 8, None, 9),
    ("tree", 4, 30, 1, 8, None, 10),
    ("tree", 4, 30, 2, 8, 1, 11),
    ("tree", 4, 30, 3, 6, None, 12),
    ("tree", 5, 62, 2, 8, None, 13),
    ("now", 3, 3, 1, 6, None, 14),
    ("now", 3, 4, 2, 8, None, 15),
    ("now", 4, 4, 1, 8, None, 16),
    ("now", 4, 4, 2, 6, 2, 17),
    ("now", 5, 3, 2, 8, None, 18),
    ("now", 2, 8, 1, 8, None, 19),
    ("now", 4, 6, 3, 10, None, 20),
]


def _graph_host(kind, a, b, seed):
    rng = np.random.default_rng(200 + seed)
    if kind == "mesh":
        return mesh_host(a, b, uniform_delays(2 * a * b - a - b, rng, 1, 6))
    if kind == "tree":
        return tree_host(a, uniform_delays(b, rng, 1, 6))
    return now_cluster_host(a, b, intra_delay=1, inter_delay=8)


@pytest.mark.parametrize("kind,a,b,block,steps,bw,seed", GRAPH_GRID)
def test_differential_graph(kind, a, b, block, steps, bw, seed):
    from repro.topology.embedding import embed_linear_array

    host = _graph_host(kind, a, b, seed)
    array = embed_linear_array(host).host_array()
    killing = kill_and_label(array)
    assignment = assign_databases(killing, block)
    assert_bit_identical(array, assignment, CounterProgram(), steps, bw)


def test_simulate_composed_engines_agree():
    from repro.core.composed import simulate_composed

    host = _random_host(24, 4.0, 25)
    greedy = simulate_composed(host, steps=6, engine="greedy")
    dense = simulate_composed(host, steps=6, engine="dense")
    auto = simulate_composed(host, steps=6)
    assert greedy.engine == "greedy"
    assert dense.engine == "dense" and auto.engine == "dense"
    assert greedy.verified and dense.verified and auto.verified
    assert (
        _stats_tuple(dense.exec_result)
        == _stats_tuple(greedy.exec_result)
        == _stats_tuple(auto.exec_result)
    )


def test_simulate_composed_on_graph_engines_agree():
    from repro.core.composed import simulate_composed_on_graph

    rng = np.random.default_rng(26)
    host = mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    greedy = simulate_composed_on_graph(host, steps=6, engine="greedy")
    dense = simulate_composed_on_graph(host, steps=6, engine="dense")
    assert dense.engine == "dense"
    assert dense.embedding is not None
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)


def test_run_assignment_engines_agree():
    from repro.core.executor import run_assignment

    host = _random_host(24, 3.0, 27)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    greedy = run_assignment(host, assignment, CounterProgram(), 6, engine="greedy")
    dense = run_assignment(host, assignment, CounterProgram(), 6, engine="dense")
    auto = run_assignment(host, assignment, CounterProgram(), 6)
    assert (
        _stats_tuple(dense)
        == _stats_tuple(greedy)
        == _stats_tuple(auto)
    )
    assert dense.value_digests == greedy.value_digests


def test_build_executor_ring_dispatch():
    # dep_map alone no longer forces greedy: the dense tier resolves it.
    host, asg, dep_map, label = _ring_setup(16, 16, 2.0, 1, 99)
    ex = build_executor(
        "auto", host, asg, CounterProgram(), 4,
        dep_map=dep_map, col_label=label,
    )
    assert isinstance(ex, DenseExecutor)
    ex = build_executor(
        "greedy", host, asg, CounterProgram(), 4,
        dep_map=dep_map, col_label=label,
    )
    assert isinstance(ex, GreedyExecutor)


# ---------------------------------------------------------------------------
# extra shapes: relay positions, single columns, scalar-state programs


def test_differential_spread_with_relays():
    # prior-efficient layout: most positions hold nothing and only relay
    host = _random_host(32, 6.0, 11)
    assignment = spread_assignment(32, 16, positions=[0, 10, 21, 31])
    assert_bit_identical(host, assignment, CounterProgram(), 8)


def test_differential_single_column_guest():
    host = _random_host(8, 2.0, 12)
    assignment = spread_assignment(8, 1, positions=[3])
    assert_bit_identical(host, assignment, CounterProgram(), 6)


@pytest.mark.parametrize("prog_name", ["ledger", "keyed", "hashchain", "token"])
def test_differential_program_zoo(prog_name):
    # ledger/keyed exercise the scalar (structured-state) value path;
    # hashchain/token the vectorised one with different mixing.
    host = _random_host(24, 3.0, 13)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    assert_bit_identical(host, assignment, get_program(prog_name), 6)


def test_differential_zero_steps():
    host = _random_host(16, 2.0, 14)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    assert_bit_identical(host, assignment, CounterProgram(), 0)


# ---------------------------------------------------------------------------
# front-end equivalence: simulate_* with engine= must agree end to end


def test_simulate_overlap_engines_agree():
    host = _random_host(48, 4.0, 21)
    greedy = simulate_overlap(host, steps=8, block=2, engine="greedy")
    dense = simulate_overlap(host, steps=8, block=2, engine="dense")
    auto = simulate_overlap(host, steps=8, block=2)
    assert dense.engine == "dense" and auto.engine == "dense"
    assert greedy.engine == "greedy"
    assert dense.summary() == greedy.summary() == auto.summary()
    assert (
        _stats_tuple(dense.exec_result)
        == _stats_tuple(greedy.exec_result)
        == _stats_tuple(auto.exec_result)
    )


def test_simulate_uniform_engines_agree():
    greedy = simulate_uniform(8, 16, steps=8, engine="greedy")
    dense = simulate_uniform(8, 16, steps=8, engine="dense")
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)
    assert dense.verified and greedy.verified


def test_simulate_overlap_on_graph_engines_agree():
    rng = np.random.default_rng(3)
    host = mesh_host(4, 4, uniform_delays(24, rng, 1, 6))
    greedy = simulate_overlap_on_graph(host, steps=8, engine="greedy")
    dense = simulate_overlap_on_graph(host, steps=8, engine="dense")
    assert dense.engine == "dense"
    assert _stats_tuple(dense.exec_result) == _stats_tuple(greedy.exec_result)


def test_baselines_engines_agree():
    host = _random_host(32, 5.0, 22)
    for fn in (simulate_single_copy, simulate_prior_efficient):
        greedy = fn(host, steps=8, engine="greedy")
        dense = fn(host, steps=8, engine="dense")
        assert _stats_tuple(dense.exec_result) == _stats_tuple(
            greedy.exec_result
        )
        assert dense.makespan == greedy.makespan


# ---------------------------------------------------------------------------
# engine selection rules


def test_resolve_engine_auto_prefers_dense():
    assert resolve_engine("auto") == "dense"
    assert resolve_engine("greedy") == "greedy"
    assert resolve_engine("dense") == "dense"


def test_resolve_engine_fallback_triggers():
    # Since the segmented tier, faults/policy/forced_dead no longer
    # force greedy — only tracing, multicast and tie_seed remain.
    plan = FaultPlan.random(16, seed=1, horizon=32, node_crash_rate=0.5)
    assert not plan.is_empty
    assert resolve_engine("auto", faults=plan) == "dense"
    assert resolve_engine("auto", faults=FaultPlan.empty()) == "dense"
    assert resolve_engine("auto", policy=RecoveryPolicy()) == "dense"
    assert resolve_engine("auto", forced_dead={3}) == "dense"
    assert resolve_engine("auto", trace=object()) == "greedy"
    assert resolve_engine("auto", multicast=True) == "greedy"
    assert resolve_engine("auto", tie_seed=7) == "greedy"


def test_resolve_engine_dense_refuses_greedy_features():
    plan = FaultPlan.random(16, seed=1, horizon=32, node_crash_rate=0.5)
    # Faults and recovery policies are dense-capable now.
    assert resolve_engine("dense", faults=plan) == "dense"
    assert resolve_engine("dense", policy=RecoveryPolicy()) == "dense"
    with pytest.raises(ValueError, match="tracing"):
        resolve_engine("dense", trace=object())
    with pytest.raises(ValueError, match="multicast"):
        resolve_engine("dense", multicast=True)
    with pytest.raises(ValueError, match="scheduling jitter"):
        resolve_engine("dense", tie_seed=7)
    with pytest.raises(ValueError):
        resolve_engine("nope")


def test_simulate_overlap_auto_runs_faults_densely():
    host = _random_host(32, 3.0, 30)
    plan = FaultPlan.random(
        host.n, seed=4, horizon=64, link_outage_rate=0.1
    )
    assert not plan.is_empty
    res = simulate_overlap(host, steps=6, faults=plan, verify=False)
    assert res.engine == "dense"
    greedy = simulate_overlap(
        host, steps=6, faults=plan, verify=False, engine="greedy"
    )
    assert greedy.engine == "greedy"
    assert _stats_tuple(res.exec_result) == _stats_tuple(greedy.exec_result)


def test_build_executor_dispatch():
    host = _random_host(16, 2.0, 31)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, 1)
    prog = CounterProgram()
    assert isinstance(
        build_executor("auto", host, assignment, prog, 4), DenseExecutor
    )
    assert isinstance(
        build_executor("greedy", host, assignment, prog, 4), GreedyExecutor
    )
    assert isinstance(
        build_executor(
            "auto", host, assignment, prog, 4, tie_seed=3
        ),
        GreedyExecutor,
    )


def test_dense_verifies_against_reference():
    # End-to-end: dense results pass the bit-exact reference check.
    host = _random_host(40, 4.0, 33)
    res = simulate_overlap(host, steps=8, engine="dense", verify=True)
    assert res.verified
