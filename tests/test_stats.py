"""SimStats counters and derived metrics."""

import math

import pytest

from repro.netsim.stats import SimStats


def test_slowdown():
    s = SimStats(makespan=120)
    assert s.slowdown(10) == 12.0
    with pytest.raises(ValueError):
        s.slowdown(0)


def test_redundancy_factor():
    s = SimStats(pebbles=150, redundant=50)
    assert s.redundancy_factor() == 1.5


def test_redundancy_factor_degenerate():
    s = SimStats(pebbles=0, redundant=0)
    assert math.isnan(s.redundancy_factor())


def test_merge_accumulates():
    a = SimStats(makespan=10, pebbles=5, messages=2, pebble_hops=4)
    b = SimStats(makespan=20, pebbles=7, messages=1, pebble_hops=9, procs_used=3)
    a.merge(b)
    assert a.makespan == 20
    assert a.pebbles == 12
    assert a.messages == 3
    assert a.pebble_hops == 13
    assert a.procs_used == 3


def test_merge_extras_numeric_adds_rest_overwrites():
    a = SimStats()
    a.extras.update({"retries": 3, "phase": "warm", "flag": True})
    b = SimStats()
    b.extras.update({"retries": 2, "phase": "cool", "note": "x", "flag": False})
    a.merge(b)
    assert a.extras["retries"] == 5  # numeric: additive
    assert a.extras["phase"] == "cool"  # non-numeric: last writer wins
    assert a.extras["note"] == "x"  # new keys carried over
    assert a.extras["flag"] is False  # bools are not numeric


def test_merge_extras_dicts_merge_recursively():
    # Regression: the seed merge silently dropped non-numeric extras;
    # structured extras must now merge by kind instead of vanishing.
    a = SimStats()
    a.extras["per_phase"] = {"warm": 2, "detail": {"retries": 1}}
    b = SimStats()
    b.extras["per_phase"] = {"warm": 3, "cool": 1, "detail": {"retries": 4}}
    a.merge(b)
    assert a.extras["per_phase"] == {"warm": 5, "cool": 1, "detail": {"retries": 5}}


def test_merge_extras_lists_concatenate():
    a = SimStats()
    a.extras["marks"] = [1, 2]
    b = SimStats()
    b.extras["marks"] = (3,)  # tuples count as lists
    a.merge(b)
    assert a.extras["marks"] == [1, 2, 3]


def test_merge_extras_kind_conflict_raises():
    a = SimStats()
    a.extras["retries"] = 3
    b = SimStats()
    b.extras["retries"] = "three"
    with pytest.raises(ValueError, match=r"extras\['retries'\]"):
        a.merge(b)


def test_merge_extras_nested_conflict_names_path():
    a = SimStats()
    a.extras["opts"] = {"grid": [1]}
    b = SimStats()
    b.extras["opts"] = {"grid": {"n": 1}}
    with pytest.raises(ValueError, match=r"extras\['opts'\]\['grid'\]"):
        a.merge(b)


def test_merge_extras_survive_roundtrip():
    a = SimStats()
    b = SimStats()
    b.extras["epochs"] = 4
    a.merge(b)
    assert a.as_dict()["epochs"] == 4


def test_as_dict_includes_extras():
    s = SimStats(makespan=4)
    s.extras["note"] = "x"
    d = s.as_dict()
    assert d["makespan"] == 4
    assert d["note"] == "x"


def test_work():
    assert SimStats(pebbles=9).work() == 9


def test_merge_extras_dists_concatenate_not_add():
    # Regression: distribution extras ({"__dist__": True, "samples"})
    # must merge by sample concatenation; the numeric rule would have
    # added pointwise (or dict-merged) and corrupted every percentile.
    from repro.netsim.stats import make_dist

    a = SimStats()
    a.record_step_latency([3, 5])
    b = SimStats()
    b.record_step_latency([4])
    a.merge(b)
    assert a.step_latency_samples() == [3, 5, 4]
    assert a.extras["step_latency"] == make_dist([3, 5, 4])
    # Percentiles are computed over the union of samples.
    assert a.step_latency_summary()["count"] == 3
    assert a.step_latency_summary()["p50"] == 4


def test_merge_extras_dist_kind_conflict_raises():
    from repro.netsim.stats import make_dist

    a = SimStats()
    a.extras["step_latency"] = make_dist([1])
    b = SimStats()
    b.extras["step_latency"] = [2, 3]  # a plain list is not a dist
    with pytest.raises(ValueError, match=r"extras\['step_latency'\]"):
        a.merge(b)


def test_as_dict_renders_dist_summary():
    s = SimStats(makespan=12)
    s.record_step_latency([4, 4, 4])
    d = s.as_dict()
    assert d["step_latency"] == {
        "count": 3,
        "mean": 4.0,
        "p50": 4,
        "p95": 4,
        "p99": 4,
    }


def test_percentile_helper_edges():
    from repro.netsim.stats import percentile

    assert percentile([], 0.5) is None
    assert percentile([7], 0.99) == 7
    assert percentile([1, 3], 0.5) == 2.0
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_latencies_from_completions_sum_to_makespan():
    from repro.netsim.stats import latencies_from_completions

    lats = latencies_from_completions([0, 4, 6, 11])
    assert lats == [4, 2, 5]
    assert sum(lats) == 11
