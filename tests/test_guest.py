"""Reference executors and the ring fold embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.guest import GuestArray, GuestRing
from repro.machine.pebbles import initial_value
from repro.machine.programs import (
    CounterProgram,
    DataflowProgram,
    KeyedStoreProgram,
    TokenProgram,
)


def test_reference_shapes_and_row0():
    g = GuestArray(6, CounterProgram())
    ref = g.run_reference(4)
    assert ref.values.shape == (5, 8)
    assert ref.pebble(3, 0) == initial_value(3)
    assert ref.total_pebbles() == 24


def test_reference_deterministic():
    g = GuestArray(10, CounterProgram())
    a = g.run_reference(6)
    b = g.run_reference(6)
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.update_digests, b.update_digests)


def test_scalar_and_vector_paths_agree():
    prog = CounterProgram()
    g = GuestArray(9, prog)
    vec = g._run_vectorised(5)
    sca = g._run_scalar(5)
    assert np.array_equal(vec.values, sca.values)
    assert np.array_equal(vec.update_digests, sca.update_digests)
    assert np.array_equal(vec.state_digests, sca.state_digests)


@pytest.mark.parametrize("prog_cls", [TokenProgram, DataflowProgram])
def test_scalar_vector_agreement_other_programs(prog_cls):
    g = GuestArray(7, prog_cls())
    vec = g._run_vectorised(4)
    sca = g._run_scalar(4)
    assert np.array_equal(vec.values, sca.values)
    assert np.array_equal(vec.update_digests, sca.update_digests)


def test_keyed_store_uses_scalar_path():
    g = GuestArray(5, KeyedStoreProgram())
    ref = g.run_reference(3)
    assert ref.values.shape == (4, 7)
    # Values vary across columns (states differ).
    row = ref.values[3, 1:6]
    assert len(set(row.tolist())) == 5


def test_zero_steps():
    g = GuestArray(4, CounterProgram())
    ref = g.run_reference(0)
    assert ref.steps == 0
    assert ref.values.shape == (1, 6)


def test_invalid_sizes():
    with pytest.raises(ValueError):
        GuestArray(0, CounterProgram())
    with pytest.raises(ValueError):
        GuestArray(4, CounterProgram()).run_reference(-1)


def test_values_differ_across_columns_and_time():
    g = GuestArray(8, CounterProgram())
    ref = g.run_reference(5)
    interior = ref.values[1:, 1:9]
    flat = interior.ravel().tolist()
    assert len(set(flat)) == len(flat)  # no collisions in a tiny grid


class TestRing:
    def test_ring_reference_shape(self):
        r = GuestRing(8, CounterProgram())
        grid = r.run_reference(5)
        assert grid.shape == (6, 8)

    def test_ring_wraps_dependencies(self):
        # With the token program the value of node 0 at t=1 depends on
        # node m-1 (its left neighbour around the ring).
        prog = TokenProgram()
        m = 6
        r = GuestRing(m, prog)
        grid = r.run_reference(1)
        states = prog.init_state_vec(m)
        expected, _ = prog.compute(
            1, 1, int(states[0]), initial_value(m), initial_value(1), initial_value(2)
        )
        assert int(grid[1, 0]) == expected

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            GuestRing(2, CounterProgram())

    @given(st.integers(min_value=3, max_value=60))
    @settings(max_examples=30)
    def test_fold_embedding_is_permutation_with_dilation_2(self, m):
        pos = GuestRing.fold_embedding(m)
        assert sorted(pos) == list(range(m))
        assert GuestRing.fold_dilation(m) <= 2
