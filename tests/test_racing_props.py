"""Property-based policy checks (hypothesis): racing and stealing are
deterministic functions of their seeds — repeated runs over a grid of
seeded jitter plans produce bit-identical winner selections, digests
and stats — and both stay digest-identical to the single-issue ground
truth on every drawn plan.

These live apart from ``tests/test_racing.py`` because the CI
bench-smoke job runs that file without hypothesis installed (its
zero-skip differential gate would otherwise trip on the import).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import steal_rebalance
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan
from repro.telemetry import MetricsTimeline


@st.composite
def jittered_run(draw):
    n = draw(st.integers(min_value=8, max_value=20))
    steps = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    max_jitter = draw(st.integers(min_value=1, max_value=12))
    drop_rate = draw(st.sampled_from([0.0, 0.2, 0.5]))
    plan = FaultPlan.random(
        n,
        seed=seed,
        horizon=16 * steps,
        jitter_rate=0.8,
        drop_rate=drop_rate,
        max_jitter=max_jitter,
    )
    return HostArray.uniform(n), steps, plan


def _fingerprint(res, timeline):
    """Everything observable about a run, in comparable form."""
    stats = dict(res.exec_result.stats.__dict__)
    stats["extras"] = dict(stats["extras"])
    tl = timeline.as_dict()
    tl.pop("meta", None)
    return {
        "stats": stats,
        "digests": dict(res.exec_result.value_digests),
        "timeline": tl,
        "summary": res.summary(),
    }


def _run(host, steps, plan, policy):
    tl = MetricsTimeline()
    res = simulate_overlap(
        host,
        steps=steps,
        min_copies=2,
        faults=plan,
        policy=policy,
        telemetry=tl,
    )
    return res, tl


@given(jittered_run(), st.sampled_from(["racing", "stealing", "racing+stealing"]))
@settings(max_examples=20, deadline=None)
def test_policy_runs_bit_identical_across_repeats(run, policy):
    host, steps, plan = run
    a = _fingerprint(*_run(host, steps, plan, policy))
    b = _fingerprint(*_run(host, steps, plan, policy))
    assert a == b


@given(jittered_run(), st.sampled_from(["racing", "stealing", "racing+stealing"]))
@settings(max_examples=20, deadline=None)
def test_policy_digests_match_single_issue(run, policy):
    host, steps, plan = run

    def col_digests(res):
        out = {}
        for (_p, c), d in res.exec_result.value_digests.items():
            assert out.setdefault(c, d) == d
        return out

    base, _ = _run(host, steps, plan, None)
    poly, tl = _run(host, steps, plan, policy)
    assert poly.verified
    assert col_digests(poly) == col_digests(base)
    # The telemetry cross-check holds on every drawn plan.
    tl.reconcile(poly.exec_result.stats)


@given(
    st.integers(min_value=8, max_value=24),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_steal_rebalance_seeded_determinism(n, plan_seed, steal_seed):
    host = HostArray.uniform(n, delay=2)
    plan = FaultPlan.random(
        n, seed=plan_seed, horizon=64, jitter_rate=0.6, max_jitter=8
    )
    from repro.core.killing import kill_and_label
    from repro.core.assignment import assign_databases

    asg = assign_databases(kill_and_label(host, 4.0), 1)
    out1, moves1 = steal_rebalance(asg, host, faults=plan, seed=steal_seed)
    out2, moves2 = steal_rebalance(asg, host, faults=plan, seed=steal_seed)
    assert moves1 == moves2 and out1.ranges == out2.ranges
    out1.validate()
    assert sorted(out1.owners()) == sorted(asg.owners())
