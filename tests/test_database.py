"""Database replicas: ordering, digests, copy-before-start rule."""

import pytest

from repro.machine.database import Database, check_replica_agreement
from repro.machine.programs import CounterProgram, KeyedStoreProgram


def make_db(col=3, prog=None):
    prog = prog or CounterProgram()
    return Database(col, prog.init_state(col)), prog


def test_apply_advances_version_and_digest():
    db, prog = make_db()
    d0 = db.digest
    db.apply(prog, 42)
    assert db.version == 1
    assert db.digest != d0


def test_digests_depend_on_column():
    a = Database(1, 0)
    b = Database(2, 0)
    assert a.digest != b.digest


def test_same_update_sequence_same_digest():
    prog = CounterProgram()
    a = Database(5, prog.init_state(5))
    b = Database(5, prog.init_state(5))
    for u in [3, 1, 4, 1, 5]:
        a.apply(prog, u)
        b.apply(prog, u)
    assert a.digest == b.digest
    assert a.state == b.state


def test_reordered_updates_diverge():
    prog = CounterProgram()
    a = Database(5, prog.init_state(5))
    b = Database(5, prog.init_state(5))
    for u in [3, 1]:
        a.apply(prog, u)
    for u in [1, 3]:
        b.apply(prog, u)
    assert a.digest != b.digest


def test_fork_only_at_version_zero():
    db, prog = make_db()
    clone = db.fork()
    assert clone.summary() == db.summary()
    db.apply(prog, 7)
    with pytest.raises(RuntimeError):
        db.fork()


def test_fork_copies_dict_state():
    prog = KeyedStoreProgram()
    db = Database(1, dict(enumerate(prog.init_state(1))))
    clone = db.fork()
    clone.state[0] = 999
    assert db.state[0] != 999


def test_replica_agreement_passes_for_twins():
    prog = CounterProgram()
    a = Database(2, prog.init_state(2))
    b = a.fork()
    for u in (10, 20):
        a.apply(prog, u)
        b.apply(prog, u)
    check_replica_agreement([a, b])


def test_replica_agreement_detects_divergence():
    prog = CounterProgram()
    a = Database(2, prog.init_state(2))
    b = a.fork()
    a.apply(prog, 10)
    b.apply(prog, 11)
    with pytest.raises(AssertionError):
        check_replica_agreement([a, b])


def test_replica_agreement_detects_version_skew():
    prog = CounterProgram()
    a = Database(2, prog.init_state(2))
    b = a.fork()
    a.apply(prog, 10)
    with pytest.raises(AssertionError):
        check_replica_agreement([a, b])


def test_replica_agreement_rejects_mixed_columns():
    with pytest.raises(AssertionError):
        check_replica_agreement([Database(1, 0), Database(2, 0)])


def test_replica_agreement_empty_ok():
    check_replica_agreement([])
