"""Execution tracing."""

from repro.core.assignment import Assignment
from repro.core.executor import GreedyExecutor
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram
from repro.netsim.trace import Trace


def traced_run(delays=(4, 4, 4), steps=6):
    host = HostArray(list(delays))
    n = host.n
    asg = Assignment([(i + 1, i + 1) for i in range(n)], n)
    trace = Trace()
    GreedyExecutor(host, asg, CounterProgram(), steps, trace=trace).run()
    return trace, n, steps


def test_records_every_pebble():
    trace, n, steps = traced_run()
    assert len(trace.records) == n * steps


def test_makespan_matches_latest_record():
    trace, _, _ = traced_run()
    assert trace.makespan == max(r[0] for r in trace.records)


def test_row_completion_monotone():
    trace, _, steps = traced_run()
    times = trace.row_completion_times()
    assert sorted(times) == list(range(1, steps + 1))
    ordered = [times[t] for t in sorted(times)]
    assert ordered == sorted(ordered)


def test_per_row_slowdown_sums_to_makespan():
    trace, _, _ = traced_run()
    per_row = trace.per_row_slowdown()
    assert sum(step for _, step in per_row) == trace.makespan


def test_utilization_bounds():
    trace, n, _ = traced_run()
    util = trace.utilization(list(range(n)))
    assert len(util) == n
    assert all(0 <= u <= 1 for u in util.values())
    assert any(u > 0 for u in util.values())


def test_spacetime_ascii_shape():
    trace, n, _ = traced_run()
    art = trace.spacetime_ascii(n, width=8, height=6)
    lines = art.splitlines()
    assert len(lines) == 6
    assert all("|" in line for line in lines)
    # Activity must appear somewhere.
    assert any(ch not in " |t=0123456789" for line in lines for ch in line)


def test_empty_trace():
    t = Trace()
    assert t.makespan == 0
    assert t.spacetime_ascii(4) == "(empty trace)"
    assert t.summary()["pebbles"] == 0


def test_summary_keys():
    trace, _, steps = traced_run()
    s = trace.summary()
    assert s["rows_completed"] == steps
    assert s["pebbles"] == len(trace.records)
    assert 0 < s["mean_utilization"] <= 1


def test_wavefront_shows_latency_pauses():
    """On a host with one huge link and no redundancy window, rows pay
    the link every step: per-row increments reflect it."""
    trace, _, _ = traced_run(delays=(1, 64, 1), steps=5)
    per_row = trace.per_row_slowdown()
    # After row 1 (free, from row 0), each row waits on the long link.
    late_rows = [inc for row, inc in per_row if row >= 2]
    assert all(inc >= 64 for inc in late_rows)
