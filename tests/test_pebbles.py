"""Pebble dependency rule and cones (Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.pebbles import (
    BOUNDARY_LEFT,
    BOUNDARY_RIGHT,
    boundary_value,
    cone,
    cone_size,
    initial_value,
    parents,
)


def test_parents_order_and_shape():
    assert parents(5, 3) == [(4, 2), (5, 2), (6, 2)]


def test_parents_require_positive_time():
    with pytest.raises(ValueError):
        parents(1, 0)


def test_cone_of_step1_is_three_parents_in_row0():
    assert cone(5, 1, 10) == {(4, 0), (5, 0), (6, 0)}


def test_cone_clips_at_guest_edges():
    c = cone(1, 2, 10)
    assert (0, 1) not in c  # boundary columns excluded
    assert (1, 1) in c and (2, 1) in c


@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=1, max_value=30),
)
def test_cone_size_matches_enumeration(i, t, m):
    if i > m:
        i = m
    assert cone_size(i, t, m) == len(cone(i, t, m))


def test_cone_grows_quadratically_in_open_space():
    # Away from edges the cone of (i, t) has t rows of widths 3,5,...,2t+1.
    m, i, t = 100, 50, 6
    assert cone_size(i, t, m) == sum(2 * k + 1 for k in range(1, t + 1))


def test_initial_values_distinct():
    vals = {initial_value(i) for i in range(1, 200)}
    assert len(vals) == 199


def test_boundary_values_distinct_by_side_and_time():
    left = {boundary_value(BOUNDARY_LEFT, t) for t in range(50)}
    right = {boundary_value(BOUNDARY_RIGHT, t) for t in range(50)}
    assert len(left) == 50
    assert len(right) == 50
    assert not left & right


def test_boundary_rejects_bad_side():
    with pytest.raises(ValueError):
        boundary_value(123, 1)
