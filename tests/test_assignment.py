"""Database assignment: coverage, load, overlap, blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment, assign_databases
from repro.core.killing import kill_and_label
from repro.machine.host import HostArray
from repro.topology.delays import pareto_delays


def killed(n=128, seed=0, c=4.0):
    rng = np.random.default_rng(seed)
    host = HostArray(pareto_delays(n - 1, rng, alpha=1.2, cap=4 * n))
    return kill_and_label(host, c)


class TestAssignmentDataclass:
    def test_load_and_copies(self):
        asg = Assignment([(1, 2), (2, 4), None], 4)
        assert asg.load() == 3
        assert asg.total_copies() == 5
        assert asg.redundancy() == 1.25
        assert asg.used_positions() == [0, 1]

    def test_owners_map(self):
        asg = Assignment([(1, 2), (2, 3)], 3)
        assert asg.owners() == {1: [0], 2: [0, 1], 3: [1]}

    def test_validate_catches_gap(self):
        with pytest.raises(ValueError):
            Assignment([(1, 1), (3, 3)], 3).validate()

    def test_validate_catches_bad_range(self):
        with pytest.raises(ValueError):
            Assignment([(0, 2)], 2).validate()
        with pytest.raises(ValueError):
            Assignment([(1, 5)], 3).validate()


class TestOverlapAssignment:
    def test_coverage_and_load(self):
        res = killed()
        asg = assign_databases(res)
        owners = asg.owners()
        assert set(owners) == set(range(1, asg.m + 1))
        assert asg.load() <= 2  # real-interval rounding bound

    def test_only_live_processors_assigned(self):
        res = killed(seed=3)
        asg = assign_databases(res)
        for p in asg.used_positions():
            assert res.live[p]

    def test_m_matches_root_label_floor(self):
        res = killed(seed=1)
        asg = assign_databases(res)
        assert asg.m == res.n_prime

    def test_redundancy_exists_but_constant(self):
        res = killed(256, seed=2)
        asg = assign_databases(res)
        assert asg.total_copies() > asg.m  # some column is replicated
        assert asg.redundancy() <= 3.0  # O(1) copies per column

    def test_ranges_are_contiguous_and_ordered(self):
        res = killed(seed=4)
        asg = assign_databases(res)
        # Ranges run left-to-right along the array; at a depth-k split
        # boundary the right sibling re-covers up to ~m_{k+1} columns,
        # so backward jumps are bounded by the depth-1 overlap m_1.
        max_overlap = res.params.m(1) + 2
        prev_lo = 0
        for p in asg.used_positions():
            lo, hi = asg.ranges[p]
            assert lo >= prev_lo - max_overlap
            prev_lo = max(prev_lo, lo)

    def test_block_factor_scales_everything(self):
        res = killed(seed=5)
        base = assign_databases(res, block=1)
        blocked = assign_databases(res, block=4)
        assert blocked.m == 4 * base.m
        assert blocked.load() <= 4 * base.load()
        blocked.validate()

    def test_block_must_be_positive(self):
        res = killed()
        with pytest.raises(ValueError):
            assign_databases(res, block=0)

    def test_uniform_host_load_one_mostly(self):
        host = HostArray.uniform(128, 2)
        res = kill_and_label(host)
        asg = assign_databases(res)
        loads = [hi - lo + 1 for r in asg.ranges if r for lo, hi in [r]]
        # Real-interval rounding makes the load 2 instead of the
        # paper's exact 1 (fractional leaf intervals straddle an
        # integer boundary); it never exceeds 2.
        assert max(loads) <= 2
        assert asg.redundancy() <= 2.5

    @given(st.integers(min_value=16, max_value=256), st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_property_coverage_any_host(self, n, seed):
        res = killed(n, seed)
        asg = assign_databases(res)
        asg.validate()  # raises on any gap
        assert 1 <= asg.m <= n
