"""Ring guests via the fold embedding (dilation 2, slowdown ~2)."""

import pytest

from repro.core.baselines import simulate_single_copy
from repro.core.ring import (
    fold_dilation_in_columns,
    ring_dep_map,
    ring_layout,
    simulate_ring,
)
from repro.machine.host import HostArray
from repro.machine.programs import DataflowProgram, TokenProgram


def test_layout_is_bijective():
    for m in (3, 8, 13):
        col_of_node, node_of_col = ring_layout(m)
        assert sorted(col_of_node) == list(range(1, m + 1))
        for k, col in enumerate(col_of_node):
            assert node_of_col[col] == k


def test_dep_map_wires_ring_neighbours():
    m = 10
    dep_map, node_of_col = ring_dep_map(m)
    col_of_node, _ = ring_layout(m)
    for col, (l, r) in dep_map.items():
        k = node_of_col[col]
        assert node_of_col[l] == (k - 1) % m
        assert node_of_col[r] == (k + 1) % m


@pytest.mark.parametrize("m", [4, 7, 12, 33])
def test_fold_dilation_at_most_two(m):
    assert fold_dilation_in_columns(m) <= 2


def test_verified_on_unit_host():
    res = simulate_ring(HostArray.uniform(12, 1), steps=8)
    assert res.verified
    assert res.m == 12


def test_verified_with_delays_and_copies():
    res = simulate_ring(HostArray.uniform(10, 4), steps=6, copies=2)
    assert res.verified
    assert res.exec_result.stats.redundant > 0


def test_other_programs():
    res = simulate_ring(HostArray.uniform(8, 2), steps=5, program=TokenProgram())
    assert res.verified
    res2 = simulate_ring(
        HostArray.uniform(8, 2), steps=5, program=DataflowProgram()
    )
    assert res2.verified


def test_ring_slowdown_within_factor_two_of_array():
    host = HostArray.uniform(16, 2)
    ring = simulate_ring(host, steps=8, verify=False)
    arr = simulate_single_copy(host, steps=8, verify=False)
    assert ring.slowdown <= 2.2 * arr.slowdown


def test_guest_smaller_than_host():
    res = simulate_ring(HostArray.uniform(16, 1), m=8, steps=6)
    assert res.verified


def test_rejects_tiny_ring():
    with pytest.raises(ValueError):
        simulate_ring(HostArray.uniform(4, 1), m=2)


def test_token_circulates_around_the_ring():
    """A token program's value at node 0 after m steps has absorbed the
    whole ring (wrap-around actually exercised)."""
    from repro.machine.guest import GuestRing

    m = 6
    ref_ring = GuestRing(m, TokenProgram()).run_reference(m)
    # The value at step m differs from a non-wrapping array of the same
    # size (where node 0's left parent is a boundary instead).
    from repro.machine.guest import GuestArray

    ref_arr = GuestArray(m, TokenProgram()).run_reference(m)
    assert int(ref_ring[m, 0]) != int(ref_arr.values[m, 1])
