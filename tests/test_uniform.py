"""Theorem 4: the sqrt(d) simulation on uniform-delay hosts."""

import math

import pytest

from repro.analysis.scaling import fit_power_law
from repro.core.uniform import (
    block_width,
    phased_bound,
    simulate_uniform,
    trapezium_census,
    uniform_assignment,
)
from repro.machine.programs import TokenProgram


def test_block_width():
    assert block_width(1) == 1
    assert block_width(16) == 4
    assert block_width(17) == 4
    assert block_width(100) == 10


class TestAssignment:
    def test_three_owners_per_interior_column(self):
        asg = uniform_assignment(8, 3)
        owners = asg.owners()
        assert asg.m == 24
        for c in range(4, 19):
            assert len(owners[c]) == 3

    def test_block_shape(self):
        q = 4
        asg = uniform_assignment(6, q)
        # Interior processor j owns (j-2)q+1 .. (j+1)q  (3q columns).
        lo, hi = asg.ranges[3]  # paper's j = 4
        assert lo == 2 * q + 1
        assert hi == 5 * q
        assert hi - lo + 1 == 3 * q

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            uniform_assignment(0, 2)
        with pytest.raises(ValueError):
            uniform_assignment(4, 0)


class TestSimulation:
    def test_verified_and_work_preserving(self):
        res = simulate_uniform(8, 16, steps=8)
        assert res.verified
        assert res.assignment.m == 8 * 4
        # Load is 3q = minimum-load up to the constant 3.
        assert res.assignment.load() == 3 * res.q

    def test_slowdown_below_phased_bound(self):
        for d in (4, 9, 25, 64):
            res = simulate_uniform(6, d, steps=2 * block_width(d))
            assert res.slowdown <= res.bound() / res.steps * res.steps  # sanity
            assert res.exec_result.stats.makespan <= phased_bound(
                d, res.steps, res.q, res.host.default_bandwidth()
            )

    def test_sqrt_scaling_shape(self):
        ds, slows = [], []
        for d in (4, 16, 64, 256):
            res = simulate_uniform(6, d, steps=2 * block_width(d), verify=False)
            ds.append(d)
            slows.append(res.slowdown)
        fit = fit_power_law(ds, slows)
        # Theorem 4 says exponent 1/2 (vs 1.0 for the naive approach).
        assert 0.3 <= fit.exponent <= 0.75, fit

    def test_normalized_slowdown_bounded(self):
        for d in (16, 64, 256):
            res = simulate_uniform(6, d, steps=2 * block_width(d), verify=False)
            assert res.normalized() <= 6.0

    def test_beats_single_copy_for_large_d(self):
        d = 144
        res = simulate_uniform(6, d, steps=24, verify=False)
        # Naive per-step cost is ~d; Theorem 4 pays ~5 sqrt(d).
        assert res.slowdown < d / 2

    def test_other_program(self):
        res = simulate_uniform(5, 9, steps=6, program=TokenProgram())
        assert res.verified


class TestTrapeziumCensus:
    def test_figure4_region_sizes(self):
        c = trapezium_census(16)
        q = 4
        assert c["q"] == q
        assert c["trapezium_pebbles"] == 2 * q * q - q
        assert c["triangle_pebbles"] == q * (q + 1)
        # Regions partition P_j: 3q^2 pebbles total.
        assert c["trapezium_pebbles"] + c["triangle_pebbles"] == 3 * q * q

    def test_round_total_within_paper_budget(self):
        for d in (16, 64, 256, 1024):
            c = trapezium_census(d)
            assert c["round_total"] <= c["paper_budget"]

    def test_phased_bound_scales_sqrt(self):
        b1 = phased_bound(64, 8)
        b2 = phased_bound(256, 16)
        # doubling sqrt(d) and steps/q constant: bound ~ 5d * steps/q.
        assert b2 > b1
