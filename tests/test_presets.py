"""Host presets."""

import pytest

from repro.core.overlap import simulate_overlap, simulate_overlap_on_graph
from repro.machine.host import HostArray, HostGraph
from repro.topology.presets import (
    PRESETS,
    campus,
    dialup_outlier,
    get_preset,
    mixed_now,
    smp_cluster,
    wan,
)


def test_registry_and_lookup():
    assert set(PRESETS) == {
        "campus",
        "wan",
        "smp-cluster",
        "dialup-outlier",
        "mixed-now",
    }
    assert isinstance(get_preset("campus"), HostArray)
    with pytest.raises(KeyError):
        get_preset("nope")


def test_campus_structure():
    h = campus(64)
    assert h.n == 64
    assert h.d_max == 20
    assert h.link_delays[15] == 20
    assert h.link_delays[14] == 1


def test_wan_heavy_tail_and_reproducible():
    a = wan(64, seed=3)
    b = wan(64, seed=3)
    assert a.link_delays == b.link_delays
    assert a.d_max > 4 * a.d_ave


def test_smp_cluster_is_graph():
    h = smp_cluster(4, 4)
    assert isinstance(h, HostGraph)
    assert h.n == 16
    assert h.d_max == 32


def test_dialup_outlier():
    h = dialup_outlier(32, bad_delay=500)
    assert h.d_max == 500
    assert sum(1 for d in h.link_delays if d > 1) == 1


def test_presets_run_through_overlap():
    assert simulate_overlap(campus(48), steps=6).verified
    assert simulate_overlap(mixed_now(48), steps=6).verified
    assert simulate_overlap_on_graph(smp_cluster(3, 4), steps=6).verified
