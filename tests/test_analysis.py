"""Analysis layer: metrics, scaling fits, report tables."""

import math

import pytest

from repro.analysis.metrics import (
    advantage,
    efficiency,
    normalized_slowdown,
    polylog,
    slowdown,
)
from repro.analysis.report import format_table, print_kv, print_table
from repro.analysis.scaling import (
    crossover_point,
    fit_power_law,
    geometric_mean,
    ratio_table,
)


class TestMetrics:
    def test_slowdown(self):
        assert slowdown(100, 10) == 10.0
        with pytest.raises(ValueError):
            slowdown(100, 0)

    def test_efficiency(self):
        assert efficiency(80, 10, 8) == 1.0
        with pytest.raises(ValueError):
            efficiency(1, 0, 2)

    def test_normalized_slowdown(self):
        assert normalized_slowdown(10, 4) == 5.0
        assert normalized_slowdown(12, 4, exponent=1.0) == 3.0

    def test_polylog(self):
        assert polylog(256, 1) == 8.0
        assert polylog(256, 3) == 512.0
        assert polylog(1) == 1.0

    def test_advantage(self):
        assert advantage(100, 4) == 25.0


class TestScaling:
    def test_fit_exact_power_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(30.0)

    def test_fit_with_noise_keeps_r2_high(self):
        xs = [2.0**k for k in range(8)]
        ys = [5 * x**1.0 * (1.1 if k % 2 else 0.9) for k, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 0.9 <= fit.exponent <= 1.1
        assert fit.r_squared > 0.95

    def test_fit_validations(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [2])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 1])

    def test_ratio_table(self):
        rows = ratio_table([1, 4], [2, 4], math.sqrt)
        assert rows[0] == (1, 2, 2.0)
        assert rows[1] == (4, 4, 2.0)

    def test_crossover(self):
        xs = [1, 2, 3, 4]
        a = [10, 8, 3, 1]
        b = [4, 4, 4, 4]
        assert crossover_point(xs, a, b) == 3
        assert crossover_point(xs, [9] * 4, [1] * 4) is None

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 200, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_values(self):
        rows = [{"f": 0.00001, "big": 123456.0, "flag": True, "z": 0.0}]
        text = format_table(rows)
        assert "1e-05" in text
        assert "yes" in text
        assert "0" in text

    def test_print_helpers_smoke(self, capsys):
        print_table([{"x": 1}], title="T")
        print_kv({"k": 2}, title="K")
        out = capsys.readouterr().out
        assert "== T ==" in out
        assert "== K ==" in out
        assert "k: 2" in out
