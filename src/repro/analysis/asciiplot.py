"""Terminal line plots for sweep results.

The repository has no plotting dependency (offline numpy/networkx
only), so benches and examples that want a visual shape check use
these ASCII renderers: a log-log scatter for scaling sweeps and a
simple bar chart for comparisons.
"""

from __future__ import annotations

import math
from typing import Sequence


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
    title: str | None = None,
) -> str:
    """Plot one or more series against shared x values.

    Each series gets a distinct glyph; log axes by default because
    every shape check in this repository is a power law.
    """
    if not xs or not series:
        return "(nothing to plot)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValueError("log x-axis needs positive values")
            return math.log10(v)
        return float(v)

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log y-axis needs positive values")
            return math.log10(v)
        return float(v)

    xs_t = [tx(v) for v in xs]
    all_y = [ty(v) for ys in series.values() for v in ys]
    x_lo, x_hi = min(xs_t), max(xs_t)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*#@"
    for idx, (name, ys) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for xv, yv in zip(xs_t, (ty(v) for v in ys)):
            col = round((xv - x_lo) / x_span * (width - 1))
            row = round((yv - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_bot = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    label_w = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    x_left = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_right = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w + f"  {x_left}" + " " * max(1, width - len(x_left) - len(x_right) - 2) + x_right
    )
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 48, unit: str = ""
) -> str:
    """Horizontal bar chart (linear scale)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    if not labels:
        return "(nothing to plot)"
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label:>{label_w}} |{bar} {value:g}{unit}")
    return "\n".join(lines)
