"""Derived metrics over simulation results.

Small pure functions so they are usable from benches, tests and the
examples without dragging executor types around.
"""

from __future__ import annotations

import math


def slowdown(makespan: float, guest_steps: int) -> float:
    """Host steps per guest step — the paper's central quantity."""
    if guest_steps <= 0:
        raise ValueError("guest_steps must be positive")
    return makespan / guest_steps


def efficiency(guest_work: float, makespan: float, processors: int) -> float:
    """Useful guest work per host processor-step.

    A simulation is *work preserving* when this is bounded below by a
    constant as the system scales (Koch et al. [7]'s notion, used
    throughout the paper).
    """
    if makespan <= 0 or processors <= 0:
        raise ValueError("makespan and processors must be positive")
    return guest_work / (makespan * processors)


def normalized_slowdown(slowdown_value: float, d: float, exponent: float = 0.5) -> float:
    """``slowdown / d^exponent`` — flat iff the bound's shape holds."""
    if d <= 0:
        raise ValueError("d must be positive")
    return slowdown_value / d**exponent


def polylog(n: int, power: int = 3) -> float:
    """``log2(n)^power`` with the log floored at 1."""
    return max(1.0, math.log2(max(2, n))) ** power


def advantage(baseline_slowdown: float, overlap_slowdown: float) -> float:
    """How many times faster OVERLAP is than a baseline."""
    if overlap_slowdown <= 0:
        raise ValueError("overlap slowdown must be positive")
    return baseline_slowdown / overlap_slowdown


def degradation(faulty_slowdown: float, clean_slowdown: float) -> float:
    """Degraded-mode slowdown relative to the fault-free run of the
    same host (1.0 == faults cost nothing)."""
    if clean_slowdown <= 0:
        raise ValueError("clean slowdown must be positive")
    return faulty_slowdown / clean_slowdown


def survival_fraction(m_surviving: int, m_initial: int) -> float:
    """Fraction of the guest that survived mid-run crashes."""
    if m_initial <= 0:
        raise ValueError("initial guest size must be positive")
    if not 0 <= m_surviving <= m_initial:
        raise ValueError(
            f"surviving guest {m_surviving} outside 0..{m_initial}"
        )
    return m_surviving / m_initial


def availability(completed_runs: int, total_runs: int) -> float:
    """Fraction of runs in a sweep that completed (vs. deadlocked)."""
    if total_runs <= 0:
        raise ValueError("total_runs must be positive")
    if not 0 <= completed_runs <= total_runs:
        raise ValueError("completed_runs outside 0..total_runs")
    return completed_runs / total_runs
