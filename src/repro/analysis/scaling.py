"""Scaling-shape analysis: exponent fits, ratios, crossovers.

The paper's claims are asymptotic, so reproduction means checking
*shapes*: the measured slowdown should grow like ``d^0.5`` (Theorem 4),
``d^1`` (Theorem 2), etc.  :func:`fit_power_law` estimates the exponent
by least squares in log-log space; :func:`crossover_point` locates
where one method starts beating another along a sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ coeff * x^exponent`` with an R^2 goodness measure."""

    exponent: float
    coeff: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model value at ``x``."""
        return self.coeff * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = a log x + b``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    a, b = np.polyfit(lx, ly, 1)
    pred = a * lx + b
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(a), coeff=float(math.exp(b)), r_squared=r2)


def ratio_table(
    xs: Sequence[float], ys: Sequence[float], normalizer
) -> list[tuple[float, float, float]]:
    """Rows ``(x, y, y / normalizer(x))`` — the normalised column should
    be ~flat when the claimed shape holds."""
    return [(x, y, y / normalizer(x)) for x, y in zip(xs, ys)]


def crossover_point(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """First ``x`` at which series ``a`` drops to or below series ``b``
    (``None`` if it never does).  Used for "where does OVERLAP start
    winning" tables."""
    for x, ya, yb in zip(xs, ys_a, ys_b):
        if ya <= yb:
            return x
    return None


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (positive inputs)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))
