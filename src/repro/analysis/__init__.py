"""Measurement and reporting utilities.

* :mod:`metrics` — derived quantities (slowdown, efficiency, load,
  redundancy, bandwidth use) from run results.
* :mod:`scaling` — log-log exponent fits and ratio tables for checking
  asymptotic *shapes* (the paper has no absolute numbers to match).
* :mod:`report` — fixed-width tables the benches print, paper-style.
"""

from repro.analysis.metrics import efficiency, normalized_slowdown, slowdown
from repro.analysis.scaling import (
    crossover_point,
    fit_power_law,
    ratio_table,
)
from repro.analysis.report import format_table, print_table
from repro.analysis.calibrate import LinearFit, calibration_table, fit_linear
from repro.analysis.asciiplot import ascii_bars, ascii_plot
from repro.analysis.planner import Plan, plan_block_factor, predict_slowdown

__all__ = [
    "slowdown",
    "efficiency",
    "normalized_slowdown",
    "fit_power_law",
    "ratio_table",
    "crossover_point",
    "format_table",
    "print_table",
    "LinearFit",
    "fit_linear",
    "calibration_table",
    "ascii_plot",
    "ascii_bars",
    "Plan",
    "plan_block_factor",
    "predict_slowdown",
]
