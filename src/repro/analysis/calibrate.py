"""Constant calibration: put numbers on the paper's O(.)s.

The theorems bound slowdown up to unspecified constants; for a
downstream user sizing a deployment, the *measured* constants of this
implementation matter.  Each calibrator sweeps the relevant parameter,
fits the claimed functional form by least squares, and reports the
leading constant plus the goodness of fit:

* Theorem 4:  ``slowdown ~ c1 * sqrt(d) + c0``          (paper: c1 <= 5)
* Theorem 2:  ``slowdown ~ c1 * d_ave + c0``            (fixed n, blocked)
* Theorem 7:  ``slowdown ~ c1 * m * g + c0`` (case 2)   (paper: c1 ~ 3)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """``y ~ c1 * f(x) + c0`` with R^2."""

    c1: float
    c0: float
    r_squared: float

    def predict(self, fx: float) -> float:
        """Model value at feature value ``fx``."""
        return self.c1 * fx + self.c0


def fit_linear(features: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares line through ``(feature, y)`` points."""
    if len(features) != len(ys) or len(features) < 2:
        raise ValueError("need >= 2 matched points")
    x = np.asarray(features, dtype=float)
    y = np.asarray(ys, dtype=float)
    c1, c0 = np.polyfit(x, y, 1)
    pred = c1 * x + c0
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(float(c1), float(c0), r2)


def calibrate_theorem4(
    d_values: Sequence[int] | None = None, n: int = 6
) -> LinearFit:
    """Fit ``slowdown = c1 sqrt(d) + c0`` for the Theorem-4 scheme.

    The paper's explicit accounting gives c1 <= 5; the greedy executor
    realises a smaller constant.
    """
    from repro.core.uniform import block_width, simulate_uniform

    d_values = list(d_values or (16, 64, 256, 1024))
    feats, slows = [], []
    for d in d_values:
        res = simulate_uniform(n, d, steps=2 * block_width(d), verify=False)
        feats.append(math.sqrt(d))
        slows.append(res.slowdown)
    return fit_linear(feats, slows)


def calibrate_theorem2(
    d_values: Sequence[int] | None = None,
    n: int = 96,
    block: int = 4,
    steps: int = 16,
) -> LinearFit:
    """Fit ``slowdown = c1 d_ave + c0`` for blocked OVERLAP at fixed n."""
    from repro.core.overlap import simulate_overlap
    from repro.machine.host import HostArray

    d_values = list(d_values or (1, 2, 4, 8, 16))
    feats, slows = [], []
    for d in d_values:
        res = simulate_overlap(
            HostArray.uniform(n, d), steps=steps, block=block, verify=False
        )
        feats.append(float(d))
        slows.append(res.slowdown)
    return fit_linear(feats, slows)


def calibrate_theorem7_case2(
    configs: Sequence[tuple[int, int, int]] | None = None
) -> LinearFit:
    """Fit ``slowdown = c1 * (m * g) + c0`` for case-2 2-D runs.

    The paper's count is ``(3 m / n0)(m / n0) m`` pebbles per ``m/n0``
    steps, i.e. per-step compute ``~ 3 m g`` — so c1 should land near
    (and below) 3.
    """
    from repro.core.twodim import simulate_2d_on_uniform_array

    configs = list(configs or [(12, 6, 4), (12, 4, 4), (16, 4, 8), (16, 2, 8)])
    feats, slows = [], []
    for m, n0, d in configs:
        g = math.ceil(m / n0)
        res = simulate_2d_on_uniform_array(m, n0, d, steps=2 * g, verify=False)
        feats.append(float(m * g))
        slows.append(res.slowdown)
    return fit_linear(feats, slows)


def calibration_table() -> list[dict]:
    """All calibrations as report rows (used by the X3 experiment)."""
    rows = []
    t4 = calibrate_theorem4()
    rows.append(
        {
            "bound": "Thm 4: c1*sqrt(d)+c0",
            "paper c1": "<= 5",
            "measured c1": round(t4.c1, 2),
            "c0": round(t4.c0, 2),
            "R^2": round(t4.r_squared, 4),
        }
    )
    t2 = calibrate_theorem2()
    rows.append(
        {
            "bound": "Thm 2: c1*d_ave+c0",
            "paper c1": "O(polylog)",
            "measured c1": round(t2.c1, 2),
            "c0": round(t2.c0, 2),
            "R^2": round(t2.r_squared, 4),
        }
    )
    t7 = calibrate_theorem7_case2()
    rows.append(
        {
            "bound": "Thm 7c2: c1*(m g)+c0",
            "paper c1": "~3",
            "measured c1": round(t7.c1, 2),
            "c0": round(t7.c0, 2),
            "R^2": round(t7.r_squared, 4),
        }
    )
    return rows
