"""Fixed-width table rendering for bench output.

The benches print paper-style rows (one per sweep point); keeping the
renderer tiny and dependency-free makes the output stable for
``EXPERIMENTS.md`` and easy to diff across runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render dict-rows as an aligned text table.

    ``columns`` selects/orders the keys (default: keys of first row).
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), max(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(row, widths)) for row in cells)
    return f"{header}\n{sep}\n{body}"


def print_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with an optional title banner."""
    if title:
        print(f"\n== {title} ==")
    print(format_table(rows, columns))


def print_kv(pairs: Mapping | Iterable[tuple], title: str | None = None) -> None:
    """Print key-value pairs one per line (for scalar summaries)."""
    if title:
        print(f"\n== {title} ==")
    items = pairs.items() if isinstance(pairs, Mapping) else pairs
    for k, v in items:
        print(f"  {k}: {_fmt(v)}")
