"""Configuration planner: choose the block factor ``beta`` for a host.

The work-efficient OVERLAP variant (Theorem 3) exposes one knob, the
block factor ``beta``.  Its effect is a clean tension:

* **compute cost** — each guest row costs every processor ~``load =
  2 beta`` pebbles of work;
* **latency amortisation** — at each interval-tree split the sibling
  overlap is ``~ m_{k+1} * beta`` columns, and the boundary link's
  delay is paid once per overlap-width rows, i.e. a per-row charge of
  ``delay_b / (overlap_b * beta)`` at the *binding* (worst) boundary.

The planner extracts every split boundary from the killed/labelled
tree (the physical delay between the children's facing live
processors, and the overlap mass ``m_{k+1}``), forms the predicted
per-row cost

    predict(beta) = load(beta) + max_b delay_b / (overlap_b * beta) + c

and recommends the minimising ``beta``.  Experiment X4 validates the
prediction against measured sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.killing import KillingResult, kill_and_label
from repro.machine.host import HostArray


@dataclass(frozen=True)
class Boundary:
    """One interval-tree split: physical delay vs realised overlap.

    ``overlap`` is the number of *base* columns the real-interval
    assignment actually shares across the split (>= 1 generically,
    even where the theoretical ``m_{k+1}`` is fractional — the
    rounding at leaves guarantees a shared column); the effective
    amortisation window at block factor ``beta`` is ``overlap * beta``
    rows.
    """

    depth: int
    position_left: int
    position_right: int
    delay: int
    overlap: float  # realised shared base columns across the split

    def per_row_cost(self, beta: int) -> float:
        """Latency charge per guest row at block factor ``beta``."""
        window = max(1.0, self.overlap * beta)
        return self.delay / window


def split_boundaries(killing: KillingResult) -> list[Boundary]:
    """All two-child splits of the remaining tree, with the facing
    live processors' delay and the *realised* base-column overlap."""
    from repro.core.assignment import assign_databases

    host = killing.host
    base = assign_databases(killing, block=1)
    out: list[Boundary] = []
    for node in killing.tree.all_nodes():
        if node.removed:
            continue
        kids = node.live_children()
        if len(kids) != 2:
            continue
        left, right = kids
        lp = _rightmost_live(killing, left)
        rp = _leftmost_live(killing, right)
        if lp is None or rp is None:
            continue
        left_hi = max(
            (base.ranges[p][1] for p in range(left.lo, left.hi + 1) if base.ranges[p]),
            default=0,
        )
        right_lo = min(
            (base.ranges[p][0] for p in range(right.lo, right.hi + 1) if base.ranges[p]),
            default=base.m + 1,
        )
        shared = max(0, left_hi - right_lo + 1)
        out.append(
            Boundary(
                depth=node.depth,
                position_left=lp,
                position_right=rp,
                delay=host.distance(lp, rp),
                overlap=float(shared),
            )
        )
    return out


def _rightmost_live(killing: KillingResult, node) -> int | None:
    for p in range(node.hi, node.lo - 1, -1):
        if killing.live[p]:
            return p
    return None


def _leftmost_live(killing: KillingResult, node) -> int | None:
    for p in range(node.lo, node.hi + 1):
        if killing.live[p]:
            return p
    return None


@dataclass
class Plan:
    """The planner's recommendation for one host."""

    host_name: str
    boundaries: list[Boundary]
    beta: int
    predicted: dict[int, float]  # beta -> predicted per-row cost

    @property
    def binding_boundary(self) -> Boundary | None:
        """The split that dominates the latency charge at beta=1."""
        if not self.boundaries:
            return None
        return max(self.boundaries, key=lambda b: b.per_row_cost(1))


def predict_slowdown(killing: KillingResult, beta: int, load_per_unit: float = 2.0) -> float:
    """Predicted per-row cost at ``beta`` (compute + binding latency)."""
    compute = load_per_unit * beta
    boundaries = split_boundaries(killing)
    latency = max((b.per_row_cost(beta) for b in boundaries), default=0.0)
    return compute + latency + 1.0


def plan_block_factor(
    host: HostArray,
    c: float = 4.0,
    candidates: list[int] | None = None,
) -> Plan:
    """Recommend a block factor for ``host``.

    Sweeps candidate betas over the predicted-cost model and returns
    the minimiser together with the full predicted curve (so callers
    can see how flat the optimum is).
    """
    killing = kill_and_label(host, c)
    boundaries = split_boundaries(killing)
    if candidates is None:
        # Geometric ladder up to the point where compute surely wins.
        top = max(2, int(math.sqrt(max(1, host.d_max))))
        candidates = sorted({1, 2, 4, 8, 16, 32, min(64, 2 * top)})
    predicted = {b: predict_slowdown(killing, b) for b in candidates}
    best = min(predicted, key=predicted.get)
    return Plan(host.name, boundaries, best, predicted)
