"""repro — a reproduction of Andrews, Leighton, Metaxas & Zhang,
"Improved Methods for Hiding Latency in High Bandwidth Networks"
(SPAA 1996).

The package implements the paper's *database model* of computation, the
latency-hiding algorithm **OVERLAP** and its variants (Theorems 2-8),
the baseline strategies it improves on, and the lower-bound
constructions (Theorems 9-10), all on top of a from-scratch
discrete-event network simulator.

Quick start::

    import numpy as np
    from repro import HostArray, simulate_overlap
    from repro.topology import pareto_delays

    rng = np.random.default_rng(0)
    host = HostArray(pareto_delays(127, rng, alpha=1.2))
    result = simulate_overlap(host, steps=32)
    print(result.slowdown, "vs naive", host.d_max + 1)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every theorem and figure.
"""

from repro.core import (
    Assignment,
    ExecResult,
    GreedyExecutor,
    KillingResult,
    OverlapParams,
    OverlapResult,
    SimulationDeadlock,
    assign_databases,
    build_schedule,
    kill_and_label,
    simulate_composed,
    simulate_overlap,
    simulate_overlap_on_graph,
    simulate_single_copy,
    simulate_uniform,
    simulate_2d_on_uniform_array,
    verify_execution,
)
from repro.netsim import FaultEvent, FaultPlan, RecoveryPolicy
from repro.machine import (
    CounterProgram,
    DataflowProgram,
    GuestArray,
    GuestRing,
    HostArray,
    HostGraph,
    get_program,
    list_programs,
)
from repro.topology import embed_linear_array

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine
    "HostArray",
    "HostGraph",
    "GuestArray",
    "GuestRing",
    "CounterProgram",
    "DataflowProgram",
    "get_program",
    "list_programs",
    # core
    "OverlapParams",
    "KillingResult",
    "kill_and_label",
    "Assignment",
    "assign_databases",
    "GreedyExecutor",
    "ExecResult",
    "SimulationDeadlock",
    "build_schedule",
    "OverlapResult",
    "simulate_overlap",
    "simulate_overlap_on_graph",
    "simulate_composed",
    "simulate_uniform",
    "simulate_single_copy",
    "simulate_2d_on_uniform_array",
    "verify_execution",
    # netsim faults
    "FaultEvent",
    "FaultPlan",
    "RecoveryPolicy",
    # topology
    "embed_linear_array",
]
