"""Bit-exact verification of distributed runs against the reference.

A simulation is correct iff, for every host replica of every column:

1. the folded pebble-value stream equals the reference column's fold
   (every pebble value identical, in order);
2. the database update digest equals the reference digest (same update
   sequence, same order — the database-model consistency contract);
3. the final database *state* digest matches;
4. all replicas of the same column agree with each other (implied by
   1-3 but checked independently for better diagnostics).

All comparisons are digest-based, so verification is O(copies) and does
not need the full pebble grid of the distributed run.
"""

from __future__ import annotations

from repro.core.executor import ExecResult
from repro.machine.database import check_replica_agreement
from repro.machine.guest import ReferenceRun
from repro.machine.mixing import fold_s
from repro.machine.programs import Program


class VerificationError(AssertionError):
    """The distributed run disagreed with the reference."""


def reference_column_digest(reference: ReferenceRun, col: int) -> int:
    """Fold of the reference pebble values of ``col`` for ``t=1..T``."""
    return fold_s(int(v) for v in reference.values[1:, col])


def verify_execution(
    result: ExecResult, reference: ReferenceRun, program: Program
) -> int:
    """Verify ``result`` against ``reference``; return replicas checked.

    Raises :class:`VerificationError` on the first mismatch, with the
    offending position/column in the message.
    """
    if result.steps != reference.steps:
        raise VerificationError(
            f"step mismatch: run has {result.steps}, reference {reference.steps}"
        )
    if result.assignment.m != reference.m:
        raise VerificationError(
            f"guest size mismatch: run has m={result.assignment.m}, "
            f"reference m={reference.m}"
        )

    ref_value_digest: dict[int, int] = {}
    checked = 0
    by_column: dict[int, list] = {}
    for (p, c), digest in result.value_digests.items():
        if c not in ref_value_digest:
            ref_value_digest[c] = reference_column_digest(reference, c)
        if digest != ref_value_digest[c]:
            raise VerificationError(
                f"pebble values diverge: position {p}, column {c}"
            )
        replica = result.replicas[(p, c)]
        if replica.version != result.steps:
            raise VerificationError(
                f"replica at position {p}, column {c} applied "
                f"{replica.version} updates, expected {result.steps}"
            )
        if replica.digest != int(reference.update_digests[c - 1]):
            raise VerificationError(
                f"update digest diverges: position {p}, column {c}"
            )
        state_digest = program.state_digest(replica.state)
        if state_digest != int(reference.state_digests[c - 1]):
            raise VerificationError(
                f"final state diverges: position {p}, column {c}"
            )
        by_column.setdefault(c, []).append(replica)
        checked += 1

    for c, replicas in by_column.items():
        try:
            check_replica_agreement(replicas)
        except AssertionError as exc:  # pragma: no cover - covered above
            raise VerificationError(str(exc)) from None

    covered = set(by_column)
    missing = [c for c in range(1, result.assignment.m + 1) if c not in covered]
    if missing:
        raise VerificationError(f"columns never verified: {missing[:10]}")
    return checked
