"""Theorem 4: hiding uniform latency with ``sqrt(d)`` slowdown.

Host ``H0`` is an ``n``-processor array whose every link has delay
``d``; the guest has ``n * sqrt(d)`` processors.  Processor ``j`` owns
the 3``q``-column block ``P_j`` (``q = floor(sqrt(d))``), overlapping
its neighbours' blocks by 2``q`` columns.  Working in rounds of ``q``
guest steps, a processor can compute the *trapezium* of pebbles that
depends only on its own block (``2q^2 - q`` pebbles), exchange the
four boundary column groups A/B/C/D with its neighbours (``d + q - 1``
steps, pipelined), and then fill in the left/right *triangles*
(``q^2 + q`` pebbles) — at most ``~5d`` steps per ``q`` guest steps,
i.e. slowdown ``O(sqrt(d))`` (Figure 4).

``simulate_uniform`` measures the real makespan by running the greedy
executor on the block assignment (greedy is never slower than the
phased schedule); :func:`phased_bound` gives the paper's explicit
accounting for comparison, and :func:`trapezium_census` regenerates
the Figure-4 region sizes for the F4 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.dense import build_executor
from repro.core.executor import ExecResult, GreedyExecutor
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram, Program
from repro.netsim.links import batch_transit_time


def block_width(d: int) -> int:
    """The paper's ``sqrt(d)`` block parameter, floored, at least 1."""
    return max(1, int(math.isqrt(max(1, d))))


def uniform_assignment(n: int, q: int, m: int | None = None) -> Assignment:
    """The ``P_j`` block assignment of Theorem 4.

    Processor ``j`` (1-indexed in the paper) owns columns
    ``(j-2) q + 1 .. (j+1) q`` clipped to ``[1, m]``; with ``m = n q``
    every column has 2-3 owners.
    """
    if n < 1 or q < 1:
        raise ValueError("need n >= 1 and q >= 1")
    if m is None:
        m = n * q
    ranges: list[tuple[int, int] | None] = []
    for p in range(n):
        j = p + 1
        lo = max(1, (j - 2) * q + 1)
        hi = min(m, (j + 1) * q)
        ranges.append((lo, hi) if lo <= hi else None)
    asg = Assignment(ranges, m)
    asg.validate()
    return asg


@dataclass
class UniformResult:
    """Outcome of a Theorem-4 simulation."""

    host: HostArray
    assignment: Assignment
    exec_result: ExecResult
    steps: int
    q: int
    verified: bool

    @property
    def slowdown(self) -> float:
        """Measured host steps per guest step."""
        return self.exec_result.stats.makespan / self.steps

    @property
    def d(self) -> int:
        """The uniform link delay."""
        return self.host.d_max

    def bound(self, bandwidth: int | None = None) -> float:
        """Paper's phased bound for the same configuration."""
        bw = bandwidth if bandwidth is not None else self.host.default_bandwidth()
        return phased_bound(self.d, self.steps, self.q, bw)

    def normalized(self) -> float:
        """Slowdown divided by ``sqrt(d)`` — should be O(1) over a
        ``d`` sweep (the Theorem-4 shape, matching the [2] lower
        bound ``Omega(sqrt(d))``)."""
        return self.slowdown / math.sqrt(max(1, self.d))


def simulate_uniform(
    n: int,
    d: int,
    steps: int | None = None,
    q: int | None = None,
    program: Program | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
) -> UniformResult:
    """Simulate an ``n q``-column guest on a uniform-delay-``d`` host."""
    program = program or CounterProgram()
    host = HostArray.uniform(n, d)
    q = q or block_width(d)
    if steps is None:
        steps = max(4, 2 * q)
    assignment = uniform_assignment(n, q)
    exec_result = build_executor(
        engine, host, assignment, program, steps, bandwidth
    ).run()
    verified = False
    if verify:
        guest = GuestArray(assignment.m, program)
        reference = guest.run_reference(steps)
        verify_execution(exec_result, reference, program)
        verified = True
    return UniformResult(host, assignment, exec_result, steps, q, verified)


def trapezium_census(d: int, q: int | None = None) -> dict:
    """Pebble counts of the Figure-4 regions for one round.

    ``T`` (trapezium), ``L``/``R`` (triangles), plus the step budget of
    each phase: compute-T, exchange, compute-LR — the paper's
    ``2d + 2d + d <= 5d`` accounting.
    """
    q = q or block_width(d)
    trapezium = 3 * q * q - 2 * (q * (q + 1) // 2)  # 2q^2 - q
    triangles = q * (q + 1)  # L and R together
    return {
        "q": q,
        "trapezium_pebbles": trapezium,
        "triangle_pebbles": triangles,
        "compute_T_steps": trapezium,
        "exchange_steps": batch_transit_time(q, d, 1),
        "compute_LR_steps": triangles,
        "round_total": trapezium + batch_transit_time(q, d, 1) + triangles,
        "paper_budget": 5 * d,
    }


def phased_bound(d: int, steps: int, q: int | None = None, bandwidth: int = 1) -> float:
    """Makespan of the explicit phased schedule for ``steps`` guest
    steps: ``ceil(steps / q)`` rounds of compute-T + exchange +
    compute-LR, each at most ``~5d`` (Theorem 4's proof)."""
    q = q or block_width(d)
    rounds = math.ceil(steps / q)
    trapezium = 2 * q * q - q
    exchange = batch_transit_time(q, d, bandwidth)
    triangles = q * (q + 1)
    return rounds * (trapezium + exchange + triangles)
