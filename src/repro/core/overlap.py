"""Algorithm OVERLAP, end to end (Theorems 2, 3 and 6).

``simulate_overlap`` runs the whole pipeline on a host array:

1. kill useless processors and label the interval tree (Section 3.1);
2. assign overlapped database ranges to live processors (Section 3.2),
   optionally blocked by ``beta`` for work efficiency (Section 3.3);
3. execute the guest greedily on the host's pipelined links;
4. verify the run bit-for-bit against the direct reference execution.

``simulate_overlap_on_graph`` first reduces an arbitrary connected host
network to a linear array via the Fact-3 dilation-3 embedding
(Section 4 / Theorem 6), then does the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.assignment import Assignment, assign_databases, steal_rebalance
from repro.core.dense import DenseExecutor, resolve_engine
from repro.core.executor import ExecResult, GreedyExecutor
from repro.core.racing import split_policy
from repro.core.killing import (
    KillingResult,
    kill_and_label,
    normalize_forced_dead,
    validate_steps,
)
from repro.core.schedule import ScheduleTable, build_schedule
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray, HostGraph
from repro.machine.programs import CounterProgram, Program
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.topology.embedding import ArrayEmbedding, embed_linear_array


@dataclass
class OverlapResult:
    """End-to-end outcome of one OVERLAP simulation."""

    host: HostArray
    killing: KillingResult
    assignment: Assignment
    exec_result: ExecResult
    schedule: ScheduleTable
    steps: int
    verified: bool
    embedding: ArrayEmbedding | None = None
    faults: FaultPlan | None = None
    engine: str = "greedy"  # execution tier actually used (resolved)
    policy: str = "single"  # execution policy name (racing/stealing/...)
    telemetry: object | None = None  # MetricsTimeline when requested
    #: ExecutorCheckpoints captured during the run (dense tiers only;
    #: stride marks plus, on faulted runs, fault boundaries/resumes).
    checkpoints: list = field(default_factory=list)
    #: First host step where any own watermark reached ``steps`` (dense
    #: tiers; None if unknown) — the horizon-extension divergence bound.
    first_top_t: int | None = None

    @property
    def slowdown(self) -> float:
        """Measured host steps per guest step."""
        return self.exec_result.stats.makespan / self.steps

    @property
    def m(self) -> int:
        """Guest size simulated (initial assignment)."""
        return self.assignment.m

    @property
    def m_surviving(self) -> int:
        """Guest size actually completed — smaller than :attr:`m` when
        mid-run crashes forced a reduced reassignment."""
        return self.exec_result.assignment.m

    @property
    def load(self) -> int:
        """Maximum databases per host processor."""
        return self.assignment.load()

    def schedule_slowdown_bound(self) -> float:
        """Theorem 1/2 slowdown bound from the explicit schedule."""
        return self.schedule.slowdown_bound()

    def efficiency(self) -> float:
        """Guest work per host processor-step (1.0 == perfectly
        work-preserving; OVERLAP loses only the redundancy constant and
        idle time)."""
        stats = self.exec_result.stats
        if stats.makespan == 0:
            return 1.0
        return (self.m * self.steps) / (stats.makespan * stats.procs_used)

    def summary(self) -> dict:
        """Flat dict for report tables."""
        out = {
            "n": self.host.n,
            "n_live": self.killing.n_live,
            "m": self.m,
            "steps": self.steps,
            "d_ave": round(self.host.d_ave, 2),
            "d_max": self.host.d_max,
            "load": self.load,
            "slowdown": round(self.slowdown, 2),
            "bound": round(self.schedule_slowdown_bound(), 2),
            "makespan": self.exec_result.stats.makespan,
            "pebbles": self.exec_result.stats.pebbles,
            "redundancy": round(self.assignment.redundancy(), 3),
            "verified": self.verified,
        }
        stats = self.exec_result.stats
        lat = stats.step_latency_summary()
        if lat is not None:
            out.update(
                step_p50=lat["p50"], step_p95=lat["p95"], step_p99=lat["p99"]
            )
        if self.policy != "single":
            out["policy"] = self.policy
        extras = stats.extras
        if "cancelled_messages" in extras:
            out.update(
                cancelled_messages=extras["cancelled_messages"],
                raced_wins=extras.get("raced_wins", 0),
                raced_losses=extras.get("raced_losses", 0),
            )
        if "steal_moves" in extras:
            out["steal_moves"] = extras["steal_moves"]
        if self.faults is not None and not self.faults.is_empty:
            stats = self.exec_result.stats
            out.update(
                m_surviving=self.m_surviving,
                faults_injected=stats.faults_injected,
                crashed_nodes=stats.crashed_nodes,
                recoveries=stats.recoveries,
                retries=stats.retries,
                lost_messages=stats.lost_messages,
                columns_lost=stats.columns_lost,
            )
        return out


def default_steps(killing: KillingResult) -> int:
    """The paper simulates in rounds of ``m_0 = n / (c lg n)`` guest
    steps; one round is the natural default experiment length."""
    return max(4, killing.params.m_int(0))


def simulate_overlap(
    host: HostArray,
    program: Program | None = None,
    steps: int | None = None,
    c: float = 4.0,
    block: int = 1,
    bandwidth: int | None = None,
    verify: bool = True,
    forced_dead: set[int] | None = None,
    faults: FaultPlan | None = None,
    policy=None,
    recovery: RecoveryPolicy | None = None,
    min_copies: int | None = None,
    engine: str = "auto",
    telemetry=None,
    checkpoint_stride: int | None = None,
    resume_from=None,
) -> OverlapResult:
    """Run algorithm OVERLAP on a host array.

    Parameters
    ----------
    host:
        The host linear array (arbitrary link delays).
    program:
        Guest program (default: the ``counter`` database workload).
    steps:
        Guest steps to simulate (default: one ``m_0`` round).
    c:
        The paper's constant (> 2).
    block:
        Work-efficiency factor ``beta`` (Section 3.3): each live
        processor holds ``O(beta)`` databases and the guest grows to
        ``n' * beta`` columns.
    bandwidth:
        Host link bandwidth (default ``ceil(log2 n)``, the paper's
        assumption; pass 1 for the low-bandwidth regime).
    verify:
        Compare against the reference run (costs one direct execution).
    forced_dead:
        Failed workstations (hold no databases, still relay) — OVERLAP
        reconfigures around them like around latency-killed processors.
    faults:
        Optional :class:`~repro.netsim.faults.FaultPlan` injected
        *during* the run (node crashes, link outages, jitter, drops).
        A non-empty plan enables the executor's detection/recovery
        machinery; an empty/absent plan is bit-identical to the
        fault-free path.
    policy:
        Execution policy: a name from
        :data:`~repro.core.racing.POLICIES` (``"single"``,
        ``"racing"``, ``"stealing"``, ``"racing+stealing"``) or an
        :class:`~repro.core.racing.ExecPolicy`.  ``racing`` subscribes
        each needed external column to its ``fanout`` nearest owners
        and takes the first consistent delivery (losers are cancelled
        down to the link level); ``stealing`` rebalances the assignment
        with :func:`~repro.core.assignment.steal_rebalance` before the
        run.  For backward compatibility a
        :class:`~repro.netsim.faults.RecoveryPolicy` instance is
        accepted here and treated as ``recovery=``.
    recovery:
        Detection/recovery knobs (timeouts, retry budget, restart
        penalty); default :class:`~repro.netsim.faults.RecoveryPolicy`.
    min_copies:
        Minimum database replicas per column (default 1).  Never
        auto-flipped by the presence of ``faults`` — pass
        ``min_copies=2`` explicitly so a single mid-run crash cannot
        destroy the last replica of an interval.
    engine:
        Execution tier: ``"auto"`` (default) picks the dense tier —
        the fault-free fast path, or the segmented
        :class:`~repro.core.dense_faults.FaultedDenseExecutor` when a
        non-empty fault plan is scripted — and falls back to the greedy
        event-driven engine only for tracing, multicast or ``tie_seed``
        runs; ``"dense"`` / ``"greedy"`` force a tier (``"dense"``
        raises if the config needs greedy-only machinery).  Both tiers
        produce bit-identical results on any config ``auto`` would run
        densely, fault plans included.
    telemetry:
        Optional :class:`~repro.telemetry.timeline.MetricsTimeline` to
        fill with per-step counters (and epoch/recovery spans on fault
        runs).  Supported by *both* tiers — attaching one never changes
        the engine selection or the results; the filled timeline is
        returned on :attr:`OverlapResult.telemetry`.
    checkpoint_stride:
        When set, the dense tiers snapshot the full executor state
        every ``checkpoint_stride`` host steps (see
        :mod:`repro.core.checkpoint`); the captures land on
        :attr:`OverlapResult.checkpoints`.  Ignored by the greedy
        engine.
    resume_from:
        An :class:`~repro.core.checkpoint.ExecutorCheckpoint` to
        restore before running: the executor replays only the suffix
        from the snapshot's time, finishing bit-identically to a full
        run (the caller guarantees the prefix is still valid for this
        config — the delta layer's blast-radius rules do).  Requires a
        dense-tier resolution; a config that resolves to the greedy
        engine raises :class:`~repro.delta.DeltaUnsupported`.
    """
    program = program or CounterProgram()
    exec_policy, policy = split_policy(policy, recovery)
    forced_dead = normalize_forced_dead(host.n, forced_dead)
    if steps is not None:
        steps = validate_steps(steps)
    copies = 1 if min_copies is None else min_copies
    killing = kill_and_label(host, c, forced_dead=forced_dead)
    assignment = assign_databases(killing, block, min_copies=copies)
    steal_moves: list = []
    if exec_policy.stealing:
        assignment, steal_moves = steal_rebalance(
            assignment, host, faults=faults, seed=exec_policy.steal_seed
        )
    if steps is None:
        steps = default_steps(killing)

    def reassign(dead: frozenset) -> Assignment:
        survivors_killing = kill_and_label(
            host, c, forced_dead=forced_dead | set(dead)
        )
        return assign_databases(
            survivors_killing, block, min_copies=max(2, copies)
        )

    resolved = resolve_engine(
        engine,
        faults=faults,
        policy=policy,
        forced_dead=forced_dead,
        exec_policy=exec_policy,
    )
    executor = None
    if resolved == "dense":
        if faults is not None and not faults.is_empty:
            from repro.core.dense_faults import FaultedDenseExecutor

            executor = FaultedDenseExecutor(
                host,
                assignment,
                program,
                steps,
                bandwidth,
                telemetry=telemetry,
                faults=faults,
                policy=policy,
                reassign=reassign,
                checkpoint_stride=checkpoint_stride,
            )
        else:
            executor = DenseExecutor(
                host,
                assignment,
                program,
                steps,
                bandwidth,
                telemetry=telemetry,
                checkpoint_stride=checkpoint_stride,
            )
        if resume_from is not None:
            executor.restore(resume_from)
        exec_result = executor.run()
    else:
        if resume_from is not None:
            from repro.delta import DeltaUnsupported

            raise DeltaUnsupported(
                "resume_from requires the dense tier; this config resolved "
                "to the greedy engine"
            )
        exec_result = GreedyExecutor(
            host,
            assignment,
            program,
            steps,
            bandwidth,
            faults=faults,
            policy=policy,
            reassign=reassign,
            telemetry=telemetry,
            exec_policy=exec_policy,
        ).run()
    if steal_moves:
        exec_result.stats.extras["steal_moves"] = len(steal_moves)
    schedule = build_schedule(killing.params, base_work=float(max(1, block)))
    verified = False
    if verify:
        # Reference built *after* the run: mid-run recovery may have
        # shrunk the guest to the surviving prefix 1..m'.
        guest = GuestArray(exec_result.assignment.m, program)
        reference = guest.run_reference(steps)
        verify_execution(exec_result, reference, program)
        verified = True
    return OverlapResult(
        host, killing, assignment, exec_result, schedule, steps, verified,
        faults=faults, engine=resolved, policy=exec_policy.name,
        telemetry=telemetry,
        checkpoints=list(executor.checkpoints) if executor is not None else [],
        first_top_t=executor.first_top_t if executor is not None else None,
    )


def simulate_overlap_on_graph(
    host: HostGraph,
    program: Program | None = None,
    steps: int | None = None,
    c: float = 4.0,
    block: int = 1,
    bandwidth: int | None = None,
    verify: bool = True,
    forced_dead: set | None = None,
    faults: FaultPlan | None = None,
    policy=None,
    recovery: RecoveryPolicy | None = None,
    min_copies: int | None = None,
    engine: str = "auto",
    telemetry=None,
    checkpoint_stride: int | None = None,
    resume_from=None,
) -> OverlapResult:
    """Theorem 6: OVERLAP on an arbitrary connected host network.

    The host is reduced to a linear array with the Fact-3 dilation-3
    embedding; for a bounded-degree host the induced array's average
    delay is within a constant factor of the host's, so Theorem 5's
    slowdown carries over.

    ``forced_dead`` names failed workstations as host *graph nodes*;
    they are translated to embedded-array positions before OVERLAP
    reconfigures around them.  ``faults``, ``policy`` and ``min_copies``
    behave exactly as in :func:`simulate_overlap`; a
    :class:`~repro.netsim.faults.FaultPlan`'s targets are interpreted in
    embedded-array coordinates (position ``j`` = ``embedding.order[j]``,
    link ``j`` = the tree path between consecutive embedded nodes) —
    call :func:`~repro.topology.embedding.embed_linear_array` on the
    host first to aim a plan at specific graph nodes, the embedding is
    deterministic.

    The embedding also precomputes every route delay into the induced
    array's flat ``link_delays``, so a fault-free graph-host run is an
    ordinary array workload: ``engine="auto"`` resolves it to the
    dense tier (bit-identical to greedy), and only the fault/recovery/
    trace features above force the event-driven engine.
    """
    embedding = embed_linear_array(host)
    array = embedding.host_array(name=f"embed({host.name})")
    if forced_dead:
        position_of = embedding.position_of()
        unknown = [v for v in forced_dead if v not in position_of]
        if unknown:
            raise ValueError(
                f"forced_dead nodes not in the host graph: {sorted(unknown, key=repr)}"
            )
        forced_dead = {position_of[v] for v in forced_dead}
    result = simulate_overlap(
        array,
        program,
        steps,
        c,
        block,
        bandwidth,
        verify,
        forced_dead=forced_dead,
        faults=faults,
        policy=policy,
        recovery=recovery,
        min_copies=min_copies,
        engine=engine,
        telemetry=telemetry,
        checkpoint_stride=checkpoint_stride,
        resume_from=resume_from,
    )
    result.embedding = embedding
    return result


def work_efficient_block(host: HostArray, polylog_exponent: int = 3) -> int:
    """The paper's ``beta = d_ave * log^q n`` block factor (Section 3.3
    uses ``q = 3``); exposed with a tunable exponent so experiments can
    keep guest sizes tractable while preserving the scaling shape."""
    lg = max(1.0, math.log2(host.n))
    return max(1, int(round(host.d_ave * lg**polylog_exponent)))
