"""The binary interval tree ``T`` over the host array (Section 3.1).

The root represents the whole array; each node's children represent the
left and right halves of its interval; leaves are single processors.  A
depth-``k`` node corresponds to a *depth-k interval* of roughly
``n / 2^k`` processors.  The tree carries the mutable annotations the
killing/labelling stages attach (liveness, stage-2 and stage-3 labels,
database ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class IntervalNode:
    """One node of the interval tree.

    ``lo``/``hi`` are inclusive host positions.  ``removed`` means the
    node was deleted from ``T`` (empty interval or stage-2 kill); labels
    are ``None`` until the corresponding stage has run.
    """

    depth: int
    lo: int
    hi: int
    children: list["IntervalNode"] = field(default_factory=list)
    parent: Optional["IntervalNode"] = field(default=None, repr=False)
    removed: bool = False
    label2: float | None = None
    label3: float | None = None
    db_start: float | None = None  # real-interval database assignment
    db_width: float | None = None

    @property
    def size(self) -> int:
        """Number of host positions in the interval."""
        return self.hi - self.lo + 1

    @property
    def is_leaf(self) -> bool:
        """True for single-processor intervals."""
        return not self.children

    def live_children(self) -> list["IntervalNode"]:
        """Children still present in ``T``."""
        return [ch for ch in self.children if not ch.removed]

    def __iter__(self) -> Iterator["IntervalNode"]:
        """Pre-order traversal of the subtree (including removed nodes)."""
        yield self
        for ch in self.children:
            yield from ch


class IntervalTree:
    """Complete binary interval tree over host positions ``0..n-1``.

    Intervals are split at the midpoint, so for non-power-of-two ``n``
    sibling sizes differ by at most one; the paper's ``n / 2^k``
    quantities are used as real numbers throughout the labelling, which
    keeps every lemma's arithmetic intact.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("interval tree needs at least one position")
        self.n = n
        self.root = self._build(0, n - 1, 0)
        self._by_depth: list[list[IntervalNode]] = []
        for node in self.root:
            while len(self._by_depth) <= node.depth:
                self._by_depth.append([])
            self._by_depth[node.depth].append(node)
        self.height = len(self._by_depth) - 1

    def _build(self, lo: int, hi: int, depth: int) -> IntervalNode:
        node = IntervalNode(depth, lo, hi)
        if lo < hi:
            mid = (lo + hi) // 2
            left = self._build(lo, mid, depth + 1)
            right = self._build(mid + 1, hi, depth + 1)
            left.parent = right.parent = node
            node.children = [left, right]
        return node

    def nodes_at_depth(self, k: int) -> list[IntervalNode]:
        """All nodes at depth ``k`` (empty list beyond the height)."""
        if k >= len(self._by_depth):
            return []
        return list(self._by_depth[k])

    def all_nodes(self) -> Iterator[IntervalNode]:
        """Pre-order traversal of the whole tree."""
        return iter(self.root)

    def leaves(self) -> list[IntervalNode]:
        """Leaves in left-to-right (position) order."""
        return [node for node in self.root if node.is_leaf]

    def leaf_at(self, pos: int) -> IntervalNode:
        """The leaf for host position ``pos`` (O(height) descent)."""
        if not 0 <= pos < self.n:
            raise IndexError(f"position {pos} out of range 0..{self.n - 1}")
        node = self.root
        while not node.is_leaf:
            left, right = node.children
            node = left if pos <= left.hi else right
        return node

    def path_to_root(self, pos: int) -> list[IntervalNode]:
        """Nodes whose intervals contain ``pos``, leaf first."""
        out = []
        node: IntervalNode | None = self.leaf_at(pos)
        while node is not None:
            out.append(node)
            node = node.parent
        return out
