"""Ring guests on array hosts (the paper's ring-to-array reduction).

The paper states its results for linear arrays and notes that "a
linear array can simulate a ring with slowdown 2 [8], so the
distinction is not important".  The constructive content is the *fold
embedding* (:meth:`repro.machine.guest.GuestRing.fold_embedding`):
interleave the two halves of the ring along the array so every pair of
ring neighbours lands within array distance 2.

Operationally we place ring node ``k`` at array column
``pos[k] + 1`` and hand the generic greedy executor a ``dep_map``
wiring each column to the array columns of its *ring* neighbours —
distance <= 2, so all communication stays local and the slowdown
relative to the array simulation is the promised small constant.  The
run is verified against the direct ring reference (values, update
digests and final states per node).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.dense import DenseExecutor, build_executor
from repro.core.executor import ExecResult
from repro.lower_bounds.audit import windowed_assignment
from repro.machine.guest import GuestRing, RingReferenceRun
from repro.machine.host import HostArray
from repro.machine.mixing import fold_s
from repro.machine.programs import CounterProgram, Program


def ring_layout(m: int) -> tuple[list[int], list[int]]:
    """(``col_of_node``, ``node_of_col``): ring node ``k`` (0-indexed)
    <-> array column (1-indexed), via the dilation-2 fold."""
    pos = GuestRing.fold_embedding(m)
    col_of_node = [p + 1 for p in pos]
    node_of_col = [0] * (m + 1)
    for k, col in enumerate(col_of_node):
        node_of_col[col] = k
    return col_of_node, node_of_col


def ring_dep_map(m: int) -> tuple[dict[int, tuple[int, int]], list[int]]:
    """The executor ``dep_map`` for an ``m``-ring folded on an array.

    Returns ``(dep_map, node_of_col)``; ``dep_map[col]`` is the pair of
    array columns holding the ring-left and ring-right neighbours of
    the node at ``col``.
    """
    col_of_node, node_of_col = ring_layout(m)
    dep_map = {}
    for col in range(1, m + 1):
        k = node_of_col[col]
        dep_map[col] = (
            col_of_node[(k - 1) % m],
            col_of_node[(k + 1) % m],
        )
    return dep_map, node_of_col


def fold_dilation_in_columns(m: int) -> int:
    """Max array distance between dependent columns (should be <= 2)."""
    dep_map, _ = ring_dep_map(m)
    return max(
        max(abs(col - a), abs(col - b)) for col, (a, b) in dep_map.items()
    )


@dataclass
class RingResult:
    """Outcome of a ring simulation on an array host."""

    host: HostArray
    m: int
    steps: int
    exec_result: ExecResult
    verified: bool
    #: Execution tier that ran ("dense" or "greedy").
    engine: str = "greedy"

    @property
    def slowdown(self) -> float:
        """Host steps per guest (ring) step."""
        return self.exec_result.stats.makespan / self.steps


def simulate_ring(
    host: HostArray,
    m: int | None = None,
    steps: int | None = None,
    program: Program | None = None,
    copies: int = 1,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
    telemetry=None,
    faults=None,
    policy=None,
    recovery=None,
) -> RingResult:
    """Simulate an ``m``-node unit-delay guest ring on an array host.

    ``copies`` selects the assignment: 1 spreads each folded column
    once; >= 2 uses the windowed multi-copy layout (redundancy).

    ``engine`` selects the execution tier (``auto``/``dense``/
    ``greedy``): the dense skeleton resolves the ring's ``dep_map``
    through the same watermark indices as the line adjacency, so ring
    runs take it by default — bit-identical to greedy — including
    faulted ones (the segmented
    :class:`~repro.core.dense_faults.FaultedDenseExecutor`).
    ``faults``/``recovery`` script link-level fault injection (a
    :class:`~repro.netsim.faults.FaultPlan` /
    :class:`~repro.netsim.faults.RecoveryPolicy`); node crashes are
    rejected on ring guests — recovery reassignment assumes the
    standard array dependency structure.  ``policy`` names the
    execution policy (see :data:`~repro.core.racing.POLICIES`:
    ``racing`` races replicated columns on the greedy engine,
    ``stealing`` rebalances the assignment first; a
    :class:`~repro.netsim.faults.RecoveryPolicy` passed here keeps its
    historical ``recovery=`` meaning).  ``telemetry`` (a
    :class:`~repro.telemetry.timeline.MetricsTimeline`) is supported on
    both tiers.
    """
    from repro.core.assignment import steal_rebalance
    from repro.core.racing import split_policy

    program = program or CounterProgram()
    exec_policy, recovery = split_policy(policy, recovery)
    m = m or host.n
    if m < 3:
        raise ValueError("a ring needs at least 3 nodes")
    if steps is None:
        steps = max(4, m // 4)
    dep_map, node_of_col = ring_dep_map(m)
    label = lambda col: node_of_col[col] + 1  # noqa: E731 - tiny adapter

    if copies <= 1:
        asg = _spread(host.n, m)
    else:
        asg = windowed_assignment(host.n, m, copies=copies)
    steal_moves: list = []
    if exec_policy.stealing:
        asg, steal_moves = steal_rebalance(
            asg, host, faults=faults, seed=exec_policy.steal_seed
        )
    executor = build_executor(
        engine,
        host,
        asg,
        program,
        steps,
        bandwidth,
        dep_map=dep_map,
        col_label=label,
        telemetry=telemetry,
        faults=faults,
        policy=recovery,
        exec_policy=exec_policy,
    )
    resolved = "dense" if isinstance(executor, DenseExecutor) else "greedy"
    result = executor.run()
    if steal_moves:
        result.stats.extras["steal_moves"] = len(steal_moves)
    verified = False
    if verify:
        reference = GuestRing(m, program).run_reference_full(steps)
        verify_ring_execution(result, reference, program, node_of_col)
        verified = True
    return RingResult(host, m, steps, result, verified, engine=resolved)


def _spread(n: int, m: int) -> Assignment:
    from repro.core.baselines import spread_assignment

    return spread_assignment(n, m)


def verify_ring_execution(
    result: ExecResult,
    reference: RingReferenceRun,
    program: Program,
    node_of_col: list[int],
) -> int:
    """Check every replica of every folded column against the ring
    reference (value folds, update digests, final states)."""
    checked = 0
    ref_folds: dict[int, int] = {}
    for (p, col), digest in result.value_digests.items():
        k = node_of_col[col]
        if k not in ref_folds:
            ref_folds[k] = fold_s(int(v) for v in reference.values[1:, k])
        if digest != ref_folds[k]:
            raise AssertionError(
                f"ring node {k}: pebble values diverge at position {p}"
            )
        replica = result.replicas[(p, col)]
        if replica.version != reference.steps:
            raise AssertionError(f"ring node {k}: wrong update count")
        if replica.digest != int(reference.update_digests[k]):
            raise AssertionError(f"ring node {k}: update digest diverges")
        if program.state_digest(replica.state) != int(reference.state_digests[k]):
            raise AssertionError(f"ring node {k}: final state diverges")
        checked += 1
    if checked < result.assignment.m:
        raise AssertionError("some ring nodes were never verified")
    return checked
