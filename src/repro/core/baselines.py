"""Baseline latency-handling strategies the paper compares against.

Three comparators, all stated in Section 1 / Section 3:

* **Lockstep slowdown** — "slow down the computation to the point where
  the latency is accommodated": every guest step costs ``d_max + 1``
  host steps.  A closed form (:func:`simulate_lockstep_bound`).
* **Single copy** — databases are placed once, no redundancy, all
  processors used.  Run for real through the greedy executor; on
  skewed hosts its slowdown tracks ``d_max`` (Theorem 9's regime).
* **Prior efficient** — the work-preserving prior approach the paper
  credits: use only ``~ n / d_max`` processors so the inter-processor
  delay amortises over a bigger load.  Also run for real.

All baselines reuse :class:`~repro.core.executor.GreedyExecutor` with
different assignments, so comparisons against OVERLAP are apples to
apples (same engine, same program, same bandwidth model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.dense import build_executor
from repro.core.executor import ExecResult, GreedyExecutor
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram, Program


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    name: str
    host: HostArray
    assignment: Assignment | None
    exec_result: ExecResult | None
    steps: int
    makespan: int
    verified: bool

    @property
    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.makespan / self.steps


def spread_assignment(n: int, m: int, positions: list[int] | None = None) -> Assignment:
    """Distribute ``m`` columns over ``positions`` (default: all ``n``)
    in contiguous blocks, one copy each — the no-redundancy layout."""
    if positions is None:
        positions = list(range(n))
    k = len(positions)
    if k < 1 or m < 1:
        raise ValueError("need at least one position and one column")
    ranges: list[tuple[int, int] | None] = [None] * n
    base, extra = divmod(m, k)
    col = 1
    for idx, p in enumerate(positions):
        width = base + (1 if idx < extra else 0)
        if width == 0:
            continue
        ranges[p] = (col, col + width - 1)
        col += width
    asg = Assignment(ranges, m)
    asg.validate()
    return asg


def simulate_single_copy(
    host: HostArray,
    m: int | None = None,
    steps: int | None = None,
    program: Program | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
) -> BaselineResult:
    """No-redundancy baseline: one copy per database, all processors.

    Default guest size ``m = n`` (load 1, like load-1 OVERLAP).
    """
    program = program or CounterProgram()
    m = m or host.n
    steps = steps or max(4, m // 4)
    assignment = spread_assignment(host.n, m)
    exec_result = build_executor(
        engine, host, assignment, program, steps, bandwidth
    ).run()
    verified = False
    if verify:
        reference = GuestArray(m, program).run_reference(steps)
        verify_execution(exec_result, reference, program)
        verified = True
    return BaselineResult(
        "single-copy",
        host,
        assignment,
        exec_result,
        steps,
        exec_result.stats.makespan,
        verified,
    )


def simulate_prior_efficient(
    host: HostArray,
    m: int | None = None,
    steps: int | None = None,
    program: Program | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
) -> BaselineResult:
    """Prior work-preserving approach: only ``~ n / d_max`` processors.

    Evenly-spaced processors carry the whole guest in large blocks, so
    the per-step communication delay amortises over the block work.
    """
    program = program or CounterProgram()
    n = host.n
    k = max(1, n // max(1, host.d_max))
    positions = [round(i * (n - 1) / max(1, k - 1)) for i in range(k)] if k > 1 else [0]
    positions = sorted(set(positions))
    m = m or host.n
    steps = steps or max(4, m // 4)
    assignment = spread_assignment(n, m, positions)
    exec_result = build_executor(
        engine, host, assignment, program, steps, bandwidth
    ).run()
    verified = False
    if verify:
        reference = GuestArray(m, program).run_reference(steps)
        verify_execution(exec_result, reference, program)
        verified = True
    return BaselineResult(
        "prior-efficient",
        host,
        assignment,
        exec_result,
        steps,
        exec_result.stats.makespan,
        verified,
    )


def simulate_lockstep_bound(
    host: HostArray, steps: int, work_per_step: int = 1
) -> BaselineResult:
    """Closed-form circuit-style baseline: the clock runs at the speed
    of the slowest link, so one guest step costs ``work + d_max``."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    makespan = steps * (work_per_step + host.d_max)
    return BaselineResult("lockstep", host, None, None, steps, makespan, False)


def lockstep_slowdown(host: HostArray, work_per_step: int = 1) -> float:
    """Slowdown of the lockstep baseline (``d_max + work``)."""
    return host.d_max + work_per_step


def prior_efficient_processor_count(host: HostArray) -> int:
    """``~ n / d_max`` — how many processors prior approaches keep."""
    return max(1, host.n // max(1, host.d_max))


def theoretical_overlap_advantage(host: HostArray) -> float:
    """The paper's headline ratio ``d_max / (sqrt(d_ave) log^3 n)`` —
    how much OVERLAP should win by on this host."""
    lg = max(1.0, math.log2(host.n))
    return host.d_max / (math.sqrt(host.d_ave) * lg**3)
