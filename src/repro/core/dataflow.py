"""The dataflow-model contrast: latency hiding *without* redundancy.

The paper repeatedly contrasts the database model with the *dataflow*
model of its companion paper [2] (computation is memoryless, so **any**
processor that knows the parents can compute a pebble).  Its Section-6
moral: in the database model redundant computation is *necessary*; in
the dataflow model it is "apparently not useful" — the same latency
bounds are achievable with every pebble computed **exactly once**.

This module implements that dataflow scheme on a uniform-delay host —
the classic trapezoid decomposition (up-trapezoids / down-trapezoids,
Frigo-Strumpen style): in rounds of ``q`` guest rows,

* processor ``j`` computes the shrinking *up-trapezoid* over its own
  ``2q``-column block (self-contained given the previous base row);
* neighbours exchange the staircase values along the block seams;
* processor ``j`` computes the growing *down-trapezoid* ``D_j`` sitting
  between its block and its right neighbour's;
* base-row values are exchanged for the next round.

Per ``q`` rows this costs ``~2q^2`` work (redundancy exactly 1.0) and
two pipelined exchanges (``~2(d + q/bw)``), i.e. slowdown
``O(sqrt(d))`` with ``q = sqrt(d)`` — matching Theorem 4's database
bound but with **zero** redundant pebbles, which is the quantitative
content of the dataflow-vs-database contrast (ablation bench A3).

The executor stores, per processor, only the values it computed or
received — reading anything else raises — so the communication pattern
is honest, and it verifies the union of computed pebbles (each computed
exactly once) against the reference run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.guest import GuestArray
from repro.machine.pebbles import (
    BOUNDARY_LEFT,
    BOUNDARY_RIGHT,
    boundary_value,
    initial_value,
)
from repro.machine.programs import DataflowProgram, Program
from repro.netsim.links import batch_transit_time


class _Proc:
    """Value store of one dataflow processor."""

    def __init__(self, idx: int, lo: int, hi: int, m: int):
        self.idx, self.lo, self.hi, self.m = idx, lo, hi, m
        self.values: dict[tuple[int, int], int] = {}

    def get(self, i: int, t: int) -> int:
        if i == 0:
            return boundary_value(BOUNDARY_LEFT, t)
        if i == self.m + 1:
            return boundary_value(BOUNDARY_RIGHT, t)
        if t == 0:
            return initial_value(i)
        try:
            return self.values[(i, t)]
        except KeyError:
            raise AssertionError(
                f"proc {self.idx} read ({i},{t}) it neither computed nor received"
            ) from None

    def has(self, i: int, t: int) -> bool:
        if i <= 0 or i >= self.m + 1 or t == 0:
            return True
        return (i, t) in self.values


@dataclass
class DataflowResult:
    """Outcome of a dataflow-model simulation."""

    n_procs: int
    m: int
    d: int
    q: int
    steps: int
    makespan: int
    pebbles: int
    shipped: int
    verified: bool

    @property
    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.makespan / self.steps

    @property
    def redundancy(self) -> float:
        """Computed pebbles per distinct pebble — exactly 1.0 here."""
        return self.pebbles / (self.m * self.steps)

    def normalized(self) -> float:
        """Slowdown over sqrt(d)."""
        return self.slowdown / math.sqrt(max(1, self.d))


def _compute(proc: _Proc, program: Program, i: int, t: int, counter: list[int]) -> None:
    left = proc.get(i - 1, t - 1)
    up = proc.get(i, t - 1)
    right = proc.get(i + 1, t - 1)
    value, _ = program.compute(i, t, 0, left, up, right)
    if (i, t) in proc.values:  # pragma: no cover - invariant guard
        raise AssertionError(f"pebble ({i},{t}) computed twice by proc {proc.idx}")
    proc.values[(i, t)] = value
    counter[0] += 1


def simulate_dataflow(
    n_procs: int,
    d: int,
    steps: int | None = None,
    q: int | None = None,
    program: Program | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
) -> DataflowResult:
    """Simulate a ``2 q n``-column dataflow guest on a uniform-delay host.

    ``program`` must be memoryless (``uses_database`` False); the
    database-model programs cannot be migrated between processors and
    are rejected, which is exactly the paper's point.
    """
    program = program or DataflowProgram()
    if program.uses_database:
        raise ValueError(
            f"program {program.name!r} uses a database; the dataflow "
            "executor only admits memoryless programs (the paper's model"
            " distinction)"
        )
    if n_procs < 2 or d < 1:
        raise ValueError("need n_procs >= 2 and d >= 1")
    q = q or max(1, math.isqrt(d))
    b = 2 * q
    m = b * n_procs
    if steps is None:
        steps = 2 * q
    if bandwidth is None:
        bandwidth = max(1, math.ceil(math.log2(max(2, n_procs))))

    procs = [_Proc(j, j * b + 1, (j + 1) * b, m) for j in range(n_procs)]
    counter = [0]
    shipped_total = 0
    makespan = 0
    t0 = 0

    def up_span(j: int, s: int, r: int) -> tuple[int, int]:
        """Columns of proc j's up-trapezoid at local row s (1-based)."""
        left = 1 if j == 0 else procs[j].lo + (s - 1)
        right = m if j == n_procs - 1 else procs[j].hi - (s - 1)
        return left, right

    def down_span(j: int, s: int) -> tuple[int, int]:
        """Columns of D_j (the seam gap between the up-trapezoids of
        blocks j and j+1) at local row s — empty at s = 1, width
        ``2s - 2`` after, exactly the columns neither U covers."""
        hi = procs[j].hi
        return hi - s + 2, hi + s - 1

    while t0 < steps:
        r = min(q, steps - t0)
        # --- phase A: up-trapezoids (self-contained) -------------------
        work_a = 0
        for j, proc in enumerate(procs):
            c0 = counter[0]
            for s in range(1, r + 1):
                a, bnd = up_span(j, s, r)
                for i in range(a, bnd + 1):
                    _compute(proc, program, i, t0 + s, counter)
            work_a = max(work_a, counter[0] - c0)

        # --- exchange 1: staircases for the down-trapezoids ------------
        ship1 = 0
        for j in range(n_procs - 1):
            left_p, right_p = procs[j], procs[j + 1]
            moved = 0
            for s in range(2, r + 1):
                a, bnd = down_span(j, s)
                for i in range(a, bnd + 1):
                    for pi, pt in ((i - 1, t0 + s - 1), (i, t0 + s - 1), (i + 1, t0 + s - 1)):
                        if not left_p.has(pi, pt) and right_p.has(pi, pt):
                            left_p.values[(pi, pt)] = right_p.get(pi, pt)
                            moved += 1
            ship1 = max(ship1, moved)
        shipped_total += ship1 * max(1, n_procs - 1)

        # --- phase B: down-trapezoids (computed once, by the left proc)
        work_b = 0
        for j in range(n_procs - 1):
            proc = procs[j]
            c0 = counter[0]
            for s in range(2, r + 1):
                a, bnd = down_span(j, s)
                for i in range(a, bnd + 1):
                    _compute(proc, program, i, t0 + s, counter)
            work_b = max(work_b, counter[0] - c0)

        # --- exchange 2: base row for everyone's next round ------------
        t_end = t0 + r
        ship2 = 0
        if t_end < steps:
            for j, proc in enumerate(procs):
                moved = 0
                a, bnd = up_span(j, 1, r)
                for i in range(max(1, a - 1), min(m, bnd + 1) + 1):
                    if not proc.has(i, t_end):
                        src = next(p for p in procs if p.has(i, t_end))
                        proc.values[(i, t_end)] = src.get(i, t_end)
                        moved += 1
                ship2 = max(ship2, moved)
            shipped_total += ship2 * n_procs

        makespan += work_a + work_b
        makespan += batch_transit_time(ship1, d, bandwidth) if ship1 else 0
        makespan += batch_transit_time(ship2, d, bandwidth) if ship2 else 0
        t0 = t_end

    verified = False
    if verify:
        _verify(procs, program, m, steps)
        verified = True
    return DataflowResult(
        n_procs, m, d, q, steps, makespan, counter[0], shipped_total, verified
    )


def _verify(procs: list[_Proc], program: Program, m: int, steps: int) -> None:
    """Union of computed pebbles == reference grid, each exactly once."""
    reference = GuestArray(m, program).run_reference(steps)
    seen: dict[tuple[int, int], int] = {}
    # `values` may include *received* copies; recompute ownership from
    # the rounds is overkill — instead check coverage and agreement.
    for proc in procs:
        for (i, t), v in proc.values.items():
            if t < 1:
                continue
            expected = reference.pebble(i, t)
            if v != expected:
                raise AssertionError(f"pebble ({i},{t}) wrong at proc {proc.idx}")
            seen[(i, t)] = v
    missing = [
        (i, t)
        for t in range(1, steps + 1)
        for i in range(1, m + 1)
        if (i, t) not in seen
    ]
    if missing:
        raise AssertionError(f"pebbles never computed: {missing[:5]}")


def dataflow_vs_database_summary(n_procs: int, d: int, steps: int | None = None) -> dict:
    """Run the dataflow scheme and Theorem 4's database scheme at the
    same scale; return the redundancy/slowdown contrast (ablation A3)."""
    from repro.core.uniform import simulate_uniform

    df = simulate_dataflow(n_procs, d, steps=steps, verify=False)
    db = simulate_uniform(n_procs, d, steps=df.steps, verify=False)
    return {
        "d": d,
        "dataflow slowdown": round(df.slowdown, 2),
        "database slowdown": round(db.slowdown, 2),
        "dataflow redundancy": round(df.redundancy, 2),
        "database redundancy": round(
            db.exec_result.stats.pebbles / (db.assignment.m * db.steps), 2
        ),
    }
