"""Higher-dimensional guests on linear hosts (Theorem 8, generalized).

The paper closes Section 5 with "Theorem 8 can be generalized to
higher dimensional arrays".  This module carries the 2-D slab
algorithm of :mod:`repro.core.twodim` to ``m^D`` guests: the guest is
sliced along its **last axis** into hyperslabs of ``g`` slices, one
per host processor; processors work in batches of ``tau = g`` steps,
recomputing a shrinking halo wedge (now a ``(D-1)``-dimensional slab
per halo slice) and exchanging exactly the missed wedge afterwards.

Per batch an interior processor computes ``m^(D-1) * tau * (g + tau -
1)`` pebbles — the same ``<= 3x`` redundancy constant as Theorem 7's
case 2 — and the exchanged volume amortises the link latency over
``g`` guest steps, giving the Theorem-8 shape
``O(m^(D-1) + m^D / n0)`` per step on the uniform intermediate array.

Runs are verified cell-exactly against :class:`GuestND`'s reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.guestnd import (
    GuestND,
    ProgramND,
    StencilCounterND,
    _coord_mix,
    _FRAME_SEED,
)
from repro.machine.mixing import mix2_v
from repro.netsim.links import batch_transit_time


class _SlabProc:
    """One host processor's hyperslab state."""

    def __init__(self, m: int, dims: int, lo: int, hi: int, tau: int, prog: ProgramND):
        self.m, self.dims = m, dims
        self.lo, self.hi, self.tau = lo, hi, tau
        self.program = prog
        self.slo = max(1, lo - tau)
        self.shi = min(m, hi + tau)
        self.width = self.shi - self.slo + 1
        base = tuple([m] * (dims - 1))
        self.base = base
        # Interior-only storage; frames are regenerated on demand.
        full_states = prog.init_state_grid(tuple([m] * dims))
        self.S = full_states[..., self.slo - 1 : self.shi].copy()
        self.V: np.ndarray | None = None  # t=0 slab values, set by caller
        self.Dg: np.ndarray | None = None  # update digests, set by caller
        self.ver = np.zeros(self.width, dtype=np.int64)
        self.log: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    def li(self, c: int) -> int:
        """Slab-local index of global slice ``c``."""
        return c - self.slo


@dataclass
class NDimResult:
    """Outcome of a D-dimensional slab simulation."""

    shape: tuple[int, ...]
    n_procs: int
    d: int
    g: int
    steps: int
    makespan: int
    pebbles: int
    exchanged_cells: int
    verified: bool

    @property
    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.makespan / self.steps

    @property
    def cells(self) -> int:
        """Guest cells per step."""
        return int(np.prod(self.shape))

    @property
    def redundancy(self) -> float:
        """Computed pebbles per distinct pebble."""
        return self.pebbles / (self.cells * self.steps)


def simulate_nd_on_uniform_array(
    m: int,
    dims: int,
    n_procs: int,
    d: int,
    steps: int | None = None,
    program: ProgramND | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
) -> NDimResult:
    """Simulate an ``m^dims`` guest on a uniform-delay-``d`` array."""
    if dims < 2:
        raise ValueError("use the 1-D executor for dims < 2")
    if m < 1 or n_procs < 1 or d < 1:
        raise ValueError("need m, n_procs, d >= 1")
    program = program or StencilCounterND()
    guest = GuestND(tuple([m] * dims), program)
    g = math.ceil(m / n_procs)
    tau = g
    if steps is None:
        steps = max(2, 2 * tau)
    if bandwidth is None:
        bandwidth = max(1, math.ceil(math.log2(max(2, n_procs))))

    P = math.ceil(m / g)
    procs: list[_SlabProc] = []
    init = guest.initial_grid()
    interior = tuple(slice(1, m + 1) for _ in range(dims))
    init_interior = init[interior]
    from repro.machine.guestnd import _DB_SEED

    dig_full = _coord_mix(_DB_SEED, tuple([m] * dims), offset=1)
    for p in range(P):
        lo = p * g + 1
        hi = min(m, (p + 1) * g)
        proc = _SlabProc(m, dims, lo, hi, tau, program)
        proc.V = init_interior[..., proc.slo - 1 : proc.shi].copy()
        proc.Dg = dig_full[..., proc.slo - 1 : proc.shi].copy()
        procs.append(proc)

    cell_count = m ** (dims - 1)
    makespan = 0
    pebbles_total = 0
    exchanged_total = 0
    t0 = 0
    while t0 < steps:
        tau_b = min(tau, steps - t0)
        batch_pebbles = []
        for proc in procs:
            batch_pebbles.append(
                _compute_batch(guest, proc, t0, tau_b, cell_count)
            )
        pebbles_total += sum(batch_pebbles)
        compute_time = max(batch_pebbles)
        t_end = t0 + tau_b

        volume = 0
        for idx, proc in enumerate(procs):
            for j in range(1, tau + 1):
                c = proc.lo - j
                if c >= 1 and idx > 0:
                    rows = procs[idx - 1].log.get(c)
                    if rows:
                        volume += 2 * _resync(proc, c, rows, t0 + 1)
                c = proc.hi + j
                if c <= m and idx + 1 < len(procs):
                    rows = procs[idx + 1].log.get(c)
                    if rows:
                        volume += 2 * _resync(proc, c, rows, t0 + 1)
        exchanged_total += volume
        per_link = math.ceil(volume / max(1, 2 * len(procs))) if volume else 0
        transit = batch_transit_time(per_link, d, bandwidth) if per_link else 0
        makespan += compute_time + transit
        t0 = t_end

    verified = False
    if verify:
        _verify_nd(guest, procs, steps)
        verified = True
    return NDimResult(
        guest.shape, P, d, g, steps, makespan, pebbles_total, exchanged_total, verified
    )


def _frame_block(guest: GuestND, cols: np.ndarray, t: int) -> np.ndarray:
    """Framed block: first ``D-1`` axes fully framed (labels 0..m+1),
    last axis at the given global labels; every cell holds the frame
    hash for step ``t``.  Interior cells get overwritten by the caller.
    """
    m, dims = guest.shape[0], guest.dims
    shape = tuple([m + 2] * (dims - 1)) + (len(cols),)
    acc = np.broadcast_to(np.uint64(_FRAME_SEED), shape).copy()
    for axis in range(dims - 1):
        coords = np.arange(0, m + 2, dtype=np.uint64)
        view = coords.reshape([-1 if a == axis else 1 for a in range(dims)])
        acc = mix2_v(acc, np.broadcast_to(view, shape))
    last = cols.astype(np.uint64).reshape([1] * (dims - 1) + [-1])
    acc = mix2_v(acc, np.broadcast_to(last, shape))
    return mix2_v(acc, np.broadcast_to(np.uint64(t), shape))


def _compute_batch(
    guest: GuestND, proc: _SlabProc, t0: int, tau_b: int, cell_count: int
) -> int:
    m, dims = guest.shape[0], guest.dims
    prog = proc.program
    pebbles = 0
    proc.log = {c: [] for c in range(proc.lo, proc.hi + 1)}
    inner = tuple(slice(1, m + 1) for _ in range(dims - 1))
    for s in range(1, tau_b + 1):
        t = t0 + s
        a = max(1, proc.lo - (tau_b - s), proc.slo)
        b = min(m, proc.hi + (tau_b - s), proc.shi)
        la, lb = proc.li(a), proc.li(b)
        w = lb - la + 1
        cols_ext = np.arange(a - 1, b + 2)  # includes one label each side
        tmp = _frame_block(guest, cols_ext, t - 1)
        # Overwrite interior cells available from the slab (labels in
        # [max(1,a-1), min(m,b+1)]).
        va = max(1, a - 1)
        vb = min(m, b + 1)
        tmp[(*inner, slice(va - (a - 1), vb - (a - 1) + 1))] = proc.V[
            ..., proc.li(va) : proc.li(vb) + 1
        ]
        centre = (*inner, slice(1, w + 1))
        neighbours = []
        for axis in range(dims - 1):
            neg = tmp[_shift(centre, axis, -1)]
            pos = tmp[_shift(centre, axis, +1)]
            neighbours.append((neg, pos))
        neighbours.append(
            (tmp[(*inner, slice(0, w))], tmp[(*inner, slice(2, w + 2))])
        )
        up = tmp[centre]
        values, updates = prog.compute_grid(
            t, proc.S[..., la : lb + 1], up, neighbours
        )
        proc.V[..., la : lb + 1] = values
        proc.S[..., la : lb + 1] = prog.apply_grid(proc.S[..., la : lb + 1], updates)
        proc.Dg[..., la : lb + 1] = mix2_v(proc.Dg[..., la : lb + 1], updates)
        proc.ver[la : lb + 1] += 1
        pebbles += cell_count * w
        for c in range(max(a, proc.lo), min(b, proc.hi) + 1):
            lc = proc.li(c)
            proc.log[c].append(
                (values[..., lc - la].copy(), updates[..., lc - la].copy())
            )
    return pebbles


def _shift(centre: tuple, axis: int, delta: int) -> tuple:
    out = list(centre)
    s = out[axis]
    out[axis] = slice(s.start + delta, s.stop + delta)
    return tuple(out)


def _resync(proc: _SlabProc, c: int, rows, t_first: int) -> int:
    """Apply a neighbour's (values, updates) stream for halo slice c."""
    lc = proc.li(c)
    consumed = 0
    for offset, (vals, upds) in enumerate(rows):
        t = t_first + offset
        if t <= proc.ver[lc]:
            continue
        proc.S[..., lc] = proc.program.apply_grid(proc.S[..., lc], upds)
        proc.Dg[..., lc] = mix2_v(proc.Dg[..., lc], upds)
        proc.V[..., lc] = vals
        proc.ver[lc] = t
        consumed += vals.size
    return consumed


def _verify_nd(guest: GuestND, procs: list[_SlabProc], steps: int) -> None:
    reference = guest.run_reference(steps)
    m = guest.shape[0]
    interior = tuple(slice(1, m + 1) for _ in range(guest.dims))
    ref_final = reference.values[steps][interior]
    for proc in procs:
        for c in range(proc.lo, proc.hi + 1):
            lc = proc.li(c)
            if proc.ver[lc] != steps:
                raise AssertionError(f"slice {c}: version {proc.ver[lc]} != {steps}")
            if not np.array_equal(proc.V[..., lc], ref_final[..., c - 1]):
                raise AssertionError(f"slice {c}: final values diverge")
            if not np.array_equal(
                proc.Dg[..., lc], reference.update_digests[..., c - 1]
            ):
                raise AssertionError(f"slice {c}: update digests diverge")
            if not np.array_equal(
                proc.S[..., lc], reference.state_digests[..., c - 1]
            ):
                raise AssertionError(f"slice {c}: final states diverge")


def ndim_slowdown_estimate(m: int, dims: int, n_procs: int, d: int) -> float:
    """The generalized Theorem-7 shape: per guest step, ``~3 m^(D-1) g``
    compute (case 2) or ``m^(D-1) + d`` (case 1)."""
    g = math.ceil(m / n_procs)
    cells = m ** (dims - 1)
    if g == 1:
        return cells + d
    return 3.0 * cells * g + d / g
