"""Section 5: simulating an ``m x m`` guest array on a linear host
(Theorems 7 and 8).

The guest is sliced into column blocks of width ``g = ceil(m / n0)``,
one block per processor of the uniform-delay intermediate array ``H0``.
Processors work in *batches* of ``tau = g`` guest steps:

* at batch start every processor knows, for its *slab* (its own block
  widened by ``tau`` halo columns per side), all values and database
  states at the current guest step — databases for halo columns are
  redundant copies, made before the simulation starts and kept in sync
  by recomputation plus update streams (never by shipping databases);
* during the batch it computes ``tau`` steps locally on a region that
  shrinks by one column per side per step (it lacks the data to keep
  the halo's outer edge fresh) — Theorem 7's
  ``(3 m / n0)(m / n0) m`` redundant-pebble count;
* after the batch, neighbours exchange exactly the triangular wedge of
  pebbles (values + updates) the shrinkage missed, restoring the slab
  invariant for the next batch.

Case 1 of Theorem 7 (``d_ave < n0``, one column per processor) is the
degenerate ``g = tau = 1`` instance of the same loop.

The executor computes **real pebble values** (verified bit-for-bit
against :class:`~repro.machine.guest2d.Guest2D`'s reference run) while
accounting time analytically per phase: compute steps = pebbles
computed by the busiest processor; exchange steps = pipelined transit
of the exchanged wedge (``d + ceil(P / bw) - 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.guest2d import (
    Guest2D,
    Program2D,
    ReferenceRun2D,
    StencilCounterProgram,
)
from repro.machine.mixing import mix2_v, tag_s
from repro.netsim.links import batch_transit_time

_FRAME_SEED = tag_s(0xF7A)


def _frame_col(r_count: int, c: int, t: int) -> np.ndarray:
    """Vectorised frame values for rows ``1..r_count`` of frame column
    ``c`` at step ``t`` (matches :func:`frame_value`)."""
    rows = np.arange(1, r_count + 1, dtype=np.uint64)
    base = mix2_v(np.broadcast_to(np.uint64(_FRAME_SEED), rows.shape), rows)
    base = mix2_v(base, np.broadcast_to(np.uint64(c), rows.shape))
    return mix2_v(base, np.broadcast_to(np.uint64(t), rows.shape))


def _frame_row(r: int, cols: np.ndarray, t: int) -> np.ndarray:
    """Vectorised frame values for frame row ``r`` at columns ``cols``."""
    cols64 = cols.astype(np.uint64)
    base = mix2_v(np.broadcast_to(np.uint64(_FRAME_SEED), cols64.shape),
                  np.broadcast_to(np.uint64(r), cols64.shape))
    base = mix2_v(base, cols64)
    return mix2_v(base, np.broadcast_to(np.uint64(t), cols64.shape))


class _Proc:
    """Local state of one host processor (a column-block owner)."""

    def __init__(self, m: int, lo: int, hi: int, tau: int, prog: Program2D):
        self.m, self.lo, self.hi, self.tau = m, lo, hi, tau
        self.program = prog
        self.slo = max(1, lo - tau)
        self.shi = min(m, hi + tau)
        self.width = self.shi - self.slo + 1
        cols = np.arange(self.slo, self.shi + 1)
        self.cols = cols
        # V rows: 0 and m+1 are the guest frame; 1..m the interior.
        self.V = np.zeros((m + 2, self.width), dtype=np.uint64)
        rr = np.arange(1, m + 1, dtype=np.uint64)[:, None]
        cc = cols.astype(np.uint64)[None, :]
        seed_init = np.uint64(tag_s(0x1418))
        self.V[1 : m + 1] = mix2_v(
            mix2_v(np.broadcast_to(seed_init, (m, self.width)),
                   np.broadcast_to(rr, (m, self.width))),
            np.broadcast_to(cc, (m, self.width)),
        )
        full = prog.init_state_grid(m)
        self.S = full[:, self.slo - 1 : self.shi].copy()
        self.ver = np.zeros(self.width, dtype=np.int64)
        # Update digests (kept for own columns; halo entries unused).
        self.D = np.empty((m, self.width), dtype=np.uint64)
        seed_db = np.uint64(tag_s(0xDB2))
        self.D[:] = mix2_v(
            mix2_v(np.broadcast_to(seed_db, (m, self.width)),
                   np.broadcast_to(rr, (m, self.width))),
            np.broadcast_to(cc, (m, self.width)),
        )
        # Per-batch log of own-column (values, updates) per local step.
        self.log: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    def li(self, c: int) -> int:
        """Slab-local index of global column ``c``."""
        return c - self.slo

    def compute_batch(self, t0: int, tau_b: int) -> int:
        """Run ``tau_b`` local steps starting after guest step ``t0``;
        return pebbles computed.  Logs own-column rows for exchange."""
        m = self.m
        pebbles = 0
        self.log = {c: [] for c in range(self.lo, self.hi + 1)}
        for s in range(1, tau_b + 1):
            t = t0 + s
            a = max(1, self.lo - (tau_b - s))
            b = min(m, self.hi + (tau_b - s))
            a = max(a, self.slo)
            b = min(b, self.shi)
            la, lb = self.li(a), self.li(b)
            w = lb - la + 1
            # Previous-step frame rows for the region's columns.
            region_cols = self.cols[la : lb + 1]
            self.V[0, la : lb + 1] = _frame_row(0, region_cols, t - 1)
            self.V[m + 1, la : lb + 1] = _frame_row(m + 1, region_cols, t - 1)
            north = self.V[0:m, la : lb + 1]
            south = self.V[2 : m + 2, la : lb + 1]
            up = self.V[1 : m + 1, la : lb + 1]
            if a == 1:
                west = np.empty((m, w), dtype=np.uint64)
                if w > 1:
                    west[:, 1:] = self.V[1 : m + 1, la : lb]
                west[:, 0] = _frame_col(m, 0, t - 1)
            else:
                west = self.V[1 : m + 1, la - 1 : lb]
            if b == m:
                east = np.empty((m, w), dtype=np.uint64)
                if w > 1:
                    east[:, :-1] = self.V[1 : m + 1, la + 1 : lb + 1]
                east[:, -1] = _frame_col(m, m + 1, t - 1)
            else:
                east = self.V[1 : m + 1, la + 1 : lb + 2]
            values, updates = self.program.compute_grid(
                t, self.S[:, la : lb + 1], north, south, west, east, up
            )
            self.V[1 : m + 1, la : lb + 1] = values
            self.S[:, la : lb + 1] = self.program.apply_grid(
                self.S[:, la : lb + 1], updates
            )
            self.D[:, la : lb + 1] = mix2_v(self.D[:, la : lb + 1], updates)
            self.ver[la : lb + 1] += 1
            pebbles += m * w
            for c in range(max(a, self.lo), min(b, self.hi) + 1):
                lc = self.li(c)
                self.log[c].append((values[:, lc - la].copy(), updates[:, lc - la].copy()))
        return pebbles

    def resync(self, c: int, t_end: int, rows: list[tuple[np.ndarray, np.ndarray]], t_first: int) -> int:
        """Apply a neighbour's (values, updates) stream for halo column
        ``c`` covering guest steps ``t_first..t_end``; returns the
        number of pebbles (cells) actually consumed."""
        lc = self.li(c)
        consumed = 0
        for offset, (vals, upds) in enumerate(rows):
            t = t_first + offset
            if t <= self.ver[lc]:
                continue
            self.S[:, lc] = self.program.apply_grid(self.S[:, lc], upds)
            self.D[:, lc] = mix2_v(self.D[:, lc], upds)
            self.V[1 : self.m + 1, lc] = vals
            self.ver[lc] = t
            consumed += len(vals)
        return consumed


@dataclass
class TwoDimResult:
    """Outcome of a Theorem-7 run."""

    m: int
    n_procs: int
    d: int
    g: int
    steps: int
    makespan: int
    pebbles: int
    exchanged_cells: int
    verified: bool

    @property
    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.makespan / self.steps

    def summary(self) -> dict:
        """Flat dict for report tables."""
        return {
            "m": self.m,
            "n0": self.n_procs,
            "d": self.d,
            "g": self.g,
            "steps": self.steps,
            "slowdown": round(self.slowdown, 2),
            "estimate": round(twodim_slowdown_estimate(self.m, self.n_procs, self.d), 2),
            "pebbles": self.pebbles,
            "exchanged": self.exchanged_cells,
            "verified": self.verified,
        }


def simulate_2d_on_uniform_array(
    m: int,
    n_procs: int,
    d: int,
    steps: int | None = None,
    program: Program2D | None = None,
    bandwidth: int | None = None,
    verify: bool = True,
) -> TwoDimResult:
    """Theorem 7: an ``m x m`` guest on a uniform-delay-``d`` array."""
    if m < 1 or n_procs < 1 or d < 1:
        raise ValueError("need m, n_procs, d >= 1")
    program = program or StencilCounterProgram()
    g = math.ceil(m / n_procs)
    tau = g
    if steps is None:
        steps = max(2, 2 * tau)
    if bandwidth is None:
        bandwidth = max(1, math.ceil(math.log2(max(2, n_procs))))

    P = math.ceil(m / g)
    procs: list[_Proc] = []
    for p in range(P):
        lo = p * g + 1
        hi = min(m, (p + 1) * g)
        procs.append(_Proc(m, lo, hi, tau, program))

    makespan = 0
    pebbles_total = 0
    exchanged_total = 0
    t0 = 0
    while t0 < steps:
        tau_b = min(tau, steps - t0)
        batch_pebbles = [proc.compute_batch(t0, tau_b) for proc in procs]
        pebbles_total += sum(batch_pebbles)
        compute_time = max(batch_pebbles)
        t_end = t0 + tau_b
        # Exchange the missed wedge: halo column lo - j (resp. hi + j)
        # was locally advanced only to t_end - j.
        volume = 0
        for idx, proc in enumerate(procs):
            for j in range(1, tau + 1):
                c = proc.lo - j
                if c >= 1 and idx > 0:
                    src = procs[idx - 1]
                    rows = src.log.get(c)
                    if rows:
                        consumed = proc.resync(c, t_end, rows, t0 + 1)
                        volume += 2 * consumed  # values + updates
                c = proc.hi + j
                if c <= m and idx + 1 < len(procs):
                    src = procs[idx + 1]
                    rows = src.log.get(c)
                    if rows:
                        consumed = proc.resync(c, t_end, rows, t0 + 1)
                        volume += 2 * consumed
        exchanged_total += volume
        # Each direction of each link carries ~volume / (2P) of this;
        # charge the busiest link, pipelined.
        per_link = math.ceil(volume / max(1, 2 * len(procs))) if volume else 0
        transit = batch_transit_time(per_link, d, bandwidth) if per_link else 0
        makespan += compute_time + transit
        t0 = t_end

    verified = False
    if verify:
        reference = Guest2D(m, program).run_reference(steps)
        _verify_2d(procs, reference, program, steps)
        verified = True
    return TwoDimResult(
        m, P, d, g, steps, makespan, pebbles_total, exchanged_total, verified
    )


def _verify_2d(
    procs: list[_Proc], reference: ReferenceRun2D, program: Program2D, steps: int
) -> None:
    """Check every own column's final values, versions, update digests
    and states against the reference run."""
    m = reference.m
    ref_final = reference.values[steps, 1 : m + 1, 1 : m + 1]
    for proc in procs:
        for c in range(proc.lo, proc.hi + 1):
            lc = proc.li(c)
            if proc.ver[lc] != steps:
                raise AssertionError(
                    f"column {c}: version {proc.ver[lc]} != steps {steps}"
                )
            if not np.array_equal(proc.V[1 : m + 1, lc], ref_final[:, c - 1]):
                raise AssertionError(f"column {c}: final values diverge")
            if not np.array_equal(proc.D[:, lc], reference.update_digests[:, c - 1]):
                raise AssertionError(f"column {c}: update digests diverge")
            if not np.array_equal(proc.S[:, lc], reference.state_digests[:, c - 1]):
                raise AssertionError(f"column {c}: final states diverge")


def twodim_slowdown_estimate(m: int, n_procs: int, d: int) -> float:
    """Theorem 7's analytic slowdown ``O(m + m^2 / n0)``:

    * case 1 (``g == 1``): ``m + d`` per guest step;
    * case 2: ``~ 3 m g`` compute per guest step plus amortised
      latency ``d / g``.
    """
    g = math.ceil(m / n_procs)
    if g == 1:
        return m + d
    return 3.0 * m * g + d / g


def theorem8_slowdown_estimate(m: int, n: int, d_ave: float) -> float:
    """Theorem 8's combined form: ``O(sqrt(N) log^3 N +
    N^(1/4) sqrt(d_ave) log^3 N)`` for an ``N = m^2``-node guest."""
    N = m * m
    lg = max(1.0, math.log2(max(2, N)))
    return math.sqrt(N) * lg**3 + N**0.25 * math.sqrt(max(1.0, d_ave)) * lg**3
