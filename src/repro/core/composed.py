"""Theorems 5 and 6: the ``O(sqrt(d_ave) log^3 n)`` composition.

Theorem 5 composes two simulations: the guest ``G`` (an
``n0 * sqrt(d_ave)``-column array) runs on an *intermediate* uniform
array ``H0`` of ``n0`` processors with delay ``d_ave`` on every link
(Theorem 4, slowdown ``O(sqrt(d_ave))``); and ``H0`` runs on the real
host ``H`` via OVERLAP (Theorem 2/3, slowdown ``O(log^3 n)``).

Operationally the intermediate machine is virtual: composing the two
*assignments* — each host processor owns the guest columns of the
``H0`` processors OVERLAP assigned to it, inflated by Theorem 4's
block rule — yields a single contiguous assignment that the greedy
executor runs directly on ``H``.  The measured slowdown then carries
both factors, which is exactly how the paper multiplies the bounds.

Theorem 6 extends this to arbitrary connected bounded-degree hosts via
the Fact-3 embedding (see :func:`simulate_composed_on_graph`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assignment import Assignment, assign_databases
from repro.core.dense import DenseExecutor, build_executor
from repro.core.executor import ExecResult
from repro.core.killing import KillingResult, kill_and_label
from repro.core.verify import verify_execution
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray, HostGraph
from repro.machine.programs import CounterProgram, Program
from repro.topology.embedding import ArrayEmbedding, embed_linear_array


def composed_assignment(
    killing: KillingResult, q: int, h0_block: int = 1
) -> Assignment:
    """Compose OVERLAP's assignment with Theorem 4's block assignment.

    OVERLAP (with block factor ``h0_block``) assigns virtual ``H0``
    processors ``1..n0`` to live host positions; each virtual processor
    ``j`` owns guest columns ``(j-2) q + 1 .. (j+1) q`` (Theorem 4), so
    a host position with ``H0`` range ``[a, b]`` owns guest columns
    ``(a-2) q + 1 .. (b+1) q``, clipped to ``[1, n0 q]``.
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    base = assign_databases(killing, h0_block)
    n0 = base.m
    m = n0 * q
    ranges: list[tuple[int, int] | None] = [None] * base.n
    for p, r in enumerate(base.ranges):
        if r is None:
            continue
        a, b = r
        lo = max(1, (a - 2) * q + 1)
        hi = min(m, (b + 1) * q)
        ranges[p] = (lo, hi)
    asg = Assignment(ranges, m)
    asg.validate()
    return asg


@dataclass
class ComposedResult:
    """Outcome of a Theorem-5/6 composed simulation."""

    host: HostArray
    killing: KillingResult
    assignment: Assignment
    exec_result: ExecResult
    steps: int
    q: int
    verified: bool
    embedding: ArrayEmbedding | None = None
    #: Execution tier that ran ("dense" or "greedy").
    engine: str = "greedy"

    @property
    def slowdown(self) -> float:
        """Measured host steps per guest step."""
        return self.exec_result.stats.makespan / self.steps

    @property
    def m(self) -> int:
        """Guest size."""
        return self.assignment.m

    def normalized(self) -> float:
        """Slowdown over ``sqrt(d_ave)`` — flat over a ``d_ave`` sweep
        if Theorem 5's shape holds (up to the polylog factor)."""
        return self.slowdown / math.sqrt(max(1.0, self.host.d_ave))

    def summary(self) -> dict:
        """Flat dict for report tables."""
        return {
            "n": self.host.n,
            "m": self.m,
            "q": self.q,
            "steps": self.steps,
            "d_ave": round(self.host.d_ave, 2),
            "d_max": self.host.d_max,
            "slowdown": round(self.slowdown, 2),
            "slow/sqrt(d_ave)": round(self.normalized(), 2),
            "load": self.assignment.load(),
            "verified": self.verified,
        }


def simulate_composed(
    host: HostArray,
    program: Program | None = None,
    steps: int | None = None,
    c: float = 4.0,
    q: int | None = None,
    h0_block: int = 1,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
    telemetry=None,
    faults=None,
    policy=None,
    recovery=None,
) -> ComposedResult:
    """Theorem 5 on a host array: guest of ``~ n' h0_block q`` columns,
    slowdown ``O(sqrt(d_ave) * polylog)``.

    ``engine`` selects the execution tier (``auto``/``dense``/
    ``greedy``); the composed assignment is a plain array run, so
    ``auto`` takes the dense tier — the fault-free fast path, or the
    segmented :class:`~repro.core.dense_faults.FaultedDenseExecutor`
    when ``faults`` (a :class:`~repro.netsim.faults.FaultPlan`) is
    non-empty — bit-identical to greedy either way.  ``telemetry``
    attaches a :class:`~repro.telemetry.timeline.MetricsTimeline`
    (both tiers).
    """
    from repro.core.assignment import steal_rebalance
    from repro.core.racing import split_policy

    program = program or CounterProgram()
    exec_policy, recovery = split_policy(policy, recovery)
    killing = kill_and_label(host, c)
    if q is None:
        q = max(1, math.isqrt(int(round(host.d_ave))))
    assignment = composed_assignment(killing, q, h0_block)
    steal_moves: list = []
    if exec_policy.stealing:
        assignment, steal_moves = steal_rebalance(
            assignment, host, faults=faults, seed=exec_policy.steal_seed
        )
    if steps is None:
        steps = max(4, 2 * q)
    executor = build_executor(
        engine, host, assignment, program, steps, bandwidth,
        telemetry=telemetry, faults=faults, policy=recovery,
        exec_policy=exec_policy,
    )
    resolved = "dense" if isinstance(executor, DenseExecutor) else "greedy"
    exec_result = executor.run()
    if steal_moves:
        exec_result.stats.extras["steal_moves"] = len(steal_moves)
    verified = False
    if verify:
        # Reference built *after* the run: mid-run recovery may have
        # shrunk the guest to the surviving prefix 1..m'.
        reference = GuestArray(exec_result.assignment.m, program).run_reference(
            steps
        )
        verify_execution(exec_result, reference, program)
        verified = True
    return ComposedResult(
        host, killing, assignment, exec_result, steps, q, verified,
        engine=resolved,
    )


def simulate_composed_on_graph(
    host: HostGraph,
    program: Program | None = None,
    steps: int | None = None,
    c: float = 4.0,
    q: int | None = None,
    h0_block: int = 1,
    bandwidth: int | None = None,
    verify: bool = True,
    engine: str = "auto",
    telemetry=None,
    faults=None,
    policy=None,
    recovery=None,
) -> ComposedResult:
    """Theorem 6: the composed simulation on an arbitrary connected
    host, reduced to an array by the Fact-3 embedding.

    The embedding precomputes every per-assignment route delay into the
    flat ``link_delays`` array of the induced
    :class:`~repro.machine.host.HostArray`, so the composed run
    executes on the dense tier exactly like a native array host —
    fault-free or faulted (``faults`` targets are interpreted in
    embedded-array coordinates, as in
    :func:`~repro.core.overlap.simulate_overlap_on_graph`).
    """
    embedding = embed_linear_array(host)
    array = embedding.host_array(name=f"embed({host.name})")
    result = simulate_composed(
        array, program, steps, c, q, h0_block, bandwidth, verify,
        engine=engine, telemetry=telemetry, faults=faults, policy=policy,
        recovery=recovery,
    )
    result.embedding = embedding
    return result


def theorem5_bound(host: HostArray, c: float = 4.0) -> float:
    """The paper's slowdown bound ``O(sqrt(d_ave) log^3 n)`` with the
    explicit constants of Theorems 2+4 (``5 sqrt(d_ave)`` per Theorem 4
    round times the OVERLAP schedule factor)."""
    lg = max(1.0, math.log2(host.n))
    return 5.0 * math.sqrt(max(1.0, host.d_ave)) * c * lg**3
