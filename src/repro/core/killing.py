"""Stages 1-3 of algorithm OVERLAP: killing processors and labelling
the interval tree (Section 3.1, Lemmas 1-4).

Quantities, for an ``n``-processor host of average link delay
``d_ave`` and a constant ``c > 2``:

* killing delay   ``D_k = (n / 2^k) * d_ave * c * lg n``
* overlap size    ``m_k = n / (c * 2^k * lg n)``   (a *real* number —
  integer box heights are taken later by the scheduler)
* ``k_max = floor(log2(n / (c lg n)))`` — deepest level with
  ``m_k >= 1``.

Stage 1 kills every processor contained in *any* depth-``k`` interval
whose total internal delay exceeds ``D_k`` (too much delay around it).
Stage 2 labels the tree bottom-up (two children: ``x1 + x2 - m_k``) and
kills intervals whose label is below ``2 m_k`` (too few live
processors).  Stage 3 relabels with the smaller penalty ``m_{k+1}``;
the stage-3 labels measure each interval's *computing power* — how many
guest columns it can simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import IntervalNode, IntervalTree
from repro.machine.host import HostArray


@dataclass(frozen=True)
class OverlapParams:
    """The paper's per-depth constants for one host instance."""

    n: int
    c: float
    d_ave: float
    lg: float  # log2(n), floored at 1

    @classmethod
    def for_host(cls, host: HostArray, c: float = 4.0) -> "OverlapParams":
        if c <= 2:
            raise ValueError(f"the constant c must exceed 2 (paper), got {c}")
        n = host.n
        lg = max(1.0, math.log2(n))
        return cls(n=n, c=c, d_ave=max(1.0, host.d_ave), lg=lg)

    def D(self, k: int) -> float:
        """Killing delay for depth ``k``."""
        return (self.n / 2**k) * self.d_ave * self.c * self.lg

    def m(self, k: int) -> float:
        """Overlap size for depth ``k`` (real-valued)."""
        return self.n / (self.c * 2**k * self.lg)

    @property
    def k_max(self) -> int:
        """Deepest level with ``m_k >= 1`` (the paper's
        ``log n - log log n - log c``), at least 0."""
        k = int(math.floor(math.log2(max(1.0, self.n / (self.c * self.lg)))))
        return max(0, k)

    def m_int(self, k: int) -> int:
        """Integer box height at depth ``k`` (min 1) for the scheduler."""
        return max(1, int(math.floor(self.m(k))))


@dataclass
class KillingResult:
    """Output of the three stages.

    Attributes
    ----------
    host, params, tree:
        Inputs and the annotated interval tree.
    live:
        Boolean per host position.
    killed_stage1 / killed_stage2:
        Position sets killed by each stage.
    """

    host: HostArray
    params: OverlapParams
    tree: IntervalTree
    live: np.ndarray
    killed_stage1: set[int] = field(default_factory=set)
    killed_stage2: set[int] = field(default_factory=set)

    @property
    def n_live(self) -> int:
        """Number of surviving processors."""
        return int(self.live.sum())

    @property
    def root_label(self) -> float:
        """Stage-3 label of the root — the usable guest size ``n'``."""
        if self.tree.root.removed or self.tree.root.label3 is None:
            return 0.0
        return self.tree.root.label3

    @property
    def n_prime(self) -> int:
        """Integer guest size the assignment will realise."""
        return int(math.floor(self.root_label))

    def killed_fraction(self) -> float:
        """Fraction of host processors killed by stages 1+2."""
        return 1.0 - self.n_live / self.host.n

    def live_positions(self) -> list[int]:
        """Sorted positions of live processors."""
        return [int(p) for p in np.flatnonzero(self.live)]


def normalize_forced_dead(n: int, forced_dead) -> set[int]:
    """Validate and canonicalise a failed-position collection.

    Accepts any iterable of integer-like positions (numpy ints, lists
    with duplicates, ...) and returns a plain ``set[int]``; rejects
    non-integral values and positions outside ``0..n-1``.  This is the
    single validation point shared by :func:`kill_and_label`,
    :func:`repro.core.overlap.simulate_overlap` and the executor's
    mid-run recovery, so every layer agrees on what "dead" means.
    """
    if forced_dead is None:
        return set()
    out: set[int] = set()
    for p in forced_dead:
        q = int(p)
        if q != p:
            raise ValueError(f"failed position {p!r} is not an integer")
        if not 0 <= q < n:
            raise ValueError(f"failed position {q} outside 0..{n - 1}")
        out.add(q)
    return out


def validate_steps(steps) -> int:
    """Validate a guest-step count and return it as a plain ``int``.

    Shared by the executor and the simulation front-ends so "how many
    steps" is interpreted identically everywhere (integral, >= 0).
    """
    if steps is None:
        raise ValueError("steps must be an integer, got None")
    t = int(steps)
    if t != steps:
        raise ValueError(f"steps must be an integer, got {steps!r}")
    if t < 0:
        raise ValueError("steps must be non-negative")
    return t


def kill_and_label(
    host: HostArray, c: float = 4.0, forced_dead: set[int] | None = None
) -> KillingResult:
    """Run stages 1-3 on ``host`` and return the annotated result.

    ``forced_dead`` marks processors failed *before* the killing stages
    run (they still relay messages — their links exist — but hold no
    databases).  OVERLAP's labelling then routes computation around
    them exactly as it routes around latency-killed processors, which
    is the fault-reconfiguration connection of the paper's related
    work ([5], [9]).  With failures the Lemma 1/2 bounds weaken by the
    failed mass, so callers doing lemma checks should pass none.
    """
    params = OverlapParams.for_host(host, c)
    tree = IntervalTree(host.n)
    live = np.ones(host.n, dtype=bool)
    for p in normalize_forced_dead(host.n, forced_dead):
        live[p] = False
    result = KillingResult(host, params, tree, live)

    _stage1(result)
    _prune_empty(result)
    _stage2_label(result)
    _stage2_kill(result)
    _prune_empty(result)
    _stage3_relabel(result)
    return result


def _stage1(res: KillingResult) -> None:
    """Kill processors inside any interval whose delay exceeds D_k."""
    for k in range(res.tree.height + 1):
        Dk = res.params.D(k)
        for node in res.tree.nodes_at_depth(k):
            if node.size >= 2 and res.host.interval_delay(node.lo, node.hi) > Dk:
                for p in range(node.lo, node.hi + 1):
                    if res.live[p]:
                        res.live[p] = False
                        res.killed_stage1.add(p)


def _prune_empty(res: KillingResult) -> None:
    """Remove nodes whose intervals contain no live processor."""
    # Post-order: a node is empty iff all its positions are dead.
    for node in _post_order(res.tree.root):
        if node.is_leaf:
            node.removed = not res.live[node.lo]
        else:
            node.removed = all(ch.removed for ch in node.children)
            if not node.removed and not any(
                res.live[p] for p in range(node.lo, node.hi + 1)
            ):  # pragma: no cover - defensive; children flags cover this
                node.removed = True


def _stage2_label(res: KillingResult) -> None:
    """Bottom-up labels: leaf 1; two children ``x1 + x2 - m_k``."""
    for node in _post_order(res.tree.root):
        if node.removed:
            node.label2 = None
            continue
        if node.is_leaf:
            node.label2 = 1.0
            continue
        kids = node.live_children()
        if len(kids) == 2:
            node.label2 = kids[0].label2 + kids[1].label2 - res.params.m(node.depth)
        elif len(kids) == 1:
            node.label2 = kids[0].label2
        else:  # pragma: no cover - removed nodes skipped above
            node.label2 = None


def _stage2_kill(res: KillingResult) -> None:
    """Kill intervals whose stage-2 label is below ``2 m_k``.

    Processed top-down with the *original* stage-2 labels, exactly as
    the paper does (labels are not recomputed between kills).
    """
    stack = [res.tree.root]
    while stack:
        node = stack.pop()
        if node.removed:
            continue
        if node.label2 is not None and node.label2 < 2 * res.params.m(node.depth):
            for p in range(node.lo, node.hi + 1):
                if res.live[p]:
                    res.live[p] = False
                    res.killed_stage2.add(p)
            _mark_removed(node)
            continue
        stack.extend(node.children)


def _stage3_relabel(res: KillingResult) -> None:
    """Relabel remaining nodes with the ``m_{k+1}`` penalty."""
    for node in _post_order(res.tree.root):
        if node.removed:
            node.label3 = None
            continue
        if node.is_leaf:
            node.label3 = 1.0
            continue
        kids = node.live_children()
        if len(kids) == 2:
            node.label3 = (
                kids[0].label3 + kids[1].label3 - res.params.m(node.depth + 1)
            )
        elif len(kids) == 1:
            node.label3 = kids[0].label3
        else:  # pragma: no cover
            node.label3 = None


def _mark_removed(node: IntervalNode) -> None:
    for sub in node:
        sub.removed = True


def _post_order(root: IntervalNode):
    stack: list[tuple[IntervalNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        for ch in node.children:
            stack.append((ch, False))


# ---------------------------------------------------------------------------
# Lemma checks (used by tests and the E10 bench)
# ---------------------------------------------------------------------------


def lemma1_bound(res: KillingResult) -> tuple[int, float]:
    """(stage-1 kills, paper bound n/c)."""
    return len(res.killed_stage1), res.params.n / res.params.c


def lemma2_bound(res: KillingResult) -> tuple[float, float]:
    """(stage-2 root label, paper bound (1 - 2/c) n).

    The paper's bound assumes every depth contributes ``2^k m_k``
    penalty mass; with real-valued ``m_k`` this is exact.
    """
    label = res.tree.root.label2 if not res.tree.root.removed else 0.0
    bound = (1 - 2 / res.params.c) * res.params.n
    return (label if label is not None else 0.0), bound


def lemma4_checks(res: KillingResult) -> list[tuple[int, float, float]]:
    """For every remaining node: (depth, stage-3 label, ``2 m_k``).

    Lemma 4 asserts label >= 2 m_k for every remaining depth-k node
    (k < log n); the root must additionally reach ``(1 - 2/c) n``.
    """
    out = []
    for node in res.tree.all_nodes():
        if node.removed or node.label3 is None:
            continue
        out.append((node.depth, node.label3, 2 * res.params.m(node.depth)))
    return out
