"""The explicit recursive schedule of Theorem 1.

The values ``s_t^(k)`` bound the time by which every pebble of row
``t`` inside a depth-``k`` box is computed, given that the boundary
pebbles arrive on schedule.  They are defined by the paper's three
rules:

1. ``s_1^(k_max) = w``  (``w = 1`` for load-1 OVERLAP; ``w = alpha *
   beta`` pebbles per processor for the work-efficient variant of
   Section 3.3);
2. ``s_t^(k) = s_t^(k+1) + D_k``             for ``1 <= t <= m_{k+1}``;
3. ``s_t^(k) = s_{t - m_{k+1}}^(k) + s_{m_{k+1}}^(k)``
   for ``m_{k+1} < t <= m_k``.

Rule 2 charges one inter-child boundary exchange (at most the interval
delay ``D_k``) per level; rule 3 stacks half-boxes in time.  Theorem 2
solves the recurrence ``s_{m_k}^(k) = 2 s_{m_{k+1}}^(k+1) + 2 D_k`` to
``s_{m_0}^(0) = O(d_ave n log^2 n)``, i.e. slowdown ``O(d_ave log^3 n)``.

This module materialises the table with integer box heights
``m_int(k) = max(1, floor(m_k))`` so the identities can be tested
directly and the F3 bench can print the box structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.killing import OverlapParams


@dataclass
class ScheduleTable:
    """Materialised ``s_t^(k)`` values.

    ``s[k][t]`` is defined for ``0 <= k <= k_max`` and
    ``1 <= t <= heights[k]``; index 0 is padding.
    """

    params: OverlapParams
    base_work: float
    s: list[list[float]]
    heights: list[int]

    @property
    def k_max(self) -> int:
        """Deepest recursion level."""
        return len(self.heights) - 1

    def value(self, k: int, t: int) -> float:
        """``s_t^(k)``."""
        if not 0 <= k <= self.k_max:
            raise IndexError(f"k={k} outside 0..{self.k_max}")
        if not 1 <= t <= self.heights[k]:
            raise IndexError(f"t={t} outside 1..{self.heights[k]} at depth {k}")
        return self.s[k][t]

    def makespan_bound(self) -> float:
        """``s_{m_0}^(0)`` — time to simulate the first ``m_0`` steps."""
        return self.s[0][self.heights[0]]

    def slowdown_bound(self) -> float:
        """Makespan bound per simulated guest step."""
        return self.makespan_bound() / self.heights[0]

    def closed_form_bound(self) -> float:
        """Theorem 2's closed form ``2^k s_{m_k}^(k) + 2 k D_0`` at
        ``k = k_max`` — an upper estimate of :meth:`makespan_bound`."""
        p = self.params
        k = self.k_max
        return (2**k) * self.s[k][self.heights[k]] + 2 * k * p.D(0)


def build_schedule(params: OverlapParams, base_work: float = 1.0) -> ScheduleTable:
    """Materialise the ``s_t^(k)`` table for ``params``."""
    if base_work < 1:
        raise ValueError("base work per row must be >= 1")
    k_max = params.k_max
    heights = [params.m_int(k) for k in range(k_max + 1)]
    s: list[list[float]] = [[] for _ in range(k_max + 1)]

    s[k_max] = [0.0, float(base_work)]
    for k in range(k_max - 1, -1, -1):
        mk = heights[k]
        m_child = heights[k + 1]
        Dk = params.D(k)
        row = [0.0] * (mk + 1)
        for t in range(1, min(m_child, mk) + 1):
            row[t] = s[k + 1][t] + Dk
        for t in range(m_child + 1, mk + 1):
            row[t] = row[t - m_child] + row[m_child]
        s[k] = row
    return ScheduleTable(params, base_work, s, heights)


def recurrence_residuals(table: ScheduleTable) -> list[float]:
    """Relative residuals of ``s_{m_k}^(k) = 2 s_{m_{k+1}}^(k+1) + 2 D_k``.

    With real-valued ``m_k`` the identity is exact; integer box heights
    introduce only rounding-level deviations (checked in tests).
    """
    out = []
    for k in range(table.k_max):
        lhs = table.s[k][table.heights[k]]
        rhs = 2 * table.s[k + 1][table.heights[k + 1]] + 2 * table.params.D(k)
        out.append(abs(lhs - rhs) / max(1.0, rhs))
    return out


def min_row_gap(table: ScheduleTable) -> float:
    """Smallest time gap between consecutive rows of the level-0 box.

    Expanding the rule-3 stacking, consecutive top-level rows are
    separated by at least ``s_1^(k)`` for some level ``k``, i.e. at
    least ``1 + D_{k_max - 1} + ... ``; this is the slack every
    processor has to learn its neighbours' previous-row pebbles.
    """
    # Materialise the level-0 row times by expanding the recursion:
    # rows of the top box are the rows of the k_max-level boxes stacked
    # with offsets; the table already encodes them as s_t^(0).
    row_times = [table.s[0][t] for t in range(1, table.heights[0] + 1)]
    if len(row_times) < 2:
        return float("inf")
    return min(b - a for a, b in zip(row_times, row_times[1:]))


def feasibility_report(killing, table: ScheduleTable) -> dict:
    """Check Theorem 1's physical preconditions computationally.

    1. **Interval-delay budgets** (used for the inter-child boundary
       exchange): every remaining depth-``k`` node's live-endpoint
       delay is at most ``D_k`` — guaranteed by Stage-1 killing, and
       re-verified here against the actual host.
    2. **Atomic-row slack**: the minimum top-level row gap must cover
       the worst intra-interval delay of any remaining depth-``k_max``
       node, so that the base case ("each processor computes one
       pebble per row") is realisable with real link delays.

    Returns a dict with the two margins (both must be >= 0 / True).
    """
    host = killing.host
    params = killing.params
    worst_violation = 0.0
    for node in killing.tree.all_nodes():
        if node.removed or node.size < 2:
            continue
        live = [p for p in range(node.lo, node.hi + 1) if killing.live[p]]
        if len(live) < 2:
            continue
        delay = host.distance(live[0], live[-1])
        excess = delay - params.D(node.depth)
        worst_violation = max(worst_violation, excess)

    k_atomic = min(params.k_max, killing.tree.height)
    atomic_delay = 0
    for node in killing.tree.nodes_at_depth(k_atomic):
        if node.removed:
            continue
        live = [p for p in range(node.lo, node.hi + 1) if killing.live[p]]
        if len(live) >= 2:
            atomic_delay = max(atomic_delay, host.distance(live[0], live[-1]))
    gap = min_row_gap(table)
    return {
        "interval_budgets_hold": worst_violation <= 0,
        "worst_budget_excess": worst_violation,
        "min_row_gap": gap,
        "max_atomic_interval_delay": atomic_delay,
        "atomic_rows_feasible": gap >= atomic_delay,
    }


def theorem2_bound(params: OverlapParams, base_work: float = 1.0) -> float:
    """Theorem 2's analytic bound on ``s_{m_0}^(0)``:
    ``n / (c lg) * base_work + 2 c d_ave n lg^2``."""
    p = params
    return (p.n / (p.c * p.lg)) * base_work + 2 * p.c * p.d_ave * p.n * p.lg**2


def row_deadlines(table: ScheduleTable, steps: int) -> list[float]:
    """Theorem 1's deadline for every guest row ``1..steps``.

    OVERLAP simulates in rounds of ``m_0`` rows; row ``t`` of round
    ``r`` must be fully computed by ``r * s_{m_0}^(0) + s_tau^(0)``
    (the round restarts the recursion with the previous round's final
    row as the new row 0).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    m0 = table.heights[0]
    round_len = table.s[0][m0]
    out = []
    for t in range(1, steps + 1):
        r, tau = divmod(t - 1, m0)
        out.append(r * round_len + table.s[0][tau + 1])
    return out


def check_row_deadlines(
    table: ScheduleTable, completion_times: dict[int, int]
) -> dict:
    """Compare measured row-completion times (e.g. from a
    :class:`~repro.netsim.trace.Trace`) against Theorem 1's deadlines.

    Returns the worst margin (``deadline - measured``; negative means a
    row *beat* its deadline is false — it missed it) and whether every
    row met its deadline — the executable content of Theorems 1-3.
    """
    steps = max(completion_times, default=0)
    deadlines = row_deadlines(table, steps)
    worst_margin = float("inf")
    misses = []
    for t in sorted(completion_times):
        margin = deadlines[t - 1] - completion_times[t]
        worst_margin = min(worst_margin, margin)
        if margin < 0:
            misses.append(t)
    return {
        "rows": steps,
        "all_rows_met_deadline": not misses,
        "missed_rows": misses,
        "worst_margin": worst_margin,
    }
