"""The paper's contribution: algorithm OVERLAP and friends.

Layering (bottom to top):

* :mod:`tree`       — the binary interval tree ``T`` over the host array.
* :mod:`killing`    — Stages 1-3: killing useless processors and
  labelling the tree (Lemmas 1-4).
* :mod:`assignment` — the recursive overlapped database assignment.
* :mod:`executor`   — the greedy event-driven executor that runs *any*
  contiguous assignment on a host array (realises Theorem 1's schedule).
* :mod:`dense`      — the fault-free fast-path tier (same semantics,
  bit-identical results, no event heap) and the engine selection layer.
* :mod:`schedule`   — the explicit ``s_t^(k)`` schedule and its
  recurrence (Theorems 1-3, symbolically).
* :mod:`overlap`    — end-to-end algorithm OVERLAP (Theorems 2, 3, 6).
* :mod:`uniform`    — the ``sqrt(d)`` simulation on uniform-delay hosts
  (Theorem 4, Figure 4).
* :mod:`composed`   — the ``sqrt(d_ave) log^3 n`` composition
  (Theorems 5, 6).
* :mod:`twodim`     — 2-D guests on linear hosts (Theorems 7, 8).
* :mod:`baselines`  — naive / single-copy / prior-art comparators.
* :mod:`verify`     — bit-exact comparison against the reference run.
"""

from repro.core.tree import IntervalNode, IntervalTree
from repro.core.killing import KillingResult, OverlapParams, kill_and_label
from repro.core.assignment import Assignment, assign_databases
from repro.core.dense import ENGINES, DenseExecutor, build_executor, resolve_engine
from repro.core.executor import ExecResult, GreedyExecutor, SimulationDeadlock
from repro.core.schedule import ScheduleTable, build_schedule
from repro.core.overlap import OverlapResult, simulate_overlap, simulate_overlap_on_graph
from repro.core.uniform import uniform_assignment, simulate_uniform, phased_bound
from repro.core.composed import composed_assignment, simulate_composed
from repro.core.baselines import (
    simulate_single_copy,
    simulate_lockstep_bound,
    simulate_prior_efficient,
)
from repro.core.twodim import simulate_2d_on_uniform_array, twodim_slowdown_estimate
from repro.core.verify import VerificationError, verify_execution
from repro.core.ring import RingResult, simulate_ring
from repro.core.dataflow import DataflowResult, simulate_dataflow

__all__ = [
    "IntervalNode",
    "IntervalTree",
    "OverlapParams",
    "KillingResult",
    "kill_and_label",
    "Assignment",
    "assign_databases",
    "GreedyExecutor",
    "DenseExecutor",
    "ENGINES",
    "build_executor",
    "resolve_engine",
    "ExecResult",
    "SimulationDeadlock",
    "ScheduleTable",
    "build_schedule",
    "OverlapResult",
    "simulate_overlap",
    "simulate_overlap_on_graph",
    "uniform_assignment",
    "simulate_uniform",
    "phased_bound",
    "composed_assignment",
    "simulate_composed",
    "simulate_single_copy",
    "simulate_lockstep_bound",
    "simulate_prior_efficient",
    "simulate_2d_on_uniform_array",
    "twodim_slowdown_estimate",
    "VerificationError",
    "verify_execution",
    "RingResult",
    "simulate_ring",
    "DataflowResult",
    "simulate_dataflow",
]
