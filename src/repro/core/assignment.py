"""The recursive overlapped database assignment (Section 3.2).

OVERLAP assigns databases ``b_1 .. b_{n'}`` to the live processors so
that (a) every database has at least one copy, (b) each live processor
holds a contiguous range of columns with load O(1) (times the block
factor ``beta`` for the work-efficient variant of Section 3.3), and
(c) sibling intervals *overlap* by ``m_{k+1}`` databases — the
redundant computation that hides latency.

Implementation note: the paper's labels are integers because it assumes
exact powers of two; here labels are real numbers, so the assignment
distributes *real* database intervals down the tree (child splits
recreate the paper's ``m_{k+1}`` overlap exactly) and integer columns
are read off at the leaves: a leaf with real interval ``[a, b)`` owns
every column whose unit segment intersects ``[a, b)``.  This yields
load <= 2 base columns per processor (instead of the paper's exactly 1)
and guarantees full coverage with overlap at every split boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.killing import KillingResult


@dataclass
class Assignment:
    """A contiguous column range per host position.

    ``ranges[p]`` is ``(lo, hi)`` inclusive in 1-indexed guest columns,
    or ``None`` for positions with no databases (dead processors, or
    relays).  ``m`` is the guest size (number of columns).
    """

    ranges: list[tuple[int, int] | None]
    m: int
    block: int = 1
    _owners: dict[int, list[int]] | None = field(default=None, repr=False)

    @property
    def n(self) -> int:
        """Number of host positions."""
        return len(self.ranges)

    def load(self) -> int:
        """Maximum number of columns held by any processor."""
        return max(
            (hi - lo + 1 for r in self.ranges if r is not None for lo, hi in [r]),
            default=0,
        )

    def total_copies(self) -> int:
        """Sum of all column copies (>= m; the excess is redundancy)."""
        return sum(hi - lo + 1 for r in self.ranges if r is not None for lo, hi in [r])

    def redundancy(self) -> float:
        """Average copies per column."""
        return self.total_copies() / self.m if self.m else 0.0

    def owners(self) -> dict[int, list[int]]:
        """Map column -> sorted list of owning positions (cached)."""
        if self._owners is None:
            owners: dict[int, list[int]] = {}
            for p, r in enumerate(self.ranges):
                if r is None:
                    continue
                lo, hi = r
                for c in range(lo, hi + 1):
                    owners.setdefault(c, []).append(p)
            self._owners = owners
        return self._owners

    def validate(self) -> None:
        """Check coverage (every column 1..m owned) and sane ranges."""
        for p, r in enumerate(self.ranges):
            if r is None:
                continue
            lo, hi = r
            if not (1 <= lo <= hi <= self.m):
                raise ValueError(f"position {p} has bad range {r} for m={self.m}")
        owners = self.owners()
        missing = [c for c in range(1, self.m + 1) if c not in owners]
        if missing:
            raise ValueError(
                f"columns with no owner: {missing[:10]}{'...' if len(missing) > 10 else ''}"
            )

    def used_positions(self) -> list[int]:
        """Positions that hold at least one column."""
        return [p for p, r in enumerate(self.ranges) if r is not None]


def assign_databases(
    killing: KillingResult, block: int = 1, min_copies: int = 1
) -> Assignment:
    """Distribute databases down the labelled tree.

    ``block`` is the work-efficiency factor ``beta`` of Section 3.3:
    every base column is expanded into ``beta`` consecutive guest
    columns, so the guest has ``n' * beta`` processors and the load is
    ``O(beta)``.

    ``min_copies`` widens each live processor's range over a window of
    its nearest neighbours until every column has at least that many
    replicas (load stays O(``min_copies``)).  The tree already overlaps
    sibling intervals, but single-copy stretches remain; fault-tolerant
    runs pass ``min_copies=2`` so that one mid-run crash never destroys
    the last replica of a database interval.
    """
    if block < 1:
        raise ValueError("block factor must be >= 1")
    if min_copies < 1:
        raise ValueError("min_copies must be >= 1")
    tree, params = killing.tree, killing.params
    if tree.root.removed or killing.n_prime < 1:
        raise ValueError(
            "killing left no usable processors "
            f"(root label {killing.root_label:.3f}); host too small or c too large"
        )

    n_prime = killing.n_prime
    base: dict[int, tuple[int, int]] = {}  # position -> base-column range

    # Distribute real intervals [start, start + width) top-down.
    tree.root.db_start = 0.0
    tree.root.db_width = float(n_prime)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.removed:
            continue
        start, width = node.db_start, node.db_width
        if node.is_leaf:
            lo = int(math.floor(start)) + 1
            hi = int(math.ceil(start + width))
            lo = max(1, min(lo, n_prime))
            hi = max(1, min(hi, n_prime))
            base[node.lo] = (lo, hi)
            continue
        kids = node.live_children()
        if len(kids) == 1:
            # Paper: the single child inherits the full range.
            kids[0].db_start = start
            kids[0].db_width = width
            stack.append(kids[0])
            continue
        left, right = kids
        x1, x2 = left.label3, right.label3
        # Children take their own labels (clipped to the parent width,
        # which only binds at the root where the label was floored).
        # Since x1 + x2 = label3 + m_{k+1} >= width + m_{k+1}, the two
        # child intervals overlap by ~m_{k+1} and jointly cover the
        # parent interval — the paper's redundant-assignment rule.
        left.db_start = start
        left.db_width = min(x1, width)
        right.db_width = min(x2, width)
        right.db_start = start + width - right.db_width
        stack.append(left)
        stack.append(right)

    if min_copies > 1:
        base = _widen_for_copies(base, min_copies)
    ranges: list[tuple[int, int] | None] = [None] * killing.host.n
    for p, (lo, hi) in base.items():
        ranges[p] = ((lo - 1) * block + 1, hi * block)
    asg = Assignment(ranges, n_prime * block, block)
    asg.validate()
    return asg


def _widen_for_copies(
    base: dict[int, tuple[int, int]], min_copies: int
) -> dict[int, tuple[int, int]]:
    """Widen each position's base range to the hull of the ranges of
    the ``min_copies - 1`` nearest live positions on each side.

    A column owned by live position ``j`` is then also owned by every
    live position within ``min_copies - 1`` hops of ``j``, so every
    column ends up with ``min(live, min_copies)`` or more replicas
    while the per-processor load stays O(``min_copies``).
    """
    used = sorted(base)
    w = min_copies - 1
    out: dict[int, tuple[int, int]] = {}
    for i, p in enumerate(used):
        window = used[max(0, i - w) : i + w + 1]
        out[p] = (
            min(base[q][0] for q in window),
            max(base[q][1] for q in window),
        )
    return out
