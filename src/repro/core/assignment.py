"""The recursive overlapped database assignment (Section 3.2).

OVERLAP assigns databases ``b_1 .. b_{n'}`` to the live processors so
that (a) every database has at least one copy, (b) each live processor
holds a contiguous range of columns with load O(1) (times the block
factor ``beta`` for the work-efficient variant of Section 3.3), and
(c) sibling intervals *overlap* by ``m_{k+1}`` databases — the
redundant computation that hides latency.

Implementation note: the paper's labels are integers because it assumes
exact powers of two; here labels are real numbers, so the assignment
distributes *real* database intervals down the tree (child splits
recreate the paper's ``m_{k+1}`` overlap exactly) and integer columns
are read off at the leaves: a leaf with real interval ``[a, b)`` owns
every column whose unit segment intersects ``[a, b)``.  This yields
load <= 2 base columns per processor (instead of the paper's exactly 1)
and guarantees full coverage with overlap at every split boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.killing import KillingResult


@dataclass
class Assignment:
    """A contiguous column range per host position.

    ``ranges[p]`` is ``(lo, hi)`` inclusive in 1-indexed guest columns,
    or ``None`` for positions with no databases (dead processors, or
    relays).  ``m`` is the guest size (number of columns).
    """

    ranges: list[tuple[int, int] | None]
    m: int
    block: int = 1
    _owners: dict[int, list[int]] | None = field(default=None, repr=False)

    @property
    def n(self) -> int:
        """Number of host positions."""
        return len(self.ranges)

    def load(self) -> int:
        """Maximum number of columns held by any processor."""
        return max(
            (hi - lo + 1 for r in self.ranges if r is not None for lo, hi in [r]),
            default=0,
        )

    def total_copies(self) -> int:
        """Sum of all column copies (>= m; the excess is redundancy)."""
        return sum(hi - lo + 1 for r in self.ranges if r is not None for lo, hi in [r])

    def redundancy(self) -> float:
        """Average copies per column."""
        return self.total_copies() / self.m if self.m else 0.0

    def owners(self) -> dict[int, list[int]]:
        """Map column -> sorted list of owning positions (cached)."""
        if self._owners is None:
            owners: dict[int, list[int]] = {}
            for p, r in enumerate(self.ranges):
                if r is None:
                    continue
                lo, hi = r
                for c in range(lo, hi + 1):
                    owners.setdefault(c, []).append(p)
            self._owners = owners
        return self._owners

    def validate(self) -> None:
        """Check coverage (every column 1..m owned) and sane ranges."""
        for p, r in enumerate(self.ranges):
            if r is None:
                continue
            lo, hi = r
            if not (1 <= lo <= hi <= self.m):
                raise ValueError(f"position {p} has bad range {r} for m={self.m}")
        owners = self.owners()
        missing = [c for c in range(1, self.m + 1) if c not in owners]
        if missing:
            raise ValueError(
                f"columns with no owner: {missing[:10]}{'...' if len(missing) > 10 else ''}"
            )

    def used_positions(self) -> list[int]:
        """Positions that hold at least one column."""
        return [p for p, r in enumerate(self.ranges) if r is not None]


def assign_databases(
    killing: KillingResult, block: int = 1, min_copies: int = 1
) -> Assignment:
    """Distribute databases down the labelled tree.

    ``block`` is the work-efficiency factor ``beta`` of Section 3.3:
    every base column is expanded into ``beta`` consecutive guest
    columns, so the guest has ``n' * beta`` processors and the load is
    ``O(beta)``.

    ``min_copies`` widens each live processor's range over a window of
    its nearest neighbours until every column has at least that many
    replicas (load stays O(``min_copies``)).  The tree already overlaps
    sibling intervals, but single-copy stretches remain; fault-tolerant
    runs pass ``min_copies=2`` so that one mid-run crash never destroys
    the last replica of a database interval.
    """
    if block < 1:
        raise ValueError("block factor must be >= 1")
    if min_copies < 1:
        raise ValueError("min_copies must be >= 1")
    tree, params = killing.tree, killing.params
    if tree.root.removed or killing.n_prime < 1:
        raise ValueError(
            "killing left no usable processors "
            f"(root label {killing.root_label:.3f}); host too small or c too large"
        )

    n_prime = killing.n_prime
    base: dict[int, tuple[int, int]] = {}  # position -> base-column range

    # Distribute real intervals [start, start + width) top-down.
    tree.root.db_start = 0.0
    tree.root.db_width = float(n_prime)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.removed:
            continue
        start, width = node.db_start, node.db_width
        if node.is_leaf:
            lo = int(math.floor(start)) + 1
            hi = int(math.ceil(start + width))
            lo = max(1, min(lo, n_prime))
            hi = max(1, min(hi, n_prime))
            base[node.lo] = (lo, hi)
            continue
        kids = node.live_children()
        if len(kids) == 1:
            # Paper: the single child inherits the full range.
            kids[0].db_start = start
            kids[0].db_width = width
            stack.append(kids[0])
            continue
        left, right = kids
        x1, x2 = left.label3, right.label3
        # Children take their own labels (clipped to the parent width,
        # which only binds at the root where the label was floored).
        # Since x1 + x2 = label3 + m_{k+1} >= width + m_{k+1}, the two
        # child intervals overlap by ~m_{k+1} and jointly cover the
        # parent interval — the paper's redundant-assignment rule.
        left.db_start = start
        left.db_width = min(x1, width)
        right.db_width = min(x2, width)
        right.db_start = start + width - right.db_width
        stack.append(left)
        stack.append(right)

    if min_copies > 1:
        base = _widen_for_copies(base, min_copies)
    ranges: list[tuple[int, int] | None] = [None] * killing.host.n
    for p, (lo, hi) in base.items():
        ranges[p] = ((lo - 1) * block + 1, hi * block)
    asg = Assignment(ranges, n_prime * block, block)
    asg.validate()
    return asg


def steal_rebalance(
    assignment: Assignment,
    host,
    faults=None,
    seed: int = 0,
    max_moves: int | None = None,
) -> tuple[Assignment, list[dict]]:
    """Work-stealing rebalance: move end columns from overloaded (or
    jitter-degraded) victims to adjacent underloaded thieves.

    The "queue" a host works through is its column range — every owner
    recomputes all ``T`` rows of every column it holds — so a
    load-``k`` position takes ~``k`` host steps per guest row while a
    load-1 neighbour idles.  A *steal* transfers one end column from
    the heaviest victim to the adjacent thief whose range borders it:
    the thief's contiguous range grows by the column, the victim's
    shrinks, coverage is preserved because the thief now owns what the
    victim shed.

    Victim/thief selection is a pure, seeded function of the inputs:
    effective load weighs each position's column count by the scripted
    jitter pressure on its adjacent links (a
    :class:`~repro.netsim.faults.FaultPlan` marks degraded hosts), the
    best move maximises the victim-thief effective-load gap, and
    exact ties are broken by a :class:`random.Random` seeded with
    ``seed`` — bit-identical at any sweep worker count, on every
    machine.  Moves are only committed while they strictly shrink the
    victim's effective load below the pre-move maximum, so the
    rebalanced assignment is never more imbalanced than the input
    (``max_moves`` defaults to ``2 * n``).

    Returns ``(rebalanced assignment, move log)``; the move log rows
    are ``{"column", "victim", "thief"}`` in commit order.  With no
    profitable move the original assignment object is returned
    untouched (and the log is empty), so single-policy runs are
    byte-identical.
    """
    import random

    ranges: list[tuple[int, int] | None] = list(assignment.ranges)
    n = len(ranges)
    if max_moves is None:
        max_moves = 2 * n

    # Jitter pressure per position: total (extra * window) weight of
    # scripted jitter on the links adjacent to it.  A host whose links
    # are degraded drains its queue slower, so it is a better victim.
    pressure = [0.0] * n
    if faults is not None and not faults.is_empty:
        horizon = faults.horizon
        for ev in faults.events:
            if ev.kind != "link_jitter" or ev.extra <= 0:
                continue
            dur = ev.duration
            if dur is None:
                dur = horizon if horizon is not None else 64
            weight = float(ev.extra * dur)
            j = ev.target  # link j joins positions j and j+1
            if 0 <= j < n:
                pressure[j] += weight
            if 0 <= j + 1 < n:
                pressure[j + 1] += weight
    scale = max(pressure) or 1.0

    def eff(p: int) -> float:
        r = ranges[p]
        if r is None:
            return 0.0
        # Up to +100% load inflation for the most jitter-degraded host.
        return (r[1] - r[0] + 1) * (1.0 + pressure[p] / scale)

    rng = random.Random(seed)
    moves: list[dict] = []
    while len(moves) < max_moves:
        loads = {p: eff(p) for p in range(n) if ranges[p] is not None}
        peak = max(loads.values())
        candidates: list[tuple[float, int, int, int]] = []
        for v, lv in loads.items():
            lo, hi = ranges[v]
            if hi == lo:
                continue  # a victim must keep >= 1 column
            for c, want in ((lo, "hi"), (hi, "lo")):
                # The thief's range must border c so both stay contiguous.
                for q in loads:
                    if q == v or ranges[q] is None:
                        continue
                    qlo, qhi = ranges[q]
                    if (want == "hi" and qhi == c - 1) or (
                        want == "lo" and qlo == c + 1
                    ):
                        gap = lv - loads[q]
                        candidates.append((gap, c, v, q))
        if not candidates:
            break
        best_gap = max(c[0] for c in candidates)
        # A move only helps when the victim is strictly above the thief
        # by more than one transferred column's worth of work; at or
        # below that the steal just relocates the peak.
        if best_gap <= 1.0 + 1e-12:
            break
        best = sorted(
            c for c in candidates if abs(c[0] - best_gap) <= 1e-12
        )
        gap, c, v, q = best[rng.randrange(len(best))] if len(best) > 1 else best[0]
        vlo, vhi = ranges[v]
        qlo, qhi = ranges[q]
        ranges[v] = (vlo + 1, vhi) if c == vlo else (vlo, vhi - 1)
        ranges[q] = (min(qlo, c), max(qhi, c))
        if eff(v) >= peak and eff(q) >= peak:
            # Guard: never commit a move that fails to pull the pair
            # below the old peak (cannot trigger with the gap rule
            # above, but the invariant is cheap to keep explicit).
            ranges[v], ranges[q] = (vlo, vhi), (qlo, qhi)
            break
        moves.append({"column": c, "victim": v, "thief": q})
    if not moves:
        return assignment, []
    out = Assignment(ranges, assignment.m, assignment.block)
    out.validate()
    return out, moves


def _widen_for_copies(
    base: dict[int, tuple[int, int]], min_copies: int
) -> dict[int, tuple[int, int]]:
    """Widen each position's base range to the hull of the ranges of
    the ``min_copies - 1`` nearest live positions on each side.

    A column owned by live position ``j`` is then also owned by every
    live position within ``min_copies - 1`` hops of ``j``, so every
    column ends up with ``min(live, min_copies)`` or more replicas
    while the per-processor load stays O(``min_copies``).
    """
    used = sorted(base)
    w = min_copies - 1
    out: dict[int, tuple[int, int]] = {}
    for i, p in enumerate(used):
        window = used[max(0, i - w) : i + w + 1]
        out[p] = (
            min(base[q][0] for q in window),
            max(base[q][1] for q in window),
        )
    return out
