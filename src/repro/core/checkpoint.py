"""Executor checkpoints: complete integer snapshots of a dense run.

An :class:`ExecutorCheckpoint` freezes everything the dense timing
skeleton needs to resume a run mid-flight and finish **bit-identically**
to the uninterrupted run: watermark arrays, per-position busy flags,
directed-link slot state, the pending event buckets (in their exact
append order — the event order *is* the bit-identity contract), stream
records, retry-mutated subscriber lists, replica holder sets, the
per-directed-link monotone arrival clamp, consumed one-shot drops, and
every counter.

Checkpoints are captured by both dense tiers:

* :class:`~repro.core.dense.DenseExecutor` captures on a fixed time
  stride (``checkpoint_stride``) during fault-free runs;
* :class:`~repro.core.dense_faults.FaultedDenseExecutor` captures at
  every fault boundary it crosses and at each epoch resume (and on the
  stride, when one is set).

Both tiers restore through ``executor.restore(checkpoint)`` — construct
a fresh executor for the (possibly *edited*) config, hand it a
checkpoint whose prefix is still valid, and :meth:`run` replays only
the suffix.  That replay-only-the-suffix move is the delta layer of
:mod:`repro.delta` / :class:`repro.runner.SweepRunner`; the blast-radius
rules there guarantee the restored prefix is identical between the old
and edited configs.

The snapshot is plain integers/strings end to end, so
:meth:`ExecutorCheckpoint.to_json` / :meth:`from_json` round-trip it
losslessly through the sweep cache's JSON sidecar files.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutorCheckpoint:
    """A complete integer snapshot of a dense-tier run at one time.

    ``kind`` says which tier captured it (``"dense"`` fault-free,
    ``"faulted"`` segmented); ``steps`` records the capturing run's
    guest horizon ``T`` so a restore under a horizon *extension* can
    re-base ``remaining``.  ``events`` holds every pending bucket as
    ``(time, [event tuples...])`` in bucket append order — replaying
    them reproduces the greedy engine's ``(time, seq)`` order exactly.
    """

    time: int
    epoch: int
    label: str
    remaining: int
    makespan: int
    progress: int
    pebbles: int
    messages: int
    injections: int
    lost_messages: int
    retries: int
    #: position -> list of watermarks (own columns, ext slots, virtual).
    watermarks: dict[int, list[int]] = field(default_factory=dict)
    busy: dict[int, bool] = field(default_factory=dict)
    #: flat per-directed-link slot state [r_slot, r_used, l_slot, l_used].
    link_state: list[list[int]] = field(default_factory=list)
    dead: set[int] = field(default_factory=set)
    #: (subscriber, column) -> [provider, attempts, retries, last_t].
    streams: dict[tuple[int, int], list] = field(default_factory=dict)
    #: Guest horizon ``T`` of the capturing run (0 = legacy snapshot
    #: without resume support).
    steps: int = 0
    #: Capturing tier: "dense" (fault-free stride) or "faulted".
    kind: str = "faulted"
    #: First host step at which any own watermark reached ``steps``
    #: (None if that had not happened yet at capture time) — the
    #: divergence bound for horizon-extension deltas.
    first_top: int | None = None
    #: Pending events: [(bucket time, [event tuples in append order])],
    #: sorted by bucket time.
    events: list = field(default_factory=list)
    #: Retry-mutated subscription lists ((provider, column) -> [subs]);
    #: None on fault-free snapshots (never mutated there).
    subscribers: dict | None = None
    #: column -> surviving replica holder positions.
    holders: dict | None = None
    #: (link, direction) -> last clamped arrival on a faulty link.
    last_out: dict = field(default_factory=dict)
    #: The dead-set frozen into the *current* assignment at the last
    #: reconfigure (None while still on the original assignment);
    #: replaying ``reassign(frozenset(reassign_dead))`` reconstructs it.
    reassign_dead: list | None = None
    fault_log: list = field(default_factory=list)
    #: [[link, direction, n]] — one-shot drops consumed before ``time``.
    drops_consumed: list = field(default_factory=list)
    #: Fault/recovery SimStats counters at capture time
    #: (crashed_nodes, recoveries, columns_lost).
    counters: dict = field(default_factory=dict)
    #: MetricsTimeline snapshot at capture time (only when the capturing
    #: run had a timeline attached); restoring *with* telemetry
    #: requires it.
    telemetry: dict | None = None
    #: Row-completion times at capture (``step_done[t]`` = host step row
    #: ``t``'s last pebble finished, 0 if not yet) — the per-step
    #: latency prefix a resume must inherit.  None on legacy snapshots,
    #: which a resume rejects as ``DeltaUnsupported``.
    step_done: list | None = None

    def summary(self) -> dict:
        """Headline numbers (JSON-ready; arrays omitted)."""
        return {
            "time": self.time,
            "epoch": self.epoch,
            "label": self.label,
            "remaining": self.remaining,
            "pebbles": self.pebbles,
            "messages": self.messages,
            "lost_messages": self.lost_messages,
            "retries": self.retries,
            "dead": sorted(self.dead),
        }

    # -- JSON round-trip -------------------------------------------------
    def to_json(self) -> dict:
        """Lossless plain-JSON form (tuple keys flattened to lists)."""
        return {
            "time": self.time,
            "epoch": self.epoch,
            "label": self.label,
            "remaining": self.remaining,
            "makespan": self.makespan,
            "progress": self.progress,
            "pebbles": self.pebbles,
            "messages": self.messages,
            "injections": self.injections,
            "lost_messages": self.lost_messages,
            "retries": self.retries,
            "watermarks": [[p, list(w)] for p, w in self.watermarks.items()],
            "busy": [[p, bool(b)] for p, b in self.busy.items()],
            "link_state": [list(row) for row in self.link_state],
            "dead": sorted(self.dead),
            "streams": [
                [p, c, list(v)] for (p, c), v in self.streams.items()
            ],
            "steps": self.steps,
            "kind": self.kind,
            "first_top": self.first_top,
            "events": [
                [t, [list(ev) for ev in evs]] for t, evs in self.events
            ],
            "subscribers": (
                None
                if self.subscribers is None
                else [[q, c, list(v)] for (q, c), v in self.subscribers.items()]
            ),
            "holders": (
                None
                if self.holders is None
                else [[c, sorted(ps)] for c, ps in self.holders.items()]
            ),
            "last_out": [[j, d, t] for (j, d), t in self.last_out.items()],
            "reassign_dead": (
                None if self.reassign_dead is None else sorted(self.reassign_dead)
            ),
            "fault_log": list(self.fault_log),
            "drops_consumed": [list(row) for row in self.drops_consumed],
            "counters": dict(self.counters),
            "telemetry": self.telemetry,
            "step_done": (
                None if self.step_done is None else list(self.step_done)
            ),
        }

    @classmethod
    def from_json(cls, blob: dict) -> "ExecutorCheckpoint":
        """Rebuild the in-memory snapshot from :meth:`to_json` output."""
        return cls(
            time=blob["time"],
            epoch=blob["epoch"],
            label=blob["label"],
            remaining=blob["remaining"],
            makespan=blob["makespan"],
            progress=blob["progress"],
            pebbles=blob["pebbles"],
            messages=blob["messages"],
            injections=blob["injections"],
            lost_messages=blob["lost_messages"],
            retries=blob["retries"],
            watermarks={p: list(w) for p, w in blob["watermarks"]},
            busy={p: bool(b) for p, b in blob["busy"]},
            link_state=[list(row) for row in blob["link_state"]],
            dead=set(blob["dead"]),
            streams={(p, c): list(v) for p, c, v in blob["streams"]},
            steps=blob.get("steps", 0),
            kind=blob.get("kind", "faulted"),
            first_top=blob.get("first_top"),
            events=[
                (t, [tuple(ev) for ev in evs])
                for t, evs in blob.get("events", [])
            ],
            subscribers=(
                None
                if blob.get("subscribers") is None
                else {(q, c): list(v) for q, c, v in blob["subscribers"]}
            ),
            holders=(
                None
                if blob.get("holders") is None
                else {c: set(ps) for c, ps in blob["holders"]}
            ),
            last_out={(j, d): t for j, d, t in blob.get("last_out", [])},
            reassign_dead=blob.get("reassign_dead"),
            fault_log=list(blob.get("fault_log", [])),
            drops_consumed=[list(row) for row in blob.get("drops_consumed", [])],
            counters=dict(blob.get("counters", {})),
            telemetry=blob.get("telemetry"),
            step_done=blob.get("step_done"),
        )
