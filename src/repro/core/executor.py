"""Greedy event-driven executor for contiguous column assignments.

This is the engine that actually *runs* a database-model simulation on
a host array.  It takes any assignment mapping host positions to
contiguous guest-column ranges (OVERLAP's, Theorem 4's blocks, a
baseline's) and executes greedily:

* every owner of column ``i`` computes **all** pebbles ``(i, 1..T)`` in
  order (the database forces the order — the paper's redundant
  computation);
* a processor computes one pebble per step, always picking the ready
  pebble with the smallest ``(t, i)``;
* each processor that needs an external boundary column subscribes to
  its nearest owner, which pushes every pebble of that column as it is
  computed, hop by hop over the pipelined links.

Greedy execution is a feasible realisation of the paper's explicit
schedule (Theorem 1 exhibits *one* feasible timing; eager execution
with the same assignment can only complete each pebble no later), so
the measured makespan validates the upper-bound theorems, and the
executor doubles as the baseline engine when given redundancy-free
assignments.

The implementation follows the hot-loop rules of the HPC guides: plain
lists and dicts bound to locals, integer event tags, a single heap, no
per-pebble object allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import Assignment
from repro.machine.database import Database
from repro.machine.host import HostArray
from repro.machine.mixing import fold_s
from repro.machine.pebbles import (
    BOUNDARY_LEFT,
    BOUNDARY_RIGHT,
    boundary_value,
    initial_value,
)
from repro.machine.programs import Program
from repro.netsim.events import EventQueue
from repro.netsim.stats import SimStats

_DONE = 0
_MSG = 1


class SimulationDeadlock(RuntimeError):
    """The event queue drained before every pebble was computed."""


@dataclass
class ExecResult:
    """Everything a run produces.

    ``value_digests[(p, col)]`` folds the column's pebble values in
    ``t`` order; ``replicas[(p, col)]`` is the final database replica.
    Both are compared against the reference run by
    :mod:`repro.core.verify`.
    """

    stats: SimStats
    steps: int
    assignment: Assignment
    value_digests: dict[tuple[int, int], int] = field(default_factory=dict)
    replicas: dict[tuple[int, int], Database] = field(default_factory=dict)

    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.stats.slowdown(self.steps)


class GreedyExecutor:
    """One-shot executor; build, :meth:`run`, read the result."""

    def __init__(
        self,
        host: HostArray,
        assignment: Assignment,
        program: Program,
        steps: int,
        bandwidth: int | None = None,
        dep_map: dict[int, tuple[int, int]] | None = None,
        col_label=None,
        trace=None,
        multicast: bool = False,
        tie_seed: int | None = None,
    ) -> None:
        """Build an executor.

        ``dep_map`` generalises the dependency structure: it maps each
        column to its two *lateral source columns* (default: ``c-1``
        and ``c+1`` with virtual boundary columns 0 / m+1).  Ring
        guests use it to wire fold-embedded neighbours
        (:mod:`repro.core.ring`).  With a ``dep_map`` there are no
        virtual boundaries — every source must be a real column.

        ``col_label`` relabels columns for the *program* (initial
        values, database identity, the ``i`` passed to ``compute``):
        ring simulation places ring node ``k`` at some array column
        ``j``, and the guest semantics must follow ``k``, not ``j``.
        """
        if assignment.n != host.n:
            raise ValueError(
                f"assignment is for {assignment.n} positions, host has {host.n}"
            )
        if steps < 0:
            raise ValueError("steps must be non-negative")
        assignment.validate()
        self.host = host
        self.assignment = assignment
        self.program = program
        self.T = steps
        self.fabric = host.fabric(bandwidth)
        self.m = assignment.m
        self.dep_map = dep_map
        self.col_label = col_label or (lambda c: c)
        self.trace = trace
        self.multicast = multicast
        # Optional scheduling jitter: permute the within-row column
        # preference.  Correctness must not depend on scheduling order
        # (any work-conserving order simulates the guest exactly);
        # tests sweep seeds to prove it.  None = natural column order.
        if tie_seed is None:
            self._rank = None
        else:
            import numpy as _np

            perm = _np.random.default_rng(tie_seed).permutation(self.m + 1)
            self._rank = {c: int(perm[c]) for c in range(1, self.m + 1)}
        if dep_map is not None:
            for c in range(1, self.m + 1):
                if c not in dep_map:
                    raise ValueError(f"dep_map missing column {c}")
                for src in dep_map[c]:
                    if not 1 <= src <= self.m:
                        raise ValueError(
                            f"dep_map[{c}] source {src} outside 1..{self.m}"
                        )
        self._build_state()

    def _deps(self, c: int) -> tuple[int, int]:
        """Lateral source columns of ``c`` (left-like, right-like)."""
        if self.dep_map is None:
            return (c - 1, c + 1)
        return self.dep_map[c]

    def _build_state(self) -> None:
        T, m = self.T, self.m
        prog = self.program
        self.used = self.assignment.used_positions()
        self.own_range: dict[int, tuple[int, int]] = {}
        self.vals: dict[int, dict[int, list]] = {}
        self.done: dict[int, dict[int, int]] = {}
        self.dbs: dict[int, dict[int, Database]] = {}
        self.ext: dict[int, dict[int, list]] = {}  # col -> [t_known, values]
        self.busy: dict[int, bool] = {}
        self.subscribers: dict[tuple[int, int], list[int]] = {}

        owners = self.assignment.owners()
        label = self.col_label
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            self.own_range[p] = (lo, hi)
            self.busy[p] = False
            pv: dict[int, list] = {}
            pd: dict[int, int] = {}
            pdb: dict[int, Database] = {}
            for c in range(lo, hi + 1):
                col_vals = [0] * (T + 1)
                col_vals[0] = initial_value(label(c))
                pv[c] = col_vals
                pd[c] = 0
                pdb[c] = Database(label(c), prog.init_state(label(c)))
            self.vals[p] = pv
            self.done[p] = pd
            self.dbs[p] = pdb
            needed = sorted(
                {
                    src
                    for c in range(lo, hi + 1)
                    for src in self._deps(c)
                    if 1 <= src <= m and not (lo <= src <= hi)
                }
            )
            pext: dict[int, list] = {}
            for c in needed:
                ext_vals = [0] * (T + 1)
                ext_vals[0] = initial_value(label(c))
                pext[c] = [0, ext_vals]
                candidates = owners[c]
                q = min(
                    candidates,
                    key=lambda q: (self.host.distance(p, q), abs(q - p), q),
                )
                self.subscribers.setdefault((q, c), []).append(p)
            self.ext[p] = pext

    # -- knowledge ------------------------------------------------------
    def _value(self, p: int, c: int, t: int) -> int:
        if c == 0:
            return boundary_value(BOUNDARY_LEFT, t)
        if c == self.m + 1:
            return boundary_value(BOUNDARY_RIGHT, t)
        pv = self.vals[p]
        if c in pv:
            return pv[c][t]
        return self.ext[p][c][1][t]

    def _known(self, p: int, c: int, t: int) -> bool:
        if c <= 0 or c >= self.m + 1:
            return True
        pd = self.done[p]
        if c in pd:
            return pd[c] >= t
        return self.ext[p][c][0] >= t

    # -- engine ----------------------------------------------------------
    def _try_start(self, p: int, now: int, queue: EventQueue) -> None:
        if self.busy[p]:
            return
        # Hot loop (profiled at ~75% of executor time): the _known/_deps
        # helpers are inlined and locals bound once per call.
        T = self.T
        m = self.m
        pd = self.done[p]
        ext = self.ext[p]
        rank = self._rank
        dep_map = self.dep_map
        best_t = T + 1
        best_c = -1
        best_r = -1
        for c, dt in pd.items():
            t = dt + 1
            if t > T:
                continue
            r = rank[c] if rank is not None else c
            if t > best_t or (t == best_t and r >= best_r):
                continue
            if dep_map is None:
                src_l = c - 1
                src_r = c + 1
            else:
                src_l, src_r = dep_map[c]
            tt = dt  # == t - 1
            if 1 <= src_l <= m:
                have = pd.get(src_l)
                if (have if have is not None else ext[src_l][0]) < tt:
                    continue
            if 1 <= src_r <= m:
                have = pd.get(src_r)
                if (have if have is not None else ext[src_r][0]) < tt:
                    continue
            best_t, best_c, best_r = t, c, r
        if best_c < 0:
            return
        t, c = best_t, best_c
        src_l, src_r = self._deps(c)
        left = self._value(p, src_l, t - 1)
        up = self.vals[p][c][t - 1]
        right = self._value(p, src_r, t - 1)
        db = self.dbs[p][c]
        value, update = self.program.compute(
            self.col_label(c), t, db.state, left, up, right
        )
        db.apply(self.program, update)
        self.vals[p][c][t] = value
        self.busy[p] = True
        queue.push(now + 1, _DONE, (p, c, t))

    def run(self) -> ExecResult:
        stats = SimStats()
        queue = EventQueue()
        T = self.T
        makespan = 0
        remaining = sum(1 for p in self.used for _ in self.done[p]) * T

        if T == 0 or remaining == 0:
            return self._finish(stats, 0)

        for p in self.used:
            self._try_start(p, 0, queue)

        fabric_hop = self.fabric.hop
        while queue:
            ev = queue.pop()
            now = ev.time
            if ev.kind == _DONE:
                p, c, t = ev.data
                self.busy[p] = False
                self.done[p][c] = t
                stats.pebbles += 1
                remaining -= 1
                if self.trace is not None:
                    self.trace.record(now, p, c, t)
                if now > makespan:
                    makespan = now
                subs = self.subscribers.get((p, c))
                if subs:
                    value = self.vals[p][c][t]
                    if self.multicast:
                        # One stream per direction; intermediate
                        # subscribers peel their copy off as it passes.
                        left = tuple(sorted((d for d in subs if d < p), reverse=True))
                        right = tuple(sorted(d for d in subs if d > p))
                        for targets in (left, right):
                            if not targets:
                                continue
                            stats.messages += 1
                            step = 1 if targets[0] > p else -1
                            arr = fabric_hop(p, step, now)
                            queue.push(arr, _MSG, (p + step, targets, c, t, value))
                    else:
                        for dst in subs:
                            stats.messages += 1
                            step = 1 if dst > p else -1
                            arr = fabric_hop(p, step, now)
                            queue.push(arr, _MSG, (p + step, (dst,), c, t, value))
                self._try_start(p, now, queue)
            else:  # _MSG
                pos, targets, c, t, value = ev.data
                if pos == targets[0]:
                    e = self.ext[pos][c]
                    if t != e[0] + 1:  # pragma: no cover - invariant guard
                        raise AssertionError(
                            f"out-of-order delivery of ({c},{t}) at {pos}: "
                            f"have {e[0]}"
                        )
                    e[1][t] = value
                    e[0] = t
                    targets = targets[1:]
                    self._try_start(pos, now, queue)
                if targets:
                    step = 1 if targets[0] > pos else -1
                    arr = fabric_hop(pos, step, now)
                    queue.push(arr, _MSG, (pos + step, targets, c, t, value))

        if remaining:
            stuck = [
                (p, c, self.done[p][c])
                for p in self.used
                for c in self.done[p]
                if self.done[p][c] < T
            ]
            raise SimulationDeadlock(
                f"{remaining} pebbles never computed; first stuck: {stuck[:5]}"
            )
        return self._finish(stats, makespan)

    def _finish(self, stats: SimStats, makespan: int) -> ExecResult:
        stats.makespan = makespan
        stats.pebble_hops = self.fabric.total_injections
        stats.procs_used = len(self.used)
        stats.redundant = stats.pebbles - self.m * self.T
        result = ExecResult(stats, self.T, self.assignment)
        for p in self.used:
            for c, col_vals in self.vals[p].items():
                result.value_digests[(p, c)] = fold_s(col_vals[1:])
                result.replicas[(p, c)] = self.dbs[p][c]
        return result


def run_assignment(
    host: HostArray,
    assignment: Assignment,
    program: Program,
    steps: int,
    bandwidth: int | None = None,
) -> ExecResult:
    """Convenience wrapper: build an executor and run it."""
    return GreedyExecutor(host, assignment, program, steps, bandwidth).run()
