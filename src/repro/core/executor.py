"""Greedy event-driven executor for contiguous column assignments.

This is the engine that actually *runs* a database-model simulation on
a host array.  It takes any assignment mapping host positions to
contiguous guest-column ranges (OVERLAP's, Theorem 4's blocks, a
baseline's) and executes greedily:

* every owner of column ``i`` computes **all** pebbles ``(i, 1..T)`` in
  order (the database forces the order — the paper's redundant
  computation);
* a processor computes one pebble per step, always picking the ready
  pebble with the smallest ``(t, i)``;
* each processor that needs an external boundary column subscribes to
  its nearest owner, which pushes every pebble of that column as it is
  computed, hop by hop over the pipelined links.

Greedy execution is a feasible realisation of the paper's explicit
schedule (Theorem 1 exhibits *one* feasible timing; eager execution
with the same assignment can only complete each pebble no later), so
the measured makespan validates the upper-bound theorems, and the
executor doubles as the baseline engine when given redundancy-free
assignments.

The implementation follows the hot-loop rules of the HPC guides: plain
lists and dicts bound to locals, integer event tags, a single heap, no
per-pebble object allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import Assignment
from repro.machine.database import Database
from repro.machine.host import HostArray
from repro.machine.mixing import fold_s
from repro.machine.pebbles import (
    BOUNDARY_LEFT,
    BOUNDARY_RIGHT,
    boundary_value,
    initial_value,
)
from repro.machine.programs import Program
from repro.core.racing import ExecPolicy, resolve_policy
from repro.netsim.events import EventQueue
from repro.netsim.faults import LOST, FaultPlan, RecoveryPolicy
from repro.netsim.stats import SimStats, latencies_from_completions

_DONE = 0
_MSG = 1
# Fault-mode event kinds (only pushed when a non-empty FaultPlan runs).
_CRASH = 2
_RESUME = 3
_CHECK = 4
_REQ = 5
_WATCH = 6


class SimulationDeadlock(RuntimeError):
    """The run cannot make progress before every pebble is computed.

    Carries diagnostic state:

    ``pending``
        ``(position, column, last computed t)`` for every replica that
        never reached ``T``.
    ``undelivered``
        ``(position, column, watermark)`` for every subscription stream
        whose delivery watermark is short of ``T``.
    ``fault_log``
        Human-readable fault/recovery events seen before the deadlock
        (empty on fault-free runs).
    """

    def __init__(
        self,
        message: str,
        pending: list | None = None,
        undelivered: list | None = None,
        fault_log: list | None = None,
    ) -> None:
        details = []
        if pending:
            details.append(f"{len(pending)} stuck replicas, first: {pending[:5]}")
        if undelivered:
            details.append(
                f"{len(undelivered)} stalled streams, first: {undelivered[:5]}"
            )
        if fault_log:
            details.append(
                f"{len(fault_log)} fault events, last: {fault_log[-3:]}"
            )
        if details:
            message = f"{message} [{'; '.join(details)}]"
        super().__init__(message)
        self.pending = pending or []
        self.undelivered = undelivered or []
        self.fault_log = fault_log or []


@dataclass
class ExecResult:
    """Everything a run produces.

    ``value_digests[(p, col)]`` folds the column's pebble values in
    ``t`` order; ``replicas[(p, col)]`` is the final database replica.
    Both are compared against the reference run by
    :mod:`repro.core.verify`.
    """

    stats: SimStats
    steps: int
    assignment: Assignment
    value_digests: dict[tuple[int, int], int] = field(default_factory=dict)
    replicas: dict[tuple[int, int], Database] = field(default_factory=dict)

    def slowdown(self) -> float:
        """Host steps per guest step."""
        return self.stats.slowdown(self.steps)


class GreedyExecutor:
    """One-shot executor; build, :meth:`run`, read the result."""

    __slots__ = (
        "host",
        "assignment",
        "program",
        "T",
        "fabric",
        "m",
        "dep_map",
        "col_label",
        "trace",
        "telemetry",
        "multicast",
        "_tie_seed",
        "_rank",
        "faults",
        "policy",
        "exec_policy",
        "_racing",
        "_raced",
        "_step_done",
        "_cancelled",
        "_raced_wins",
        "_raced_losses",
        "reassign",
        "_faulty",
        "_epoch",
        "_fault_tables",
        "used",
        "own_range",
        "vals",
        "done",
        "dbs",
        "ext",
        "busy",
        "subscribers",
        "_streams",
        "_dead",
        "_fault_log",
        "_progress",
        "_holders",
        "_pending_holders",
    )

    def __init__(
        self,
        host: HostArray,
        assignment: Assignment,
        program: Program,
        steps: int,
        bandwidth: int | None = None,
        dep_map: dict[int, tuple[int, int]] | None = None,
        col_label=None,
        trace=None,
        multicast: bool = False,
        tie_seed: int | None = None,
        faults: FaultPlan | None = None,
        policy: RecoveryPolicy | None = None,
        reassign=None,
        telemetry=None,
        exec_policy: ExecPolicy | str | None = None,
    ) -> None:
        """Build an executor.

        ``dep_map`` generalises the dependency structure: it maps each
        column to its two *lateral source columns* (default: ``c-1``
        and ``c+1`` with virtual boundary columns 0 / m+1).  Ring
        guests use it to wire fold-embedded neighbours
        (:mod:`repro.core.ring`).  With a ``dep_map`` there are no
        virtual boundaries — every source must be a real column.

        ``col_label`` relabels columns for the *program* (initial
        values, database identity, the ``i`` passed to ``compute``):
        ring simulation places ring node ``k`` at some array column
        ``j``, and the guest semantics must follow ``k``, not ``j``.

        ``faults`` is an optional :class:`~repro.netsim.faults.FaultPlan`
        to inject during the run; a non-empty plan switches :meth:`run`
        to the fault-aware loop (``policy`` tunes detection/recovery,
        ``reassign`` maps a dead-position set to a reduced
        :class:`Assignment` — default: re-run OVERLAP's killing stages
        with ``min_copies=2``).  An empty/absent plan takes the plain
        loop, bit-identical to the fault-free executor.

        ``telemetry`` is an optional
        :class:`~repro.telemetry.timeline.MetricsTimeline` to fill with
        per-step counters.  With ``None`` (the default) the plain loop
        runs with zero telemetry branches; with a timeline attached the
        run dispatches to an instrumented copy of the same loop (fault
        runs check inline) — results are identical either way.

        ``exec_policy`` selects the issue discipline
        (:class:`~repro.core.racing.ExecPolicy` or a name string).
        With ``racing`` each external column subscribes to up to
        ``fanout`` nearest owners; deliveries are first-wins with
        losers cancelled at the source or in flight.  Value digests
        stay identical to the single-issue run — only timing, message
        counts and the step-latency tail change.
        """
        if assignment.n != host.n:
            raise ValueError(
                f"assignment is for {assignment.n} positions, host has {host.n}"
            )
        from repro.core.killing import validate_steps

        steps = validate_steps(steps)
        assignment.validate()
        self.host = host
        self.assignment = assignment
        self.program = program
        self.T = steps
        self.fabric = host.fabric(bandwidth)
        self.m = assignment.m
        self.dep_map = dep_map
        self.col_label = col_label or (lambda c: c)
        self.trace = trace
        self.telemetry = telemetry
        self.multicast = multicast
        self.exec_policy = resolve_policy(exec_policy)
        self._racing = self.exec_policy.racing and self.exec_policy.fanout > 1
        if self._racing and multicast:
            raise ValueError(
                "racing and multicast are mutually exclusive: a multicast "
                "stream shares one message among subscribers, so there is "
                "no per-subscriber replica race to cancel"
            )
        self._step_done = None
        self._cancelled = 0
        self._raced_wins = 0
        self._raced_losses = 0
        self._raced: set[tuple[int, int]] = set()
        self._tie_seed = tie_seed
        self._make_rank()
        self.faults = faults
        self.policy = policy or RecoveryPolicy()
        self.reassign = reassign
        self._epoch = 0
        if faults is not None and not faults.is_empty:
            # Compile first: a non-empty plan can still be effect-free
            # (every event at/after the declared horizon) and then takes
            # the plain fault-free loop, bit-identical to no plan.
            tables = faults.compile(host)
            self._faulty = not tables.is_effect_free
        else:
            tables = None
            self._faulty = False
        if self._faulty:
            if dep_map is not None and tables.crash_times:
                raise ValueError(
                    "node-crash injection supports the standard array "
                    "dependency structure only (dep_map must be None); "
                    "link-level faults are fine"
                )
            self._fault_tables = tables
            self.fabric.attach_faults(self._fault_tables)
        else:
            self._fault_tables = None
        if dep_map is not None:
            for c in range(1, self.m + 1):
                if c not in dep_map:
                    raise ValueError(f"dep_map missing column {c}")
                for src in dep_map[c]:
                    if not 1 <= src <= self.m:
                        raise ValueError(
                            f"dep_map[{c}] source {src} outside 1..{self.m}"
                        )
        self._build_state()

    def _make_rank(self) -> None:
        # Optional scheduling jitter: permute the within-row column
        # preference.  Correctness must not depend on scheduling order
        # (any work-conserving order simulates the guest exactly);
        # tests sweep seeds to prove it.  None = natural column order.
        if self._tie_seed is None:
            self._rank = None
        else:
            import numpy as _np

            perm = _np.random.default_rng(self._tie_seed).permutation(self.m + 1)
            self._rank = {c: int(perm[c]) for c in range(1, self.m + 1)}

    def _deps(self, c: int) -> tuple[int, int]:
        """Lateral source columns of ``c`` (left-like, right-like)."""
        if self.dep_map is None:
            return (c - 1, c + 1)
        return self.dep_map[c]

    def _build_state(self) -> None:
        T, m = self.T, self.m
        prog = self.program
        self.used = self.assignment.used_positions()
        self.own_range: dict[int, tuple[int, int]] = {}
        self.vals: dict[int, dict[int, list]] = {}
        self.done: dict[int, dict[int, int]] = {}
        self.dbs: dict[int, dict[int, Database]] = {}
        self.ext: dict[int, dict[int, list]] = {}  # col -> [t_known, values]
        self.busy: dict[int, bool] = {}
        self.subscribers: dict[tuple[int, int], list[int]] = {}

        owners = self.assignment.owners()
        label = self.col_label
        self._raced = set()
        fanout = self.exec_policy.fanout if self._racing else 1
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            self.own_range[p] = (lo, hi)
            self.busy[p] = False
            pv: dict[int, list] = {}
            pd: dict[int, int] = {}
            pdb: dict[int, Database] = {}
            for c in range(lo, hi + 1):
                col_vals = [0] * (T + 1)
                col_vals[0] = initial_value(label(c))
                pv[c] = col_vals
                pd[c] = 0
                pdb[c] = Database(label(c), prog.init_state(label(c)))
            self.vals[p] = pv
            self.done[p] = pd
            self.dbs[p] = pdb
            needed = sorted(
                {
                    src
                    for c in range(lo, hi + 1)
                    for src in self._deps(c)
                    if 1 <= src <= m and not (lo <= src <= hi)
                }
            )
            pext: dict[int, list] = {}
            for c in needed:
                ext_vals = [0] * (T + 1)
                ext_vals[0] = initial_value(label(c))
                pext[c] = [0, ext_vals]
                candidates = owners[c]
                if fanout > 1 and len(candidates) > 1:
                    # Racing: subscribe to the ``fanout`` nearest owners;
                    # their streams race and the first delivery wins.
                    near = sorted(
                        candidates,
                        key=lambda q: (self.host.distance(p, q), abs(q - p), q),
                    )[:fanout]
                    for q in near:
                        self.subscribers.setdefault((q, c), []).append(p)
                    self._raced.add((p, c))
                else:
                    q = min(
                        candidates,
                        key=lambda q: (self.host.distance(p, q), abs(q - p), q),
                    )
                    self.subscribers.setdefault((q, c), []).append(p)
            self.ext[p] = pext

    # -- knowledge ------------------------------------------------------
    def _value(self, p: int, c: int, t: int) -> int:
        if c == 0:
            return boundary_value(BOUNDARY_LEFT, t)
        if c == self.m + 1:
            return boundary_value(BOUNDARY_RIGHT, t)
        pv = self.vals[p]
        if c in pv:
            return pv[c][t]
        return self.ext[p][c][1][t]

    def _known(self, p: int, c: int, t: int) -> bool:
        if c <= 0 or c >= self.m + 1:
            return True
        pd = self.done[p]
        if c in pd:
            return pd[c] >= t
        return self.ext[p][c][0] >= t

    # -- engine ----------------------------------------------------------
    def _try_start(self, p: int, now: int, queue: EventQueue) -> None:
        if self.busy[p]:
            return
        # Hot loop (profiled at ~75% of executor time): the _known/_deps
        # helpers are inlined and locals bound once per call.
        T = self.T
        m = self.m
        pd = self.done[p]
        ext = self.ext[p]
        rank = self._rank
        dep_map = self.dep_map
        best_t = T + 1
        best_c = -1
        best_r = -1
        for c, dt in pd.items():
            t = dt + 1
            if t > T:
                continue
            r = rank[c] if rank is not None else c
            if t > best_t or (t == best_t and r >= best_r):
                continue
            if dep_map is None:
                src_l = c - 1
                src_r = c + 1
            else:
                src_l, src_r = dep_map[c]
            tt = dt  # == t - 1
            if 1 <= src_l <= m:
                have = pd.get(src_l)
                if (have if have is not None else ext[src_l][0]) < tt:
                    continue
            if 1 <= src_r <= m:
                have = pd.get(src_r)
                if (have if have is not None else ext[src_r][0]) < tt:
                    continue
            best_t, best_c, best_r = t, c, r
        if best_c < 0:
            return
        t, c = best_t, best_c
        src_l, src_r = self._deps(c)
        left = self._value(p, src_l, t - 1)
        up = self.vals[p][c][t - 1]
        right = self._value(p, src_r, t - 1)
        db = self.dbs[p][c]
        value, update = self.program.compute(
            self.col_label(c), t, db.state, left, up, right
        )
        db.apply(self.program, update)
        self.vals[p][c][t] = value
        self.busy[p] = True
        if self._faulty:
            queue.push(now + 1, _DONE, (p, c, t, self._epoch))
        else:
            queue.push(now + 1, _DONE, (p, c, t))

    def run(self) -> ExecResult:
        if self._faulty:
            return self._run_faulty()
        if self._racing:
            return self._run_racing()
        if self.telemetry is not None:
            return self._run_telemetry()
        stats = SimStats()
        queue = EventQueue()
        T = self.T
        makespan = 0
        remaining = sum(1 for p in self.used for _ in self.done[p]) * T

        if T == 0 or remaining == 0:
            return self._finish(stats, 0)

        sd = self._step_done = [0] * (T + 1)
        for p in self.used:
            self._try_start(p, 0, queue)

        # Hot loop: everything touched per event is bound to a local once
        # (attribute lookups profiled as a double-digit share of runtime);
        # the pebble/message counters accumulate in plain ints and are
        # written back to ``stats`` after the loop.
        fabric_hop = self.fabric.hop
        fabric_hop_many = self.fabric.hop_many
        busy = self.busy
        done = self.done
        vals = self.vals
        ext = self.ext
        subscribers_get = self.subscribers.get
        try_start = self._try_start
        push = queue.push
        pop = queue.pop
        trace = self.trace
        multicast = self.multicast
        n_pebbles = 0
        n_messages = 0
        while queue:
            ev = pop()
            now = ev.time
            if ev.kind == _DONE:
                p, c, t = ev.data
                busy[p] = False
                done[p][c] = t
                n_pebbles += 1
                remaining -= 1
                if trace is not None:
                    trace.record(now, p, c, t)
                if now > makespan:
                    makespan = now
                if now > sd[t]:
                    sd[t] = now
                subs = subscribers_get((p, c))
                if subs:
                    value = vals[p][c][t]
                    if multicast:
                        # One stream per direction; intermediate
                        # subscribers peel their copy off as it passes.
                        left = tuple(sorted((d for d in subs if d < p), reverse=True))
                        right = tuple(sorted(d for d in subs if d > p))
                        for targets in (left, right):
                            if not targets:
                                continue
                            n_messages += 1
                            step = 1 if targets[0] > p else -1
                            arr = fabric_hop(p, step, now)
                            push(arr, _MSG, (p + step, targets, c, t, value))
                    elif len(subs) == 1:
                        dst = subs[0]
                        n_messages += 1
                        step = 1 if dst > p else -1
                        arr = fabric_hop(p, step, now)
                        push(arr, _MSG, (p + step, (dst,), c, t, value))
                    else:
                        # Whole-stream send: all copies are ready at
                        # ``now``, so batch the per-direction injections
                        # (identical slot assignment and push order to
                        # one hop per subscriber).
                        n_right = 0
                        for dst in subs:
                            if dst > p:
                                n_right += 1
                        right_arr = (
                            fabric_hop_many(p, 1, now, n_right) if n_right else ()
                        )
                        n_left = len(subs) - n_right
                        left_arr = (
                            fabric_hop_many(p, -1, now, n_left) if n_left else ()
                        )
                        n_messages += len(subs)
                        ri = li = 0
                        for dst in subs:
                            if dst > p:
                                arr = right_arr[ri]
                                ri += 1
                                push(arr, _MSG, (p + 1, (dst,), c, t, value))
                            else:
                                arr = left_arr[li]
                                li += 1
                                push(arr, _MSG, (p - 1, (dst,), c, t, value))
                try_start(p, now, queue)
            else:  # _MSG
                pos, targets, c, t, value = ev.data
                if pos == targets[0]:
                    e = ext[pos][c]
                    if t != e[0] + 1:  # pragma: no cover - invariant guard
                        raise AssertionError(
                            f"out-of-order delivery of ({c},{t}) at {pos}: "
                            f"have {e[0]}"
                        )
                    e[1][t] = value
                    e[0] = t
                    targets = targets[1:]
                    try_start(pos, now, queue)
                if targets:
                    step = 1 if targets[0] > pos else -1
                    arr = fabric_hop(pos, step, now)
                    push(arr, _MSG, (pos + step, targets, c, t, value))

        stats.pebbles = n_pebbles
        stats.messages = n_messages
        if remaining:
            raise self._deadlock(f"{remaining} pebbles never computed")
        return self._finish(stats, makespan)

    def _run_telemetry(self) -> ExecResult:
        """Instrumented copy of the plain loop (fault-free + telemetry).

        Byte-for-byte the same event processing as :meth:`run` — the
        timeline only *observes* (completions, injections, deliveries),
        never alters ready times or push order — so results stay
        bit-identical to the un-instrumented run.  Kept as a separate
        method so the plain loop carries zero telemetry branches.
        """
        tl = self.telemetry
        tl.meta.setdefault("engine", "greedy")
        stats = SimStats()
        queue = EventQueue()
        T = self.T
        makespan = 0
        remaining = sum(1 for p in self.used for _ in self.done[p]) * T

        if T == 0 or remaining == 0:
            return self._finish(stats, 0)

        sd = self._step_done = [0] * (T + 1)
        tl.spans.begin("epoch", 0, track="epochs", epoch=0)
        for p in self.used:
            self._try_start(p, 0, queue)

        fabric_hop = self.fabric.hop
        fabric_hop_many = self.fabric.hop_many
        delays = self.fabric.link_delays
        busy = self.busy
        done = self.done
        vals = self.vals
        ext = self.ext
        subscribers_get = self.subscribers.get
        try_start = self._try_start
        push = queue.push
        pop = queue.pop
        trace = self.trace
        multicast = self.multicast
        tl_pebble = tl.pebble
        tl_send = tl.send
        tl_message = tl.message
        tl_deliver = tl.deliver
        n_pebbles = 0
        n_messages = 0
        while queue:
            ev = pop()
            now = ev.time
            if ev.kind == _DONE:
                p, c, t = ev.data
                busy[p] = False
                done[p][c] = t
                n_pebbles += 1
                remaining -= 1
                tl_pebble(now, p, c, t)
                if trace is not None:
                    trace.record(now, p, c, t)
                if now > makespan:
                    makespan = now
                if now > sd[t]:
                    sd[t] = now
                subs = subscribers_get((p, c))
                if subs:
                    value = vals[p][c][t]
                    if multicast:
                        left = tuple(sorted((d for d in subs if d < p), reverse=True))
                        right = tuple(sorted(d for d in subs if d > p))
                        for targets in (left, right):
                            if not targets:
                                continue
                            n_messages += 1
                            tl_message(now)
                            step = 1 if targets[0] > p else -1
                            arr = fabric_hop(p, step, now)
                            tl_send(arr - delays[p if step == 1 else p - 1], arr)
                            push(arr, _MSG, (p + step, targets, c, t, value))
                    elif len(subs) == 1:
                        dst = subs[0]
                        n_messages += 1
                        tl_message(now)
                        step = 1 if dst > p else -1
                        arr = fabric_hop(p, step, now)
                        tl_send(arr - delays[p if step == 1 else p - 1], arr)
                        push(arr, _MSG, (p + step, (dst,), c, t, value))
                    else:
                        n_right = 0
                        for dst in subs:
                            if dst > p:
                                n_right += 1
                        right_arr = (
                            fabric_hop_many(p, 1, now, n_right) if n_right else ()
                        )
                        n_left = len(subs) - n_right
                        left_arr = (
                            fabric_hop_many(p, -1, now, n_left) if n_left else ()
                        )
                        n_messages += len(subs)
                        tl_message(now, len(subs))
                        d_right = delays[p] if n_right else 0
                        d_left = delays[p - 1] if n_left else 0
                        for arr in right_arr:
                            tl_send(arr - d_right, arr)
                        for arr in left_arr:
                            tl_send(arr - d_left, arr)
                        ri = li = 0
                        for dst in subs:
                            if dst > p:
                                arr = right_arr[ri]
                                ri += 1
                                push(arr, _MSG, (p + 1, (dst,), c, t, value))
                            else:
                                arr = left_arr[li]
                                li += 1
                                push(arr, _MSG, (p - 1, (dst,), c, t, value))
                try_start(p, now, queue)
            else:  # _MSG
                pos, targets, c, t, value = ev.data
                if pos == targets[0]:
                    e = ext[pos][c]
                    if t != e[0] + 1:  # pragma: no cover - invariant guard
                        raise AssertionError(
                            f"out-of-order delivery of ({c},{t}) at {pos}: "
                            f"have {e[0]}"
                        )
                    e[1][t] = value
                    e[0] = t
                    tl_deliver(now)
                    targets = targets[1:]
                    try_start(pos, now, queue)
                if targets:
                    step = 1 if targets[0] > pos else -1
                    arr = fabric_hop(pos, step, now)
                    tl_send(arr - delays[pos if step == 1 else pos - 1], arr)
                    push(arr, _MSG, (pos + step, targets, c, t, value))

        stats.pebbles = n_pebbles
        stats.messages = n_messages
        if remaining:
            raise self._deadlock(f"{remaining} pebbles never computed")
        tl.spans.close_all(makespan)
        return self._finish(stats, makespan)

    def _run_racing(self) -> ExecResult:
        """Fault-free redundant-issue loop (``exec_policy`` races).

        Each raced external column has up to ``fanout`` provider
        streams; every delivery is tolerant first-wins:

        * in-order (``t == watermark + 1``) — the winner; apply and
          advance;
        * duplicate (``t <= watermark``) — a losing replica's answer;
          checked for value consistency against the winner and counted
          as a raced loss;
        * a gap is impossible fault-free (per-stream sends are FIFO and
          a predecessor is only ever *cancelled* when the watermark
          already covers it), so it stays a hard invariant error.

        Cancellation is the oracle rule from "Low Latency via
        Redundancy": a pebble the subscriber is already past is never
        injected (cancelled at the source) and an in-flight copy is
        dropped at its next relay hop — abandoned messages stop
        consuming link slots immediately.
        """
        tl = self.telemetry
        if tl is not None:
            tl.meta.setdefault("engine", "greedy")
        stats = SimStats()
        queue = EventQueue()
        T = self.T
        makespan = 0
        remaining = sum(1 for p in self.used for _ in self.done[p]) * T

        if T == 0 or remaining == 0:
            return self._finish(stats, 0)

        sd = self._step_done = [0] * (T + 1)
        if tl is not None:
            tl.spans.begin("epoch", 0, track="epochs", epoch=0)
        for p in self.used:
            self._try_start(p, 0, queue)

        fabric_hop = self.fabric.hop
        delays = self.fabric.link_delays
        busy = self.busy
        done = self.done
        vals = self.vals
        ext = self.ext
        raced = self._raced
        subscribers_get = self.subscribers.get
        try_start = self._try_start
        push = queue.push
        pop = queue.pop
        trace = self.trace
        n_pebbles = 0
        n_messages = 0
        n_cancelled = 0
        n_wins = 0
        n_losses = 0
        while queue:
            ev = pop()
            now = ev.time
            if ev.kind == _DONE:
                p, c, t = ev.data
                busy[p] = False
                done[p][c] = t
                n_pebbles += 1
                remaining -= 1
                if tl is not None:
                    tl.pebble(now, p, c, t)
                if trace is not None:
                    trace.record(now, p, c, t)
                if now > makespan:
                    makespan = now
                if now > sd[t]:
                    sd[t] = now
                subs = subscribers_get((p, c))
                if subs:
                    value = vals[p][c][t]
                    for dst in subs:
                        if ext[dst][c][0] >= t:
                            # The race for (c, t) is over: cancel at the
                            # source, never consuming a link slot.
                            n_cancelled += 1
                            if tl is not None:
                                tl.cancel(now)
                            continue
                        n_messages += 1
                        if tl is not None:
                            tl.message(now)
                        step = 1 if dst > p else -1
                        arr = fabric_hop(p, step, now)
                        if tl is not None:
                            tl.send(arr - delays[p if step == 1 else p - 1], arr)
                        push(arr, _MSG, (p + step, (dst,), c, t, value))
                try_start(p, now, queue)
            else:  # _MSG
                pos, targets, c, t, value = ev.data
                dst = targets[0]
                if pos == dst:
                    e = ext[pos][c]
                    w = e[0]
                    if t == w + 1:
                        e[1][t] = value
                        e[0] = t
                        if (pos, c) in raced:
                            n_wins += 1
                        if tl is not None:
                            tl.deliver(now)
                        try_start(pos, now, queue)
                    elif t <= w:
                        # A losing replica's answer arrived end-to-end:
                        # it must agree with the winner (the
                        # digest-consistency check of the race).
                        if e[1][t] != value:
                            raise AssertionError(
                                f"raced replicas disagree on ({c},{t}) at "
                                f"{pos}: winner {e[1][t]!r} vs loser {value!r}"
                            )
                        n_losses += 1
                    else:  # pragma: no cover - invariant guard
                        raise AssertionError(
                            f"out-of-order delivery of ({c},{t}) at {pos}: "
                            f"have {w}"
                        )
                else:
                    if ext[dst][c][0] >= t:
                        # Cancelled in flight: the destination is past
                        # this pebble, stop relaying it.
                        n_cancelled += 1
                        if tl is not None:
                            tl.cancel(now)
                    else:
                        step = 1 if dst > pos else -1
                        arr = fabric_hop(pos, step, now)
                        if tl is not None:
                            tl.send(
                                arr - delays[pos if step == 1 else pos - 1], arr
                            )
                        push(arr, _MSG, (pos + step, targets, c, t, value))

        stats.pebbles = n_pebbles
        stats.messages = n_messages
        self._cancelled = n_cancelled
        self._raced_wins = n_wins
        self._raced_losses = n_losses
        if remaining:
            raise self._deadlock(f"{remaining} pebbles never computed")
        if tl is not None:
            tl.spans.close_all(makespan)
        return self._finish(stats, makespan)

    # -- fault-aware engine ----------------------------------------------
    def _deadlock(self, message: str) -> SimulationDeadlock:
        """Build a :class:`SimulationDeadlock` with full diagnostics."""
        T = self.T
        pending = [
            (p, c, self.done[p][c])
            for p in self.used
            for c in self.done[p]
            if self.done[p][c] < T
        ]
        undelivered = [
            (p, c, e[0])
            for p in self.used
            for c, e in self.ext[p].items()
            if e[0] < T
        ]
        return SimulationDeadlock(
            message,
            pending=pending,
            undelivered=undelivered,
            fault_log=list(getattr(self, "_fault_log", ())),
        )

    def _watch_window(self) -> int:
        """No-progress watchdog period: generously longer than the
        slowest legitimate stream timeout, so it only fires on runs
        that are genuinely wedged (guaranteeing termination)."""
        base = self.policy.timeout(self.host.total_delay)
        return max(32, int(self.policy.watchdog_factor * base))

    def _init_streams(self, now: int, queue: EventQueue) -> None:
        """(Re)build the stall-detection records: one per subscription
        stream, each with a pending ``_CHECK`` event."""
        ep = self._epoch
        policy = self.policy
        self._streams = {}
        provider_of: dict[tuple[int, int], int] = {}
        if self._racing:
            # Raced columns have several providers; the stall record
            # watches the *primary* (nearest) one, deterministically —
            # dict overwrite order would pick an arbitrary replica.
            host = self.host
            providers: dict[tuple[int, int], list[int]] = {}
            for (q, c), subs in self.subscribers.items():
                for p in subs:
                    providers.setdefault((p, c), []).append(q)
            for (p, c), qs in providers.items():
                provider_of[(p, c)] = min(
                    qs, key=lambda q: (host.distance(p, q), abs(q - p), q)
                )
        else:
            for (q, c), subs in self.subscribers.items():
                for p in subs:
                    provider_of[(p, c)] = q
        for (p, c), q in sorted(provider_of.items()):
            # [provider, attempts, retries consumed, watermark at last check]
            self._streams[(p, c)] = [q, 0, 0, self.ext[p][c][0]]
            queue.push(now + self._stream_timeout(p, q), _CHECK, (p, c, ep))

    def _stream_timeout(self, p: int, q: int) -> int:
        """Stall deadline for the stream ``q -> p``: transit time plus
        the provider's production cadence (it round-robins ``load``
        columns, so one pebble of any single column every ~``load``
        steps is normal, not a stall)."""
        return self.policy.timeout(
            self.host.distance(p, q) + self.assignment.load()
        )

    def _default_reassign(self, dead: frozenset) -> Assignment:
        """Re-run OVERLAP's killing stages with the crashed positions
        forced dead; ``min_copies=2`` keeps the reduced assignment
        tolerant to the *next* crash."""
        from repro.core.assignment import assign_databases
        from repro.core.killing import kill_and_label

        killing = kill_and_label(self.host, forced_dead=set(dead))
        return assign_databases(killing, self.assignment.block, min_copies=2)

    def _reconfigure(self, now: int, queue: EventQueue, stats: SimStats) -> int:
        """Mid-run recovery after a database-holding node crashed.

        Re-runs killing/labelling on the survivors (via ``reassign``),
        checks every surviving guest column still has a live replica to
        clone from, then restarts the epoch: fresh databases, reduced
        guest ``1..m'``, execution resuming after ``restart_penalty``
        host steps.  Returns the new remaining-pebble count.
        """
        old_m = self.m
        reassign = self.reassign or self._default_reassign
        try:
            assignment = reassign(frozenset(self._dead))
        except ValueError as exc:
            raise self._deadlock(f"reconfiguration impossible: {exc}") from exc
        # Databases are data, not code: a column can only be re-hosted by
        # copying a surviving replica.  No live copy => unrecoverable.
        missing = [c for c in range(1, assignment.m + 1) if not self._holders.get(c)]
        if missing:
            raise self._deadlock(
                "no replica of a needed database interval survives: columns "
                f"{missing[:10]}{'...' if len(missing) > 10 else ''}"
            )
        stats.recoveries += 1
        if assignment.m < old_m:
            stats.columns_lost += old_m - assignment.m
        self._epoch += 1
        self.assignment = assignment
        self.m = assignment.m
        self._make_rank()
        self._build_state()
        # The new owners copy their intervals from the surviving
        # replicas *during* the restart window; they only become
        # holders at _RESUME (and the sources must stay alive until
        # then) — a correlated crash inside the window can still
        # destroy the last copy.
        self._pending_holders = assignment.owners()
        self._streams = {}
        penalty = self.policy.restart_penalty
        if penalty is None:
            penalty = self.host.total_delay
        self._fault_log.append(
            f"t={now} recovery: epoch {self._epoch}, m {old_m}->{self.m}, "
            f"resume at t={now + penalty}"
        )
        if self.trace is not None:
            self.trace.record_fault(
                now, "recovery", f"epoch {self._epoch}: m {old_m}->{self.m}"
            )
        if self.telemetry is not None:
            tl = self.telemetry
            tl.fault(now, "recovery", f"epoch {self._epoch}: m {old_m}->{self.m}")
            # Close the crashed epoch, mark the restart window, open the
            # next epoch where execution resumes.
            tl.spans.close_all(now)
            tl.spans.begin("recovery", now, track="epochs")
            tl.spans.end(now + penalty)
            tl.spans.begin(
                "epoch", now + penalty, track="epochs", epoch=self._epoch
            )
        queue.push(now + penalty, _RESUME, self._epoch)
        return sum(len(self.done[p]) for p in self.used) * self.T

    def _run_faulty(self) -> ExecResult:
        """Fault-aware main loop (only entered with a non-empty plan).

        The plain loop plus: epoch-tagged events (a mid-run
        reconfiguration invalidates everything in flight), scripted
        ``_CRASH`` events, per-stream stall detection/retry
        (``_CHECK``/``_REQ``), and a global no-progress watchdog that
        turns any wedged schedule into :class:`SimulationDeadlock`
        rather than an infinite loop.
        """
        stats = SimStats()
        queue = EventQueue()
        T = self.T
        host = self.host
        policy = self.policy
        tl = self.telemetry
        makespan = 0
        self._epoch = 0
        self._dead: set[int] = set()
        self._fault_log: list[str] = []
        self._progress = 0
        self._streams: dict[tuple[int, int], list] = {}
        stats.faults_injected = len(self.faults.events)
        # column -> live positions holding a replica (recovery sources)
        self._holders = {c: set(ps) for c, ps in self.assignment.owners().items()}
        remaining = sum(len(self.done[p]) for p in self.used) * T

        if T == 0 or remaining == 0:
            return self._finish(stats, 0)

        sd = self._step_done = [0] * (T + 1)
        racing = self._racing
        if tl is not None:
            tl.meta.setdefault("engine", "greedy")
            tl.spans.begin("epoch", 0, track="epochs", epoch=0)
        for pos, t_crash in sorted(self._fault_tables.crash_times.items()):
            queue.push(t_crash, _CRASH, pos)
        for p in self.used:
            self._try_start(p, 0, queue)
        self._init_streams(0, queue)
        queue.push(self._watch_window(), _WATCH, self._progress)

        hop = self.fabric.hop_faulty
        while queue:
            ev = queue.pop()
            now = ev.time
            kind = ev.kind
            if kind == _DONE:
                p, c, t, ep = ev.data
                if ep != self._epoch:
                    continue  # pre-reconfiguration work, discarded
                self.busy[p] = False
                self.done[p][c] = t
                stats.pebbles += 1
                remaining -= 1
                self._progress += 1
                if tl is not None:
                    tl.pebble(now, p, c, t)
                if self.trace is not None:
                    self.trace.record(now, p, c, t)
                if now > makespan:
                    makespan = now
                if now > sd[t]:
                    sd[t] = now
                subs = self.subscribers.get((p, c))
                if subs:
                    value = self.vals[p][c][t]
                    if self.multicast:
                        left = tuple(sorted((d for d in subs if d < p), reverse=True))
                        right = tuple(sorted(d for d in subs if d > p))
                        for targets in (left, right):
                            if not targets:
                                continue
                            stats.messages += 1
                            if tl is not None:
                                tl.message(now)
                            step = 1 if targets[0] > p else -1
                            arr = hop(p, step, now)
                            if arr is LOST:
                                stats.lost_messages += 1
                                if tl is not None:
                                    tl.send(now, now)
                                    tl.drop(now)
                            else:
                                if tl is not None:
                                    tl.send(now, arr)
                                queue.push(
                                    arr, _MSG, (p + step, targets, c, t, value, ep)
                                )
                    else:
                        for dst in subs:
                            if racing:
                                e = self.ext.get(dst, {}).get(c)
                                if e is not None and e[0] >= t:
                                    # Race over: cancel at the source.
                                    self._cancelled += 1
                                    if tl is not None:
                                        tl.cancel(now)
                                    continue
                            stats.messages += 1
                            if tl is not None:
                                tl.message(now)
                            step = 1 if dst > p else -1
                            arr = hop(p, step, now)
                            if arr is LOST:
                                stats.lost_messages += 1
                                if tl is not None:
                                    tl.send(now, now)
                                    tl.drop(now)
                            else:
                                if tl is not None:
                                    tl.send(now, arr)
                                queue.push(
                                    arr, _MSG, (p + step, (dst,), c, t, value, ep)
                                )
                if remaining == 0:
                    break
                self._try_start(p, now, queue)
            elif kind == _MSG:
                pos, targets, c, t, value, ep = ev.data
                if ep != self._epoch:
                    continue
                if pos == targets[0]:
                    e = self.ext.get(pos, {}).get(c)
                    # Unlike the plain loop, duplicates (t <= watermark,
                    # from replays or losing raced replicas) and gaps
                    # (t > watermark + 1, after a lost predecessor) are
                    # expected: apply only the next in-order pebble,
                    # ignore the rest.
                    if e is not None and t == e[0] + 1:
                        e[1][t] = value
                        e[0] = t
                        self._progress += 1
                        if racing and (pos, c) in self._raced:
                            self._raced_wins += 1
                        if tl is not None:
                            tl.deliver(now)
                        self._try_start(pos, now, queue)
                    elif racing and e is not None and t <= e[0]:
                        # A losing raced replica: digest-consistency
                        # check against the applied winner.
                        if e[1][t] != value:
                            raise AssertionError(
                                f"raced replicas disagree on ({c},{t}) at "
                                f"{pos}: winner {e[1][t]!r} vs loser "
                                f"{value!r}"
                            )
                        self._raced_losses += 1
                    targets = targets[1:]
                if targets:
                    if racing and ep == self._epoch:
                        e2 = self.ext.get(targets[0], {}).get(c)
                        if e2 is not None and e2[0] >= t:
                            # Cancelled in flight: stop relaying a
                            # pebble the destination is already past.
                            self._cancelled += 1
                            if tl is not None:
                                tl.cancel(now)
                            continue
                    step = 1 if targets[0] > pos else -1
                    arr = hop(pos, step, now)
                    if arr is LOST:
                        stats.lost_messages += 1
                        if tl is not None:
                            tl.send(now, now)
                            tl.drop(now)
                    else:
                        if tl is not None:
                            tl.send(now, arr)
                        queue.push(arr, _MSG, (pos + step, targets, c, t, value, ep))
            elif kind == _CRASH:
                pos = ev.data
                if pos in self._dead:
                    continue
                self._dead.add(pos)
                stats.crashed_nodes += 1
                self._fault_log.append(f"t={now} crash node {pos}")
                if self.trace is not None:
                    self.trace.record_fault(now, "crash", f"node {pos}")
                if tl is not None:
                    tl.fault(now, "crash", f"node {pos}")
                for holders in self._holders.values():
                    holders.discard(pos)
                if self.assignment.ranges[pos] is None:
                    continue  # relay-only node: no databases lost
                remaining = self._reconfigure(now, queue, stats)
            elif kind == _RESUME:
                if ev.data != self._epoch:
                    continue
                # Copies complete now: the sources must have survived
                # the whole restart window.
                missing = [
                    c for c in range(1, self.m + 1) if not self._holders.get(c)
                ]
                if missing:
                    raise self._deadlock(
                        "no replica of a needed database interval survived "
                        f"the restart window: columns {missing[:10]}"
                        f"{'...' if len(missing) > 10 else ''}"
                    )
                self._holders = {
                    c: set(ps) - self._dead
                    for c, ps in self._pending_holders.items()
                }
                for p in self.used:
                    self._try_start(p, now, queue)
                self._init_streams(now, queue)
            elif kind == _CHECK:
                p, c, ep = ev.data
                if ep != self._epoch or p in self._dead:
                    continue
                e = self.ext.get(p, {}).get(c)
                stream = self._streams.get((p, c))
                if e is None or stream is None or e[0] >= T:
                    continue  # stream gone or complete
                provider, attempts, retries, last_t = stream
                if e[0] > last_t:  # progressing normally
                    stream[3] = e[0]
                    queue.push(
                        now + self._stream_timeout(p, provider), _CHECK, (p, c, ep)
                    )
                    continue
                if retries >= policy.max_retries:
                    raise self._deadlock(
                        f"stream {provider}->{p} for column {c} stalled at "
                        f"t={e[0]} after {retries} retries"
                    )
                candidates = [
                    q
                    for q in self.assignment.owners().get(c, ())
                    if q not in self._dead
                ]
                if not candidates:
                    raise self._deadlock(
                        f"no live replica of column {c} left to retry from"
                    )
                candidates.sort(key=lambda q: (host.distance(p, q), abs(q - p), q))
                stream[1] = attempts + 1
                q2 = candidates[attempts % len(candidates)]
                if q2 != provider:
                    old = self.subscribers.get((provider, c))
                    if old and p in old:
                        old.remove(p)
                    self.subscribers.setdefault((q2, c), []).append(p)
                    stream[0] = q2
                self._fault_log.append(
                    f"t={now} retry: {p} re-requests column {c} (past t={e[0]}) "
                    f"from {q2}"
                )
                if self.trace is not None:
                    self.trace.record_fault(now, "retry", f"{p} col {c} from {q2}")
                if tl is not None:
                    tl.fault(now, "retry", f"{p} col {c} from {q2}")
                queue.push(now + max(1, host.distance(p, q2)), _REQ, (q2, p, c, e[0], ep))
                queue.push(now + self._stream_timeout(p, q2), _CHECK, (p, c, ep))
            elif kind == _REQ:
                q, p, c, from_t, ep = ev.data
                if ep != self._epoch or q in self._dead:
                    continue
                have = self.done.get(q, {}).get(c)
                if have is None or have <= from_t:
                    # Nothing undelivered at the provider: the stream was
                    # merely slow, not faulty — no retry budget consumed.
                    continue
                stream = self._streams.get((p, c))
                if stream is not None:
                    stream[2] += 1
                stats.retries += 1
                step = 1 if p > q else -1
                col_vals = self.vals[q][c]
                count = have - from_t
                if not self._fault_tables.has_link_faults():
                    # Whole-stream replay with no link faults scripted:
                    # every per-pebble fault check is a no-op, so the
                    # batched injection is exactly equivalent.
                    stats.messages += count
                    if tl is not None:
                        tl.message(now, count)
                    arrivals = self.fabric.hop_many(q, step, now, count)
                    if tl is not None:
                        for arr in arrivals:
                            tl.send(now, arr)
                    for t, arr in zip(range(from_t + 1, have + 1), arrivals):
                        queue.push(arr, _MSG, (q + step, (p,), c, t, col_vals[t], ep))
                else:
                    for t in range(from_t + 1, have + 1):
                        stats.messages += 1
                        if tl is not None:
                            tl.message(now)
                        arr = hop(q, step, now)
                        if arr is LOST:
                            stats.lost_messages += 1
                            if tl is not None:
                                tl.send(now, now)
                                tl.drop(now)
                        else:
                            if tl is not None:
                                tl.send(now, arr)
                            queue.push(arr, _MSG, (q + step, (p,), c, t, col_vals[t], ep))
            else:  # _WATCH
                if remaining and self._progress == ev.data:
                    raise self._deadlock(
                        "no progress for a full watchdog window"
                    )
                if remaining:
                    queue.push(now + self._watch_window(), _WATCH, self._progress)

        if remaining:
            raise self._deadlock(f"{remaining} pebbles never computed")
        if tl is not None:
            tl.spans.close_all(makespan)
        return self._finish(stats, makespan)

    def _finish(self, stats: SimStats, makespan: int) -> ExecResult:
        stats.makespan = makespan
        stats.pebble_hops = self.fabric.total_injections
        stats.procs_used = len(self.used)
        stats.redundant = stats.pebbles - self.m * self.T
        if self._step_done is not None:
            stats.record_step_latency(
                latencies_from_completions(self._step_done)
            )
        if self._racing:
            stats.extras["cancelled_messages"] = self._cancelled
            stats.extras["raced_wins"] = self._raced_wins
            stats.extras["raced_losses"] = self._raced_losses
        result = ExecResult(stats, self.T, self.assignment)
        for p in self.used:
            for c, col_vals in self.vals[p].items():
                result.value_digests[(p, c)] = fold_s(col_vals[1:])
                result.replicas[(p, c)] = self.dbs[p][c]
        return result


def run_assignment(
    host: HostArray,
    assignment: Assignment,
    program: Program,
    steps: int,
    bandwidth: int | None = None,
    engine: str = "auto",
    telemetry=None,
) -> ExecResult:
    """Convenience wrapper: resolve the tier and run the assignment.

    ``engine`` follows the usual ``auto``/``dense``/``greedy`` rule
    (fault-free runs resolve dense; results are bit-identical either
    way); ``telemetry`` attaches a
    :class:`~repro.telemetry.timeline.MetricsTimeline` on both tiers.
    """
    from repro.core.dense import build_executor

    return build_executor(
        engine, host, assignment, program, steps, bandwidth, telemetry=telemetry
    ).run()
