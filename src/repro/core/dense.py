"""Dense fault-free execution tier.

:class:`DenseExecutor` runs the same simulation semantics as
:class:`~repro.core.executor.GreedyExecutor` — same assignment, same
greedy ``(t, column)`` scheduling rule, same pipelined-link timing model
— but restructured for the common fault-free case, where the whole run
is a pure function of ``(host, assignment, steps, bandwidth)``:

* **values and timing are decoupled.**  In a fault-free run every
  replica of column ``c`` computes exactly the guest's pebble values,
  and no scheduling decision ever reads a pebble *value* (the greedy
  pick is by ``(t, c)``, link slots are assigned by injection time).
  The dense tier therefore computes all values/digests once with the
  row-vectorised guest reference (``m`` columns per numpy op instead of
  one scalar ``mix4`` per replica pebble) and runs a separate *timing
  skeleton* that moves only integers.
* **no event heap.**  Every event in the greedy engine is pushed at a
  strictly later time than the one being processed, so a flat
  time-indexed bucket list replayed in append order reproduces the
  heap's ``(time, seq)`` order exactly — O(1) per event, no tuple
  comparisons, no ``Event`` allocation.
* **array-shaped per-processor state.**  Each position keeps one flat
  *watermark array* ``W``: its own columns' completed rows first, then
  one slot per subscribed external column, then a virtual slot pinned
  to ``T`` for the array boundaries.  Column ``i``'s two lateral
  sources are precomputed indices ``sl[i]``/``sr[i]`` into ``W`` — the
  line adjacency and a relabelled-guest ``dep_map`` (rings) become the
  *same* ready check, ``W[sl[i]] >= W[i] <= W[sr[i]]``.  Wide positions
  (``k >= _VEC_MIN_COLS`` own columns) scan for the greedy pick with
  one vectorised numpy pass instead of a Python loop; ``argmin`` over
  the masked watermarks reproduces the scalar ``(t, column)``
  tie-breaking exactly.
* **flat link state.**  Each directed link is three integers (current
  slot, pebbles in that slot, injection count) in preallocated lists —
  the :class:`~repro.netsim.links.LinkPipe` slot rule inlined — and
  whole-stream sends to ``>= _VEC_MIN_SUBS`` subscribers assign their
  link slots in closed form (injection ``j`` lands in slot
  ``slot0 + (used0 + j) // bw``) instead of iterating the slot rule.

Because the skeleton replays the exact event order, the result is
**bit-identical** to the greedy engine: same makespan, same per-replica
pebble counts, same message/pebble-hop counters, same value digests and
database replicas.  ``tests/test_dense.py`` asserts this differentially
over the e1/e3/e5 parameter grids, over ring guests (``dep_map`` /
``col_label`` from :mod:`repro.core.ring`) and over graph hosts run
through the Fact-3 embedding (whose per-assignment route delays are
exactly the flat ``link_delays`` array of the embedded
:class:`~repro.machine.host.HostArray` — so a fault-free
``simulate_overlap_on_graph`` runs dense end to end).

The tier covers every fault-free topology: plain line arrays, ring
guests (relabelled via ``dep_map``/``col_label``), and graph hosts
after embedding.  Faulted runs take the segmented
:class:`~repro.core.dense_faults.FaultedDenseExecutor` subclass (dense
between fault boundaries, scalar handling only at fault/recovery
events); only tracing, multicast streams and scheduling jitter
(``tie_seed``) still take the greedy engine.  :func:`resolve_engine`
encodes that selection rule for the ``engine="auto"`` front-ends.
Telemetry is the one observability feature both tiers support: an
attached :class:`~repro.telemetry.timeline.MetricsTimeline` is fed from
the retained event buckets *after* the timed loop, so it never forces
the greedy fallback and never perturbs dense timing.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment
from repro.core.checkpoint import ExecutorCheckpoint
from repro.machine.database import Database
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.mixing import mix2_v
from repro.machine.programs import Program
from repro.netsim.stats import SimStats, latencies_from_completions

#: Engine names accepted by the simulation front-ends.
ENGINES = ("auto", "dense", "greedy")

_FOLD_SEED = 0x243F6A8885A308D3  # fold_s seed (see repro.machine.mixing)

#: Own-column count above which the ready scan switches to the numpy
#: path (one vectorised pass over the watermark array).  Below it the
#: scalar loop wins on constant factors.
_VEC_MIN_COLS = 32
#: Whole-stream subscriber count above which link slots are assigned in
#: closed form (numpy) instead of iterating the slot rule.
_VEC_MIN_SUBS = 16

# Bucket-event kinds.
_DONE = 0
_MSG = 1


def resolve_engine(
    engine: str,
    *,
    faults=None,
    policy=None,
    forced_dead=None,
    trace=None,
    multicast: bool = False,
    tie_seed=None,
    exec_policy=None,
) -> str:
    """Pick the execution tier for one simulation.

    ``auto`` selects ``dense`` exactly when the run needs none of the
    greedy-only machinery; explicitly asking for ``dense`` with an
    incompatible feature is an error (the caller asked for something
    the dense tier cannot honour), while ``auto`` falls back silently.

    Relabelled guests (``dep_map``/``col_label``, i.e. rings) are *not*
    a fallback reason: the dense skeleton resolves arbitrary dependency
    maps through the same watermark indices as the line adjacency.
    Neither are faults, recovery policies or forced-dead positions any
    more: faulted runs take the segmented
    :class:`~repro.core.dense_faults.FaultedDenseExecutor` tier (dense
    between fault boundaries, bit-identical to greedy), and
    ``forced_dead`` only shapes the assignment, which both tiers
    consume as-is.  The remaining fallback reasons are tracing,
    multicast streams, scheduling jitter (``tie_seed``) and
    redundant-issue racing (``exec_policy``): raced subscriptions make
    delivery order value-dependent on which replica wins, which the
    dense skeleton's single-stream watermarks cannot express.  The
    *stealing* half of an :class:`~repro.core.racing.ExecPolicy` never
    forces greedy — it is a pre-execution assignment rebalance both
    tiers consume as-is.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    if engine == "greedy":
        return "greedy"
    del faults, policy, forced_dead  # dense-capable since tier 3
    reasons = []
    if trace is not None:
        reasons.append("tracing")
    if multicast:
        reasons.append("multicast streams")
    if tie_seed is not None:
        reasons.append("scheduling jitter")
    if exec_policy is not None:
        from repro.core.racing import resolve_policy

        resolved = resolve_policy(exec_policy)
        if resolved.racing and resolved.fanout > 1:
            reasons.append("redundant-issue racing")
    if not reasons:
        return "dense"
    if engine == "dense":
        raise ValueError(
            f"engine='dense' cannot honour {', '.join(reasons)}; "
            "use engine='auto' (falls back) or engine='greedy'"
        )
    return "greedy"


class DenseExecutor:
    """Fault-free fast-path executor (see module docstring).

    Construction mirrors :class:`~repro.core.executor.GreedyExecutor`
    for the supported subset — including ``dep_map``/``col_label``
    relabelled guests — and :meth:`run` returns the same
    :class:`~repro.core.executor.ExecResult`.
    """

    __slots__ = (
        "host",
        "assignment",
        "program",
        "T",
        "bandwidth",
        "m",
        "used",
        "subscribers",
        "telemetry",
        "dep_map",
        "col_label",
        "_relabelled",
        "_ext_cols",
        "checkpoint_stride",
        "checkpoints",
        "first_top_t",
        "_resume_from",
    )

    def _expected_ckpt_kind(self) -> str:
        """Checkpoint ``kind`` this executor's run path would capture —
        and therefore the only kind it can restore.  The faulted
        subclass answers per its compiled plan (an effect-free plan
        falls through to the fault-free path)."""
        return "dense"

    def __init__(
        self,
        host: HostArray,
        assignment: Assignment,
        program: Program,
        steps: int,
        bandwidth: int | None = None,
        dep_map: dict[int, tuple[int, int]] | None = None,
        col_label=None,
        telemetry=None,
        checkpoint_stride: int | None = None,
    ) -> None:
        if assignment.n != host.n:
            raise ValueError(
                f"assignment is for {assignment.n} positions, host has {host.n}"
            )
        from repro.core.killing import validate_steps

        steps = validate_steps(steps)
        assignment.validate()
        self.host = host
        self.assignment = assignment
        self.program = program
        self.T = steps
        self.bandwidth = (
            host.default_bandwidth() if bandwidth is None else bandwidth
        )
        self.m = assignment.m
        self.used = assignment.used_positions()
        self.dep_map = dep_map
        self.col_label = col_label or (lambda c: c)
        self._relabelled = dep_map is not None or col_label is not None
        if dep_map is not None:
            for c in range(1, self.m + 1):
                if c not in dep_map:
                    raise ValueError(f"dep_map missing column {c}")
                for src in dep_map[c]:
                    if not 1 <= src <= self.m:
                        raise ValueError(
                            f"dep_map[{c}] source {src} outside 1..{self.m}"
                        )
        # Optional MetricsTimeline.  The dense loop never checks it: the
        # bucket lists *are* the full event history (append-only), so an
        # attached timeline is fed by a post-pass over them after the
        # timed simulation — zero overhead inside the loop either way.
        self.telemetry = telemetry
        if checkpoint_stride is not None and checkpoint_stride < 1:
            raise ValueError("checkpoint_stride must be >= 1")
        # Periodic full snapshots of the timing skeleton: one
        # ExecutorCheckpoint each time the loop clock crosses a stride
        # mark.  None = no captures (zero overhead on the hot path).
        self.checkpoint_stride = checkpoint_stride
        self.checkpoints: list = []
        # First host step at which any position's *own* watermark
        # reached T — the divergence bound for horizon-extension deltas
        # (no scheduling decision can consult "watermark == T?" before
        # it).  Filled by the timing loop.
        self.first_top_t: int | None = None
        self._resume_from = None
        self._build_subscriptions()

    def restore(self, checkpoint) -> "DenseExecutor":
        """Arm this (freshly constructed) executor to resume mid-run.

        The next :meth:`run` reconstitutes the snapshot's watermark
        arrays, link-slot state and counters, seeds the event buckets
        with the pending events, and replays only the suffix — finishing
        bit-identically to an uninterrupted run, provided the
        checkpoint's prefix is valid for this executor's config (the
        caller's contract; :mod:`repro.delta` derives it from
        blast-radius rules).  Horizon *extensions* are supported when
        the snapshot predates ``first_top``; shrinks are not.
        Returns ``self`` for chaining.
        """
        expected = self._expected_ckpt_kind()
        if checkpoint.kind != expected:
            # Signalled as DeltaUnsupported (not ValueError): a fault
            # edit can legitimately flip a config between the faulted
            # and effect-free paths, whose snapshots are incompatible —
            # the delta layer should fall back to a full recompute.
            from repro.delta import DeltaUnsupported

            raise DeltaUnsupported(
                f"cannot restore a {checkpoint.kind!r} checkpoint into "
                f"{type(self).__name__} (expects {expected!r})"
            )
        if checkpoint.steps < 1:
            raise ValueError("checkpoint predates resume support (steps=0)")
        if checkpoint.steps > self.T:
            raise ValueError(
                f"cannot restore a T={checkpoint.steps} checkpoint into a "
                f"shorter T={self.T} run"
            )
        if checkpoint.steps != self.T and checkpoint.first_top is not None:
            raise ValueError(
                "checkpoint is past the horizon-extension divergence point "
                f"(first_top={checkpoint.first_top})"
            )
        if self.telemetry is not None and checkpoint.telemetry is None:
            raise ValueError(
                "cannot resume with telemetry attached: the checkpoint was "
                "captured without a timeline snapshot"
            )
        self._resume_from = checkpoint
        return self

    def _deps(self, c: int) -> tuple[int, int]:
        """Lateral source columns of ``c`` (left-like, right-like)."""
        if self.dep_map is None:
            return (c - 1, c + 1)
        return self.dep_map[c]

    def _build_subscriptions(self) -> None:
        """Same nearest-owner subscription rule (and list order) as
        ``GreedyExecutor._build_state``."""
        m = self.m
        host = self.host
        owners = self.assignment.owners()
        subscribers: dict[tuple[int, int], list[int]] = {}
        ext_cols: dict[int, list[int]] = {}
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            needed = sorted(
                {
                    src
                    for c in range(lo, hi + 1)
                    for src in self._deps(c)
                    if 1 <= src <= m and not (lo <= src <= hi)
                }
            )
            ext_cols[p] = needed
            for c in needed:
                candidates = owners[c]
                q = min(
                    candidates,
                    key=lambda q: (host.distance(p, q), abs(q - p), q),
                )
                subscribers.setdefault((q, c), []).append(p)
        self.subscribers = subscribers
        self._ext_cols = ext_cols

    # -- values (computed once, vectorised) -----------------------------
    def _guest_values(self):
        """Per-column value folds, update digests and final states.

        Returns ``(value_folds, update_digests, final_states)`` — each a
        length-``m`` sequence indexed by column-1.  Every fault-free
        replica reproduces exactly these values (that is what
        :mod:`repro.core.verify` checks), so one reference-style pass
        serves all replicas.
        """
        if self._relabelled:
            return self._guest_values_relabelled()
        m, T, prog = self.m, self.T, self.program
        guest = GuestArray(m, prog)
        if prog.supports_vector:
            grid = guest.boundary_grid(T)
            states = prog.init_state_vec(m)
            # Database digest chain: seed tag_s(0xDB, col) then one
            # mix2 per update — vectorised across columns per row.
            from repro.machine.guest import _DB_SEED

            db_digests = mix2_v(
                np.uint64(_DB_SEED), np.arange(1, m + 1, dtype=np.uint64)
            )
            folds = np.full(m, np.uint64(_FOLD_SEED), dtype=np.uint64)
            for t in range(1, T + 1):
                prev = grid[t - 1]
                values, updates = prog.compute_row_vec(
                    t, states, prev[0:m], prev[1 : m + 1], prev[2 : m + 2]
                )
                grid[t, 1 : m + 1] = values
                states = prog.apply_vec(states, updates)
                db_digests = mix2_v(db_digests, updates)
                folds = mix2_v(folds, values)
            return (
                [int(v) for v in folds],
                [int(d) for d in db_digests],
                [int(s) for s in np.asarray(states, dtype=np.uint64)],
            )
        return self._guest_values_scalar()

    def _guest_values_relabelled(self):
        """The relabelled-guest (``dep_map``/``col_label``) value pass.

        Column ``c`` runs program identity ``col_label(c)`` and reads
        its lateral sources through ``dep_map`` — ring simulations wire
        fold-embedded neighbours this way.  No program's ``compute``
        depends on the column index except through its per-column
        initial state, so the recurrence vectorises with fancy-indexed
        gathers and label-permuted initial states whenever the labels
        stay inside ``1..m`` (rings: a permutation).
        """
        m, T, prog = self.m, self.T, self.program
        label = self.col_label
        labels = [label(c) for c in range(1, m + 1)]
        dep_map = self.dep_map
        if (
            prog.supports_vector
            and dep_map is not None
            and all(1 <= lb <= m for lb in labels)
        ):
            from repro.machine.guest import _DB_SEED
            from repro.machine.pebbles import initial_value

            lab_idx = np.array(labels, dtype=np.intp) - 1
            lab_u = np.array(labels, dtype=np.uint64)
            dep_l = np.array(
                [dep_map[c][0] - 1 for c in range(1, m + 1)], dtype=np.intp
            )
            dep_r = np.array(
                [dep_map[c][1] - 1 for c in range(1, m + 1)], dtype=np.intp
            )
            states = prog.init_state_vec(m)[lab_idx]
            db_digests = mix2_v(np.uint64(_DB_SEED), lab_u)
            folds = np.full(m, np.uint64(_FOLD_SEED), dtype=np.uint64)
            prev = np.array([initial_value(lb) for lb in labels], dtype=np.uint64)
            for t in range(1, T + 1):
                values, updates = prog.compute_row_vec(
                    t, states, prev[dep_l], prev, prev[dep_r]
                )
                states = prog.apply_vec(states, updates)
                db_digests = mix2_v(db_digests, updates)
                folds = mix2_v(folds, values)
                prev = values
            return (
                [int(v) for v in folds],
                [int(d) for d in db_digests],
                [int(s) for s in np.asarray(states, dtype=np.uint64)],
            )
        return self._guest_values_scalar()

    def _guest_values_scalar(self):
        """Scalar fallback (structured database state or labels outside
        ``1..m``): one direct guest execution — still one compute per
        pebble total, instead of one per *replica* pebble."""
        m, T, prog = self.m, self.T, self.program
        from repro.machine.mixing import mix2_s
        from repro.machine.pebbles import (
            BOUNDARY_LEFT,
            BOUNDARY_RIGHT,
            boundary_value,
            initial_value,
        )

        label = self.col_label
        labels = [label(c) for c in range(1, m + 1)]
        deps = self._deps
        dbs = [Database(lb, prog.init_state(lb)) for lb in labels]
        row = [initial_value(lb) for lb in labels]
        folds = [_FOLD_SEED] * m
        for t in range(1, T + 1):
            left_b = boundary_value(BOUNDARY_LEFT, t - 1)
            right_b = boundary_value(BOUNDARY_RIGHT, t - 1)
            new_row = [0] * m
            pending = [0] * m
            for i in range(m):
                src_l, src_r = deps(i + 1)
                left = row[src_l - 1] if 1 <= src_l <= m else (
                    left_b if src_l < 1 else right_b
                )
                right = row[src_r - 1] if 1 <= src_r <= m else (
                    left_b if src_r < 1 else right_b
                )
                value, update = prog.compute(
                    labels[i], t, dbs[i].state, left, row[i], right
                )
                new_row[i] = value
                pending[i] = update
                folds[i] = mix2_s(folds[i], value)
            for i in range(m):
                dbs[i].apply(prog, pending[i])
            row = new_row
        return (
            folds,
            [db.digest for db in dbs],
            [db.state for db in dbs],
        )

    # -- timing skeleton -------------------------------------------------
    def _simulate_timing(self, stats: SimStats) -> int:
        """Replay the greedy event order with flat integer state.

        Returns the makespan; fills ``stats.pebbles``/``messages`` and
        leaves the total link-injection count in ``stats.pebble_hops``.
        """
        T = self.T
        m = self.m
        n = self.host.n
        bw = self.bandwidth
        delays = self.host.link_delays
        dep_map = self.dep_map

        # Per-position watermark arrays.  W_of[p] lays out: the k own
        # columns' completed rows, then one watermark per subscribed
        # external column (sorted), then a virtual slot pinned to T for
        # the array boundaries.  sl_of/sr_of[p][i] index the two lateral
        # sources of own column i into that same array, so line
        # adjacency and dep_map wiring share one ready check.
        line = dep_map is None
        lo_of = [0] * n
        k_of = [0] * n
        W_of: list = [None] * n
        sl_of: list = [None] * n
        sr_of: list = [None] * n
        # Line fast path: watermark indices of the left/right external
        # columns (or the virtual slot), so edge columns skip the
        # per-column source tables entirely.
        el_of = [0] * n
        er_of = [0] * n
        ext_idx: list = [None] * n
        vec = [False] * n
        busy = [False] * n
        remaining = 0
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            k = hi - lo + 1
            lo_of[p] = lo
            k_of[p] = k
            ecols = self._ext_cols[p]
            e = len(ecols)
            idx = {c: k + j for j, c in enumerate(ecols)}
            ext_idx[p] = idx
            virt = k + e
            w = [0] * (k + e) + [T]
            sl = [0] * k
            sr = [0] * k
            for i in range(k):
                c = lo + i
                a, b = dep_map[c] if dep_map is not None else (c - 1, c + 1)
                sl[i] = a - lo if lo <= a <= hi else idx.get(a, virt)
                sr[i] = b - lo if lo <= b <= hi else idx.get(b, virt)
            el_of[p] = idx.get(lo - 1, virt)
            er_of[p] = idx.get(hi + 1, virt)
            if k >= _VEC_MIN_COLS:
                w = np.array(w, dtype=np.int64)
                sl = np.asarray(sl, dtype=np.intp)
                sr = np.asarray(sr, dtype=np.intp)
                vec[p] = True
            W_of[p] = w
            sl_of[p] = sl
            sr_of[p] = sr
            remaining += k * T

        if T == 0 or remaining == 0:
            return 0

        # Directed-link occupancy: the LinkPipe slot rule as three flat
        # integer lists per direction (busy-slot time, pebbles in that
        # slot, lifetime injections).  Link j joins positions j, j+1.
        n_links = n - 1
        r_slot = [-1] * n_links
        r_used = [0] * n_links
        l_slot = [-1] * n_links
        l_used = [0] * n_links
        injections = 0

        subscribers = {k_: tuple(v) for k_, v in self.subscribers.items()}
        subscribers_get = subscribers.get

        # Time-bucketed event lists.  Every push is strictly in the
        # future (computes finish at now+1, link delays are >= 1), so a
        # forward sweep in append order replays the heap's (time, seq)
        # order exactly.
        buckets: list[list[tuple]] = [[] for _ in range(T + 2)]
        pending_events = 0
        makespan = 0
        n_pebbles = 0
        n_messages = 0
        # Row-completion times (same convention as the greedy loops):
        # step_done[t] = host step the last pebble of guest row t
        # finished.  Consecutive diffs are the per-step latencies.
        step_done = [0] * (T + 1)

        def try_start(p: int, now: int) -> None:
            nonlocal pending_events
            if busy[p]:
                return
            w = W_of[p]
            if vec[p]:
                # Batched ready scan: mask the non-ready columns to T
                # (every ready column's watermark is < T), take the
                # first argmin.  First-min semantics == the scalar
                # loop's (smallest t, then smallest column) pick.
                own = w[: k_of[p]]
                ready = (
                    (own < T)
                    & (w[sl_of[p]] >= own)
                    & (w[sr_of[p]] >= own)
                )
                tm = np.where(ready, own, T)
                best_i = int(tm.argmin())
                wt = int(tm[best_i])
                if wt >= T:
                    return
                best_t = wt + 1
            elif line:
                # Line adjacency: own column i depends on own i-1/i+1
                # except at the range edges, which read the external
                # (or virtual) watermark slots directly.
                k1 = k_of[p] - 1
                eli = el_of[p]
                eri = er_of[p]
                best_t = T + 1
                best_i = -1
                for i in range(k1 + 1):
                    wt = w[i]
                    t = wt + 1
                    if t > T or t >= best_t:
                        continue
                    if i > 0:
                        if w[i - 1] < wt:
                            continue
                    elif w[eli] < wt:
                        continue
                    if i < k1:
                        if w[i + 1] < wt:
                            continue
                    elif w[eri] < wt:
                        continue
                    best_t = t
                    best_i = i
                if best_i < 0:
                    return
            else:
                sl = sl_of[p]
                sr = sr_of[p]
                best_t = T + 1
                best_i = -1
                for i in range(k_of[p]):
                    wt = w[i]
                    t = wt + 1
                    if t > T or t >= best_t:
                        continue
                    if w[sl[i]] < wt or w[sr[i]] < wt:
                        continue
                    best_t = t
                    best_i = i
                if best_i < 0:
                    return
            busy[p] = True
            arr = now + 1
            if arr >= len(buckets):
                buckets.extend([] for _ in range(arr - len(buckets) + 1))
            buckets[arr].append((_DONE, p, best_i, best_t))
            pending_events += 1

        ck = self._resume_from
        first_top: int | None = None
        if ck is None:
            for p in self.used:
                try_start(p, 0)
            now = 0
        else:
            # Resume: overwrite the freshly built arrays with the
            # checkpointed prefix state and seed the buckets with the
            # pending events, preserving their captured append order.
            for p in self.used:
                saved = ck.watermarks[p]
                w = W_of[p]
                # The last slot is the virtual boundary watermark,
                # pinned to *this* run's T (horizon extensions re-pin).
                for i in range(len(saved) - 1):
                    w[i] = saved[i]
                busy[p] = ck.busy[p]
            rs, ru, ls, lu = ck.link_state
            r_slot[:] = rs
            r_used[:] = ru
            l_slot[:] = ls
            l_used[:] = lu
            injections = ck.injections
            n_pebbles = ck.pebbles
            n_messages = ck.messages
            makespan = ck.makespan
            first_top = ck.first_top
            if ck.step_done is None:
                # A pre-step-latency checkpoint cannot finish
                # bit-identically (the resumed run's distribution would
                # miss the prefix) — fall back to a full recompute.
                from repro.delta import DeltaUnsupported

                raise DeltaUnsupported(
                    "checkpoint predates step-latency capture "
                    "(no step_done)"
                )
            for t, v in enumerate(ck.step_done):
                step_done[t] = v
            # Re-base pending work onto this run's horizon: every used
            # column gained (T - ck.steps) rows relative to the capture.
            remaining = ck.remaining + sum(k_of[p] for p in self.used) * (
                T - ck.steps
            )
            for t, evs in ck.events:
                if t >= len(buckets):
                    buckets.extend([] for _ in range(t - len(buckets) + 1))
                buckets[t].extend(evs)
                pending_events += len(evs)
            now = ck.time

        stride = self.checkpoint_stride
        next_mark = stride * (now // stride + 1) if stride is not None else None

        def capture(at: int) -> None:
            """Snapshot the full loop state with processed times < at."""
            events = []
            for t in range(at, len(buckets)):
                evs = buckets[t]
                if evs:
                    events.append((t, list(evs)))
            tl_snap = None
            if self.telemetry is not None:
                tl_snap = self._telemetry_prefix(
                    buckets,
                    at,
                    base_snapshot=None if ck is None else ck.telemetry,
                    start=0 if ck is None else ck.time,
                )
            self.checkpoints.append(
                ExecutorCheckpoint(
                    time=at,
                    epoch=0,
                    label="stride",
                    remaining=remaining,
                    makespan=makespan,
                    progress=n_pebbles,
                    pebbles=n_pebbles,
                    messages=n_messages,
                    injections=injections,
                    lost_messages=0,
                    retries=0,
                    watermarks={
                        p: [int(x) for x in W_of[p]] for p in self.used
                    },
                    busy={p: bool(busy[p]) for p in self.used},
                    link_state=[
                        list(r_slot), list(r_used), list(l_slot), list(l_used)
                    ],
                    steps=T,
                    kind="dense",
                    first_top=first_top,
                    events=events,
                    telemetry=tl_snap,
                    step_done=list(step_done),
                )
            )

        while pending_events:
            if next_mark is not None and now >= next_mark:
                capture(now)
                next_mark = stride * (now // stride + 1)
            bucket = buckets[now]
            if not bucket:
                now += 1
                continue
            for ev in bucket:
                if ev[0] == _DONE:
                    _, p, i, t = ev
                    busy[p] = False
                    W_of[p][i] = t
                    n_pebbles += 1
                    remaining -= 1
                    if now > makespan:
                        makespan = now
                    if now > step_done[t]:
                        step_done[t] = now
                    if t == T and first_top is None:
                        first_top = now
                    c = lo_of[p] + i
                    subs = subscribers_get((p, c))
                    if subs:
                        if len(subs) == 1:
                            dst = subs[0]
                            n_messages += 1
                            if dst > p:
                                j = p
                                slot, used_ = r_slot[j], r_used[j]
                                if now > slot:
                                    slot, used_ = now, 1
                                elif used_ < bw:
                                    used_ += 1
                                else:
                                    slot, used_ = slot + 1, 1
                                r_slot[j], r_used[j] = slot, used_
                                injections += 1
                                arr = slot + delays[j]
                                if arr >= len(buckets):
                                    buckets.extend(
                                        [] for _ in range(arr - len(buckets) + 1)
                                    )
                                buckets[arr].append((_MSG, p + 1, dst, c, t))
                            else:
                                j = p - 1
                                slot, used_ = l_slot[j], l_used[j]
                                if now > slot:
                                    slot, used_ = now, 1
                                elif used_ < bw:
                                    used_ += 1
                                else:
                                    slot, used_ = slot + 1, 1
                                l_slot[j], l_used[j] = slot, used_
                                injections += 1
                                arr = slot + delays[j]
                                if arr >= len(buckets):
                                    buckets.extend(
                                        [] for _ in range(arr - len(buckets) + 1)
                                    )
                                buckets[arr].append((_MSG, p - 1, dst, c, t))
                            pending_events += 1
                        else:
                            # Whole-stream send: batch-assign slots per
                            # direction (right first, then left — the
                            # greedy engine's hop_many order), then push
                            # per subscriber in list order.  Wide
                            # streams take the closed-form slot math:
                            # injection j lands in slot0+(used0+j)//bw.
                            n_right = 0
                            for dst in subs:
                                if dst > p:
                                    n_right += 1
                            right_arr: list[int] = []
                            if n_right:
                                j = p
                                slot, used_ = r_slot[j], r_used[j]
                                if now > slot:
                                    slot, used_ = now, 0
                                d = delays[j]
                                if n_right >= _VEC_MIN_SUBS:
                                    base = slot + d
                                    right_arr = (
                                        base
                                        + np.arange(used_, used_ + n_right) // bw
                                    ).tolist()
                                    occ = used_ + n_right - 1
                                    slot, used_ = slot + occ // bw, occ % bw + 1
                                else:
                                    for _k in range(n_right):
                                        if used_ < bw:
                                            used_ += 1
                                        else:
                                            slot, used_ = slot + 1, 1
                                        right_arr.append(slot + d)
                                r_slot[j], r_used[j] = slot, used_
                                injections += n_right
                            n_left = len(subs) - n_right
                            left_arr: list[int] = []
                            if n_left:
                                j = p - 1
                                slot, used_ = l_slot[j], l_used[j]
                                if now > slot:
                                    slot, used_ = now, 0
                                d = delays[j]
                                if n_left >= _VEC_MIN_SUBS:
                                    base = slot + d
                                    left_arr = (
                                        base
                                        + np.arange(used_, used_ + n_left) // bw
                                    ).tolist()
                                    occ = used_ + n_left - 1
                                    slot, used_ = slot + occ // bw, occ % bw + 1
                                else:
                                    for _k in range(n_left):
                                        if used_ < bw:
                                            used_ += 1
                                        else:
                                            slot, used_ = slot + 1, 1
                                        left_arr.append(slot + d)
                                l_slot[j], l_used[j] = slot, used_
                                injections += n_left
                            n_messages += len(subs)
                            ri = li = 0
                            top = len(buckets)
                            for dst in subs:
                                if dst > p:
                                    arr = right_arr[ri]
                                    ri += 1
                                    item = (_MSG, p + 1, dst, c, t)
                                else:
                                    arr = left_arr[li]
                                    li += 1
                                    item = (_MSG, p - 1, dst, c, t)
                                if arr >= top:
                                    buckets.extend(
                                        [] for _ in range(arr - top + 1)
                                    )
                                    top = len(buckets)
                                buckets[arr].append(item)
                            pending_events += len(subs)
                    try_start(p, now)
                else:  # _MSG
                    _, pos, dst, c, t = ev
                    if pos == dst:
                        w = W_of[pos]
                        wi = ext_idx[pos][c]
                        if t != w[wi] + 1:  # pragma: no cover
                            raise AssertionError(
                                f"out-of-order delivery of ({c},{t}) at "
                                f"{pos}: have {w[wi]}"
                            )
                        w[wi] = t
                        try_start(pos, now)
                    else:
                        # Relay one hop toward the target.
                        if dst > pos:
                            j = pos
                            slot, used_ = r_slot[j], r_used[j]
                            if now > slot:
                                slot, used_ = now, 1
                            elif used_ < bw:
                                used_ += 1
                            else:
                                slot, used_ = slot + 1, 1
                            r_slot[j], r_used[j] = slot, used_
                            injections += 1
                            arr = slot + delays[j]
                            nxt = pos + 1
                        else:
                            j = pos - 1
                            slot, used_ = l_slot[j], l_used[j]
                            if now > slot:
                                slot, used_ = now, 1
                            elif used_ < bw:
                                used_ += 1
                            else:
                                slot, used_ = slot + 1, 1
                            l_slot[j], l_used[j] = slot, used_
                            injections += 1
                            arr = slot + delays[j]
                            nxt = pos - 1
                        if arr >= len(buckets):
                            buckets.extend(
                                [] for _ in range(arr - len(buckets) + 1)
                            )
                        buckets[arr].append((_MSG, nxt, dst, c, t))
                        pending_events += 1
            pending_events -= len(bucket)
            now += 1

        if remaining:  # pragma: no cover - the skeleton cannot wedge
            raise RuntimeError(f"{remaining} pebbles never computed")
        self.first_top_t = first_top
        stats.pebbles = n_pebbles
        stats.messages = n_messages
        stats.pebble_hops = injections
        stats.record_step_latency(latencies_from_completions(step_done))
        if self.telemetry is not None:
            self._feed_telemetry(
                buckets,
                makespan,
                start=0 if ck is None else ck.time,
                snapshot=None if ck is None else ck.telemetry,
            )
        return makespan

    def _feed_telemetry(
        self,
        buckets: list[list[tuple]],
        makespan: int,
        start: int = 0,
        snapshot: dict | None = None,
    ) -> None:
        """Replay the retained event buckets into the attached timeline.

        Runs *after* the timed loop (buckets are append-only, so they
        still hold the complete event history).  On a resumed run the
        prefix history comes from the checkpoint's timeline
        ``snapshot`` and only buckets from ``start`` on are replayed
        (buckets before the resume point are empty in that run).
        """
        tl = self.telemetry
        if snapshot is not None:
            tl.load_snapshot(snapshot)
        tl.meta.setdefault("engine", "dense")
        if snapshot is None:
            tl.spans.begin("epoch", 0, track="epochs", epoch=0)
        self._replay_buckets(tl, buckets, start)
        tl.spans.close_all(makespan)

    def _replay_buckets(
        self,
        tl,
        buckets: list[list[tuple]],
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        """Feed bucket events in ``[start, stop)`` into timeline ``tl``.

        Produces exactly the per-step counters the instrumented greedy
        loop records: a ``_DONE`` at step ``now`` is one pebble
        completion (and one message launch per subscriber of that
        column); a ``_MSG`` at step ``now`` is one link arrival whose
        injection slot was ``now - delay`` of the link it arrived on
        (dense computes arrivals as ``slot + delay``, so the
        subtraction is exact).
        """
        delays = self.host.link_delays
        subscribers_get = self.subscribers.get
        # A _MSG event carries its final target, not its travel
        # direction: when it *reaches* the target the arriving link is
        # recovered from which side the providing owner sits on.
        provider_of: dict[tuple[int, int], int] = {}
        for (q, c), subs in self.subscribers.items():
            for p in subs:
                provider_of[(p, c)] = q
        lo_of = {p: self.assignment.ranges[p][0] for p in self.used}
        pebble = tl.pebble
        send = tl.send
        message = tl.message
        deliver = tl.deliver
        hi = len(buckets) if stop is None else min(stop, len(buckets))
        for now in range(start, hi):
            for ev in buckets[now]:
                if ev[0] == _DONE:
                    _, p, i, t = ev
                    c = lo_of[p] + i
                    pebble(now, p, c, t)
                    subs = subscribers_get((p, c))
                    if subs:
                        message(now, len(subs))
                else:
                    _, pos, dst, c, t = ev
                    if pos == dst:
                        rightward = pos > provider_of[(pos, c)]
                        deliver(now)
                    else:
                        rightward = dst > pos
                    j = pos - 1 if rightward else pos
                    send(now - delays[j], now)

    def _telemetry_prefix(
        self,
        buckets: list[list[tuple]],
        stop: int,
        base_snapshot: dict | None = None,
        start: int = 0,
    ) -> dict:
        """Timeline snapshot of the run's history strictly before
        ``stop`` (checkpoint capture helper).

        For a resumed run the history before this run's own buckets is
        the ``base_snapshot`` it was restored from; ``start`` is its
        resume point.
        """
        from repro.telemetry.timeline import MetricsTimeline

        tmp = MetricsTimeline()
        if base_snapshot is not None:
            tmp.load_snapshot(base_snapshot)
        else:
            tmp.spans.begin("epoch", 0, track="epochs", epoch=0)
        tmp.meta.setdefault("engine", "dense")
        self._replay_buckets(tmp, buckets, start, stop)
        return tmp.snapshot()

    def run(self):
        """Execute; returns an :class:`~repro.core.executor.ExecResult`
        bit-identical to the greedy engine's."""
        from repro.core.executor import ExecResult

        stats = SimStats()
        makespan = self._simulate_timing(stats)
        stats.makespan = makespan
        stats.procs_used = len(self.used)
        stats.redundant = stats.pebbles - self.m * self.T
        result = ExecResult(stats, self.T, self.assignment)
        folds, db_digests, states = self._guest_values()
        T = self.T
        label = self.col_label
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            for c in range(lo, hi + 1):
                result.value_digests[(p, c)] = folds[c - 1]
                state = states[c - 1]
                # Programs apply() functionally, but keep replicas from
                # aliasing one container object all the same.
                if isinstance(state, dict):
                    state = dict(state)
                elif isinstance(state, list):
                    state = list(state)
                result.replicas[(p, c)] = Database(
                    label(c), state, T, db_digests[c - 1]
                )
        return result


def build_executor(
    engine: str,
    host: HostArray,
    assignment: Assignment,
    program: Program,
    steps: int,
    bandwidth: int | None = None,
    **greedy_kwargs,
):
    """Resolve the tier and construct the matching executor.

    ``greedy_kwargs`` are the feature knobs (``faults``, ``policy``,
    ``trace``, ...).  Tracing, multicast and ``tie_seed`` force (or,
    under ``engine='auto'``, silently select) the greedy engine.
    ``telemetry``, ``dep_map``/``col_label`` and fault plans do not:
    both tiers support an attached
    :class:`~repro.telemetry.timeline.MetricsTimeline` and relabelled
    (ring) guests, and a non-empty ``faults`` plan on the dense tier
    constructs the segmented
    :class:`~repro.core.dense_faults.FaultedDenseExecutor`.
    """
    from repro.core.executor import GreedyExecutor

    resolved = resolve_engine(
        engine,
        faults=greedy_kwargs.get("faults"),
        policy=greedy_kwargs.get("policy"),
        forced_dead=greedy_kwargs.get("forced_dead"),
        trace=greedy_kwargs.get("trace"),
        multicast=greedy_kwargs.get("multicast", False),
        tie_seed=greedy_kwargs.get("tie_seed"),
        exec_policy=greedy_kwargs.get("exec_policy"),
    )
    if resolved == "dense":
        greedy_kwargs.pop("exec_policy", None)  # stealing already applied
        faults = greedy_kwargs.get("faults")
        if faults is not None and not faults.is_empty:
            from repro.core.dense_faults import FaultedDenseExecutor

            return FaultedDenseExecutor(
                host,
                assignment,
                program,
                steps,
                bandwidth,
                dep_map=greedy_kwargs.get("dep_map"),
                col_label=greedy_kwargs.get("col_label"),
                telemetry=greedy_kwargs.get("telemetry"),
                faults=faults,
                policy=greedy_kwargs.get("policy"),
                reassign=greedy_kwargs.get("reassign"),
            )
        return DenseExecutor(
            host,
            assignment,
            program,
            steps,
            bandwidth,
            dep_map=greedy_kwargs.get("dep_map"),
            col_label=greedy_kwargs.get("col_label"),
            telemetry=greedy_kwargs.get("telemetry"),
        )
    greedy_kwargs.pop("forced_dead", None)
    return GreedyExecutor(
        host, assignment, program, steps, bandwidth, **greedy_kwargs
    )
