"""Dense tier 3: segmented vectorised execution under faults.

:class:`FaultedDenseExecutor` extends the fault-free dense skeleton of
:class:`~repro.core.dense.DenseExecutor` to runs with a non-empty
:class:`~repro.netsim.faults.FaultPlan`.  The compiled
:class:`~repro.netsim.faults.FaultTables` give a sorted timeline of
fault **boundaries** (crash times, outage/jitter window edges, drop arm
times — :meth:`FaultTables.boundaries`); between consecutive boundaries
the fault environment is time-invariant, so the run is replayed with the
same machinery as the fault-free tier — watermark arrays, time-bucketed
event lists, the inlined flat-integer link-slot rule, values decoupled
from timing — while the scalar fault handling (crashes, stall
detection/retry, epoch-restart recovery) runs only at the fault and
recovery events themselves.  At every boundary crossed (and at each
epoch resume) the executor snapshots its complete integer state as a
reusable :class:`ExecutorCheckpoint` — the same snapshot the roadmap's
incremental re-simulation needs.

Bit-identity with the greedy engine is preserved the same way the
fault-free tier preserves it: the bucket sweep replays the exact
``(time, seq)`` event order of :meth:`GreedyExecutor._run_faulty`,
including the per-destination injection order of faulty sends, the
one-shot drop consumption order, the per-directed-link monotone arrival
clamp, retry re-subscription order, and recovery epoch restarts.
Telemetry is fed *inline* (unlike the fault-free post-pass): the faulty
greedy loop records ready-time injections and in-flight drops that
cannot be reconstructed from the surviving buckets alone, so the
faulted tier mirrors its instrumentation call-for-call instead.

Scheduling decisions never read pebble *values* — fault timing included
— so values are still computed once, vectorised, from the final epoch's
guest (an epoch restart re-derives every database from scratch, hence
the final epoch alone determines all digests and replicas).

``tests/test_dense_faults.py`` asserts bit-identity (stats, digests,
replicas, telemetry timelines, deadlock diagnostics) differentially
against the greedy engine over faulted r1/chaos-style grids on line,
ring and graph topologies.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

import numpy as np

from repro.core.checkpoint import ExecutorCheckpoint
from repro.core.dense import _VEC_MIN_COLS, DenseExecutor
from repro.netsim.faults import RecoveryPolicy
from repro.netsim.stats import SimStats, latencies_from_completions

__all__ = ["ExecutorCheckpoint", "FaultedDenseExecutor"]

# Bucket-event kinds (mirrors the greedy fault-mode event kinds).
_DONE = 0
_MSG = 1
_CRASH = 2
_RESUME = 3
_CHECK = 4
_REQ = 5
_WATCH = 6


class FaultedDenseExecutor(DenseExecutor):
    """Segmented dense executor for faulted runs (see module docstring).

    Construction mirrors :class:`~repro.core.executor.GreedyExecutor`'s
    fault surface: ``faults`` (a non-empty plan), ``policy`` (default
    :class:`~repro.netsim.faults.RecoveryPolicy`) and ``reassign`` (the
    mid-run reconfiguration hook).  ``dep_map`` guests are supported for
    link-level faults; node crashes require the standard array
    dependency structure, exactly like the greedy engine.
    """

    def __init__(
        self,
        host,
        assignment,
        program,
        steps,
        bandwidth=None,
        dep_map=None,
        col_label=None,
        telemetry=None,
        faults=None,
        policy=None,
        reassign=None,
        checkpoint_stride=None,
    ) -> None:
        super().__init__(
            host,
            assignment,
            program,
            steps,
            bandwidth,
            dep_map=dep_map,
            col_label=col_label,
            telemetry=telemetry,
            checkpoint_stride=checkpoint_stride,
        )
        self.faults = faults
        self.policy = policy or RecoveryPolicy()
        self.reassign = reassign
        self._epoch = 0
        if faults is not None and not faults.is_empty:
            self._fault_tables = faults.compile(host)
            if dep_map is not None and self._fault_tables.crash_times:
                raise ValueError(
                    "node-crash injection supports the standard array "
                    "dependency structure only (dep_map must be None); "
                    "link-level faults are fine"
                )
        else:
            self._fault_tables = None
        #: Dead-set snapshot at the last reconfiguration (None before
        #: the first one); lets a restore re-derive the assignment.
        self._reassign_dead: list[int] | None = None

    def _expected_ckpt_kind(self) -> str:
        tables = self._fault_tables
        if tables is None or tables.is_effect_free:
            return "dense"
        return "faulted"

    def run(self):
        tables = self._fault_tables
        if tables is None or tables.is_effect_free:
            # Effect-free plan (all events at/after the declared
            # horizon): the plain fault-free dense path, bit-identical
            # to the greedy engine's identical elision.
            return super().run()
        return self._run_faulted()

    # -- recovery plumbing (mirrors GreedyExecutor) ----------------------
    def _default_reassign(self, dead: frozenset):
        from repro.core.assignment import assign_databases
        from repro.core.killing import kill_and_label

        killing = kill_and_label(self.host, forced_dead=set(dead))
        return assign_databases(killing, self.assignment.block, min_copies=2)

    def _watch_window(self) -> int:
        base = self.policy.timeout(self.host.total_delay)
        return max(32, int(self.policy.watchdog_factor * base))

    def _stream_timeout(self, p: int, q: int) -> int:
        # self._load is the epoch-cached assignment.load(): the load is
        # invariant between reassignments but O(n * m) to recompute, and
        # this runs once per stream check.
        return self.policy.timeout(self.host.distance(p, q) + self._load)

    def _deadlock(self, message: str):
        """Same diagnostics as the greedy engine, read off the
        watermark arrays (same tuple order: own columns lo..hi per used
        position; ext columns in sorted-needed order)."""
        from repro.core.executor import SimulationDeadlock

        T = self.T
        pending = []
        undelivered = []
        for p in self.used:
            w = self._W_of[p]
            lo = self._lo_of[p]
            for i in range(self._k_of[p]):
                wt = int(w[i])
                if wt < T:
                    pending.append((p, lo + i, wt))
        for p in self.used:
            w = self._W_of[p]
            idx = self._ext_idx[p]
            for c in self._ext_cols[p]:
                wt = int(w[idx[c]])
                if wt < T:
                    undelivered.append((p, c, wt))
        return SimulationDeadlock(
            message,
            pending=pending,
            undelivered=undelivered,
            fault_log=list(self._fault_log),
        )

    def _build_epoch_state(self) -> None:
        """(Re)build the watermark arrays for the current assignment —
        the same layout as the fault-free skeleton, kept on ``self`` so
        fault handlers and checkpoints can reach it across epochs."""
        T = self.T
        n = self.host.n
        dep_map = self.dep_map
        lo_of = [0] * n
        k_of = [0] * n
        W_of: list = [None] * n
        sl_of: list = [None] * n
        sr_of: list = [None] * n
        el_of = [0] * n
        er_of = [0] * n
        ext_idx: list = [None] * n
        vec = [False] * n
        busy = [False] * n
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            k = hi - lo + 1
            lo_of[p] = lo
            k_of[p] = k
            ecols = self._ext_cols[p]
            e = len(ecols)
            idx = {c: k + j for j, c in enumerate(ecols)}
            ext_idx[p] = idx
            virt = k + e
            w = [0] * (k + e) + [T]
            sl = [0] * k
            sr = [0] * k
            for i in range(k):
                c = lo + i
                a, b = dep_map[c] if dep_map is not None else (c - 1, c + 1)
                sl[i] = a - lo if lo <= a <= hi else idx.get(a, virt)
                sr[i] = b - lo if lo <= b <= hi else idx.get(b, virt)
            el_of[p] = idx.get(lo - 1, virt)
            er_of[p] = idx.get(hi + 1, virt)
            if k >= _VEC_MIN_COLS:
                w = np.array(w, dtype=np.int64)
                sl = np.asarray(sl, dtype=np.intp)
                sr = np.asarray(sr, dtype=np.intp)
                vec[p] = True
            W_of[p] = w
            sl_of[p] = sl
            sr_of[p] = sr
        self._lo_of = lo_of
        self._k_of = k_of
        self._W_of = W_of
        self._sl_of = sl_of
        self._sr_of = sr_of
        self._el_of = el_of
        self._er_of = er_of
        self._ext_idx = ext_idx
        self._vec = vec
        self._busy = busy
        self._load = self.assignment.load()

    # -- the segmented loop ----------------------------------------------
    def _run_faulted(self):
        """Replay of ``GreedyExecutor._run_faulty`` on dense machinery.

        Every event the greedy engine would push is pushed here at the
        same time, in the same sequence order (all pushes are strictly
        future except a zero-penalty ``_RESUME``, which appends to the
        bucket being iterated — the exact heap tie-break), so the event
        stream, and with it every counter, diagnostic and telemetry
        record, is bit-identical.
        """
        stats = SimStats()
        T = self.T
        host = self.host
        bw = self.bandwidth
        delays = host.link_delays
        policy = self.policy
        tables = self._fault_tables
        tl = self.telemetry
        ck = self._resume_from
        makespan = 0
        self._epoch = 0
        self._dead: set[int] = set()
        self._fault_log: list[str] = []
        self._streams: dict[tuple[int, int], list] = {}
        self._reassign_dead = None
        stats.faults_injected = len(self.faults.events)
        self._holders = {
            c: set(ps) for c, ps in self.assignment.owners().items()
        }
        remaining = sum(
            (self.assignment.ranges[p][1] - self.assignment.ranges[p][0] + 1)
            for p in self.used
        ) * T

        if T == 0 or remaining == 0:
            return self._finish_faulted(stats, 0)

        if tl is not None:
            tl.meta.setdefault("engine", "dense")
            if ck is None:
                tl.spans.begin("epoch", 0, track="epochs", epoch=0)
            else:
                # The snapshot carries the prefix's telemetry verbatim,
                # including the span left open at capture time.
                tl.load_snapshot(ck.telemetry)

        self._build_epoch_state()

        # Flat directed-link state (persists across epochs, exactly like
        # the greedy fabric object).  Clean directed links skip the
        # fault lookup and the monotone clamp — outcome is always 0 and
        # injection arrivals are monotone per pipe, so the clamp is
        # provably a no-op there.
        n_links = host.n - 1
        r_slot = [-1] * n_links
        r_used = [0] * n_links
        l_slot = [-1] * n_links
        l_used = [0] * n_links
        injections = 0
        last_out: dict[tuple[int, int], int] = {}
        faulty_dirs = tables.faulty_directions()
        has_link_faults = tables.has_link_faults()
        link_outcome = tables.link_outcome
        from repro.netsim.faults import LOST

        # Time-bucketed event lists keyed by a min-heap of bucket times:
        # the heap pops times in ascending order and each bucket keeps
        # append order, which is exactly the greedy engine's (time, seq)
        # heap order — without touching the (makespan-sized) stretches
        # of empty slots a flat array would walk.
        bucket_map: dict[int, list[tuple]] = {}
        times: list[int] = []
        progress = 0
        n_pebbles = 0
        n_messages = 0
        n_lost = 0
        n_retries = 0
        first_top: int | None = None
        # Row-completion times (max over every epoch's replicas), the
        # same convention as the greedy loops and the fault-free tier.
        step_done = [0] * (T + 1)

        def push(t: int, item: tuple) -> None:
            b = bucket_map.get(t)
            if b is None:
                bucket_map[t] = [item]
                heapq.heappush(times, t)
            else:
                b.append(item)

        def hop1(pos: int, step: int, now: int):
            """One fault-aware injection: arrival time or None (lost).

            Mirrors ``LineFabric.hop_faulty``: the slot is consumed
            (and counted) even when the pebble is lost, and arrivals on
            faulty directed links are clamped monotone per direction.
            """
            nonlocal injections
            if step == 1:
                j = pos
                slot, used_ = r_slot[j], r_used[j]
            else:
                j = pos - 1
                slot, used_ = l_slot[j], l_used[j]
            key = (j, step)
            outcome = 0
            if key in faulty_dirs:
                outcome = link_outcome(j, step, now)
            if now > slot:
                slot, used_ = now, 1
            elif used_ < bw:
                used_ += 1
            else:
                slot, used_ = slot + 1, 1
            if step == 1:
                r_slot[j], r_used[j] = slot, used_
            else:
                l_slot[j], l_used[j] = slot, used_
            injections += 1
            if outcome is LOST:
                return None
            arr = slot + delays[j] + outcome
            if key in faulty_dirs:
                prev = last_out.get(key, 0)
                if arr < prev:
                    arr = prev
                else:
                    last_out[key] = arr
            return arr

        def try_start(p: int, now: int) -> None:
            busy = self._busy
            if busy[p]:
                return
            w = self._W_of[p]
            if self._vec[p]:
                own = w[: self._k_of[p]]
                ready = (
                    (own < T)
                    & (w[self._sl_of[p]] >= own)
                    & (w[self._sr_of[p]] >= own)
                )
                tm = np.where(ready, own, T)
                best_i = int(tm.argmin())
                wt = int(tm[best_i])
                if wt >= T:
                    return
                best_t = wt + 1
            elif self.dep_map is None:
                k1 = self._k_of[p] - 1
                eli = self._el_of[p]
                eri = self._er_of[p]
                best_t = T + 1
                best_i = -1
                for i in range(k1 + 1):
                    wt = w[i]
                    t = wt + 1
                    if t > T or t >= best_t:
                        continue
                    if i > 0:
                        if w[i - 1] < wt:
                            continue
                    elif w[eli] < wt:
                        continue
                    if i < k1:
                        if w[i + 1] < wt:
                            continue
                    elif w[eri] < wt:
                        continue
                    best_t = t
                    best_i = i
                if best_i < 0:
                    return
            else:
                sl = self._sl_of[p]
                sr = self._sr_of[p]
                best_t = T + 1
                best_i = -1
                for i in range(self._k_of[p]):
                    wt = w[i]
                    t = wt + 1
                    if t > T or t >= best_t:
                        continue
                    if w[sl[i]] < wt or w[sr[i]] < wt:
                        continue
                    best_t = t
                    best_i = i
                if best_i < 0:
                    return
            busy[p] = True
            push(now + 1, (_DONE, p, best_i, best_t, self._epoch))

        def init_streams(now: int) -> None:
            ep = self._epoch
            self._streams = {}
            provider_of: dict[tuple[int, int], int] = {}
            for (q, c), subs in self.subscribers.items():
                for p in subs:
                    provider_of[(p, c)] = q
            for (p, c), q in sorted(provider_of.items()):
                wm = int(self._W_of[p][self._ext_idx[p][c]])
                self._streams[(p, c)] = [q, 0, 0, wm]
                push(now + self._stream_timeout(p, q), (_CHECK, p, c, ep))

        def reconfigure(now: int) -> int:
            """Mirror of ``GreedyExecutor._reconfigure`` (same logging,
            telemetry spans and resume scheduling; rebuilds the dense
            epoch state instead of the greedy dicts)."""
            old_m = self.m
            reassign = self.reassign or self._default_reassign
            try:
                assignment = reassign(frozenset(self._dead))
            except ValueError as exc:
                raise self._deadlock(
                    f"reconfiguration impossible: {exc}"
                ) from exc
            missing = [
                c
                for c in range(1, assignment.m + 1)
                if not self._holders.get(c)
            ]
            if missing:
                raise self._deadlock(
                    "no replica of a needed database interval survives: "
                    f"columns {missing[:10]}"
                    f"{'...' if len(missing) > 10 else ''}"
                )
            stats.recoveries += 1
            if assignment.m < old_m:
                stats.columns_lost += old_m - assignment.m
            self._reassign_dead = sorted(self._dead)
            self._epoch += 1
            self.assignment = assignment
            self.m = assignment.m
            self.used = assignment.used_positions()
            self._build_subscriptions()
            self._build_epoch_state()
            self._pending_holders = assignment.owners()
            self._streams = {}
            penalty = policy.restart_penalty
            if penalty is None:
                penalty = host.total_delay
            self._fault_log.append(
                f"t={now} recovery: epoch {self._epoch}, m {old_m}->{self.m}, "
                f"resume at t={now + penalty}"
            )
            if tl is not None:
                tl.fault(
                    now, "recovery", f"epoch {self._epoch}: m {old_m}->{self.m}"
                )
                tl.spans.close_all(now)
                tl.spans.begin("recovery", now, track="epochs")
                tl.spans.end(now + penalty)
                tl.spans.begin(
                    "epoch", now + penalty, track="epochs", epoch=self._epoch
                )
            push(now + penalty, (_RESUME, self._epoch))
            return sum(self._k_of[p] for p in self.used) * T

        def capture(now: int, label: str) -> None:
            self.checkpoints.append(
                ExecutorCheckpoint(
                    time=now,
                    epoch=self._epoch,
                    label=label,
                    remaining=remaining,
                    makespan=makespan,
                    progress=progress,
                    pebbles=n_pebbles,
                    messages=n_messages,
                    injections=injections,
                    lost_messages=n_lost,
                    retries=n_retries,
                    watermarks={
                        p: [int(x) for x in self._W_of[p]] for p in self.used
                    },
                    busy={p: self._busy[p] for p in self.used},
                    link_state=[
                        list(r_slot),
                        list(r_used),
                        list(l_slot),
                        list(l_used),
                    ],
                    dead=set(self._dead),
                    streams={k: list(v) for k, v in self._streams.items()},
                    steps=T,
                    kind="faulted",
                    first_top=first_top,
                    events=[
                        (t, list(bucket_map[t])) for t in sorted(bucket_map)
                    ],
                    subscribers={
                        k: list(v) for k, v in self.subscribers.items()
                    },
                    holders={
                        c: set(ps) for c, ps in self._holders.items()
                    },
                    last_out=dict(last_out),
                    reassign_dead=(
                        list(self._reassign_dead)
                        if self._reassign_dead is not None
                        else None
                    ),
                    fault_log=list(self._fault_log),
                    drops_consumed=tables.drops_consumed(),
                    counters={
                        "crashed_nodes": stats.crashed_nodes,
                        "recoveries": stats.recoveries,
                        "columns_lost": stats.columns_lost,
                    },
                    telemetry=None if tl is None else tl.snapshot(),
                    step_done=list(step_done),
                )
            )

        boundaries = tables.boundaries()
        if ck is None:
            # Setup pushes in the greedy engine's exact sequence order:
            # scripted crashes (sorted by position), initial computes
            # (used order, landing at t=1), stream checks (sorted),
            # watchdog.
            for pos, t_crash in sorted(tables.crash_times.items()):
                push(t_crash, (_CRASH, pos))
            for p in self.used:
                try_start(p, 0)
            init_streams(0)
            push(self._watch_window(), (_WATCH, 0))
            b_idx = 0
        else:
            if ck.subscribers is None or ck.holders is None:
                raise ValueError(
                    "checkpoint lacks faulted resume state (summary-only "
                    "capture)"
                )
            self._epoch = ck.epoch
            self._dead = set(ck.dead)
            if ck.reassign_dead is not None:
                reassign = self.reassign or self._default_reassign
                try:
                    assignment = reassign(frozenset(ck.reassign_dead))
                except ValueError as exc:
                    raise self._deadlock(
                        f"reconfiguration impossible: {exc}"
                    ) from exc
                self.assignment = assignment
                self.m = assignment.m
                self.used = assignment.used_positions()
                self._build_subscriptions()
                self._build_epoch_state()
                self._pending_holders = assignment.owners()
                self._reassign_dead = list(ck.reassign_dead)
            # Retry re-subscriptions mutate the provider lists in
            # place, so the snapshot's lists are authoritative over the
            # rebuilt ones.
            self.subscribers = {
                k: list(v) for k, v in ck.subscribers.items()
            }
            self._holders = {c: set(ps) for c, ps in ck.holders.items()}
            self._fault_log = list(ck.fault_log)
            self._streams = {k: list(v) for k, v in ck.streams.items()}
            for p in self.used:
                saved = ck.watermarks[p]
                w = self._W_of[p]
                # The last slot is the virtual watermark, pinned to
                # *this* run's T (which may extend the captured run's).
                for i in range(len(saved) - 1):
                    w[i] = saved[i]
                self._busy[p] = ck.busy[p]
            rs, ru, ls, lu = ck.link_state
            r_slot[:] = rs
            r_used[:] = ru
            l_slot[:] = ls
            l_used[:] = lu
            last_out.update(ck.last_out)
            injections = ck.injections
            n_pebbles = ck.pebbles
            n_messages = ck.messages
            n_lost = ck.lost_messages
            n_retries = ck.retries
            progress = ck.progress
            makespan = ck.makespan
            first_top = ck.first_top
            if ck.step_done is None:
                from repro.delta import DeltaUnsupported

                raise DeltaUnsupported(
                    "checkpoint predates step-latency capture "
                    "(no step_done)"
                )
            for t_row, v in enumerate(ck.step_done):
                step_done[t_row] = v
            remaining = ck.remaining + sum(
                self._k_of[p] for p in self.used
            ) * (T - ck.steps)
            stats.crashed_nodes = ck.counters.get("crashed_nodes", 0)
            stats.recoveries = ck.counters.get("recoveries", 0)
            stats.columns_lost = ck.counters.get("columns_lost", 0)
            tables.consume_drops(ck.drops_consumed)
            # Re-seed the pending events: the snapshot's buckets minus
            # scripted crashes, which are re-read from *this* run's
            # plan (a fault edit may have moved them) and re-inserted
            # at the bucket fronts, exactly where the setup pushes put
            # them in a fresh run.
            crash_front: dict[int, list[tuple]] = {}
            for pos, t_crash in sorted(tables.crash_times.items()):
                if t_crash >= ck.time:
                    crash_front.setdefault(t_crash, []).append(
                        (_CRASH, pos)
                    )
            kept: dict[int, list[tuple]] = {}
            for t, evs in ck.events:
                evs = [e for e in evs if e[0] != _CRASH]
                if evs:
                    kept[t] = evs
            for t in sorted(set(crash_front) | set(kept)):
                bucket_map[t] = crash_front.get(t, []) + kept.get(t, [])
                heapq.heappush(times, t)
            b_idx = bisect_right(boundaries, ck.time)
        n_bounds = len(boundaries)

        stride = self.checkpoint_stride
        start_t = 0 if ck is None else ck.time
        next_mark = (
            stride * (start_t // stride + 1) if stride is not None else None
        )
        pending_resume = False

        finished = False
        while times and not finished:
            now = heapq.heappop(times)
            if b_idx < n_bounds and boundaries[b_idx] <= now:
                # State is unchanged since the last processed event, so
                # capturing here (first event at/after the boundary) is
                # the state *at* the boundary time recorded.
                while b_idx < n_bounds and boundaries[b_idx] <= now:
                    capture(boundaries[b_idx], "fault-boundary")
                    b_idx += 1
            if pending_resume:
                # Deferred from the _RESUME event so the snapshot's
                # pending buckets are whole (the resume bucket itself
                # was mid-iteration at the time).
                capture(now, "resume")
                pending_resume = False
            if next_mark is not None and now >= next_mark:
                capture(now, "stride")
                next_mark = stride * (now // stride + 1)
            bucket = bucket_map[now]
            for ev in bucket:
                kind = ev[0]
                if kind == _DONE:
                    _, p, i, t, ep = ev
                    if ep != self._epoch:
                        continue
                    self._busy[p] = False
                    self._W_of[p][i] = t
                    if t == T and first_top is None:
                        first_top = now
                    n_pebbles += 1
                    remaining -= 1
                    progress += 1
                    c = self._lo_of[p] + i
                    if tl is not None:
                        tl.pebble(now, p, c, t)
                    if now > makespan:
                        makespan = now
                    if now > step_done[t]:
                        step_done[t] = now
                    subs = self.subscribers.get((p, c))
                    if subs:
                        for dst in subs:
                            n_messages += 1
                            if tl is not None:
                                tl.message(now)
                            step = 1 if dst > p else -1
                            arr = hop1(p, step, now)
                            if arr is None:
                                n_lost += 1
                                if tl is not None:
                                    tl.send(now, now)
                                    tl.drop(now)
                            else:
                                if tl is not None:
                                    tl.send(now, arr)
                                push(arr, (_MSG, p + step, dst, c, t, ep))
                    if remaining == 0:
                        finished = True
                        break
                    try_start(p, now)
                elif kind == _MSG:
                    _, pos, dst, c, t, ep = ev
                    if ep != self._epoch:
                        continue
                    if pos == dst:
                        idx = self._ext_idx[pos]
                        wi = idx.get(c) if idx is not None else None
                        # Duplicates (replays) and gaps (after a lost
                        # predecessor) are expected under faults: apply
                        # only the next in-order pebble.
                        if wi is not None and t == self._W_of[pos][wi] + 1:
                            self._W_of[pos][wi] = t
                            progress += 1
                            if tl is not None:
                                tl.deliver(now)
                            try_start(pos, now)
                    else:
                        step = 1 if dst > pos else -1
                        arr = hop1(pos, step, now)
                        if arr is None:
                            n_lost += 1
                            if tl is not None:
                                tl.send(now, now)
                                tl.drop(now)
                        else:
                            if tl is not None:
                                tl.send(now, arr)
                            push(arr, (_MSG, pos + step, dst, c, t, ep))
                elif kind == _CRASH:
                    _, pos = ev
                    if pos in self._dead:
                        continue
                    self._dead.add(pos)
                    stats.crashed_nodes += 1
                    self._fault_log.append(f"t={now} crash node {pos}")
                    if tl is not None:
                        tl.fault(now, "crash", f"node {pos}")
                    for holders in self._holders.values():
                        holders.discard(pos)
                    if self.assignment.ranges[pos] is None:
                        continue  # relay-only node: no databases lost
                    remaining = reconfigure(now)
                elif kind == _RESUME:
                    _, ep = ev
                    if ep != self._epoch:
                        continue
                    missing = [
                        c
                        for c in range(1, self.m + 1)
                        if not self._holders.get(c)
                    ]
                    if missing:
                        raise self._deadlock(
                            "no replica of a needed database interval "
                            "survived the restart window: columns "
                            f"{missing[:10]}"
                            f"{'...' if len(missing) > 10 else ''}"
                        )
                    self._holders = {
                        c: set(ps) - self._dead
                        for c, ps in self._pending_holders.items()
                    }
                    for p in self.used:
                        try_start(p, now)
                    init_streams(now)
                    pending_resume = True
                elif kind == _CHECK:
                    _, p, c, ep = ev
                    if ep != self._epoch or p in self._dead:
                        continue
                    idx = self._ext_idx[p]
                    wi = idx.get(c) if idx is not None else None
                    stream = self._streams.get((p, c))
                    if wi is None or stream is None:
                        continue
                    wm = int(self._W_of[p][wi])
                    if wm >= T:
                        continue  # stream complete
                    provider, attempts, retries, last_t = stream
                    if wm > last_t:  # progressing normally
                        stream[3] = wm
                        push(
                            now + self._stream_timeout(p, provider),
                            (_CHECK, p, c, ep),
                        )
                        continue
                    if retries >= policy.max_retries:
                        raise self._deadlock(
                            f"stream {provider}->{p} for column {c} stalled "
                            f"at t={wm} after {retries} retries"
                        )
                    candidates = [
                        q
                        for q in self.assignment.owners().get(c, ())
                        if q not in self._dead
                    ]
                    if not candidates:
                        raise self._deadlock(
                            f"no live replica of column {c} left to retry from"
                        )
                    candidates.sort(
                        key=lambda q: (host.distance(p, q), abs(q - p), q)
                    )
                    stream[1] = attempts + 1
                    q2 = candidates[attempts % len(candidates)]
                    if q2 != provider:
                        old = self.subscribers.get((provider, c))
                        if old and p in old:
                            old.remove(p)
                        self.subscribers.setdefault((q2, c), []).append(p)
                        stream[0] = q2
                    self._fault_log.append(
                        f"t={now} retry: {p} re-requests column {c} "
                        f"(past t={wm}) from {q2}"
                    )
                    if tl is not None:
                        tl.fault(now, "retry", f"{p} col {c} from {q2}")
                    push(
                        now + max(1, host.distance(p, q2)),
                        (_REQ, q2, p, c, wm, ep),
                    )
                    push(
                        now + self._stream_timeout(p, q2), (_CHECK, p, c, ep)
                    )
                elif kind == _REQ:
                    _, q, p, c, from_t, ep = ev
                    if ep != self._epoch or q in self._dead:
                        continue
                    lo = self._lo_of[q]
                    have = None
                    if self._ext_idx[q] is not None:
                        if lo <= c <= lo + self._k_of[q] - 1:
                            have = int(self._W_of[q][c - lo])
                    if have is None or have <= from_t:
                        # Merely slow, not faulty: no retry consumed.
                        continue
                    stream = self._streams.get((p, c))
                    if stream is not None:
                        stream[2] += 1
                    n_retries += 1
                    step = 1 if p > q else -1
                    count = have - from_t
                    if not has_link_faults:
                        # Batched whole-stream replay (the greedy
                        # engine's hop_many fast path): closed-form
                        # slot assignment, no per-pebble fault check.
                        n_messages += count
                        if tl is not None:
                            tl.message(now, count)
                        if step == 1:
                            j = q
                            slot, used_ = r_slot[j], r_used[j]
                        else:
                            j = q - 1
                            slot, used_ = l_slot[j], l_used[j]
                        if now > slot:
                            slot, used_ = now, 0
                        base = slot + delays[j]
                        arrivals = [
                            base + (used_ + x) // bw for x in range(count)
                        ]
                        occ = used_ + count - 1
                        slot, used_ = slot + occ // bw, occ % bw + 1
                        if step == 1:
                            r_slot[j], r_used[j] = slot, used_
                        else:
                            l_slot[j], l_used[j] = slot, used_
                        injections += count
                        if tl is not None:
                            for arr in arrivals:
                                tl.send(now, arr)
                        for t, arr in zip(
                            range(from_t + 1, have + 1), arrivals
                        ):
                            push(arr, (_MSG, q + step, p, c, t, ep))
                    else:
                        for t in range(from_t + 1, have + 1):
                            n_messages += 1
                            if tl is not None:
                                tl.message(now)
                            arr = hop1(q, step, now)
                            if arr is None:
                                n_lost += 1
                                if tl is not None:
                                    tl.send(now, now)
                                    tl.drop(now)
                            else:
                                if tl is not None:
                                    tl.send(now, arr)
                                push(arr, (_MSG, q + step, p, c, t, ep))
                else:  # _WATCH
                    _, mark = ev
                    if remaining and progress == mark:
                        raise self._deadlock(
                            "no progress for a full watchdog window"
                        )
                    if remaining:
                        push(now + self._watch_window(), (_WATCH, progress))
            del bucket_map[now]

        stats.pebbles = n_pebbles
        stats.messages = n_messages
        stats.lost_messages = n_lost
        stats.retries = n_retries
        if remaining:
            raise self._deadlock(f"{remaining} pebbles never computed")
        if tl is not None:
            tl.spans.close_all(makespan)
        self._injections = injections
        self.first_top_t = first_top
        stats.record_step_latency(latencies_from_completions(step_done))
        return self._finish_faulted(stats, makespan)

    def _finish_faulted(self, stats: SimStats, makespan: int):
        """Build the ExecResult from the *final* epoch's guest.

        An epoch restart re-derives every database from scratch and the
        run only completes when the final epoch finishes all ``T`` rows
        of its (possibly reduced) ``m`` columns, so one vectorised value
        pass over the final guest reproduces every digest and replica
        the greedy engine accumulates scalar-wise.
        """
        from repro.core.executor import ExecResult
        from repro.machine.database import Database

        stats.makespan = makespan
        stats.pebble_hops = getattr(self, "_injections", 0)
        stats.procs_used = len(self.used)
        stats.redundant = stats.pebbles - self.m * self.T
        result = ExecResult(stats, self.T, self.assignment)
        folds, db_digests, states = self._guest_values()
        T = self.T
        label = self.col_label
        for p in self.used:
            lo, hi = self.assignment.ranges[p]
            for c in range(lo, hi + 1):
                result.value_digests[(p, c)] = folds[c - 1]
                state = states[c - 1]
                if isinstance(state, dict):
                    state = dict(state)
                elif isinstance(state, list):
                    state = list(state)
                result.replicas[(p, c)] = Database(
                    label(c), state, T, db_digests[c - 1]
                )
        return result
