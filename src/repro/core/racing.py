"""Execution policies: redundant-issue racing and work stealing.

OVERLAP hides latency with replicated *state* — overlapping database
copies.  The policies here hide tail latency with replicated
*requests* and task migration, the mechanisms of "Low Latency via
Redundancy" and "A new analysis of Work Stealing with latency"
(PAPERS.md):

* **racing** — a position that needs an external boundary column
  subscribes to up to ``fanout`` nearest replica owners instead of
  one.  Every replica issues each step; the first digest-consistent
  answer wins (advances the watermark) and the losers are cancelled —
  at the source when the subscriber is already past the pebble, and at
  every relay hop otherwise, so abandoned messages stop consuming link
  slots (:class:`~repro.core.executor.GreedyExecutor` implements the
  raced loops; racing forces the greedy tier via
  :func:`repro.core.dense.resolve_engine`).
* **stealing** — a deterministic, seeded pre-execution rebalance of
  the assignment: idle/underloaded hosts steal queued guest columns
  from overloaded or jitter-degraded neighbours
  (:func:`repro.core.assignment.steal_rebalance`).  Because the
  rebalance is a pure function of ``(assignment, host, faults, seed)``
  it is bit-identical at any sweep worker count, and the rebalanced
  assignment runs on *any* engine, dense included.

Both compose: ``"racing+stealing"`` rebalances first, then races the
replicated columns of the rebalanced assignment.

The frontends (:func:`~repro.core.overlap.simulate_overlap`,
:func:`~repro.core.ring.simulate_ring`,
:func:`~repro.core.overlap.simulate_overlap_on_graph`) accept these
via ``policy=`` — a name string, an :class:`ExecPolicy`, or (for
backward compatibility) a :class:`~repro.netsim.faults.RecoveryPolicy`
instance, which :func:`split_policy` routes to the recovery machinery
instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.faults import RecoveryPolicy

#: Default replication factor of a raced subscription: the nearest two
#: owners.  More copies chase diminishing returns while doubling the
#: bandwidth bill — the redundancy sweet-spot both cited papers chart.
DEFAULT_FANOUT = 2


@dataclass(frozen=True)
class ExecPolicy:
    """How an execution issues work across replicated columns.

    ``racing``
        Subscribe to up to ``fanout`` owners per external column and
        take the first consistent delivery.
    ``stealing``
        Apply :func:`~repro.core.assignment.steal_rebalance` before
        building the executor (seeded by ``steal_seed``).
    """

    racing: bool = False
    stealing: bool = False
    fanout: int = DEFAULT_FANOUT
    steal_seed: int = 0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.steal_seed < 0:
            raise ValueError(f"steal_seed must be >= 0, got {self.steal_seed}")

    @property
    def name(self) -> str:
        """Canonical policy name (``repro run --policy`` vocabulary)."""
        parts = []
        if self.racing:
            parts.append("racing")
        if self.stealing:
            parts.append("stealing")
        return "+".join(parts) or "single"

    @property
    def is_single(self) -> bool:
        """True for the default single-issue, static-assignment policy."""
        return not (self.racing or self.stealing)


#: The default policy: single-issue, static assignment — bit-identical
#: to every run the codebase produced before policies existed.
SINGLE = ExecPolicy()

#: Name -> policy for the string forms the CLI and configs use.
POLICIES = {
    "single": SINGLE,
    "racing": ExecPolicy(racing=True),
    "stealing": ExecPolicy(stealing=True),
    "racing+stealing": ExecPolicy(racing=True, stealing=True),
    "stealing+racing": ExecPolicy(racing=True, stealing=True),
}


def resolve_policy(spec) -> ExecPolicy:
    """Coerce ``None`` / a name string / an :class:`ExecPolicy`.

    ``None`` means the default single-issue policy.  Strings accept the
    :data:`POLICIES` vocabulary.
    """
    if spec is None:
        return SINGLE
    if isinstance(spec, ExecPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return POLICIES[spec.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown execution policy {spec!r}; "
                f"known: {sorted(set(POLICIES))}"
            ) from None
    raise TypeError(
        f"policy must be None, a name string or an ExecPolicy, "
        f"got {type(spec).__name__}"
    )


def split_policy(policy, recovery):
    """Resolve the frontends' dual-duty ``policy=`` keyword.

    Historically ``policy=`` carried the
    :class:`~repro.netsim.faults.RecoveryPolicy`; it now names the
    execution policy, with ``recovery=`` as the explicit recovery knob.
    A ``RecoveryPolicy`` instance passed as ``policy`` keeps its old
    meaning, so every existing call site works unchanged.

    Returns ``(exec_policy, recovery_policy_or_None)``.
    """
    if isinstance(policy, RecoveryPolicy):
        if recovery is not None:
            raise ValueError(
                "policy= got a RecoveryPolicy while recovery= is also set; "
                "pass the recovery knobs once, via recovery="
            )
        return SINGLE, policy
    return resolve_policy(policy), recovery
