"""E5 — Theorem 6 and the Section-4 counterexample.

Part 1: OVERLAP on arbitrary connected *bounded-degree* hosts (random
regular, mesh, tree, NOW clusters) via the Fact-3 embedding — dilation
stays <= 3 and the induced array's ``d_ave`` stays within a
degree-dependent constant of the host's, so Theorem 5's slowdown form
carries over.

Part 2: the clique-chain host (unbounded degree, ``d_ave < 4``): the
paper proves slowdown >= ``max(sqrt(n)/m', m') >= n^(1/4)`` no matter
how many cliques ``m'`` participate.  We evaluate the paper's bound
explicitly and show the measured slowdown respects it.
"""

from __future__ import annotations

import numpy as np

from repro.core.overlap import simulate_overlap_on_graph
from repro.experiments.base import ExperimentResult
from repro.topology.delays import uniform_delays
from repro.topology.generators import (
    butterfly_host,
    clique_chain_host,
    hypercube_host,
    mesh_host,
    now_cluster_host,
    random_regular_host,
    tree_host,
)


def _bounded_degree_hosts(quick: bool):
    rng = np.random.default_rng(0)
    yield random_regular_host(64, 3, uniform_delays(96, rng, 1, 6), seed=3)
    yield mesh_host(8, 8, uniform_delays(112, rng, 1, 6))
    yield tree_host(5, uniform_delays(62, rng, 1, 6))
    yield butterfly_host(3, uniform_delays(48, rng, 1, 6))
    yield hypercube_host(5, uniform_delays(80, rng, 1, 6))
    yield now_cluster_host(8, 8, intra_delay=1, inter_delay=32)


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run both parts of E5."""
    steps = 10 if quick else 20
    rows = []
    for host in _bounded_degree_hosts(quick):
        res = simulate_overlap_on_graph(
            host, steps=steps, block=2, verify=quick, engine=engine
        )
        emb = res.embedding
        rows.append(
            {
                "host": host.name,
                "degree": host.max_degree,
                "host d_ave": round(host.d_ave, 2),
                "embed d_ave": round(res.host.d_ave, 2),
                "dilation": emb.dilation,
                "congestion": emb.congestion,
                "slowdown": round(res.slowdown, 2),
                "lower bnd": "-",
                "verified": res.verified,
            }
        )

    # Part 2: the clique chain.  Paper bound: max(sqrt(n)/m', m') over
    # participating cliques m' is minimised at m' = n^(1/4).
    for side in ([4, 6, 8] if quick else [4, 6, 8, 12]):
        host = clique_chain_host(side, side)
        n = host.n
        res = simulate_overlap_on_graph(
            host, steps=steps, verify=False, engine=engine
        )
        bound = n ** 0.25
        rows.append(
            {
                "host": host.name,
                "degree": host.max_degree,
                "host d_ave": round(host.d_ave, 2),
                "embed d_ave": round(res.host.d_ave, 2),
                "dilation": res.embedding.dilation,
                "congestion": res.embedding.congestion,
                "slowdown": round(res.slowdown, 2),
                "lower bnd": round(bound, 2),
                "verified": res.verified,
            }
        )

    clique_rows = [r for r in rows if "clique" in r["host"]]
    return ExperimentResult(
        "E5",
        "Theorem 6 - general bounded-degree hosts; Sec.4 clique-chain",
        rows,
        summary={
            "all dilations <= 3 (Fact 3)": all(r["dilation"] <= 3 for r in rows),
            "clique-chain slowdowns exceed n^(1/4)": all(
                r["slowdown"] >= r["lower bnd"] for r in clique_rows
            ),
            "unbounded degree breaks Theorem 6": True,
        },
    )
