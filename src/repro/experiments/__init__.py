"""Experiment harness: one module per paper item (theorem or figure).

Every experiment exposes ``run(quick: bool = True) -> ExperimentResult``
returning printable rows plus a summary of the shape checks.  The
benchmarks under ``benchmarks/`` wrap these with ``pytest-benchmark``;
``python -m repro <id>`` runs them standalone; EXPERIMENTS.md records
their output.

Experiment ids (see DESIGN.md section 4):

=====  ==============================================================
 id    paper item
=====  ==============================================================
 e1    Theorem 2 — OVERLAP slowdown ``O(d_ave log^3 n)``
 e2    Theorem 3 — work-efficient blocked variant
 e3    Theorem 4 — ``sqrt(d)`` on uniform-delay hosts
 e4    Theorem 5 — composed ``sqrt(d_ave) polylog``
 e5    Theorem 6 + Section 4 — general hosts, clique-chain example
 e6    Theorems 7-8 — 2-D guests
 e7    Theorem 9 — one-copy lower bound on H1
 e8    Theorem 10 — two-copy lower bound on H2
 e9    baseline comparison / crossover (Section 1 claims)
 e10   Lemmas 1-4 — killing and labelling invariants
 f1    Figure 1 — pebble dependency cones
 f2    Figure 2 — interval tree and kill pattern
 f3    Figure 3 — recursive box structure
 f4    Figure 4 — trapezium phase accounting
 f5    Figure 5 — H2 level-k box census
 f6    Figure 6 — zigzag dependency path
=====  ==============================================================
"""

from repro.experiments.base import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
