"""X1 — exploring the paper's open questions (Section 7).

Two of the paper's closing questions are directly explorable with this
stack:

* *"it would be interesting to consider the case when G and H have
  identical network structures (but different link delays) in order to
  study the effect of latencies in isolation"* — we fix ``|G| = |H| =
  n`` arrays, fix ``d_ave``, and sweep the delay *variance* (constant,
  uniform, bimodal, one-huge-link).  Measured: variance barely matters
  once OVERLAP blocks; without redundancy the worst link dominates.
* rings on rings (via the fold + Fact-3 reduction): the guest ring's
  wrap costs only the promised small constant over the array case.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import simulate_single_copy
from repro.core.overlap import simulate_overlap
from repro.core.ring import simulate_ring
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.topology.delays import bimodal_delays, scale_to_average, uniform_delays


def _same_dave_hosts(n: int, d_ave: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    yield "constant", HostArray([d_ave] * (n - 1))
    yield "uniform", HostArray(
        scale_to_average(uniform_delays(n - 1, rng, 1, 2 * d_ave), d_ave)
    )
    yield "bimodal", HostArray(
        scale_to_average(bimodal_delays(n - 1, rng, 1, 16 * d_ave, 0.05), d_ave)
    )
    total_extra = (d_ave - 1) * (n - 1)
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = 1 + total_extra
    yield "one-huge-link", HostArray(delays)


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the open-question explorations."""
    n = 96 if quick else 192
    d_ave = 8
    steps = 16 if quick else 24

    rows = []
    blocked, single = [], []
    for name, host in _same_dave_hosts(n, d_ave):
        ov = simulate_overlap(host, steps=steps, block=8, verify=False, engine=engine)
        sc = simulate_single_copy(host, steps=steps, verify=False, engine=engine)
        blocked.append(ov.slowdown)
        single.append(sc.slowdown)
        rows.append(
            {
                "experiment": "delay-variance",
                "host": name,
                "d_ave": round(host.d_ave, 1),
                "d_max": host.d_max,
                "single-copy": round(sc.slowdown, 1),
                "OVERLAP b=8": round(ov.slowdown, 1),
            }
        )

    ring_host = HostArray.uniform(24, 4)
    ring = simulate_ring(ring_host, steps=8, verify=quick, engine=engine)
    arr = simulate_single_copy(
        ring_host, m=24, steps=8, verify=False, engine=engine
    )
    rows.append(
        {
            "experiment": "ring-vs-array",
            "host": "uniform d=4",
            "d_ave": 4,
            "d_max": 4,
            "single-copy": round(arr.slowdown, 1),
            "OVERLAP b=8": round(ring.slowdown, 1),  # ring slowdown column
        }
    )

    return ExperimentResult(
        "X1",
        "Section 7 open questions - latency variance in isolation; rings",
        rows,
        summary={
            "blocked OVERLAP variance sensitivity (max/min)": round(
                max(blocked) / min(blocked), 2
            ),
            "single-copy variance sensitivity (max/min)": round(
                max(single) / min(single), 2
            ),
            "redundancy makes variance nearly irrelevant": max(blocked)
            / min(blocked)
            < max(single) / min(single),
            "ring overhead vs array (paper: <= 2)": round(
                ring.slowdown / arr.slowdown, 2
            ),
        },
    )
