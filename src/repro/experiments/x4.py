"""X4 — validating the block-factor planner.

A downstream adopter's first question is "what ``beta`` do I run with
on *my* NOW?"  The planner predicts the per-row cost curve from the
killed/labelled tree alone (compute ``~2 beta`` vs binding-boundary
latency ``delay / (overlap * beta)``) with no simulation.  X4 sweeps
``beta`` on three host archetypes, measures the true slowdowns, and
checks that the recommendation lands within one rung of the measured
optimum.
"""

from __future__ import annotations

from repro.analysis.planner import plan_block_factor
from repro.core.overlap import simulate_overlap
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.topology.presets import campus, mixed_now


def _hosts(quick: bool):
    n = 128 if quick else 256
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = 512
    yield HostArray(delays, "outlier512")
    yield campus(96 if quick else 192)
    yield mixed_now(96 if quick else 192, seed=1)


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the planner-validation sweep."""
    betas = [1, 4, 8, 16, 32]
    steps = 16 if quick else 24
    rows = []
    hits = []
    for host in _hosts(quick):
        plan = plan_block_factor(host, candidates=betas)
        measured = {}
        for beta in betas:
            res = simulate_overlap(
                host, steps=steps, block=beta, verify=False, engine=engine
            )
            measured[beta] = res.slowdown
        best = min(measured, key=measured.get)
        hit = plan.beta in (best // 2, best, best * 2)
        hits.append(hit)
        rows.append(
            {
                "host": host.name,
                "d_max": host.d_max,
                "planned beta": plan.beta,
                "measured best": best,
                "slow@planned": round(measured[plan.beta], 1),
                "slow@best": round(measured[best], 1),
                "regret": round(measured[plan.beta] / measured[best], 2),
                "within one rung": hit,
            }
        )

    return ExperimentResult(
        "X4",
        "Planner - predict the right block factor without simulating",
        rows,
        summary={
            "recommendation within one rung everywhere": all(hits),
            "worst regret (planned vs best)": max(r["regret"] for r in rows),
        },
    )
