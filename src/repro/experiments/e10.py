"""E10 — Lemmas 1-4: the killing/labelling invariants, quantitatively.

Across host styles (bimodal NOW, heavy-tail, one-huge-link) and seeds:
stage-1 kills stay below ``n/c`` (Lemma 1), the stage-2 root label
stays above ``(1 - 2/c) n`` (Lemma 2), every remaining stage-3 label
clears ``2 m_k`` (Lemma 4), and the total kill fraction stays below
``~2/c``.
"""

from __future__ import annotations

import numpy as np

from repro.core.killing import (
    kill_and_label,
    lemma1_bound,
    lemma2_bound,
    lemma4_checks,
)
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.topology.delays import bimodal_delays, pareto_delays


def _hosts(n: int, seeds: range):
    for seed in seeds:
        rng = np.random.default_rng(seed)
        yield f"bimodal/{seed}", HostArray(
            bimodal_delays(n - 1, rng, near=1, far=n, p_far=0.04)
        )
        yield f"pareto/{seed}", HostArray(
            pareto_delays(n - 1, rng, alpha=1.1, cap=8 * n)
        )
    delays = [1] * (n - 1)
    delays[n // 3] = 64 * n
    yield "one-huge-link", HostArray(delays)


def run(quick: bool = True) -> ExperimentResult:
    """Run the lemma sweep."""
    n = 128 if quick else 512
    seeds = range(3) if quick else range(8)
    c = 4.0
    rows = []
    all_ok = True
    for name, host in _hosts(n, seeds):
        res = kill_and_label(host, c)
        k1, b1 = lemma1_bound(res)
        l2, b2 = lemma2_bound(res)
        lemma4 = all(
            label >= thr - 1e-6
            for depth, label, thr in lemma4_checks(res)
            if depth < res.params.lg
        )
        ok = k1 <= b1 and l2 >= b2 - 1e-6 and lemma4
        all_ok &= ok
        rows.append(
            {
                "host": name,
                "d_ave": round(host.d_ave, 2),
                "d_max": host.d_max,
                "stage1 kills": k1,
                "<= n/c": round(b1, 1),
                "root label": round(res.root_label, 1),
                ">= (1-2/c)n": round(b2, 1),
                "killed frac": round(res.killed_fraction(), 3),
                "lemma4": lemma4,
            }
        )

    return ExperimentResult(
        "E10",
        "Lemmas 1-4 - killing and labelling invariants",
        rows,
        summary={
            "all lemma bounds hold": all_ok,
            "max killed fraction (<= ~2/c = 0.5)": max(
                r["killed frac"] for r in rows
            ),
        },
    )
