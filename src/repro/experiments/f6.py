"""F6 — Figure 6: the 4j-pebble zigzag path of Theorem 10, case 1.

Constructs the path for several ``j``, validates that it is a genuine
dependency path (time drops by 1, column moves by <= 1 per edge), and
evaluates the minimum communication delay any execution must pay along
it under concrete one- and two-copy assignments on H2.
"""

from __future__ import annotations

from repro.core.baselines import spread_assignment
from repro.experiments.base import ExperimentResult
from repro.lower_bounds.audit import windowed_assignment
from repro.lower_bounds.h2 import (
    path_delay_bound,
    zigzag_is_dependency_path,
    zigzag_path,
)
from repro.topology.generators import h2_host


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate zigzag paths and their delay bounds."""
    h2 = h2_host(256 if quick else 1024)
    n = h2.array.n
    single = spread_assignment(n, n)
    double = windowed_assignment(n, n, copies=2)

    rows = []
    for j in [2, 4, 8] if quick else [2, 4, 8, 16]:
        t = 8 * j + 1
        path = zigzag_path(n // 2, j, t)
        d1 = path_delay_bound(h2, single, path)
        d2 = path_delay_bound(h2, double, path)
        rows.append(
            {
                "j": j,
                "path length 4j": len(path),
                "valid dep path": zigzag_is_dependency_path(path),
                "delay bnd (1 copy)": round(d1, 1),
                "delay bnd (2 copies)": round(d2, 1),
                "per step (1 copy)": round(d1 / len(path), 2),
                "log n": round(h2.log_n, 1),
            }
        )
    return ExperimentResult(
        "F6",
        "Figure 6 - the 4j-pebble zigzag dependency path",
        rows,
        summary={
            "all paths are valid dependency chains": all(
                r["valid dep path"] for r in rows
            ),
            "single-copy pays along the path": all(
                r["delay bnd (1 copy)"] > 0 for r in rows
            ),
        },
    )
