"""F4 — Figure 4: trapezium/triangle phase accounting of Theorem 4.

For each ``d``: the region sizes of one ``sqrt(d)``-step round
(trapezium ``T``, triangles ``L``/``R``), the per-phase step budget,
and the comparison against the paper's ``5d`` round budget — plus the
measured greedy makespan for the same round on a real simulation.
"""

from __future__ import annotations

from repro.core.uniform import simulate_uniform, trapezium_census
from repro.experiments.base import ExperimentResult


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Tabulate the Figure-4 accounting."""
    d_values = [16, 64, 256] if quick else [16, 64, 256, 1024]
    rows = []
    for d in d_values:
        c = trapezium_census(d)
        q = c["q"]
        res = simulate_uniform(5, d, steps=q, verify=False, engine=engine)
        rows.append(
            {
                "d": d,
                "q": q,
                "T pebbles": c["trapezium_pebbles"],
                "L+R pebbles": c["triangle_pebbles"],
                "exchange": c["exchange_steps"],
                "round total": c["round_total"],
                "paper 5d": c["paper_budget"],
                "measured round": res.exec_result.stats.makespan,
            }
        )
    return ExperimentResult(
        "F4",
        "Figure 4 - one sqrt(d)-step round: T, exchange, L/R",
        rows,
        summary={
            "rounds within 5d": all(r["round total"] <= r["paper 5d"] for r in rows),
            "measured within round budget": all(
                r["measured round"] <= r["round total"] for r in rows
            ),
        },
    )
