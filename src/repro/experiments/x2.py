"""X2 — the "higher dimensional arrays" generalization of Theorem 8.

The paper asserts (end of Section 5) that the 2-D result generalizes
to higher dimensions.  We run the D-dimensional slab simulator for
D = 2, 3, 4 at matched scales and check the generalized shape: per
guest step the slowdown is ``~ 3 m^(D-1) g + d/g`` (case 2) with the
same ``<= 3x`` redundancy constant, collapsing to ``m^(D-1) + d`` in
case 1 — every run verified cell-exactly against the D-dimensional
reference executor.
"""

from __future__ import annotations

from repro.core.ndim import ndim_slowdown_estimate, simulate_nd_on_uniform_array
from repro.experiments.base import ExperimentResult


def run(quick: bool = True) -> ExperimentResult:
    """Run the dimension sweep."""
    configs = (
        [  # (m, dims, n0, d)
            (8, 2, 8, 4),
            (8, 2, 4, 4),
            (6, 3, 6, 4),
            (6, 3, 3, 4),
            (6, 3, 2, 8),
            (4, 4, 2, 4),
        ]
        if quick
        else [
            (12, 2, 12, 4),
            (12, 2, 4, 8),
            (8, 3, 8, 4),
            (8, 3, 4, 8),
            (8, 3, 2, 16),
            (6, 4, 3, 8),
        ]
    )
    rows = []
    for m, dims, n0, d in configs:
        res = simulate_nd_on_uniform_array(m, dims, n0, d, steps=None)
        est = ndim_slowdown_estimate(m, dims, n0, d)
        rows.append(
            {
                "guest": f"{m}^{dims}",
                "n0": n0,
                "d": d,
                "g": res.g,
                "case": 1 if res.g == 1 else 2,
                "slowdown": round(res.slowdown, 1),
                "estimate": round(est, 1),
                "redundancy": round(res.redundancy, 2),
                "verified": res.verified,
            }
        )

    return ExperimentResult(
        "X2",
        "Section 5 remark - Theorem 8 generalized to D dimensions",
        rows,
        summary={
            "all verified": all(r["verified"] for r in rows),
            "redundancy <= 3x in every dimension": all(
                r["redundancy"] <= 3.2 for r in rows
            ),
            "measured within 2.5x of the generalized estimate": all(
                r["slowdown"] <= 2.5 * r["estimate"] for r in rows
            ),
        },
    )
