"""E6 — Theorems 7-8: 2-D guests on linear hosts.

Sweeps both cases of Theorem 7 (one column per processor; column
blocks with redundant wedge recomputation), verifying every run
bit-for-bit, and composes with a measured OVERLAP factor for the
Theorem-8 form.
"""

from __future__ import annotations

import math

from repro.core.overlap import simulate_overlap
from repro.core.twodim import (
    simulate_2d_on_uniform_array,
    theorem8_slowdown_estimate,
    twodim_slowdown_estimate,
)
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the 2-D sweeps."""
    configs = (
        [  # (m, n_procs, d) spanning case 1 (g=1) and case 2 (g>1)
            (8, 8, 2),
            (12, 12, 4),
            (12, 6, 4),
            (12, 4, 8),
            (16, 4, 16),
        ]
        if quick
        else [(8, 8, 2), (16, 16, 4), (16, 8, 4), (16, 4, 8), (24, 6, 16), (32, 4, 32)]
    )
    rows = []
    for m, n0, d in configs:
        g = math.ceil(m / n0)
        steps = 2 * g if g > 1 else 4
        res = simulate_2d_on_uniform_array(m, n0, d, steps=steps)
        est = twodim_slowdown_estimate(m, n0, d)
        rows.append(
            {
                "m x m": f"{m}x{m}",
                "n0": n0,
                "d": d,
                "case": 1 if g == 1 else 2,
                "g": g,
                "slowdown": round(res.slowdown, 1),
                "thm7 estimate": round(est, 1),
                "redundancy": round(res.pebbles / (m * m * steps), 2),
                "verified": res.verified,
            }
        )

    # Theorem 8: compose a measured case-1 run with a measured OVERLAP
    # factor for simulating the intermediate array on a real host.
    m, n0, d_ave = (12, 12, 4) if quick else (16, 16, 4)
    t7 = simulate_2d_on_uniform_array(m, n0, d_ave, steps=4)
    host = HostArray.uniform(n0 * 2, d_ave)
    ov = simulate_overlap(host, steps=8, verify=False, engine=engine)
    composed = t7.slowdown * ov.slowdown
    n_guest = m * m
    return ExperimentResult(
        "E6",
        "Theorems 7-8 - m x m guest arrays on linear hosts",
        rows,
        summary={
            "all verified": all(r["verified"] for r in rows),
            "case-2 redundancy <= 3x (paper's factor)": all(
                r["redundancy"] <= 3.2 for r in rows
            ),
            "thm8 composed slowdown (measured t7 x overlap)": round(composed, 1),
            "thm8 analytic form": round(
                theorem8_slowdown_estimate(m, n_guest, d_ave), 1
            ),
        },
    )
