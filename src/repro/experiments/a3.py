"""A3 — ablation: dataflow vs database model (the paper's contrast).

The lower-bound section's moral: latency is easier to hide for
dataflow computations than for database computations.  Quantitatively,
on a uniform-delay host both models achieve ``O(sqrt(d))`` slowdown,
but the dataflow scheme computes every pebble **exactly once**
(redundancy 1.0) while Theorem 4's database scheme must replicate
(~2.7x here) — because a database-model pebble can only be computed by
a processor holding the right (unshippable) database.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law
from repro.core.dataflow import simulate_dataflow
from repro.core.uniform import simulate_uniform
from repro.experiments.base import ExperimentResult


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the model-contrast sweep."""
    n = 6 if quick else 8
    d_values = [4, 16, 64, 256] if quick else [4, 16, 64, 256, 1024]
    rows, ds, df_slows = [], [], []
    for d in d_values:
        df = simulate_dataflow(n, d, verify=(d <= 64))
        db = simulate_uniform(n, d, steps=df.steps, verify=False, engine=engine)
        db_red = db.exec_result.stats.pebbles / (db.assignment.m * db.steps)
        rows.append(
            {
                "d": d,
                "dataflow slow": round(df.slowdown, 2),
                "database slow": round(db.slowdown, 2),
                "dataflow redundancy": round(df.redundancy, 3),
                "database redundancy": round(db_red, 2),
                "df slow/sqrt(d)": round(df.normalized(), 2),
                "verified": df.verified,
            }
        )
        ds.append(d)
        df_slows.append(df.slowdown)

    fit = fit_power_law(ds, df_slows)
    return ExperimentResult(
        "A3",
        "Ablation - dataflow needs no redundancy; databases do",
        rows,
        summary={
            "dataflow exponent (~0.5)": round(fit.exponent, 3),
            "dataflow redundancy exactly 1.0": all(
                r["dataflow redundancy"] == 1.0 for r in rows
            ),
            "database redundancy > 2x": all(
                r["database redundancy"] > 2 for r in rows
            ),
            "same slowdown order": all(
                r["dataflow slow"] < 3 * r["database slow"] for r in rows
            ),
        },
    )
