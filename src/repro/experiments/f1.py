"""F1 — Figure 1: the pebble dependency structure.

Regenerates the data behind the paper's schematic: each pebble's three
parents, and the growth of dependency cones (the reason boundary
columns must flow between intervals at every level).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.machine.pebbles import cone_size, parents


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate parents and cone growth."""
    m = 64
    rows = []
    for i, t in [(8, 1), (8, 2), (8, 4), (8, 8), (32, 8), (32, 16), (2, 8)]:
        ps = parents(i, t)
        interior = cone_size(i, t, m)
        unclipped = t * t  # sum of widths 3,5,...,2t+1 is t(t+2); interior rows
        rows.append(
            {
                "pebble (i,t)": f"({i},{t})",
                "parents": str(ps),
                "cone size": interior,
                "cone if unclipped": t * (t + 2),
                "clipped by edge": interior < t * (t + 2),
            }
        )
    return ExperimentResult(
        "F1",
        "Figure 1 - pebble (i,t) depends on (i-1,t-1),(i,t-1),(i+1,t-1)",
        rows,
        summary={
            "cone width grows by 2 per step": True,
            "guest size": m,
        },
    )
