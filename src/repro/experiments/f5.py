"""F5 — Figure 5: census of the recursive level-k box host H2.

For each target size: long/unit link counts against the closed forms
``2^k`` and ``~ k 2^k d / log n``, the average delay (constant), and
the segment-size ladder — everything the Figure-5 construction
promises.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.lower_bounds.h2 import fact4_violations, h2_census
from repro.topology.generators import h2_host


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate the H2 census."""
    sizes = [64, 256, 1024] if quick else [64, 256, 1024, 4096]
    rows = []
    for n in sizes:
        h2 = h2_host(n)
        c = h2_census(h2)
        rows.append(
            {
                "n(target)": n,
                "procs": c["n_processors"],
                "level k": c["level"],
                "d": c["d"],
                "long links": c["long_links"],
                "expect 2^k": c["long_links_expected"],
                "unit links": c["unit_links"],
                "expect k2^k d/lg": c["unit_links_expected"],
                "d_ave": c["d_ave"],
                "segments": c["segments"],
                "fact4 ok": not fact4_violations(h2),
            }
        )
    return ExperimentResult(
        "F5",
        "Figure 5 - H2 level-k box construction census",
        rows,
        summary={
            "long links match 2^k exactly": all(
                r["long links"] == r["expect 2^k"] for r in rows
            ),
            "d_ave constant across sizes": max(r["d_ave"] for r in rows) < 8,
            "Fact 4 holds everywhere": all(r["fact4 ok"] for r in rows),
        },
    )
