"""Experiment registry and result container."""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.report import format_table

_EXPERIMENT_IDS = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
    "f1", "f2", "f3", "f4", "f5", "f6",
    "a1", "a2", "a3", "a4",
    "r1",
    "w1",
    "x1", "x2", "x3", "x4", "x5",
]


@dataclass
class ExperimentResult:
    """Rows + shape summary of one experiment run."""

    experiment: str
    title: str
    rows: list[dict]
    summary: dict = field(default_factory=dict)
    columns: list[str] | None = None
    #: Sweep wall-time attribution (``SweepProfile.as_dict()``), filled
    #: only when run_experiment(profile=True) / `repro run --telemetry`.
    profile: dict | None = None

    def render(self) -> str:
        """Paper-style text block: title, table, summary lines."""
        out = [f"== {self.experiment}: {self.title} =="]
        out.append(format_table(self.rows, self.columns))
        if self.summary:
            out.append("")
            for k, v in self.summary.items():
                out.append(f"  {k}: {v}")
        return "\n".join(out)

    def print(self) -> None:
        """Print :meth:`render` (bench/CLI convenience)."""
        print("\n" + self.render())

    def to_json(self) -> str:
        """Machine-readable form (rows + summary) for downstream
        tooling — plotting, regression tracking across commits."""

        def _clean(value):
            if isinstance(value, bool) or value is None:
                return value
            if isinstance(value, (int, float, str)):
                return value
            return str(value)

        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "rows": [{k: _clean(v) for k, v in r.items()} for r in self.rows],
            "summary": {str(k): _clean(v) for k, v in self.summary.items()},
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return list(_EXPERIMENT_IDS)


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Resolve ``run`` for an experiment id (lazy import)."""
    exp_id = exp_id.lower()
    if exp_id not in _EXPERIMENT_IDS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {_EXPERIMENT_IDS}")
    mod = importlib.import_module(f"repro.experiments.{exp_id}")
    return mod.run


def run_experiment(
    exp_id: str,
    quick: bool = True,
    workers: int | None = None,
    cache_dir: str | None = None,
    progress: bool = False,
    profile: bool = False,
    delta: bool = True,
    cache_limit: int | None = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment through the sweep engine.

    Every experiment executes inside an ambient
    :class:`~repro.runner.SweepRunner` configured here, so parameter
    grids routed through :func:`repro.runner.sweep` fan out across
    ``workers`` processes and reuse the content-hash cache at
    ``cache_dir`` (``None`` disables caching).  The result table is
    bit-for-bit identical at every worker count.

    ``delta=False`` (the CLI's ``--no-delta``) disables checkpoint
    suffix-replay for near-miss cached configs; ``cache_limit`` bounds
    the cache directory to that many entries (oldest evicted first).

    ``profile=True`` (the CLI's ``--telemetry``) attaches a
    :class:`~repro.telemetry.profile.SweepProfile` to the runner and
    returns its dict form on :attr:`ExperimentResult.profile` — wall
    time per worker/chunk plus the cache-hit vs recompute split,
    accumulated over every sweep the experiment issues.
    """
    import inspect

    from repro.runner import SweepRunner, using

    run = get_experiment(exp_id)
    # Cross-cutting knobs (e.g. the CLI's --engine) are forwarded only
    # to experiments whose run() declares them; the rest are unaffected.
    params = inspect.signature(run).parameters
    kwargs = {k: v for k, v in kwargs.items() if k in params}
    runner = SweepRunner(
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        profile=profile,
        delta=delta,
        cache_limit=cache_limit,
    )
    with using(runner):
        result = run(quick=quick, **kwargs)
    if runner.profile is not None:
        result.profile = runner.profile.as_dict()
    return result
