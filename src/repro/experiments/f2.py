"""F2 — Figure 2: the interval tree, its labels and the kill pattern.

Builds the binary tree T over a concrete skewed host and prints the
per-depth picture Figure 2 sketches: interval counts, how many nodes
were removed, label ranges, and where the killed processors sit.
"""

from __future__ import annotations

from repro.core.killing import kill_and_label
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate the annotated tree per depth."""
    n = 128 if quick else 256
    # Two disproportionately long links: their small enclosing
    # intervals blow the D_k budget and get killed (Figure 2's white
    # circles); the rest of the array stays live.
    delays = [1] * (n - 1)
    delays[n // 3] = 64 * n
    delays[(2 * n) // 3] = 32 * n
    host = HostArray(delays)
    res = kill_and_label(host)
    tree, params = res.tree, res.params

    rows = []
    for k in range(tree.height + 1):
        nodes = tree.nodes_at_depth(k)
        removed = [nd for nd in nodes if nd.removed]
        labels = [nd.label3 for nd in nodes if not nd.removed and nd.label3]
        rows.append(
            {
                "depth k": k,
                "intervals": len(nodes),
                "removed": len(removed),
                "D_k": round(params.D(k), 1),
                "m_k": round(params.m(k), 3),
                "min label3": round(min(labels), 2) if labels else "-",
                "max label3": round(max(labels), 2) if labels else "-",
            }
        )

    return ExperimentResult(
        "F2",
        "Figure 2 - interval tree with labels and killed intervals",
        rows,
        summary={
            "host": f"n={n}, d_ave={host.d_ave:.2f}, d_max={host.d_max}",
            "killed stage1": len(res.killed_stage1),
            "killed stage2": len(res.killed_stage2),
            "root label n'": res.n_prime,
        },
    )
