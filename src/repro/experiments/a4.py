"""A4 — ablation: multicast boundary streams.

OVERLAP's boundary columns can have several consumers on the same side
of the supplier (deep overlap nesting); delivering them as one
peel-off stream per direction instead of one unicast stream per
consumer cuts pebble-hops (host bandwidth use) without touching
correctness or, materially, the makespan.  This quantifies the saving
— one of the engineering choices DESIGN.md calls out.
"""

from __future__ import annotations

from repro.core.assignment import assign_databases
from repro.core.dense import build_executor
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the multicast on/off comparison across block factors."""
    n = 96 if quick else 160
    steps = 16 if quick else 24
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = 128
    host = HostArray(delays)
    killing = kill_and_label(host)
    prog = CounterProgram()

    rows = []
    savings = []
    for block in (1, 4, 8):
        asg = assign_databases(killing, block=block)
        uni = build_executor(engine, host, asg, prog, steps).run()
        multi = GreedyExecutor(host, asg, prog, steps, multicast=True).run()
        saving = 1 - multi.stats.pebble_hops / max(1, uni.stats.pebble_hops)
        savings.append(saving)
        rows.append(
            {
                "block": block,
                "unicast hops": uni.stats.pebble_hops,
                "multicast hops": multi.stats.pebble_hops,
                "hop saving": f"{saving:.1%}",
                "unicast slowdown": round(uni.stats.makespan / steps, 2),
                "multicast slowdown": round(multi.stats.makespan / steps, 2),
            }
        )

    return ExperimentResult(
        "A4",
        "Ablation - multicast boundary streams save bandwidth",
        rows,
        summary={
            "max hop saving": f"{max(savings):.1%}",
            "multicast never hurts makespan (within 5%)": all(
                r["multicast slowdown"] <= 1.05 * r["unicast slowdown"]
                for r in rows
            ),
        },
    )
