"""E4 — Theorem 5: the composed ``O(sqrt(d_ave) log^3 n)`` simulation.

Sweep ``d_ave`` on the composed (OVERLAP ∘ Theorem-4) assignment and
compare its scaling exponent against plain OVERLAP on the same hosts:
composition should cut the ``d_ave`` exponent from ~1 toward ~0.5.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law
from repro.core.composed import simulate_composed, theorem5_bound
from repro.core.overlap import simulate_overlap
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the composed-simulation sweep."""
    n = 32 if quick else 64
    d_values = [4, 16, 64] if quick else [4, 16, 64, 256]

    rows, ds, comp_slows, plain_slows = [], [], [], []
    for d in d_values:
        host = HostArray.uniform(n, d)
        comp = simulate_composed(host, verify=(d <= 16), engine=engine)
        plain = simulate_overlap(
            host, steps=comp.steps, block=1, verify=False, engine=engine
        )
        rows.append(
            {
                "d_ave": d,
                "q": comp.q,
                "m (composed)": comp.m,
                "composed slowdown": round(comp.slowdown, 2),
                "plain OVERLAP": round(plain.slowdown, 2),
                "slow/sqrt(d)": round(comp.normalized(), 2),
                "thm5 bound": round(theorem5_bound(host), 1),
                "verified": comp.verified,
            }
        )
        ds.append(d)
        comp_slows.append(comp.slowdown)
        plain_slows.append(plain.slowdown)

    fit_comp = fit_power_law(ds, comp_slows)
    fit_plain = fit_power_law(ds, plain_slows)
    return ExperimentResult(
        "E4",
        "Theorem 5 - composition cuts the d_ave exponent to ~1/2",
        rows,
        summary={
            "composed exponent (paper: ~0.5)": round(fit_comp.exponent, 3),
            "plain exponent (paper: ~1)": round(fit_plain.exponent, 3),
            "composition wins at large d": comp_slows[-1] < plain_slows[-1],
        },
    )
