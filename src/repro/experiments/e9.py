"""E9 — the baseline comparison (the paper's Section-1 claims).

On hosts with one long link of delay ``F`` (sweeping ``F``), compare:

* lockstep (circuit-style, slow the clock to ``d_max``) — closed form;
* single-copy greedy (no redundancy, all processors);
* prior-efficient (``~ n / d_max`` processors, big blocks);
* OVERLAP with block 1 and block 16.

The paper's claim: redundant computation makes the slowdown
``d_max``-independent — the blocked OVERLAP column should flatten while
every baseline grows linearly with ``F``, with the crossover where
``F`` exceeds the (polylog-sized) redundancy overhead.
"""

from __future__ import annotations

from repro.analysis.scaling import crossover_point, fit_power_law
from repro.core.baselines import (
    lockstep_slowdown,
    simulate_prior_efficient,
    simulate_single_copy,
)
from repro.core.overlap import simulate_overlap
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def _host(n: int, F: int) -> HostArray:
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = F
    return HostArray(delays)


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the baseline-comparison sweep."""
    n = 128 if quick else 256
    steps = 20 if quick else 32
    Fs = [16, 64, 256, 1024] if quick else [16, 64, 256, 1024, 4096]

    rows = []
    series = {"single": [], "overlap16": []}
    for F in Fs:
        host = _host(n, F)
        single = simulate_single_copy(host, steps=steps, verify=False, engine=engine)
        prior = simulate_prior_efficient(host, steps=steps, verify=False, engine=engine)
        ov1 = simulate_overlap(host, steps=steps, block=1, verify=False, engine=engine)
        ov16 = simulate_overlap(host, steps=steps, block=16, verify=False, engine=engine)
        rows.append(
            {
                "F (=d_max)": F,
                "lockstep": lockstep_slowdown(host),
                "1-copy": round(single.slowdown, 1),
                "prior n/dmax": round(prior.slowdown, 1),
                "OVERLAP b=1": round(ov1.slowdown, 1),
                "OVERLAP b=16": round(ov16.slowdown, 1),
            }
        )
        series["single"].append(single.slowdown)
        series["overlap16"].append(ov16.slowdown)

    fit_single = fit_power_law(Fs, series["single"])
    fit_ov = fit_power_law(Fs, series["overlap16"])
    cross = crossover_point(Fs, series["overlap16"], series["single"])
    return ExperimentResult(
        "E9",
        "Baselines vs OVERLAP as d_max grows (single long link)",
        rows,
        summary={
            "1-copy exponent in d_max (~1)": round(fit_single.exponent, 3),
            "blocked OVERLAP exponent (<< 1)": round(fit_ov.exponent, 3),
            "OVERLAP starts winning at F": cross,
            "who wins at the largest F": (
                "OVERLAP" if series["overlap16"][-1] < series["single"][-1] else "baseline"
            ),
        },
    )
