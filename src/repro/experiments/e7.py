"""E7 — Theorem 9: the one-copy lower bound on host H1.

Size sweep over ``H1(n)``: for the natural single-copy assignment the
audit exhibits the adversarial adjacent-database pair (or the work
bound) giving slowdown ``~ sqrt(n) = d_max``, and the measured greedy
run matches it.  Blocked OVERLAP on the same host — which is *allowed*
to replicate databases — beats it, demonstrating that redundant
computation is necessary and sufficient (the paper's Section 6 point).
"""

from __future__ import annotations

from repro.core.baselines import simulate_single_copy
from repro.core.overlap import simulate_overlap
from repro.experiments.base import ExperimentResult
from repro.lower_bounds.h1 import theorem9_audit
from repro.topology.generators import h1_host


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the H1 sweep."""
    sizes = [64, 144, 256, 576] if quick else [64, 144, 256, 576, 1024]
    steps = 10 if quick else 16
    rows = []
    for n in sizes:
        host = h1_host(n)
        single = simulate_single_copy(
            host, steps=steps, verify=quick and n <= 144, engine=engine
        )
        audit = theorem9_audit(single.assignment, host)
        overlap = simulate_overlap(
            host, steps=steps, block=8, verify=False, engine=engine
        )
        rows.append(
            {
                "n": n,
                "d_max=sqrt(n)": host.d_max,
                "d_ave": round(host.d_ave, 2),
                "audit bound": round(audit.bound, 1),
                "audit horn": audit.horn,
                "1-copy slowdown": round(single.slowdown, 1),
                "OVERLAP(b=8)": round(overlap.slowdown, 1),
                "verified": single.verified,
            }
        )

    crossover = next(
        (r["n"] for r in rows if r["OVERLAP(b=8)"] < r["1-copy slowdown"]), None
    )
    ov = [r["OVERLAP(b=8)"] for r in rows]
    return ExperimentResult(
        "E7",
        "Theorem 9 - one copy per database forces slowdown d_max on H1",
        rows,
        summary={
            "measured >= audit bound everywhere": all(
                r["1-copy slowdown"] >= r["audit bound"] for r in rows
            ),
            "1-copy slowdown tracks d_max": all(
                r["1-copy slowdown"] >= 0.45 * r["d_max=sqrt(n)"] for r in rows
            ),
            "OVERLAP slowdown is d_max-independent (flat)": max(ov) <= 2 * min(ov),
            "redundancy starts winning at n": crossover,
        },
    )
