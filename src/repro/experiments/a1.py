"""A1 — ablation: the host/guest bandwidth assumption.

The paper assumes host links carry ``log n`` pebbles per step and notes
that bandwidth 1 costs up to an extra ``log n`` factor.  Where does the
assumption actually bite?  Two regimes:

* **1-D OVERLAP boundary streams** are thin — a supplier emits a given
  column's pebble only once per ~load steps — so per-link offered load
  is below 1 pebble/step and the measured slowdown is *insensitive* to
  bandwidth.  (A finding, not a bug: the paper's remark after Theorem 2
  says the guest's own bandwidth suffices for these streams.)
* **Bulk column exchanges** (Theorem 7's 2-D simulation ships whole
  ``m``-cell columns per guest step; Theorem 4 ships ``q``-pebble
  column groups per round) are burst traffic: the transit term is
  ``d + ceil(P/bw) - 1``, so bandwidth 1 visibly inflates the slowdown
  and ``bw = log n`` recovers most of it.
"""

from __future__ import annotations

import math

from repro.core.overlap import simulate_overlap
from repro.core.twodim import simulate_2d_on_uniform_array
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run both bandwidth sweeps."""
    n = 96 if quick else 160
    steps = 16 if quick else 24
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = 256
    host = HostArray(delays)
    lg = max(1, math.ceil(math.log2(n)))

    m2d, d2d = (24, 8) if quick else (48, 16)
    lg2 = max(1, math.ceil(math.log2(m2d)))

    rows = []
    one_d = {}
    two_d = {}
    for bw in [1, 2, lg, 4 * lg]:
        ov = simulate_overlap(
            host, steps=steps, block=8, bandwidth=bw, verify=False, engine=engine
        )
        td = simulate_2d_on_uniform_array(
            m2d, m2d, d2d, steps=4, bandwidth=bw, verify=False
        )
        one_d[bw] = ov.slowdown
        two_d[bw] = td.slowdown
        rows.append(
            {
                "bandwidth": bw,
                "is log n": bw == lg,
                "1-D OVERLAP slowdown": round(ov.slowdown, 2),
                "2-D bulk slowdown": round(td.slowdown, 2),
            }
        )

    thin_ratio = one_d[1] / one_d[lg]
    bulk_ratio = two_d[1] / two_d[lg]
    gap_recovered = (two_d[1] - two_d[lg]) / max(1e-9, two_d[1] - two_d[4 * lg])
    return ExperimentResult(
        "A1",
        "Ablation - host bandwidth (the paper's log n assumption)",
        rows,
        summary={
            "log n": lg,
            "1-D streams: bw=1 penalty (thin traffic, ~1.0)": round(thin_ratio, 2),
            "2-D bulk: bw=1 penalty (paper: <= ~log n)": round(bulk_ratio, 2),
            "bulk penalty real but within log n": 1.05 <= bulk_ratio <= lg,
            "share of bw=1 gap that bw=log n recovers": round(gap_recovered, 2),
            "log n recovers most of the bulk gap": gap_recovered >= 0.7,
        },
    )
