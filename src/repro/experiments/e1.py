"""E1 — Theorem 2: OVERLAP's slowdown is ``O(d_ave log^3 n)``.

Two sweeps on the blocked OVERLAP simulation:

* ``d_ave`` sweep at fixed ``n``: the measured slowdown should grow
  ~linearly in ``d_ave`` (log-log exponent near 1), and stay below the
  explicit schedule bound at every point;
* ``n`` sweep at fixed ``d_ave``: growth should be polylogarithmic
  (slowdown per ``d_ave`` grows far slower than ``n``).

Both grids run through :func:`repro.runner.sweep`, so ``--workers``
fans the points across processes and identical configs are served from
the sweep cache; every grid point is a pure function of its config
(fixed host seeds), which keeps the table bit-for-bit identical at any
worker count.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.core.overlap import simulate_overlap
from repro.delta import (
    DeltaSpec,
    delta_task,
    horizon_rule,
    outcome_from_overlap,
)
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.runner import sweep
from repro.topology.delays import scale_to_average, uniform_delays


def _host(n: int, d_target: float, seed: int = 0) -> HostArray:
    rng = np.random.default_rng(seed)
    raw = uniform_delays(n - 1, rng, 1, 8)
    return HostArray(scale_to_average(raw, d_target))


def _ckpt_stride(cfg: dict) -> int:
    """Checkpoint every ~couple guest rows' worth of host steps: a few
    restore points per run (restores for horizon extensions must land
    before ``first_top_t``, which precedes the makespan), sidecars stay
    small."""
    return max(8, 2 * cfg["steps"])


def _d_eval(cfg: dict, resume_from=None, checkpoint_stride=None):
    n, d = cfg["n"], cfg["d"]
    host = _host(n, d) if d > 1 else HostArray.uniform(n, 1)
    res = simulate_overlap(
        host,
        steps=cfg["steps"],
        block=2,
        verify=cfg["verify"],
        engine=cfg.get("engine", "auto"),
        checkpoint_stride=checkpoint_stride,
        resume_from=resume_from,
    )
    out = {
        "row": {
            "sweep": "d_ave",
            "n": n,
            "d_ave": round(host.d_ave, 2),
            "d_max": host.d_max,
            "m": res.m,
            "slowdown": round(res.slowdown, 2),
            "bound": round(res.schedule_slowdown_bound(), 1),
            "load": res.load,
            "verified": res.verified,
        },
        "x": max(1.0, host.d_ave),
        "y": res.slowdown,
    }
    return out, res


def _d_capture(cfg: dict):
    out, res = _d_eval(cfg, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, out)


def _d_resume(cfg: dict, ck):
    out, res = _d_eval(cfg, resume_from=ck, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, out)


@delta_task(DeltaSpec(rules={"steps": horizon_rule}, capture=_d_capture, resume=_d_resume))
def _d_point(cfg: dict) -> dict:
    """One ``d_ave``-sweep grid point (sweep task; ``steps``
    extensions are delta-eligible)."""
    return _d_eval(cfg)[0]


def _n_eval(cfg: dict, resume_from=None, checkpoint_stride=None):
    nn = cfg["n"]
    host = _host(nn, 4, seed=1)
    res = simulate_overlap(
        host,
        steps=cfg["steps"],
        block=2,
        verify=False,
        engine=cfg.get("engine", "auto"),
        checkpoint_stride=checkpoint_stride,
        resume_from=resume_from,
    )
    degenerate = res.schedule.k_max == 0  # theory needs n >> c log n
    bound = res.schedule_slowdown_bound()
    out = {
        "row": {
            "sweep": "n",
            "n": nn,
            "d_ave": round(host.d_ave, 2),
            "d_max": host.d_max,
            "m": res.m,
            "slowdown": round(res.slowdown, 2),
            "bound": "n/a" if degenerate else round(bound, 1),
            "load": res.load,
            "verified": res.verified,
        },
        "x": nn,
        "y": res.slowdown,
        "bound_ok": None if degenerate else res.slowdown <= bound,
    }
    return out, res


def _n_capture(cfg: dict):
    out, res = _n_eval(cfg, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, out)


def _n_resume(cfg: dict, ck):
    out, res = _n_eval(cfg, resume_from=ck, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, out)


@delta_task(DeltaSpec(rules={"steps": horizon_rule}, capture=_n_capture, resume=_n_resume))
def _n_point(cfg: dict) -> dict:
    """One ``n``-sweep grid point (sweep task; ``steps`` extensions
    are delta-eligible)."""
    return _n_eval(cfg)[0]


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the Theorem-2 sweeps."""
    n = 96 if quick else 192
    steps = 12 if quick else 24
    d_values = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32]

    d_points = sweep(
        _d_point,
        [
            {"n": n, "steps": steps, "d": d, "verify": quick, "engine": engine}
            for d in d_values
        ],
    )
    rows = [pt["row"] for pt in d_points]
    ds = [pt["x"] for pt in d_points]
    slows = [pt["y"] for pt in d_points]
    # Fit the tail: at small d the per-pebble compute term dominates
    # and flattens the curve; the theorem is about the latency term.
    fit_d = fit_power_law(ds[-3:], slows[-3:])

    n_points = sweep(
        _n_point,
        [
            {"n": nn, "steps": steps, "engine": engine}
            for nn in ([32, 64, 128] if quick else [32, 64, 128, 256, 512])
        ],
    )
    rows.extend(pt["row"] for pt in n_points)
    bound_ok = [pt["bound_ok"] for pt in n_points if pt["bound_ok"] is not None]
    fit_n = fit_power_law([pt["x"] for pt in n_points], [pt["y"] for pt in n_points])

    below_bound = all(
        r["slowdown"] <= r["bound"]
        for r in rows
        if isinstance(r["bound"], (int, float))
    ) and all(bound_ok)
    return ExperimentResult(
        "E1",
        "Theorem 2 - OVERLAP slowdown ~ d_ave * polylog(n)",
        rows,
        summary={
            "d_ave exponent (paper: ~1)": round(fit_d.exponent, 3),
            "n exponent (paper: polylog, i.e. << 1)": round(fit_n.exponent, 3),
            "all points below schedule bound": below_bound,
        },
    )
