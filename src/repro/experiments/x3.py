"""X3 — calibrating the constants behind the O(.)s.

The theorems leave their constants unspecified; a downstream adopter
needs the *measured* constants of this implementation.  X3 fits the
claimed functional forms by least squares:

* Theorem 4:  ``slowdown = c1 sqrt(d) + c0`` — the proof's explicit
  accounting gives ``c1 <= 5``; greedy execution realises less.
* Theorem 2:  ``slowdown = c1 d_ave + c0`` at fixed n (blocked).
* Theorem 7 case 2:  ``slowdown = c1 (m g) + c0`` — the paper's
  redundant-pebble count says ``c1 ~ 3``.
"""

from __future__ import annotations

from repro.analysis.calibrate import calibration_table
from repro.experiments.base import ExperimentResult


def run(quick: bool = True) -> ExperimentResult:
    """Fit the constants."""
    rows = calibration_table()
    t4 = rows[0]
    t7 = rows[2]
    return ExperimentResult(
        "X3",
        "Calibration - measured constants of the paper's bounds",
        rows,
        summary={
            "Thm 4 constant within the paper's 5": t4["measured c1"] <= 5.0,
            "Thm 7 constant within the paper's 3": t7["measured c1"] <= 3.2,
            "all fits high quality (R^2 > 0.95)": all(
                r["R^2"] > 0.95 for r in rows
            ),
        },
    )
