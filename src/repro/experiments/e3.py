"""E3 — Theorem 4: slowdown ``O(sqrt(d))`` on uniform-delay hosts.

Delay sweep with the ``P_j`` block assignment, fanned out through
:func:`repro.runner.sweep`.  Checks: measured slowdown stays below the
explicit 5d-per-round phased bound, the ``slowdown / sqrt(d)`` column
is flat, and the log-log exponent is ~0.5 (the matching lower bound
``Omega(sqrt(d))`` is from [2]).
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law
from repro.core.uniform import block_width, phased_bound, simulate_uniform
from repro.experiments.base import ExperimentResult
from repro.runner import sweep


def _point(cfg: dict) -> dict:
    """One delay-sweep grid point (sweep task)."""
    n, d = cfg["n"], cfg["d"]
    q = block_width(d)
    steps = 2 * q
    res = simulate_uniform(
        n, d, steps=steps, verify=cfg["verify"], engine=cfg.get("engine", "auto")
    )
    bound = phased_bound(d, steps, q, res.host.default_bandwidth()) / steps
    return {
        "row": {
            "d": d,
            "q=sqrt(d)": q,
            "m": res.assignment.m,
            "steps": steps,
            "slowdown": round(res.slowdown, 2),
            "slow/sqrt(d)": round(res.normalized(), 2),
            "phased bound": round(bound, 1),
            "naive (d+1)": d + 1,
            "verified": res.verified,
        },
        "x": d,
        "y": res.slowdown,
    }


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the Theorem-4 delay sweep."""
    n = 6 if quick else 10
    d_values = [4, 16, 64, 256] if quick else [4, 16, 64, 256, 1024]

    points = sweep(
        _point,
        [
            {"n": n, "d": d, "verify": (d <= 64 or not quick), "engine": engine}
            for d in d_values
        ],
    )
    rows = [pt["row"] for pt in points]

    fit = fit_power_law([pt["x"] for pt in points], [pt["y"] for pt in points])
    return ExperimentResult(
        "E3",
        "Theorem 4 - sqrt(d) slowdown on uniform-delay hosts",
        rows,
        summary={
            "log-log exponent (paper: 0.5)": round(fit.exponent, 3),
            "fit R^2": round(fit.r_squared, 4),
            "beats naive at d >= 64": all(
                r["slowdown"] < r["naive (d+1)"] for r in rows if r["d"] >= 64
            ),
            "all below phased bound": all(
                r["slowdown"] <= r["phased bound"] for r in rows
            ),
        },
    )
