"""A2 — ablation: the constant ``c`` of the killing/labelling stages.

The paper proves OVERLAP works "for any constant c > 2" — ``c`` trades
usable guest size against killing aggressiveness: bigger ``c`` kills
fewer processors (Lemma 1's ``n/c``) and keeps a larger root label
(Lemma 2's ``(1-2/c)n``) but shrinks every overlap window ``m_k =
n/(c 2^k lg n)``, weakening latency amortisation.  Sweep ``c`` on a
skewed host and report the realised guest size, killed fraction and
slowdown.
"""

from __future__ import annotations

from repro.core.overlap import simulate_overlap
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the c sweep."""
    n = 128 if quick else 256
    steps = 16 if quick else 24
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = 512
    delays[n // 4] = 64 * n  # stage-1 bait: out of proportion locally
    host = HostArray(delays)

    rows = []
    for c in [2.5, 3.0, 4.0, 6.0, 10.0]:
        res = simulate_overlap(
            host, steps=steps, block=4, c=c, verify=False, engine=engine
        )
        rows.append(
            {
                "c": c,
                "guest m": res.m,
                "m floor (1-2/c)n*4": round((1 - 2 / c) * n * 4, 0),
                "killed frac": round(res.killing.killed_fraction(), 3),
                "kill cap 2/c": round(2 / c, 3),
                "slowdown": round(res.slowdown, 2),
                "overlap m_1": round(res.killing.params.m(1), 2),
            }
        )

    return ExperimentResult(
        "A2",
        "Ablation - the constant c (any c > 2 works; trade-offs shift)",
        rows,
        summary={
            "guest size grows with c": rows[-1]["guest m"] >= rows[0]["guest m"],
            "killed fraction within 2/c everywhere": all(
                r["killed frac"] <= r["kill cap 2/c"] + 0.05 for r in rows
            ),
            "guest size meets the Lemma-2 floor": all(
                r["guest m"] >= r["m floor (1-2/c)n*4"] - 4 for r in rows
            ),
        },
    )
