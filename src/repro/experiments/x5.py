"""X5 — incremental re-simulation demo (delta-driven sweeps).

A scripted faulted run whose config carries every simulation input in
structured form — horizon, fault-plan spec, recovery-policy knobs — so
each knob is individually delta-eligible.  Re-sweeping after a
one-knob edit (moving a fault, tweaking ``restart_penalty``, extending
the horizon) restores a checkpoint from the cached neighbour and
replays only the suffix; the rows are bit-identical to a full
recompute (each carries a digest over the final pebble values to make
"identical" checkable at a glance).

``benchmarks/bench_delta.py`` and ``tests/test_delta.py`` reuse
:func:`base_config` / :func:`edit_grid` so the measured and the gated
grids are the same shape as this demo.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.overlap import simulate_overlap
from repro.delta import (
    DeltaSpec,
    delta_task,
    fault_events_rule,
    horizon_rule,
    outcome_from_overlap,
    policy_rule,
)
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan, RecoveryPolicy
from repro.runner import sweep


def base_plan(n: int, horizon: int) -> FaultPlan:
    """Scripted plan: one crash plus link trouble, all in the second
    half of ``[0, horizon)`` so plenty of checkpoints land before any
    edit's blast radius."""
    mid = max(2, n // 2)
    plan = (
        FaultPlan.empty()
        .crash(mid, int(horizon * 0.55))
        .link_down(max(0, mid - 2), int(horizon * 0.65), duration=8)
        .jitter(min(n - 2, mid + 3), int(horizon * 0.70), duration=6, extra=3)
        .drop(min(n - 2, mid + 1), int(horizon * 0.75))
    )
    # Fixed declared window, deliberately larger than any horizon the
    # demo sweeps: the spec's own horizon must not vary with ``steps``
    # (a changed declared horizon re-filters every event and would make
    # the edit delta-ineligible).
    return plan.declare_horizon(max(4 * horizon, 64))


def base_config(
    n: int = 24, steps: int = 10, verify: bool = True, horizon: int | None = None
) -> dict:
    """The demo's base sweep config (all simulation inputs, structured)."""
    if horizon is None:
        # Uniform host, block 1: makespan scales like steps * n-ish;
        # a rough horizon keeps the scripted faults mid-run.
        horizon = 6 * steps
    return {
        "n": n,
        "steps": steps,
        "faults": base_plan(n, horizon).to_spec(),
        "policy": {
            "retry_factor": 4.0,
            "max_retries": 32,
            "restart_penalty": 8,
            "watchdog_factor": 8.0,
        },
        "verify": verify,
    }


def edit_grid(base: dict, k: int = 4) -> list[dict]:
    """``k`` one-knob edits of ``base``, each within a rule's blast
    radius: shifted late-fault times, a recovery-policy tweak, and a
    horizon extension."""
    out = []
    for i in range(k):
        cfg = json.loads(json.dumps(base))  # deep copy, JSON-safe
        which = i % 3
        if which == 0:  # move the latest fault event a little later
            ev = max(cfg["faults"]["events"], key=lambda e: e["time"])
            ev["time"] += 2 + i
        elif which == 1:  # recovery knob consulted only after a fault
            cfg["policy"]["restart_penalty"] = 8 + 2 * (i + 1)
        else:  # extend the horizon; divergence bounded by first_top_t
            cfg["steps"] += 1 + i // 3
        out.append(cfg)
    return out


def _digest(value_digests: dict) -> str:
    blob = json.dumps(sorted((list(k), v) for k, v in value_digests.items()))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _edit_eval(cfg: dict, resume_from=None, checkpoint_stride=None):
    host = HostArray.uniform(cfg["n"])
    plan = FaultPlan.from_spec(cfg["faults"])
    policy = RecoveryPolicy(**cfg["policy"])
    res = simulate_overlap(
        host,
        steps=cfg["steps"],
        min_copies=2,
        faults=plan,
        policy=policy,
        verify=cfg["verify"],
        checkpoint_stride=checkpoint_stride,
        resume_from=resume_from,
    )
    stats = res.exec_result.stats
    row = {
        "n": cfg["n"],
        "steps": cfg["steps"],
        "faults": len(plan),
        "makespan": stats.makespan,
        "recoveries": stats.recoveries,
        "retries": stats.retries,
        "lost msgs": stats.lost_messages,
        "digest": _digest(res.exec_result.value_digests),
        "verified": res.verified,
    }
    return row, res


def _ckpt_stride(cfg: dict) -> int:
    # Tight stride: the demo's policy/horizon edits have blast radii
    # near the first fault (~0.55 * horizon), so a restore point must
    # exist well before mid-run.
    return max(8, 2 * cfg["steps"])


def _edit_capture(cfg: dict):
    row, res = _edit_eval(cfg, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, row)


def _edit_resume(cfg: dict, ck):
    row, res = _edit_eval(cfg, resume_from=ck, checkpoint_stride=_ckpt_stride(cfg))
    return outcome_from_overlap(res, row)


@delta_task(
    DeltaSpec(
        rules={
            "steps": horizon_rule,
            "faults": fault_events_rule,
            "policy": policy_rule,
        },
        capture=_edit_capture,
        resume=_edit_resume,
    )
)
def _edit_point(cfg: dict) -> dict:
    """One scripted-fault grid point; every simulation input sits in
    the config under a delta rule."""
    return _edit_eval(cfg)[0]


def run(quick: bool = True) -> ExperimentResult:
    """Sweep the base config plus its one-knob edits, twice: the second
    pass is served from cache/delta when a cache dir is active."""
    from repro.runner import active_runner

    base = base_config(n=24 if quick else 48, steps=10 if quick else 14)
    edits = edit_grid(base, k=3 if quick else 6)

    # Seed the base point first, in its own sweep: the edit sweep then
    # finds it as a cached neighbour and replays only suffixes (when a
    # cache dir is active; uncached runs compute everything fully).
    rows = sweep(_edit_point, [base])
    rows += sweep(_edit_point, edits)
    delta_hits = active_runner().last_delta_hits
    rows2 = sweep(_edit_point, [base] + edits)  # warm pass: plain hits

    return ExperimentResult(
        "X5",
        "Incremental re-simulation - one-knob edits replay only suffixes",
        rows,
        summary={
            "warm pass identical": rows == rows2,
            "distinct digests (edits change outcomes)": len(
                {r["digest"] for r in rows}
            ),
            "delta suffix-replays (needs cache dir)": delta_hits,
            "every run verified": all(r["verified"] for r in rows),
        },
    )
