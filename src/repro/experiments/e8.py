"""E8 — Theorem 10: the two-copy lower bound on host H2.

Size sweep over ``H2(n)``: Fact 4 is checked structurally, the paper's
case analysis yields the ``Omega(log n)`` analytic bound for the
natural constant-load two-copy (windowed) assignment, and the measured
greedy slowdown grows at least logarithmically — while staying far
below ``d = sqrt(n)``, which is what makes the logarithmic floor the
interesting quantity.
"""

from __future__ import annotations

from repro.core.executor import run_assignment
from repro.experiments.base import ExperimentResult
from repro.lower_bounds.audit import windowed_assignment
from repro.lower_bounds.h2 import fact4_violations, theorem10_bound
from repro.machine.programs import CounterProgram
from repro.topology.generators import h2_host


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the H2 sweep."""
    sizes = [64, 256, 1024] if quick else [64, 256, 1024, 4096]
    steps = 8 if quick else 12
    rows = []
    prog = CounterProgram()
    for n in sizes:
        h2 = h2_host(n)
        arr = h2.array
        asg = windowed_assignment(arr.n, arr.n, copies=2)
        bound = theorem10_bound(h2, asg)
        result = run_assignment(arr, asg, prog, steps, engine=engine)
        slowdown = result.stats.makespan / steps
        rows.append(
            {
                "n(target)": n,
                "procs": arr.n,
                "d": h2.d,
                "log n": round(h2.log_n, 1),
                "fact4 ok": not fact4_violations(h2),
                "case": bound["case"],
                "analytic bnd": round(bound["analytic_bound"], 2),
                "measured": round(slowdown, 1),
                "measured/log n": round(slowdown / h2.log_n, 2),
            }
        )

    logs = [r["log n"] for r in rows]
    meas = [r["measured"] for r in rows]
    grows = all(b >= a for a, b in zip(meas, meas[1:]))
    return ExperimentResult(
        "E8",
        "Theorem 10 - two copies + constant load still pay Omega(log n) on H2",
        rows,
        summary={
            "Fact 4 holds on every instance": all(r["fact4 ok"] for r in rows),
            "measured >= analytic bound": all(
                r["measured"] >= r["analytic bnd"] for r in rows
            ),
            "measured grows with log n": grows,
            "measured stays below d = sqrt(n)": all(
                r["measured"] <= r["d"] * 2 for r in rows
            ),
        },
    )
