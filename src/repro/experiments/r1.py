"""R1 — robustness: slowdown vs. mid-run fault rate.

Sweep the per-node crash rate on a uniform host with ``min_copies=2``
replication and a seeded random :class:`~repro.netsim.faults.FaultPlan`
for each rate.  Every run either completes ``verified=True`` (possibly
on a reduced surviving guest, after epoch restarts) or raises
:class:`~repro.core.executor.SimulationDeadlock` — never silently-wrong
values.

Expected shape: the zero-rate row is bit-identical to the fault-free
path; degradation (slowdown relative to fault-free) grows with the
fault rate as crashes trigger epoch restarts, and the surviving guest
``m`` shrinks monotonically-ish with the number of crashed
database-holding nodes.
"""

from __future__ import annotations

from repro.analysis.metrics import degradation, survival_fraction
from repro.core.executor import SimulationDeadlock
from repro.core.overlap import simulate_overlap
from repro.delta import (
    DeltaOutcome,
    DeltaSpec,
    cosmetic_rule,
    delta_task,
    horizon_rule,
    outcome_from_overlap,
)
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan
from repro.runner import sweep

#: Seed for the per-rate random plans (fixed: R1 is fully deterministic).
SEED = 1996


def _rate_eval(cfg: dict, resume_from=None, checkpoint_stride=None):
    """Evaluate one fault-rate grid point; returns ``(row, res)`` where
    ``res`` is ``None`` when the run deadlocked (deadlocked runs leave
    no restorable suffix, so they never serve as delta bases)."""
    host = HostArray.uniform(cfg["n"])
    rate = cfg["rate"]
    plan = FaultPlan.random(
        host.n,
        seed=cfg["seed"],
        horizon=cfg["horizon"],
        node_crash_rate=rate,
        drop_rate=rate / 2,
    )
    outcome = "ok"
    res = None
    try:
        res = simulate_overlap(
            host,
            steps=cfg["steps"],
            min_copies=2,
            faults=plan,
            verify=True,
            checkpoint_stride=checkpoint_stride,
            resume_from=resume_from,
        )
        stats = res.exec_result.stats
        row = {
            "crash rate": rate,
            "faults": len(plan),
            "crashed": stats.crashed_nodes,
            "m": res.m,
            "m surviving": res.m_surviving,
            "survival": round(survival_fraction(res.m_surviving, res.m), 3),
            "recoveries": stats.recoveries,
            "retries": stats.retries,
            "lost msgs": stats.lost_messages,
            "slowdown": round(res.slowdown, 2),
            "degradation": round(degradation(res.slowdown, cfg["clean_slowdown"]), 2),
            "verified": res.verified,
        }
    except SimulationDeadlock as exc:
        outcome = "deadlock"
        row = {
            "crash rate": rate,
            "faults": len(plan),
            "crashed": len(plan.crash_positions()),
            "m": cfg["clean_m"],
            "m surviving": 0,
            "survival": 0.0,
            "recoveries": 0,
            "retries": 0,
            "lost msgs": 0,
            # String sentinel: the sweep cache rejects non-finite floats
            # (they have no canonical JSON form).
            "slowdown": "inf",
            "degradation": "inf",
            "verified": False,
        }
        row["outcome"] = f"deadlock: {str(exc)[:60]}"
    row.setdefault("outcome", outcome)
    return row, res


def _rate_capture(cfg: dict) -> DeltaOutcome:
    row, res = _rate_eval(cfg, checkpoint_stride=max(16, 4 * cfg["steps"]))
    if res is None:
        return DeltaOutcome(row)
    return outcome_from_overlap(res, row)


def _rate_resume(cfg: dict, ck) -> DeltaOutcome:
    row, res = _rate_eval(
        cfg, resume_from=ck, checkpoint_stride=max(16, 4 * cfg["steps"])
    )
    if res is None:
        return DeltaOutcome(row)
    return outcome_from_overlap(res, row)


@delta_task(
    DeltaSpec(
        rules={
            "steps": horizon_rule,
            # The clean-run baselines only feed the degradation /
            # deadlock-row columns (post-processing); the simulation
            # never reads them.
            "clean_slowdown": cosmetic_rule,
            "clean_m": cosmetic_rule,
        },
        capture=_rate_capture,
        resume=_rate_resume,
    )
)
def _rate_point(cfg: dict) -> dict:
    """One fault-rate grid point (sweep task).

    The config carries everything the point depends on — including the
    clean-run slowdown/guest size the degradation columns are relative
    to — so the cache key captures the full input state.  ``steps``
    extensions and clean-baseline edits are delta-eligible.
    """
    return _rate_eval(cfg)[0]


def run(quick: bool = True, n: int | None = None) -> ExperimentResult:
    """Run the fault-rate sweep."""
    n = n or (48 if quick else 96)
    steps = 8 if quick else 12
    host = HostArray.uniform(n)

    clean = simulate_overlap(host, steps=steps, min_copies=2, verify=True)
    horizon = max(8, clean.exec_result.stats.makespan)
    rates = [0.0, 0.05, 0.10, 0.15, 0.25]

    rows = sweep(
        _rate_point,
        [
            {
                "n": n,
                "steps": steps,
                "rate": rate,
                "seed": SEED + i,
                "horizon": horizon,
                "clean_slowdown": clean.slowdown,
                "clean_m": clean.m,
            }
            for i, rate in enumerate(rates)
        ],
    )

    completed = [r for r in rows if r["outcome"] == "ok"]
    return ExperimentResult(
        "R1",
        "Robustness - slowdown vs mid-run fault rate (min_copies=2)",
        rows,
        summary={
            "zero-rate run identical to fault-free": (
                rows[0]["slowdown"] == round(clean.slowdown, 2)
                and rows[0]["m surviving"] == clean.m
            ),
            "every run verified or deadlocked": all(
                r["verified"] or r["outcome"].startswith("deadlock") for r in rows
            ),
            "degradation grows with fault rate": (
                len(completed) < 2
                or completed[-1]["degradation"] >= completed[0]["degradation"]
            ),
            "fault-free slowdown": round(clean.slowdown, 2),
        },
    )
