"""E2 — Theorem 3: the work-efficient blocked variant.

Block-factor sweep on a fixed skewed host.  The paper's claim: with
``beta = d_ave log^3 n`` databases per processor the simulation is
*work efficient* — the load grows to ``O(beta)`` but the slowdown stays
``O(d_ave log^3 n)`` while efficiency (guest work per host
processor-step) becomes a constant.
"""

from __future__ import annotations

from repro.core.overlap import simulate_overlap, work_efficient_block
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def _skewed_host(n: int, big: int) -> HostArray:
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = big
    return HostArray(delays)


def run(quick: bool = True, engine: str = "auto") -> ExperimentResult:
    """Run the block-factor sweep."""
    n = 96 if quick else 160
    big = 512
    steps = 20 if quick else 32
    host = _skewed_host(n, big)
    blocks = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32]

    rows = []
    effs = []
    for beta in blocks:
        res = simulate_overlap(
            host, steps=steps, block=beta, verify=(beta <= 4), engine=engine
        )
        effs.append(res.efficiency())
        rows.append(
            {
                "block beta": beta,
                "m": res.m,
                "load": res.load,
                "slowdown": round(res.slowdown, 2),
                "efficiency": round(res.efficiency(), 4),
                "redundancy": round(res.assignment.redundancy(), 2),
                "verified": res.verified,
            }
        )

    paper_beta = work_efficient_block(host, polylog_exponent=1)
    return ExperimentResult(
        "E2",
        "Theorem 3 - blocking restores work efficiency",
        rows,
        summary={
            "efficiency gain (max block / load-1)": round(max(effs) / effs[0], 2),
            "paper's beta (with log^1 knob)": paper_beta,
            "d_max hidden": rows[-1]["slowdown"] < big / 2,
        },
    )
