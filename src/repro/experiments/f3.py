"""F3 — Figure 3: the recursive box structure of the schedule.

For each recursion depth ``k``: the box height ``m_k``, the sibling
overlap ``m_{k+1}``, the inter-child exchange budget ``D_k``, and the
schedule value ``s_{m_k}^(k)`` — the quantities Figure 3's picture of
``B_{k+1}`` / ``B'_{k+1}`` encodes.
"""

from __future__ import annotations

from repro.core.killing import OverlapParams, kill_and_label
from repro.core.schedule import build_schedule, feasibility_report
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate the box recursion."""
    n = 256 if quick else 1024
    d = 4
    params = OverlapParams.for_host(HostArray.uniform(n, d))
    table = build_schedule(params)

    rows = []
    for k in range(table.k_max + 1):
        h = table.heights[k]
        rows.append(
            {
                "depth k": k,
                "box height m_k": h,
                "overlap m_{k+1}": table.heights[k + 1] if k < table.k_max else "-",
                "D_k": round(params.D(k), 1),
                "s(m_k)": round(table.s[k][h], 1),
                "s per row": round(table.s[k][h] / h, 1),
            }
        )

    killing = kill_and_label(HostArray.uniform(n, d))
    feas = feasibility_report(killing, table)
    return ExperimentResult(
        "F3",
        "Figure 3 - boxes B_k, sibling overlap, and exchange budgets",
        rows,
        summary={
            "k_max": table.k_max,
            "makespan bound s(m_0)": round(table.makespan_bound(), 1),
            "slowdown bound": round(table.slowdown_bound(), 1),
            "host": f"n={n}, uniform d={d}",
            "Thm-1 interval budgets hold": feas["interval_budgets_hold"],
            "Thm-1 atomic rows feasible": feas["atomic_rows_feasible"],
        },
    )
