"""W1 — tail latency: execution policy vs. link-jitter intensity.

Sweep the policy family of :mod:`repro.core.racing` (single-issue,
redundant-issue racing, work stealing, and both) against scripted
link jitter of growing intensity, on a replicated assignment
(``min_copies=2`` — racing needs a second owner to race).  Every row
reports the per-step latency percentiles (p50/p95/p99 host steps per
guest step) threaded through :class:`~repro.netsim.stats.SimStats`,
plus the racing cancellation ledger and the steal-move count.

Expected shape: on clean links racing buys little and costs messages
(the redundancy bill), while under heavy jitter the raced second
replica dodges degraded links and drops, pulling p99 below the
single-issue tail — the redundancy sweet-spot crossover of "Low
Latency via Redundancy".  Stealing helps when jitter concentrates on a
few hosts' links (their queues drain slower, so their columns migrate).

Every policy run is digest-verified against the reference execution,
so a policy can only ever change *when* pebbles complete, never their
values.
"""

from __future__ import annotations

from repro.core.overlap import simulate_overlap
from repro.core.racing import POLICIES
from repro.experiments.base import ExperimentResult
from repro.machine.host import HostArray
from repro.netsim.faults import FaultPlan
from repro.runner import sweep

#: Seed for the per-intensity jitter plans (fixed: W1 is deterministic).
SEED = 1996

#: Policy grid order (stable row order for reports and caching).
POLICY_GRID = ("single", "racing", "stealing", "racing+stealing")


def _policy_point(cfg: dict) -> dict:
    """One (policy, jitter intensity) grid point (sweep task)."""
    host = HostArray.uniform(cfg["n"], delay=cfg["delay"])
    plan = None
    if cfg["max_jitter"] > 0:
        plan = FaultPlan.random(
            host.n,
            seed=cfg["seed"],
            horizon=cfg["horizon"],
            jitter_rate=cfg["jitter_rate"],
            drop_rate=cfg["drop_rate"],
            max_jitter=cfg["max_jitter"],
        )
    res = simulate_overlap(
        host,
        steps=cfg["steps"],
        min_copies=2,
        faults=plan,
        policy=cfg["policy"],
        verify=True,
    )
    stats = res.exec_result.stats
    lat = stats.step_latency_summary() or {}
    row = {
        "policy": cfg["policy"],
        "max jitter": cfg["max_jitter"],
        "engine": res.engine,
        "slowdown": round(res.slowdown, 2),
        "makespan": stats.makespan,
        "messages": stats.messages,
        "p50": lat.get("p50"),
        "p95": lat.get("p95"),
        "p99": lat.get("p99"),
        "cancelled": stats.extras.get("cancelled_messages", 0),
        "raced wins": stats.extras.get("raced_wins", 0),
        "steal moves": stats.extras.get("steal_moves", 0),
        "verified": res.verified,
        # Raw samples ride along so the SweepRunner profile (and the
        # service metrics) can fold them into fleet distributions.
        "step_latency_samples": stats.step_latency_samples(),
    }
    return row


def run(
    quick: bool = True, n: int | None = None, policy: str | None = None
) -> ExperimentResult:
    """Run the policy × jitter-intensity sweep.

    ``policy`` restricts the grid to one policy name (CLI
    ``--policy``); default sweeps the whole family.
    """
    n = n or (48 if quick else 96)
    steps = 8 if quick else 16
    delay = 3
    policies = [policy] if policy else list(POLICY_GRID)
    for name in policies:
        if name not in POLICIES:
            raise ValueError(
                f"unknown policy {name!r}; known: {sorted(set(POLICIES))}"
            )
    intensities = [0, 4, 12] if quick else [0, 2, 4, 8, 16]
    # Faults must land inside the run to matter: the fault-free makespan
    # is ~ steps * (delay + 2), so a horizon near it front-loads the
    # jitter windows and drops where the tail actually forms.
    horizon = 6 * steps

    rows = sweep(
        _policy_point,
        [
            {
                "n": n,
                "delay": delay,
                "steps": steps,
                "policy": name,
                "max_jitter": jit,
                "jitter_rate": 0.0 if jit == 0 else 0.9,
                # Drops scale with intensity: a dropped single-issue
                # stream stalls until the retry timeout, the tail racing
                # is built to mask.
                "drop_rate": min(0.6, 0.05 * jit),
                "seed": SEED + j,
                "horizon": horizon,
            }
            for j, jit in enumerate(intensities)
            for name in policies
        ],
    )

    def p99(policy_name: str, jit: int):
        for r in rows:
            if r["policy"] == policy_name and r["max jitter"] == jit:
                return r["p99"]
        return None

    heavy = intensities[-1]
    single_p99 = p99("single", heavy)
    racing_p99 = p99("racing", heavy)
    summary = {
        "every run verified": all(r["verified"] for r in rows),
        "heaviest jitter": heavy,
        "single p99 (heavy)": single_p99,
        "racing p99 (heavy)": racing_p99,
        # None (not False) when --policy filtered one side out of the grid
        "racing tames the tail": (
            None
            if single_p99 is None or racing_p99 is None
            else racing_p99 <= single_p99
        ),
    }
    columns = [
        "policy", "max jitter", "engine", "slowdown", "makespan",
        "messages", "p50", "p95", "p99", "cancelled", "raced wins",
        "steal moves", "verified",
    ]  # step_latency_samples rides in rows for profiling, not the table
    return ExperimentResult(
        "W1",
        "Tail latency - execution policy vs link-jitter intensity",
        rows,
        summary=summary,
        columns=columns,
    )
