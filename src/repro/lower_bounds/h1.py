"""Theorem 9: the one-copy lower bound on host ``H1``.

``H1`` is an ``n``-array where every ``sqrt(n)``-th link has delay
``sqrt(n)`` and the rest delay 1 (``d_ave < 2`` but ``d_max =
sqrt(n)``).  The paper's dichotomy for any single-copy assignment:

* if at most ``sqrt(n)`` processors hold databases, the work argument
  gives slowdown ``>= m / sqrt(n) = sqrt(n)`` (with ``m = n``);
* otherwise some *adjacent* databases ``b_i``, ``b_{i+1}`` live on
  opposite sides of a ``sqrt(n)``-delay link, and the mutual
  ping-ponging of their pebbles costs ``sqrt(n)`` per exchange.

:func:`theorem9_audit` reproduces the dichotomy computationally for a
concrete assignment; the E7 bench then *measures* the slowdown of the
single-copy baseline on ``H1`` and shows OVERLAP beating it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.lower_bounds.audit import (
    adjacency_separation_bound,
    max_copies,
    work_lower_bound,
)
from repro.machine.host import HostArray
from repro.topology.generators import h1_host


@dataclass
class Theorem9Audit:
    """Which horn of the Theorem-9 dichotomy applies, and the bound."""

    n: int
    used: int
    horn: str  # "work" or "separation"
    bound: float
    witness_column: int | None

    @property
    def d_max(self) -> int:
        """``sqrt(n)`` — the bound the theorem promises."""
        return max(2, int(round(math.sqrt(self.n))))


def h1_adversarial_pair(
    host: HostArray, assignment: Assignment
) -> tuple[int, float] | None:
    """Find adjacent databases split by a long link, if any.

    Returns ``(column i, separation)`` with the largest min-owner
    separation between columns ``i`` and ``i+1``, or ``None`` when all
    adjacent pairs are co-located.
    """
    sep, col = adjacency_separation_bound(host, assignment)
    if sep <= 0:
        return None
    return col, 2 * sep  # undo the /2 amortisation: raw delay


def theorem9_audit(assignment: Assignment, host: HostArray | None = None) -> Theorem9Audit:
    """Apply the paper's dichotomy to a single-copy assignment on H1."""
    if max_copies(assignment) > 1:
        raise ValueError("Theorem 9 is about single-copy assignments")
    n = assignment.n if host is None else host.n
    host = host or h1_host(n)
    used = len(assignment.used_positions())
    r = max(2, int(round(math.sqrt(host.n))))
    if used <= r:
        return Theorem9Audit(host.n, used, "work", work_lower_bound(assignment), None)
    pair = h1_adversarial_pair(host, assignment)
    if pair is None:
        # Only possible when m < used spreads columns sparsely; the
        # work bound still applies.
        return Theorem9Audit(host.n, used, "work", work_lower_bound(assignment), None)
    col, sep = pair
    return Theorem9Audit(host.n, used, "separation", sep / 2, col)


def expected_h1_bound(n: int) -> float:
    """The theorem's promised slowdown ``~ sqrt(n) / 2`` for ``m = n``
    single-copy assignments (the /2 is the round-trip amortisation our
    rigorous auditor uses; the paper states the unamortised d_max)."""
    return math.sqrt(n) / 2
