"""Theorem 10 and Fact 4: the two-copy lower bound on host ``H2``.

``H2`` (Figure 5) is the recursive level-``k`` box construction built
by :func:`repro.topology.generators.h2_host`.  This module provides:

* :func:`h2_census` — the edge/delay census the construction promises
  (``2^k`` delay-``d`` links, ``~ k 2^k d / log n`` delay-1 links,
  constant average delay) — the F5 bench;
* :func:`fact4_violations` — checks Fact 4 on concrete segment pairs:
  processors in different segments ``I``, ``J`` are separated by delay
  at least ``min(u, v) * log(n) / 2`` (our linear layout achieves the
  paper's bound up to the factor 1/2, which the lower bound absorbs
  into its constant);
* :func:`zigzag_path` — the 4j-pebble dependency path of Figure 6 used
  in Theorem 10's case 1, with a validator;
* :func:`find_overlap_pattern` / :func:`theorem10_bound` — the paper's
  case analysis applied to a concrete two-copy assignment, yielding an
  ``Omega(log n)`` slowdown bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.lower_bounds.audit import adjacency_separation_bound
from repro.topology.generators import H2Host, Segment


def h2_census(h2: H2Host) -> dict:
    """Edge and delay statistics vs the paper's closed forms."""
    delays = h2.array.link_delays
    long_links = sum(1 for x in delays if x == h2.d)
    unit_links = sum(1 for x in delays if x == 1)
    k = h2.level
    return {
        "n_processors": h2.array.n,
        "level": k,
        "d": h2.d,
        "long_links": long_links,
        "long_links_expected": 2**k,
        "unit_links": unit_links,
        "unit_links_expected": round(k * 2**k * h2.d / h2.log_n),
        "d_ave": round(h2.array.d_ave, 3),
        "segments": len(h2.segments),
        "segment_sizes": sorted({s.size for s in h2.segments}),
    }


def segment_separation(h2: H2Host, a: Segment, b: Segment) -> int:
    """Smallest delay between any processor of ``a`` and any of ``b``
    (segments are contiguous runs, so endpoints suffice)."""
    if a.start > b.start:
        a, b = b, a
    return h2.array.distance(a.end, b.start)


def fact4_violations(h2: H2Host, slack: float = 0.4) -> list[tuple[Segment, Segment, int, float]]:
    """Check Fact 4 on all segment pairs.

    Returns pairs violating ``delay >= slack * min(u, v) * log n``.
    The linear layout realises the paper's bound with constant ~1/2:
    a level-``l`` segment of ``u ~ 2^l d / log n`` processors is
    separated from every other segment by at least ``2^(l-1)`` long
    links, i.e. ``~ u log(n) / 2``; the ``ceil`` in the segment sizes
    erodes that by a hair, so the default check uses 0.4 (any positive
    constant suffices for Theorem 10).
    """
    bad = []
    segs = h2.segments
    for i, a in enumerate(segs):
        for b in segs[i + 1 :]:
            d = segment_separation(h2, a, b)
            need = slack * min(a.size, b.size) * h2.log_n
            if d < need:
                bad.append((a, b, d, need))
    return bad


# ---------------------------------------------------------------------------
# Figure 6: the zigzag path of Theorem 10, case 1.
# ---------------------------------------------------------------------------


def zigzag_path(i: int, j: int, t: int) -> list[tuple[int, int]]:
    """The 4j-pebble path ``tau_1 <- ... <- tau_4j`` (Figure 6).

    ``tau_k`` is returned as ``(column, time)`` per the paper's case
    table (``j`` must be even and ``t > 4j`` so times stay positive).
    """
    if j < 2 or j % 2 != 0:
        raise ValueError("the construction assumes even j >= 2")
    if t <= 4 * j:
        raise ValueError("need t > 4j so every pebble has positive time")
    path = []
    for k in range(1, 4 * j + 1):
        if k <= j:  # A
            col = i + k
        elif k <= 2 * j:  # B (odd) / C (even)
            col = i + j + 1 if k % 2 == 1 else i + j
        elif k <= 3 * j:  # D
            col = i - k + 3 * j
        else:  # E (even) / F (odd)
            col = i + 1 if k % 2 == 0 else i
        path.append((col, t - k))
    return path


def zigzag_is_dependency_path(path: list[tuple[int, int]]) -> bool:
    """Validate that consecutive pebbles are dependency-adjacent:
    ``tau_k`` depends on ``tau_{k+1}`` iff the time drops by exactly 1
    and the column moves by at most 1."""
    for (c1, t1), (c2, t2) in zip(path, path[1:]):
        if t2 != t1 - 1 or abs(c1 - c2) > 1:
            return False
    return True


def path_delay_bound(
    h2: H2Host, assignment: Assignment, path: list[tuple[int, int]]
) -> float:
    """Minimum total communication delay to realise ``path``.

    For each dependency edge whose two pebbles' columns share no owner,
    at least the min owner-pair delay must elapse; the sum lower-bounds
    the time to compute ``tau_1`` after ``tau_4j``.
    """
    owners = assignment.owners()
    total = 0.0
    for (c1, _), (c2, _) in zip(path, path[1:]):
        o1 = owners.get(c1, [])
        o2 = owners.get(c2, [])
        if not o1 or not o2:
            continue
        if set(o1) & set(o2):
            continue
        total += min(h2.array.distance(p, q) for p in o1 for q in o2)
    return total


# ---------------------------------------------------------------------------
# Theorem 10's case analysis on a concrete assignment.
# ---------------------------------------------------------------------------


@dataclass
class OverlapPattern:
    """Case-1 witness: columns ``i..i+j`` in segment ``I`` and columns
    ``i+1..i+j+1`` in segment ``J != I``."""

    i: int
    j: int
    seg_i: Segment
    seg_j: Segment


def _column_segments(h2: H2Host, assignment: Assignment) -> dict[int, set]:
    """Map each column to the set of segments of its owners (None for
    owners outside every segment)."""
    out: dict[int, set] = {}
    for c, ps in assignment.owners().items():
        segs = set()
        for p in ps:
            seg = h2.segment_of(p)
            segs.add((seg.level, seg.start) if seg else None)
        out[c] = segs
    return out


def find_overlap_pattern(
    h2: H2Host, assignment: Assignment
) -> OverlapPattern | None:
    """Search for the case-1 "overlap" pattern of Theorem 10.

    Looks for two distinct segments whose assigned column sets share a
    run of ``j >= 1`` consecutive columns, extended by one extra column
    on each side in the respective segment.
    """
    seg_cols: dict[tuple, set[int]] = {}
    for p in assignment.used_positions():
        seg = h2.segment_of(p)
        if seg is None:
            continue
        key = (seg.level, seg.start)
        lo, hi = assignment.ranges[p]
        seg_cols.setdefault(key, set()).update(range(lo, hi + 1))
    seg_objs = {(s.level, s.start): s for s in h2.segments}
    keys = list(seg_cols)
    for a_idx, ka in enumerate(keys):
        for kb in keys[a_idx + 1 :]:
            shared = seg_cols[ka] & seg_cols[kb]
            for i_plus_1 in sorted(shared):
                # run of shared consecutive columns starting here
                jj = 0
                while i_plus_1 + jj in shared:
                    jj += 1
                i = i_plus_1 - 1
                j = jj
                if j >= 1 and i in seg_cols[ka] and i + j + 1 in seg_cols[kb]:
                    return OverlapPattern(i, j, seg_objs[ka], seg_objs[kb])
                if j >= 1 and i in seg_cols[kb] and i + j + 1 in seg_cols[ka]:
                    return OverlapPattern(i, j, seg_objs[kb], seg_objs[ka])
    return None


def theorem10_bound(h2: H2Host, assignment: Assignment, c_load: float | None = None) -> dict:
    """Apply Theorem 10's dichotomy to a concrete <=2-copy assignment.

    Returns a dict with the detected case, the analytic ``Omega(log
    n)`` bound (amortised per guest step), and the generic
    separation-audit bound for comparison.
    """
    if c_load is None:
        c_load = float(assignment.load())
    pattern = find_overlap_pattern(h2, assignment)
    sep, sep_col = adjacency_separation_bound(h2.array, assignment)
    if pattern is not None:
        # Case 1: over any 4j steps either an inter-segment crossing of
        # (j/c) log n occurs, or log n is paid ~j times.
        per_step = min(h2.log_n / (4 * c_load), h2.log_n / 4)
        case = "case1-overlap"
    else:
        # Case 2: consecutive columns i-1, i owned only by different
        # segments: every step pays >= log n (amortised /2).
        per_step = h2.log_n / 2
        case = "case2-no-overlap"
    return {
        "case": case,
        "log_n": h2.log_n,
        "analytic_bound": per_step,
        "separation_bound": sep,
        "separation_column": sep_col,
        "pattern": pattern,
    }
