"""Assignment auditors: rigorous slowdown lower bounds.

Given a host array and a database assignment, two arguments bound the
slowdown of *every* possible execution from below:

**Work argument.**  ``m * T`` pebbles must be computed (at least once)
by the processors that hold databases, one pebble per step each, so
``slowdown >= m / #used``.

**Adjacent-column separation** (the engine of Theorems 9 and 10).
Pebble ``(i, t)`` needs pebble ``(i+1, t-1)`` and vice versa; if every
owner of column ``i`` is at least delay ``D`` from every owner of
column ``i+1``, then each guest step forces a ``D``-delay crossing in
at least one direction, so ``slowdown >= D / 2`` (the two crossings of
one round trip amortise over two steps).

These bounds hold for any scheduler — including ours — so the
benchmarks report them next to measured slowdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.machine.host import HostArray


def work_lower_bound(assignment: Assignment) -> float:
    """``m / #used`` — slowdown floor from counting pebbles."""
    used = len(assignment.used_positions())
    if used == 0:
        return math.inf
    return assignment.m / used


def adjacency_separation_bound(
    host: HostArray, assignment: Assignment
) -> tuple[float, int]:
    """Max over adjacent column pairs of (min owner separation) / 2.

    Returns ``(bound, argmax_column)``; 0 when some owner pair of each
    adjacent column pair is co-located (or owner sets intersect).
    """
    owners = assignment.owners()
    best = 0.0
    best_col = 0
    for i in range(1, assignment.m):
        left = owners.get(i, [])
        right = owners.get(i + 1, [])
        if not left or not right:
            continue
        dmin = min(host.distance(p, q) for p in left for q in right)
        if dmin / 2 > best:
            best = dmin / 2
            best_col = i
    return best, best_col


@dataclass
class AuditReport:
    """Combined lower-bound audit of one assignment."""

    m: int
    used: int
    max_copies: int
    load: int
    work_bound: float
    separation_bound: float
    separation_column: int

    @property
    def slowdown_lower_bound(self) -> float:
        """Best (largest) of the rigorous bounds."""
        return max(self.work_bound, self.separation_bound)


def audit_assignment(host: HostArray, assignment: Assignment) -> AuditReport:
    """Run both auditors and package the result."""
    owners = assignment.owners()
    max_copies = max((len(v) for v in owners.values()), default=0)
    sep, col = adjacency_separation_bound(host, assignment)
    return AuditReport(
        m=assignment.m,
        used=len(assignment.used_positions()),
        max_copies=max_copies,
        load=assignment.load(),
        work_bound=work_lower_bound(assignment),
        separation_bound=sep,
        separation_column=col,
    )


def windowed_assignment(
    n: int,
    m: int,
    copies: int = 2,
    positions: list[int] | None = None,
) -> Assignment:
    """Constant-load ``copies``-copy assignment with contiguous ranges.

    Position index ``p`` (among the usable ``positions``) holds columns
    ``(p - copies + 1) * s + 1 .. (p + 1) * s`` where ``s = ceil(m /
    #positions)`` — sliding windows of ``copies`` blocks, so every
    column has at most ``copies`` owners and the load is
    ``copies * s``.  This is the natural bounded-copy layout Theorem 10
    quantifies over.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if positions is None:
        positions = list(range(n))
    k = len(positions)
    s = math.ceil(m / k)
    ranges: list[tuple[int, int] | None] = [None] * n
    for idx, p in enumerate(positions):
        lo = max(1, (idx - copies + 1) * s + 1)
        hi = min(m, (idx + 1) * s)
        if lo <= hi:
            ranges[p] = (lo, hi)
    asg = Assignment(ranges, m)
    asg.validate()
    return asg


def max_copies(assignment: Assignment) -> int:
    """Largest number of owners of any column."""
    return max((len(v) for v in assignment.owners().values()), default=0)
