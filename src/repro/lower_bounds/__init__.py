"""Section 6: lower bounds on slowdown with bounded database copies.

* :mod:`audit` — assignment auditors: generic, rigorous lower bounds on
  the slowdown of *any* execution under a given database assignment
  (work argument + adjacent-column separation argument), plus the
  windowed ``k``-copy assignment builder used by the experiments.
* :mod:`h1` — Theorem 9: with one copy per database the slowdown on
  host ``H1`` is ``d_max = sqrt(n)`` even though ``d_ave = O(1)``.
* :mod:`h2` — Theorem 10 and Fact 4: with at most two copies and
  constant load, host ``H2`` forces slowdown ``Omega(log n)``; includes
  the Figure-6 zigzag-path construction.
"""

from repro.lower_bounds.audit import (
    AuditReport,
    adjacency_separation_bound,
    audit_assignment,
    windowed_assignment,
    work_lower_bound,
)
from repro.lower_bounds.h1 import h1_adversarial_pair, theorem9_audit
from repro.lower_bounds.h2 import (
    fact4_violations,
    find_overlap_pattern,
    h2_census,
    theorem10_bound,
    zigzag_path,
    zigzag_is_dependency_path,
)

__all__ = [
    "AuditReport",
    "audit_assignment",
    "adjacency_separation_bound",
    "work_lower_bound",
    "windowed_assignment",
    "theorem9_audit",
    "h1_adversarial_pair",
    "h2_census",
    "fact4_violations",
    "find_overlap_pattern",
    "theorem10_bound",
    "zigzag_path",
    "zigzag_is_dependency_path",
]
