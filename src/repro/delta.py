"""Delta-driven incremental re-simulation (checkpoint blast radius).

The sweep cache (:mod:`repro.runner`) stores, next to each result, the
structured config it was computed from plus a manifest of executor
checkpoints (:class:`repro.core.checkpoint.ExecutorCheckpoint`)
captured during the run.  When a sweep later asks for a config that
differs from a cached one only in *delta-eligible* keys, the runner
restores the latest checkpoint strictly before the earliest simulated
time the edit can influence — the edit's **blast radius** — and
replays only the suffix.  The replay is bit-identical to a full
recompute (gated differentially in ``tests/test_delta.py``); it is
just a fraction of the work.

A task opts in by attaching a :class:`DeltaSpec` with
:func:`delta_task`.  The spec names one *rule* per eligible config
key; every other key must match a cached neighbour exactly.  A rule
maps an edit to the earliest time it can matter:

``int``      — divergence cannot start before this simulated time;
               checkpoints strictly earlier are valid restore points.
``math.inf`` — the edit cannot perturb the simulation at all (cosmetic
               post-processing knob, out-of-window event); the latest
               checkpoint works.
``None``     — ineligible edit; fall back to a full recompute.

Built-in rules cover the blast radii the executors guarantee:

* :func:`horizon_rule` — extending ``steps`` cannot diverge before the
  base run's ``first_top_t`` (the first time any watermark reached the
  old horizon; no scheduling decision consults ``== T`` earlier).
* :func:`fault_events_rule` — editing fault events cannot diverge
  before the earliest added/removed/changed event time (compiled
  tables are per-event deterministic; the plan seed only *generates*
  plans).
* :func:`policy_rule` — ``restart_penalty``/``max_retries`` are only
  consulted at recoveries and stalled-stream retries, both downstream
  of the first fault event.  (``retry_factor``/``watchdog_factor`` are
  **not** eligible: they set check/watchdog cadence from t=0.)
* :func:`cosmetic_rule` — for keys the simulation never reads.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "DeltaUnsupported",
    "DeltaOutcome",
    "DeltaSpec",
    "delta_task",
    "earliest_affected",
    "outcome_from_overlap",
    "horizon_rule",
    "fault_events_rule",
    "policy_rule",
    "cosmetic_rule",
]


class DeltaUnsupported(RuntimeError):
    """A checkpoint cannot seed this config (e.g. the config resolved
    to the greedy engine, or a fault edit flipped the run between the
    faulted and effect-free dense paths).  The delta layer treats this
    as "recompute fully", never as an error."""


@dataclass
class DeltaOutcome:
    """What a delta-aware task returns from its capture/resume hooks.

    ``result`` is the task's ordinary (JSON-safe) return value —
    exactly what the plain task function would have returned.
    ``checkpoints`` are the restorable snapshots the run captured, and
    ``meta`` is a small JSON-safe dict of run facts the rules may need
    later (``first_top_t`` for :func:`horizon_rule`).  ``resumed_at``
    is filled by the runner on delta hits.
    """

    result: Any
    checkpoints: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    resumed_at: int | None = None


@dataclass(frozen=True)
class DeltaSpec:
    """Delta contract for one sweep task.

    ``rules``   — config key -> blast-radius rule (see module doc).
    ``capture`` — ``cfg -> DeltaOutcome``: full run, capturing
                  checkpoints (the task picks the stride).
    ``resume``  — ``(cfg, ExecutorCheckpoint) -> DeltaOutcome``:
                  restore the checkpoint under ``cfg`` and replay the
                  suffix.  May raise :class:`DeltaUnsupported`.
    """

    rules: Mapping[str, Callable]
    capture: Callable[[dict], DeltaOutcome]
    resume: Callable[[dict, Any], DeltaOutcome]


def delta_task(spec: DeltaSpec):
    """Decorator attaching a :class:`DeltaSpec` to a sweep task.

    The runner looks for ``fn.__delta__``; undecorated tasks sweep
    exactly as before.
    """

    def deco(fn):
        fn.__delta__ = spec
        return fn

    return deco


def outcome_from_overlap(res, result) -> DeltaOutcome:
    """Wrap a task result plus its ``OverlapResult`` into a
    :class:`DeltaOutcome`, lifting the run facts the built-in rules
    need (``first_top_t`` for horizon extensions, ``makespan`` for the
    replayed-fraction accounting)."""
    return DeltaOutcome(
        result,
        checkpoints=list(res.checkpoints),
        meta={
            "first_top_t": res.first_top_t,
            "makespan": res.exec_result.stats.makespan,
        },
    )


# -- neighbour matching ------------------------------------------------
def earliest_affected(
    rules: Mapping[str, Callable],
    old_cfg: Mapping,
    new_cfg: Mapping,
    base_meta: Mapping,
):
    """Blast radius of editing ``old_cfg`` into ``new_cfg``.

    Returns ``(affected_time, diff_keys)``; ``affected_time`` is
    ``None`` when any differing key lacks a rule or its rule declines
    (full recompute), ``math.inf`` when nothing can diverge, else the
    min over the rules' answers.  Configs with different key *sets*
    never match.
    """
    if set(old_cfg) != set(new_cfg):
        return None, ()
    diff = [k for k in new_cfg if old_cfg[k] != new_cfg[k]]
    affected: float = math.inf
    for k in diff:
        rule = rules.get(k)
        if rule is None:
            return None, diff
        t = rule(old_cfg[k], new_cfg[k], old_cfg, new_cfg, base_meta)
        if t is None:
            return None, diff
        if t < affected:
            affected = t
    return affected, diff


# -- built-in blast-radius rules ---------------------------------------
def horizon_rule(old, new, old_cfg, new_cfg, base_meta):
    """Horizon (``steps``) extension: bounded by the base run's
    ``first_top_t``.  Shrinks and non-int values are ineligible."""
    if isinstance(old, bool) or isinstance(new, bool):
        return None
    if not isinstance(old, int) or not isinstance(new, int):
        return None
    if new <= old:
        return None
    ft = base_meta.get("first_top_t")
    if not isinstance(ft, int):
        return None
    return ft


def _canon_event(e) -> str:
    return json.dumps(e, sort_keys=True, separators=(",", ":"))


def fault_events_rule(old, new, old_cfg, new_cfg, base_meta):
    """Fault-plan spec edit (``FaultPlan.to_spec`` dicts): bounded by
    the earliest added/removed/changed event time.

    Seed and declared-horizon changes are ineligible (the seed names a
    whole generated plan; the declared horizon re-filters every
    event).  Reorderings of an identical event multiset are declined
    too — compile order can matter for overlapping windows.
    """
    if not isinstance(old, dict) or not isinstance(new, dict):
        return None
    if old.get("seed") != new.get("seed"):
        return None
    if old.get("horizon") != new.get("horizon"):
        return None
    old_evs = [_canon_event(e) for e in old.get("events", [])]
    new_evs = [_canon_event(e) for e in new.get("events", [])]
    if old_evs == new_evs:
        return math.inf
    co, cn = Counter(old_evs), Counter(new_evs)
    changed = list((co - cn)) + list((cn - co))
    if not changed:
        return None  # same events, different order
    times = []
    for s in changed:
        t = json.loads(s).get("time")
        if not isinstance(t, int):
            return None
        times.append(t)
    return min(times)


def policy_rule(old, new, old_cfg, new_cfg, base_meta):
    """Recovery-policy dict edit: ``restart_penalty`` and
    ``max_retries`` are consulted only downstream of a fault effect,
    so the earliest fault-event time bounds them.  Any other policy
    field (``retry_factor``, ``watchdog_factor``) is ineligible."""
    if not isinstance(old, dict) or not isinstance(new, dict):
        return None
    diff = {k for k in set(old) | set(new) if old.get(k) != new.get(k)}
    if not diff <= {"restart_penalty", "max_retries"}:
        return None
    spec = new_cfg.get("faults")
    if not isinstance(spec, dict):
        return None
    times = [e.get("time") for e in spec.get("events", [])]
    if not times:
        return math.inf  # no fault events: the knobs are never read
    if not all(isinstance(t, int) and not isinstance(t, bool) for t in times):
        return None
    return min(times)


def cosmetic_rule(old, new, old_cfg, new_cfg, base_meta):
    """For config keys the simulation never reads (post-processing
    normalisers, display knobs): any checkpoint remains valid and the
    resume hook recomputes the derived outputs under the new config."""
    return math.inf
