"""Host-network generators.

Each generator returns a :class:`~repro.machine.host.HostGraph` (or a
:class:`~repro.machine.host.HostArray` for the inherently linear
constructions).  Delay assignment is either passed in explicitly or
drawn from :mod:`repro.topology.delays` by the caller — generators that
take a ``delays`` callable invoke it with the number of edges needed.

The adversarial constructions are faithful to the paper:

* :func:`clique_chain_host` — Section 4's unbounded-degree example: a
  linear array of ``sqrt(n)`` cliques of ``sqrt(n)`` nodes each, clique
  edges of delay 1 and inter-clique edges of delay ``n``; it has
  ``d_ave < 4`` yet forces slowdown ``>= n^(1/4)``.
* :func:`h1_host` — Theorem 9's host: every ``sqrt(n)``-th link of an
  ``n``-array has delay ``sqrt(n)``, the rest delay 1.
* :func:`h2_host` — Theorem 10's host: the recursive level-``k`` box
  construction of Figure 5, realised as a linear array in which a
  level-``l`` junction is a *segment* of ``2^l d / log n`` delay-1
  links and level-0 boxes are single delay-``d`` links.  The returned
  :class:`H2Host` records the segment map needed by Fact 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx

from repro.machine.host import HostArray, HostGraph
from repro.netsim.routing import DELAY_ATTR

DelayFn = Callable[[int], Sequence[int]]


def _apply_delays(graph: nx.Graph, delays: Sequence[int]) -> None:
    edges = list(graph.edges())
    if len(delays) != len(edges):
        raise ValueError(
            f"delay vector has {len(delays)} entries for {len(edges)} edges"
        )
    for (u, v), d in zip(edges, delays):
        graph[u][v][DELAY_ATTR] = int(d)


def ring_host(n: int, delays: Sequence[int], name: str | None = None) -> HostGraph:
    """Ring of ``n`` processors with per-link delays."""
    g = nx.cycle_graph(n)
    _apply_delays(g, delays)
    return HostGraph(g, name or f"ring(n={n})")


def mesh_host(rows: int, cols: int, delays: Sequence[int], name: str | None = None) -> HostGraph:
    """2-D grid host, nodes relabelled to consecutive ints."""
    g = nx.grid_2d_graph(rows, cols)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    _apply_delays(g, delays)
    return HostGraph(g, name or f"mesh({rows}x{cols})")


def tree_host(height: int, delays: Sequence[int], branching: int = 2, name: str | None = None) -> HostGraph:
    """Complete ``branching``-ary tree of the given height."""
    g = nx.balanced_tree(branching, height)
    _apply_delays(g, delays)
    return HostGraph(g, name or f"tree(b={branching},h={height})")


def hypercube_host(dim: int, delays: Sequence[int], name: str | None = None) -> HostGraph:
    """``dim``-dimensional hypercube (degree ``dim``)."""
    g = nx.hypercube_graph(dim)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    _apply_delays(g, delays)
    return HostGraph(g, name or f"hypercube(d={dim})")


def butterfly_host(k: int, delays: Sequence[int], name: str | None = None) -> HostGraph:
    """The ``k``-dimensional butterfly: ``(k+1) 2^k`` nodes ``(level,
    row)``, straight and cross edges between consecutive levels —
    one of the architectures Section 7 names ("trees, arrays,
    butterflies and hypercubes").  Degree <= 4.
    """
    if k < 1:
        raise ValueError("butterfly needs k >= 1")
    g = nx.Graph()
    rows = 2**k

    def nid(level: int, row: int) -> int:
        return level * rows + row

    for level in range(k):
        for row in range(rows):
            g.add_edge(nid(level, row), nid(level + 1, row))
            g.add_edge(nid(level, row), nid(level + 1, row ^ (1 << level)))
    _apply_delays(g, delays)
    return HostGraph(g, name or f"butterfly(k={k})")


def random_regular_host(
    n: int, degree: int, delays: Sequence[int], seed: int = 0, name: str | None = None
) -> HostGraph:
    """Random connected ``degree``-regular graph — the generic
    "connected bounded-degree network" of Theorem 6."""
    for attempt in range(100):
        g = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(g):
            break
    else:  # pragma: no cover - random regular graphs are a.a.s. connected
        raise RuntimeError("could not generate a connected regular graph")
    _apply_delays(g, delays)
    return HostGraph(g, name or f"regular(n={n},deg={degree})")


def now_cluster_host(
    clusters: int,
    cluster_size: int,
    intra_delay: int = 1,
    inter_delay: int = 64,
    name: str | None = None,
) -> HostGraph:
    """A NOW: bounded-degree clusters (rings) of workstations joined by
    high-latency long-haul links into a ring of clusters.

    This is the paper's motivating scenario — "some processors may be
    very close or even part of the same tightly-coupled parallel
    machine" while others are far apart.
    """
    g = nx.Graph()
    for c in range(clusters):
        base = c * cluster_size
        for j in range(cluster_size):
            u = base + j
            v = base + (j + 1) % cluster_size
            if u != v:
                g.add_edge(u, v, **{DELAY_ATTR: intra_delay})
    for c in range(clusters):
        u = c * cluster_size
        v = ((c + 1) % clusters) * cluster_size
        if clusters > 1 and u != v:
            g.add_edge(u, v, **{DELAY_ATTR: inter_delay})
    if clusters == 1 and cluster_size == 1:
        g.add_node(0)
    return HostGraph(g, name or f"now({clusters}x{cluster_size})")


def clique_chain_host(
    num_cliques: int,
    clique_size: int,
    intra_delay: int = 1,
    inter_delay: int | None = None,
    name: str | None = None,
) -> HostGraph:
    """Section 4's unbounded-degree counterexample.

    A linear array of ``num_cliques`` cliques, each of ``clique_size``
    nodes; clique edges have delay ``intra_delay`` (paper: 1) and each
    pair of adjacent cliques is joined by one edge of delay
    ``inter_delay`` (paper: ``n`` where ``n = num_cliques *
    clique_size``).  Average delay is < 4 but no simulation can beat
    slowdown ``n^(1/4)`` (the paper's max{sqrt(n)/m, m} argument).
    """
    n = num_cliques * clique_size
    if inter_delay is None:
        inter_delay = n
    g = nx.Graph()
    for c in range(num_cliques):
        base = c * clique_size
        members = range(base, base + clique_size)
        for u in members:
            for v in members:
                if u < v:
                    g.add_edge(u, v, **{DELAY_ATTR: intra_delay})
    for c in range(num_cliques - 1):
        u = c * clique_size
        v = (c + 1) * clique_size
        g.add_edge(u, v, **{DELAY_ATTR: inter_delay})
    return HostGraph(g, name or f"clique-chain({num_cliques}x{clique_size})")


def h1_host(n: int, name: str | None = None) -> HostArray:
    """Theorem 9's host ``H1``: an ``n``-processor array in which every
    ``sqrt(n)``-th link has delay ``sqrt(n)`` and the rest have delay 1.

    ``d_ave`` is a constant (< 2) while ``d_max = sqrt(n)``.
    """
    if n < 4:
        raise ValueError("H1 needs n >= 4")
    r = max(2, int(round(math.sqrt(n))))
    delays = []
    for j in range(1, n):
        delays.append(r if j % r == 0 else 1)
    return HostArray(delays, name or f"H1(n={n})")


@dataclass
class Segment:
    """A delay-1 junction segment of ``H2`` (Fact 4's unit)."""

    level: int
    start: int  # first processor position in the segment
    end: int  # last processor position (inclusive)

    @property
    def size(self) -> int:
        """Number of processors in the segment (``2^level d / log n``)."""
        return self.end - self.start + 1


@dataclass
class H2Host:
    """Theorem 10's host ``H2`` with its segment map.

    The recursive box construction of Figure 5, laid out as a linear
    array: a level-0 box is a single link of delay ``d``; a level-``l``
    box is two level-``l-1`` boxes joined by a junction *segment* of
    ``ceil(2^l d / log_n)`` fresh processors connected with delay-1
    links.  The layout preserves every property Theorem 10 uses:

    * ``2^k`` links of delay ``d`` and ``~ k 2^k d / log n`` of delay 1;
    * constant average delay when ``d >= log n``;
    * Fact 4 — processors in different segments are separated by delay
      ``>= min(u, v) * log(n) / 2`` where ``u, v`` are the segment
      sizes (every path between them crosses delay-``d`` links).
    """

    array: HostArray
    segments: list[Segment]
    level: int
    d: int
    log_n: float

    def segment_of(self, pos: int) -> Segment | None:
        """Segment containing array position ``pos`` (None for level-0
        box processors, which belong to no segment)."""
        lo, hi = 0, len(self.segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            seg = self.segments[mid]
            if pos < seg.start:
                hi = mid - 1
            elif pos > seg.end:
                lo = mid + 1
            else:
                return seg
        return None


def h2_host(n: int, d: int | None = None, name: str | None = None) -> H2Host:
    """Build ``H2`` with ``Theta(n)`` processors.

    Parameters
    ----------
    n:
        Target size; the paper sets ``d = sqrt(n)`` and level
        ``k = log2(n / d)``.
    d:
        Override the long delay (defaults to ``round(sqrt(n))``).
    """
    if n < 16:
        raise ValueError("H2 needs n >= 16")
    if d is None:
        d = max(2, int(round(math.sqrt(n))))
    k = max(1, int(round(math.log2(n / d))))
    log_n = max(1.0, math.log2(n))

    delays: list[int] = []
    segments: list[Segment] = []

    def seg_links(level: int) -> int:
        return max(1, math.ceil((2**level) * d / log_n))

    def build(level: int) -> None:
        """Append the links of a level-``level`` box to ``delays``."""
        if level == 0:
            delays.append(d)
            return
        build(level - 1)
        width = seg_links(level)
        # `width` fresh segment processors => width+1 delay-1 links
        # between the two sub-boxes.
        start = len(delays) + 1  # position index of first segment proc
        delays.extend([1] * (width + 1))
        segments.append(Segment(level, start, start + width - 1))
        build(level - 1)

    build(k)
    segments.sort(key=lambda s: s.start)
    array = HostArray(delays, name or f"H2(n={n},d={d},k={k})")
    return H2Host(array, segments, k, d, log_n)
