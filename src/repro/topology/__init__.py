"""Host topologies, delay models and embeddings.

Everything the paper assumes about the host side lives here:

* :mod:`generators` — host networks: arrays, rings, meshes, trees,
  hypercubes, random regular graphs, NOW-style clustered hosts, the
  clique-chain counterexample of Section 4, and the adversarial hosts
  ``H1`` / ``H2`` of Section 6.
* :mod:`delays` — link-delay models (constant, uniform, bimodal NOW,
  heavy-tail Pareto) with exact rescaling to a target ``d_ave``.
* :mod:`embedding` — Fact 3: a one-to-one dilation-3 embedding of the
  linear array into any connected host (Sekanina's tree-cube
  Hamiltonian-path construction), with induced array delays.
"""

from repro.topology.delays import (
    bimodal_delays,
    constant_delays,
    pareto_delays,
    scale_to_average,
    uniform_delays,
)
from repro.topology.embedding import ArrayEmbedding, embed_linear_array, tree_cube_order
from repro.topology.generators import (
    butterfly_host,
    clique_chain_host,
    h1_host,
    h2_host,
    hypercube_host,
    mesh_host,
    now_cluster_host,
    random_regular_host,
    ring_host,
    tree_host,
)
from repro.topology.presets import PRESETS, get_preset

__all__ = [
    "constant_delays",
    "uniform_delays",
    "bimodal_delays",
    "pareto_delays",
    "scale_to_average",
    "ArrayEmbedding",
    "embed_linear_array",
    "tree_cube_order",
    "ring_host",
    "butterfly_host",
    "mesh_host",
    "tree_host",
    "hypercube_host",
    "random_regular_host",
    "now_cluster_host",
    "clique_chain_host",
    "h1_host",
    "h2_host",
    "PRESETS",
    "get_preset",
]
