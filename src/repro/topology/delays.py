"""Link-delay models.

The paper's motivation (Section 1) is a NOW where *some* latencies are
very high and the *variation* among latencies is high.  These samplers
produce integer delay vectors with controlled average, so experiments
can sweep ``d_ave`` and the ``d_max / d_ave`` skew independently.

All samplers take a seeded :class:`numpy.random.Generator` so runs are
reproducible.
"""

from __future__ import annotations

import numpy as np


def constant_delays(count: int, delay: int = 1) -> list[int]:
    """Every link has the same delay (Theorem 4's host ``H0``)."""
    if delay < 1:
        raise ValueError("delay must be >= 1")
    return [delay] * count


def uniform_delays(
    count: int, rng: np.random.Generator, low: int = 1, high: int = 10
) -> list[int]:
    """Independent uniform integer delays in ``[low, high]``."""
    if not 1 <= low <= high:
        raise ValueError("need 1 <= low <= high")
    return [int(x) for x in rng.integers(low, high + 1, size=count)]


def bimodal_delays(
    count: int,
    rng: np.random.Generator,
    near: int = 1,
    far: int = 100,
    p_far: float = 0.05,
) -> list[int]:
    """NOW-style delays: mostly ``near`` with a ``p_far`` fraction of
    ``far`` links (tightly-coupled clusters + long-haul links)."""
    if not 0.0 <= p_far <= 1.0:
        raise ValueError("p_far must be a probability")
    mask = rng.random(count) < p_far
    return [far if m else near for m in mask]


def pareto_delays(
    count: int,
    rng: np.random.Generator,
    alpha: float = 1.5,
    scale: float = 1.0,
    cap: int | None = None,
) -> list[int]:
    """Heavy-tailed delays: ``ceil(scale * Pareto(alpha))``.

    Heavy tails make ``d_max >> d_ave``, the regime where the paper's
    ``O(sqrt(d_ave) log^3 n)`` bound crushes the naive ``Theta(d_max)``.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    raw = scale * (rng.pareto(alpha, size=count) + 1.0)
    out = [max(1, int(np.ceil(x))) for x in raw]
    if cap is not None:
        out = [min(cap, x) for x in out]
    return out


def scale_to_average(delays: list[int], target_ave: float) -> list[int]:
    """Rescale integer delays so the mean is close to ``target_ave``.

    Multiplies by the exact ratio and rounds, clamping at 1; the result
    has ``|mean - target_ave| <= 1`` for reasonable inputs, which is
    all the sweeps need (they report the realised ``d_ave``).
    """
    if target_ave < 1:
        raise ValueError("target average must be >= 1")
    if not delays:
        return []
    cur = sum(delays) / len(delays)
    ratio = target_ave / cur
    return [max(1, int(round(d * ratio))) for d in delays]
