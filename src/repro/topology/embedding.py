"""Fact 3: dilation-3 one-to-one embedding of a linear array into any
connected network.

The paper (citing Leighton [8, p. 470]) uses the classical result that
an ``n``-node linear array embeds one-to-one with dilation 3 in any
connected ``n``-node network.  The constructive form is Sekanina's
theorem: for every tree ``T`` and every edge ``(u, v)`` of ``T``, the
cube ``T^3`` has a Hamiltonian path from ``u`` to ``v``.  Ordering the
host nodes along that path embeds the array: consecutive array
positions are at tree distance <= 3, hence at host distance <= 3.

Construction (induction on the component of an unused tree edge
``(u, v)``):

* delete ``(u, v)``; let ``T_u``, ``T_v`` be the two components;
* pick ``u1``, an unused neighbour of ``u`` in ``T_u`` (if any), and
  ``v1``, an unused neighbour of ``v`` in ``T_v`` (if any);
* the path is ``HP(u, u1) ++ HP(v1, v)`` (or just ``[u]`` / ``[v]``
  when the component is a singleton).

All splice jumps have tree distance <= 3 (``u1 - u - v - v1``).  The
implementation is iterative (explicit task stack) so deep trees — e.g.
path-shaped spanning trees — do not hit the Python recursion limit.

The paper's remark that a bounded-degree host of average delay
``d_ave`` yields an embedded array of average delay ``O(d_ave)`` is
exposed via :attr:`ArrayEmbedding.link_delays` (computed along tree
paths) and checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.machine.host import HostArray, HostGraph
from repro.netsim.routing import DELAY_ATTR


def tree_cube_order(tree: nx.Graph, start_edge: tuple | None = None) -> list:
    """Hamiltonian-path ordering of ``tree``'s nodes in ``tree^3``.

    Returns the node list; consecutive nodes are at tree distance <= 3.
    ``start_edge`` fixes the initial edge (defaults to an arbitrary
    edge).  A single-node tree returns its one node.
    """
    n = tree.number_of_nodes()
    if n == 0:
        return []
    if n == 1:
        return list(tree.nodes())
    if not nx.is_tree(tree):
        raise ValueError("tree_cube_order requires a tree")

    # Mutable adjacency with O(1)-amortised "pick an unused neighbour".
    adj: dict[Hashable, set] = {v: set(tree[v]) for v in tree.nodes()}

    def use_edge(a, b) -> None:
        adj[a].discard(b)
        adj[b].discard(a)

    def pick(a):
        return next(iter(adj[a])) if adj[a] else None

    if start_edge is None:
        start_edge = next(iter(tree.edges()))
    u0, v0 = start_edge
    if not tree.has_edge(u0, v0):
        raise ValueError(f"start_edge {start_edge} is not a tree edge")

    order: list = []
    # Task stack: ("edge", a, b) emits the covering path of the current
    # component of edge (a,b) from a to b; ("emit", x) emits x.
    stack: list[tuple] = [("edge", u0, v0)]
    while stack:
        task = stack.pop()
        if task[0] == "emit":
            order.append(task[1])
            continue
        _, a, b = task
        use_edge(a, b)
        x = pick(a)
        y = pick(b)
        # Push in reverse so the a-side is emitted first.
        if y is None:
            stack.append(("emit", b))
        else:
            stack.append(("edge", y, b))
        if x is None:
            stack.append(("emit", a))
        else:
            stack.append(("edge", a, x))
    if len(order) != n:
        raise AssertionError(
            f"Hamiltonian construction covered {len(order)} of {n} nodes"
        )
    return order


@dataclass
class ArrayEmbedding:
    """A one-to-one embedding of an ``n``-array in a host graph.

    Attributes
    ----------
    order:
        ``order[j]`` is the host node at array position ``j``.
    link_delays:
        Delay of embedded array link ``j`` — the tree-path delay
        between ``order[j]`` and ``order[j+1]``.
    dilation:
        Maximum number of tree edges under any embedded link (<= 3).
    congestion:
        Maximum number of embedded links routed over a single host
        edge (a constant for bounded-degree hosts).
    """

    order: list
    link_delays: list[int]
    dilation: int
    congestion: int

    @property
    def n(self) -> int:
        """Number of embedded array positions."""
        return len(self.order)

    def host_array(self, name: str = "embedded-array") -> HostArray:
        """The induced :class:`HostArray` algorithm OVERLAP runs on."""
        return HostArray(self.link_delays, name)

    def position_of(self) -> dict:
        """Map host node -> array position."""
        return {node: j for j, node in enumerate(self.order)}


def _tree_path(tree: nx.Graph, a, b, max_len: int = 3) -> list:
    """Path from ``a`` to ``b`` in ``tree`` (length <= ``max_len``),
    found by bounded-depth search — O(degree^3) per call."""
    if a == b:
        return [a]
    frontier = [[a]]
    for _ in range(max_len):
        nxt = []
        for path in frontier:
            tail = path[-1]
            for nb in tree[tail]:
                if len(path) >= 2 and nb == path[-2]:
                    continue  # trees have no other cycles to worry about
                newp = path + [nb]
                if nb == b:
                    return newp
                nxt.append(newp)
        frontier = nxt
    raise AssertionError(f"nodes {a},{b} farther than {max_len} in tree")


def embed_linear_array(
    host: HostGraph | nx.Graph, use_mst: bool = True
) -> ArrayEmbedding:
    """Embed an ``n``-node linear array one-to-one in the host.

    ``use_mst`` picks the minimum-*delay* spanning tree, which tends to
    produce smaller induced delays than an arbitrary tree (the theorem
    only needs *some* spanning tree).
    """
    graph = host.graph if isinstance(host, HostGraph) else host
    if graph.number_of_nodes() == 0:
        raise ValueError("cannot embed into an empty host")
    if not nx.is_connected(graph):
        raise ValueError("host must be connected")
    if use_mst:
        tree = nx.minimum_spanning_tree(graph, weight=DELAY_ATTR)
    else:
        tree = nx.bfs_tree(graph, next(iter(graph.nodes()))).to_undirected()
        for u, v in tree.edges():
            tree[u][v][DELAY_ATTR] = graph[u][v][DELAY_ATTR]
    if tree.number_of_nodes() == 1:
        return ArrayEmbedding(list(graph.nodes()), [], 0, 0)

    order = tree_cube_order(tree)
    link_delays: list[int] = []
    dilation = 0
    edge_load: dict[frozenset, int] = {}
    for a, b in zip(order, order[1:]):
        path = _tree_path(tree, a, b)
        dilation = max(dilation, len(path) - 1)
        d = 0
        for u, v in zip(path, path[1:]):
            d += int(tree[u][v][DELAY_ATTR])
            key = frozenset((u, v))
            edge_load[key] = edge_load.get(key, 0) + 1
        link_delays.append(max(1, d))
    congestion = max(edge_load.values(), default=0)
    return ArrayEmbedding(order, link_delays, dilation, congestion)
