"""Named host presets — realistic NOW configurations for examples,
benches and quick CLI runs.

Each preset captures a deployment archetype the paper's introduction
gestures at, with reproducible delays (seeded):

``campus``
    Workstations on a few LAN segments bridged by slower links.
``wan``
    Clusters joined by long-haul links with heavy-tailed delays — the
    "some processors can be far apart physically" case.
``smp-cluster``
    Tightly-coupled nodes (near-zero internal latency) in racks, a
    switch hop between racks — "part of the same tightly-coupled
    parallel machine".
``dialup-outlier``
    A mostly-fast array with one terrible member — the adversarial
    single-link case where redundancy shines.
"""

from __future__ import annotations

import numpy as np

from repro.machine.host import HostArray, HostGraph
from repro.topology.delays import bimodal_delays, pareto_delays
from repro.topology.generators import now_cluster_host


def campus(n: int = 96, seed: int = 0) -> HostArray:
    """LAN segments (delay 1) bridged every 16 machines (delay 20)."""
    delays = []
    for j in range(1, n):
        delays.append(20 if j % 16 == 0 else 1)
    return HostArray(delays, name=f"campus(n={n})")


def wan(n: int = 128, seed: int = 0) -> HostArray:
    """Heavy-tailed wide-area delays (Pareto, capped)."""
    rng = np.random.default_rng(seed)
    return HostArray(
        pareto_delays(n - 1, rng, alpha=1.1, cap=16 * n),
        name=f"wan(n={n},seed={seed})",
    )


def smp_cluster(racks: int = 8, per_rack: int = 8, switch_delay: int = 32) -> HostGraph:
    """Racks of tightly-coupled nodes joined by switch links."""
    return now_cluster_host(
        racks, per_rack, intra_delay=1, inter_delay=switch_delay,
        name=f"smp({racks}x{per_rack})",
    )


def dialup_outlier(n: int = 128, bad_delay: int = 1024) -> HostArray:
    """A fast array with one dreadful link in the middle."""
    delays = [1] * (n - 1)
    delays[n // 2 - 1] = bad_delay
    return HostArray(delays, name=f"outlier(n={n},bad={bad_delay})")


def mixed_now(n: int = 128, seed: int = 0) -> HostArray:
    """Bimodal LAN/WAN mix (the E-series workhorse)."""
    rng = np.random.default_rng(seed)
    return HostArray(
        bimodal_delays(n - 1, rng, near=1, far=n, p_far=0.04),
        name=f"mixed(n={n},seed={seed})",
    )


PRESETS = {
    "campus": campus,
    "wan": wan,
    "smp-cluster": smp_cluster,
    "dialup-outlier": dialup_outlier,
    "mixed-now": mixed_now,
}


def get_preset(name: str, **kwargs):
    """Instantiate a preset host by name."""
    try:
        return PRESETS[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}") from None
