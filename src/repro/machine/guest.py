"""1-D guest machines and their reference (ground-truth) executors.

The reference executor runs the guest *directly* — one unit-delay step
per row, no hosts, no latency — and records every pebble value plus the
final database digests.  It defines correctness: any host simulation of
the guest must reproduce exactly these values and digests
(:mod:`repro.core.verify` does the comparison).

The executor is row-vectorised with numpy whenever the program supports
it (the whole grid for ``m * T ~ 10^6`` takes milliseconds), with a
scalar fallback for programs with structured state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.database import Database
from repro.machine.mixing import mix2_v, tag_s
from repro.machine.pebbles import (
    BOUNDARY_LEFT,
    BOUNDARY_RIGHT,
    boundary_value,
    initial_value,
)
from repro.machine.programs import Program

_DB_SEED = tag_s(0xDB)  # matches Database.__post_init__: tag_s(0xDB, i)


@dataclass
class ReferenceRun:
    """Ground truth for ``T`` steps of an ``m``-column guest array.

    Attributes
    ----------
    values:
        ``(T+1, m+2)`` uint64 grid; ``values[t, i]`` is pebble ``(i,t)``
        for columns ``1..m``; columns 0 and ``m+1`` hold the boundary
        pebbles; row 0 holds the initial inputs.
    update_digests:
        Per column, the order-sensitive digest of the update sequence —
        what every consistent replica must match.
    state_digests:
        Per column, digest of the final database state.
    """

    m: int
    steps: int
    values: np.ndarray
    update_digests: np.ndarray
    state_digests: np.ndarray

    def pebble(self, i: int, t: int) -> int:
        """Value of pebble ``(i, t)`` (columns 0..m+1, rows 0..T)."""
        return int(self.values[t, i])

    def total_pebbles(self) -> int:
        """Number of real (non-boundary, t>=1) pebbles in the run."""
        return self.m * self.steps


class GuestArray:
    """An ``m``-processor guest linear array with unit-delay links."""

    def __init__(self, m: int, program: Program) -> None:
        if m < 1:
            raise ValueError(f"guest must have at least 1 processor, got {m}")
        self.m = m
        self.program = program

    def boundary_grid(self, steps: int) -> np.ndarray:
        """(T+1, m+2) grid with row 0 and boundary columns pre-filled."""
        grid = np.zeros((steps + 1, self.m + 2), dtype=np.uint64)
        for i in range(1, self.m + 1):
            grid[0, i] = initial_value(i)
        for t in range(steps + 1):
            grid[t, 0] = boundary_value(BOUNDARY_LEFT, t)
            grid[t, self.m + 1] = boundary_value(BOUNDARY_RIGHT, t)
        return grid

    def run_reference(self, steps: int) -> ReferenceRun:
        """Execute ``steps`` guest steps directly; return ground truth."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if self.program.supports_vector:
            return self._run_vectorised(steps)
        return self._run_scalar(steps)

    def _run_vectorised(self, steps: int) -> ReferenceRun:
        m, prog = self.m, self.program
        grid = self.boundary_grid(steps)
        states = prog.init_state_vec(m)
        digests = mix2_v(np.uint64(_DB_SEED), np.arange(1, m + 1, dtype=np.uint64))
        for t in range(1, steps + 1):
            prev = grid[t - 1]
            left, up, right = prev[0:m], prev[1 : m + 1], prev[2 : m + 2]
            values, updates = prog.compute_row_vec(t, states, left, up, right)
            grid[t, 1 : m + 1] = values
            states = prog.apply_vec(states, updates)
            digests = mix2_v(digests, updates)
        state_digests = np.asarray(states, dtype=np.uint64)
        return ReferenceRun(m, steps, grid, digests, state_digests)

    def _run_scalar(self, steps: int) -> ReferenceRun:
        m, prog = self.m, self.program
        grid = self.boundary_grid(steps)
        dbs = [Database(i, prog.init_state(i)) for i in range(1, m + 1)]
        for t in range(1, steps + 1):
            row_prev = grid[t - 1]
            pending = []
            for i in range(1, m + 1):
                left = int(row_prev[i - 1])
                up = int(row_prev[i])
                right = int(row_prev[i + 1])
                value, update = prog.compute(i, t, dbs[i - 1].state, left, up, right)
                grid[t, i] = value
                pending.append(update)
            # Apply after the whole row: all of row t reads version t-1
            # state, matching the synchronous guest semantics.
            for i, update in enumerate(pending):
                dbs[i].apply(prog, update)
        update_digests = np.array([db.digest for db in dbs], dtype=np.uint64)
        state_digests = np.array(
            [prog.state_digest(db.state) for db in dbs], dtype=np.uint64
        )
        return ReferenceRun(m, steps, grid, update_digests, state_digests)


@dataclass
class RingReferenceRun:
    """Ground truth for a ring guest (values grid + per-node digests).

    ``values[t, k]`` is the pebble of ring slot ``k`` (0-indexed) at
    step ``t``; digests are indexed by slot as well.
    """

    m: int
    steps: int
    values: np.ndarray
    update_digests: np.ndarray
    state_digests: np.ndarray

    def pebble(self, k: int, t: int) -> int:
        """Value of ring slot ``k`` at step ``t``."""
        return int(self.values[t, k])


class GuestRing:
    """An ``m``-processor guest ring (wrap-around dependencies).

    The paper treats rings via the classic fold: a ring embeds in a
    linear array with dilation 2, so an array simulation also simulates
    the ring with one extra factor of 2 ([8], noted in the paper's
    Section 1).  :meth:`fold_embedding` produces that embedding; the
    ring also has its own direct reference executor for tests.
    """

    def __init__(self, m: int, program: Program) -> None:
        if m < 3:
            raise ValueError(f"a ring needs at least 3 processors, got {m}")
        self.m = m
        self.program = program

    def run_reference(self, steps: int) -> np.ndarray:
        """Direct ring execution: returns the ``(T+1, m)`` value grid."""
        return self.run_reference_full(steps).values

    def run_reference_full(self, steps: int) -> "RingReferenceRun":
        """Direct ring execution with database digests (ground truth
        for the distributed ring simulation of
        :mod:`repro.core.ring`).  Ring slot ``k`` (0-indexed) carries
        guest label ``k + 1`` — same labelling as a guest array."""
        m, prog = self.m, self.program
        if not prog.supports_vector:
            raise NotImplementedError("ring reference needs a vector program")
        grid = np.zeros((steps + 1, m), dtype=np.uint64)
        grid[0] = [initial_value(i) for i in range(1, m + 1)]
        states = prog.init_state_vec(m)
        digests = mix2_v(np.uint64(_DB_SEED), np.arange(1, m + 1, dtype=np.uint64))
        for t in range(1, steps + 1):
            prev = grid[t - 1]
            left = np.roll(prev, 1)
            right = np.roll(prev, -1)
            values, updates = prog.compute_row_vec(t, states, left, prev, right)
            grid[t] = values
            states = prog.apply_vec(states, updates)
            digests = mix2_v(digests, updates)
        return RingReferenceRun(m, steps, grid, digests, np.asarray(states))

    @staticmethod
    def fold_embedding(m: int) -> list[int]:
        """Dilation-2 one-to-one embedding of an ``m``-ring in an
        ``m``-array.

        Returns ``pos`` with ``pos[k]`` = array position of ring node
        ``k``; ring neighbours land at array distance <= 2, so the array
        simulates the ring with slowdown 2.

        The fold interleaves the two halves of the ring: array order is
        ``0, m-1, 1, m-2, 2, ...`` so node ``j`` sits at ``2j`` and node
        ``m-1-j`` at ``2j+1``.
        """
        pos = [0] * m
        for j in range((m + 1) // 2):
            pos[j] = 2 * j
        for j in range(m // 2):
            pos[m - 1 - j] = 2 * j + 1
        return pos

    @staticmethod
    def fold_dilation(m: int) -> int:
        """Maximum array distance between embedded ring neighbours."""
        pos = GuestRing.fold_embedding(m)
        return max(
            abs(pos[k] - pos[(k + 1) % m]) for k in range(m)
        )
