"""Deterministic 64-bit mixing primitives.

Pebble values and database digests are 64-bit integers produced by
splitmix64-style avalanche mixing.  Determinism is what lets the
verification layer check that (a) every redundant replica of a database
converges to the same digest and (b) the distributed simulation agrees
bit-for-bit with the direct reference execution of the guest.

Each primitive comes in two matched forms:

* ``*_s`` — scalar, on Python ints (used by the event-driven executors,
  where pebbles are computed one at a time);
* ``*_v`` — vectorised, on ``numpy.uint64`` arrays (used by the
  reference executors, which compute a whole guest row per step — the
  optimisation guides' "vectorise the hot loop" rule).

``tests/test_mixing.py`` property-tests that the two forms agree on
random inputs, so the executors can be mixed freely.
"""

from __future__ import annotations

import numpy as np

MASK = (1 << 64) - 1

# splitmix64 constants
_GAMMA = 0x9E3779B97F4A7C15
_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB

_GAMMA_U = np.uint64(_GAMMA)
_M1_U = np.uint64(_M1)
_M2_U = np.uint64(_M2)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def splitmix_s(x: int) -> int:
    """Scalar splitmix64 finaliser: avalanche one 64-bit word."""
    x = (x + _GAMMA) & MASK
    x = ((x ^ (x >> 30)) * _M1) & MASK
    x = ((x ^ (x >> 27)) * _M2) & MASK
    return x ^ (x >> 31)


def splitmix_v(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser on ``uint64`` arrays.

    Wrap-around on multiply/add is the intended mod-2^64 arithmetic;
    ``errstate`` silences numpy's overflow warning for 0-d scalars
    (arrays never warn, but scalar fast paths do).
    """
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + _GAMMA_U
        x = (x ^ (x >> _S30)) * _M1_U
        x = (x ^ (x >> _S27)) * _M2_U
        return x ^ (x >> _S31)


def mix2_s(a: int, b: int) -> int:
    """Scalar order-sensitive combine of two words."""
    return splitmix_s((a * 3 + b) & MASK)


def mix2_v(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised order-sensitive combine of two words."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return splitmix_v(a * np.uint64(3) + b)


def mix4_s(a: int, b: int, c: int, d: int) -> int:
    """Scalar combine of four words (db state + three parents)."""
    return mix2_s(mix2_s(a, b), mix2_s(c, d))


def mix4_v(a, b, c, d) -> np.ndarray:
    """Vectorised combine of four words."""
    return mix2_v(mix2_v(a, b), mix2_v(c, d))


def fold_s(values) -> int:
    """Order-sensitive left fold of an iterable of words (digesting)."""
    acc = 0x243F6A8885A308D3  # pi fractional bits: arbitrary non-zero seed
    for v in values:
        acc = mix2_s(acc, v)
    return acc


def tag_s(*parts: int) -> int:
    """Hash a tuple of small ints into a word (ids, seeds, boundaries).

    Accepts numpy integer scalars too (coerced to Python ints so the
    masking stays in arbitrary precision).
    """
    return fold_s(int(p) & MASK for p in parts)
