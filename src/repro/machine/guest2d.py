"""The ``m x m`` guest array of Section 5 and its reference executor.

Pebble ``(r, c, t)`` of a 2-D guest depends on its own previous pebble,
its four neighbours' previous pebbles, and database ``b_{r,c}``.  A
virtual frame of boundary pebbles (known at time 0) surrounds the grid
so every pebble has five parents, mirroring the 1-D convention.

Section 5 simulates the 2-D guest by slicing it into *columns* (or
column blocks) that are placed on a linear array; the reference
executor here provides the ground truth those simulations are verified
against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.machine.mixing import mix2_s, mix2_v, mix4_s, mix4_v, tag_s


class Program2D(ABC):
    """Guest program for 2-D arrays (five parents + database state)."""

    name: str = "abstract2d"
    uses_database: bool = True

    @abstractmethod
    def init_state(self, r: int, c: int) -> int:
        """Initial database state of cell ``(r, c)``."""

    @abstractmethod
    def compute(
        self,
        r: int,
        c: int,
        t: int,
        state: int,
        north: int,
        south: int,
        west: int,
        east: int,
        up: int,
    ) -> tuple[int, int]:
        """Return ``(value, update)`` of pebble ``(r, c, t)``."""

    @abstractmethod
    def apply(self, state: int, update: int) -> int:
        """State after applying ``update``."""

    # vector path over whole grids ------------------------------------
    @abstractmethod
    def init_state_grid(self, m: int) -> np.ndarray:
        """``(m, m)`` uint64 initial states."""

    @abstractmethod
    def compute_grid(
        self, t, states, north, south, west, east, up
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`compute` over the whole interior."""

    @abstractmethod
    def apply_grid(self, states, updates) -> np.ndarray:
        """Vectorised :meth:`apply`."""


class StencilCounterProgram(Program2D):
    """2-D analogue of the 1-D ``counter`` program.

    The value mixes the database state with the folded neighbourhood;
    the state absorbs every value — a database-model stencil such as a
    relaxation sweep that logs into a local store.
    """

    name = "stencil2d"
    uses_database = True

    def init_state(self, r: int, c: int) -> int:
        return tag_s(0x2D, r, c)

    def compute(self, r, c, t, state, north, south, west, east, up):
        nb = mix4_s(north, south, west, east)
        value = mix2_s(mix2_s(state, nb), up)
        return value, value

    def apply(self, state, update):
        return mix2_s(state, update)

    def init_state_grid(self, m):
        rr = np.arange(1, m + 1, dtype=np.uint64)[:, None]
        cc = np.arange(1, m + 1, dtype=np.uint64)[None, :]
        seed = np.uint64(tag_s(0x2D))
        return mix2_v(mix2_v(np.broadcast_to(seed, (m, m)), np.broadcast_to(rr, (m, m))), np.broadcast_to(cc, (m, m)))

    def compute_grid(self, t, states, north, south, west, east, up):
        nb = mix4_v(north, south, west, east)
        values = mix2_v(mix2_v(states, nb), up)
        return values, values

    def apply_grid(self, states, updates):
        return mix2_v(states, updates)


class Dataflow2DProgram(Program2D):
    """Memoryless 2-D stencil (dataflow model, for contrast)."""

    name = "dataflow2d"
    uses_database = False

    def init_state(self, r: int, c: int) -> int:
        return 0

    def compute(self, r, c, t, state, north, south, west, east, up):
        value = mix2_s(mix4_s(north, south, west, east), up)
        return value, 0

    def apply(self, state, update):
        return state

    def init_state_grid(self, m):
        return np.zeros((m, m), dtype=np.uint64)

    def compute_grid(self, t, states, north, south, west, east, up):
        values = mix2_v(mix4_v(north, south, west, east), up)
        return values, np.zeros_like(values)

    def apply_grid(self, states, updates):
        return states


def initial_value_2d(r: int, c: int) -> int:
    """Row-0 pebble value of cell ``(r, c)``."""
    return tag_s(0x1418, r, c)


def frame_value(r: int, c: int, t: int) -> int:
    """Boundary-frame pebble value at frame cell ``(r, c)`` and step t."""
    return tag_s(0xF7A, r, c, t)


@dataclass
class ReferenceRun2D:
    """Ground truth for ``T`` steps of an ``m x m`` guest.

    ``values[t]`` is the ``(m+2, m+2)`` framed grid at step ``t``.
    """

    m: int
    steps: int
    values: np.ndarray  # (T+1, m+2, m+2) uint64
    update_digests: np.ndarray  # (m, m)
    state_digests: np.ndarray  # (m, m)

    def pebble(self, r: int, c: int, t: int) -> int:
        """Value of pebble ``(r, c, t)`` (1-based interior coords)."""
        return int(self.values[t, r, c])


class Guest2D:
    """An ``m x m`` guest array with unit delays."""

    def __init__(self, m: int, program: Program2D) -> None:
        if m < 1:
            raise ValueError(f"guest side must be >= 1, got {m}")
        self.m = m
        self.program = program

    def framed_grid(self, t: int) -> np.ndarray:
        """An ``(m+2, m+2)`` frame filled for step ``t`` (interior zero)."""
        m = self.m
        g = np.zeros((m + 2, m + 2), dtype=np.uint64)
        for c in range(m + 2):
            g[0, c] = frame_value(0, c, t)
            g[m + 1, c] = frame_value(m + 1, c, t)
        for r in range(1, m + 1):
            g[r, 0] = frame_value(r, 0, t)
            g[r, m + 1] = frame_value(r, m + 1, t)
        return g

    def run_reference(self, steps: int) -> ReferenceRun2D:
        """Execute ``steps`` guest steps directly; return ground truth."""
        m, prog = self.m, self.program
        values = np.zeros((steps + 1, m + 2, m + 2), dtype=np.uint64)
        g0 = self.framed_grid(0)
        rr = np.arange(1, m + 1)
        for r in rr:
            for c in range(1, m + 1):
                g0[r, c] = initial_value_2d(r, c)
        values[0] = g0
        states = prog.init_state_grid(m)
        digests = np.empty((m, m), dtype=np.uint64)
        db_seed = np.uint64(tag_s(0xDB2))
        rgrid = np.broadcast_to(
            np.arange(1, m + 1, dtype=np.uint64)[:, None], (m, m)
        )
        cgrid = np.broadcast_to(
            np.arange(1, m + 1, dtype=np.uint64)[None, :], (m, m)
        )
        digests = mix2_v(mix2_v(np.broadcast_to(db_seed, (m, m)), rgrid), cgrid)
        for t in range(1, steps + 1):
            prev = values[t - 1]
            cur = self.framed_grid(t)
            north = prev[0:m, 1 : m + 1]
            south = prev[2 : m + 2, 1 : m + 1]
            west = prev[1 : m + 1, 0:m]
            east = prev[1 : m + 1, 2 : m + 2]
            up = prev[1 : m + 1, 1 : m + 1]
            vals, updates = prog.compute_grid(t, states, north, south, west, east, up)
            cur[1 : m + 1, 1 : m + 1] = vals
            values[t] = cur
            states = prog.apply_grid(states, updates)
            digests = mix2_v(digests, updates)
        return ReferenceRun2D(m, steps, values, digests, np.asarray(states))


def db2_digest_seed(r: int, c: int) -> int:
    """Initial update-digest of cell ``(r, c)`` — matches the reference."""
    return mix2_s(mix2_s(tag_s(0xDB2), r), c)
