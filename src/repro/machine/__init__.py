"""The database model of computation (Section 2 of the paper).

A guest machine is a linear array (or ring, or 2-D mesh) of processors
``g_1 .. g_m`` with unit-delay links.  Processor ``g_i`` owns a
*database* ``b_i``.  At step ``t`` it consults ``b_i`` and the three
pebbles ``(i-1,t-1)``, ``(i,t-1)``, ``(i+1,t-1)``, produces pebble
``(i,t)`` (a value plus the database *update* this computation incurs),
and applies the update to ``b_i``.  Databases are too large to ship
across links; updates (pebbles) are small and can be shipped.

Modules
-------
mixing    : deterministic 64-bit mixing primitives, in matched scalar
            (Python int) and vectorised (numpy uint64) forms.
database  : replicated database state with order-sensitive digests.
pebbles   : pebble coordinates, dependency rule, dependency cones.
programs  : concrete guest programs (counter/ledger, dataflow, keyed
            store, token, polynomial hash chain).
guest     : 1-D guest machines and the reference (ground-truth) executor.
guest2d   : the m x m guest array of Section 5 and its reference executor.
host      : host descriptions (linear arrays with delays; general graphs).
"""

from repro.machine.database import Database
from repro.machine.pebbles import BOUNDARY_LEFT, BOUNDARY_RIGHT, parents, cone_size
from repro.machine.programs import (
    CounterProgram,
    DataflowProgram,
    HashChainProgram,
    KeyedStoreProgram,
    LedgerProgram,
    Program,
    TokenProgram,
    get_program,
    list_programs,
)
from repro.machine.udsl import UserProgram, check_determinism, program_from_step
from repro.machine.guest import GuestArray, GuestRing, ReferenceRun
from repro.machine.guest2d import Guest2D, ReferenceRun2D
from repro.machine.host import HostArray, HostGraph

__all__ = [
    "Database",
    "BOUNDARY_LEFT",
    "BOUNDARY_RIGHT",
    "parents",
    "cone_size",
    "Program",
    "CounterProgram",
    "DataflowProgram",
    "KeyedStoreProgram",
    "LedgerProgram",
    "TokenProgram",
    "HashChainProgram",
    "get_program",
    "list_programs",
    "UserProgram",
    "program_from_step",
    "check_determinism",
    "GuestArray",
    "GuestRing",
    "ReferenceRun",
    "Guest2D",
    "ReferenceRun2D",
    "HostArray",
    "HostGraph",
]
