"""Pebble coordinates and the dependency rule (Figure 1 of the paper).

Pebble ``(i, t)`` is the computation of guest processor ``g_i`` at step
``t >= 1``.  It depends on pebbles ``(i-1, t-1)``, ``(i, t-1)`` and
``(i+1, t-1)`` and on database ``b_i`` at version ``t-1``.  Row 0
pebbles are the initial inputs, known to every host processor that owns
a copy of the corresponding column.  Columns ``0`` and ``m+1`` are
virtual boundary columns whose pebbles are known to the host at time 0
(the paper's convention that every pebble has three parents).
"""

from __future__ import annotations

from repro.machine.mixing import tag_s

BOUNDARY_LEFT = 0xB0
BOUNDARY_RIGHT = 0xB1


def parents(i: int, t: int) -> list[tuple[int, int]]:
    """The three parents of pebble ``(i, t)`` in dependency order."""
    if t < 1:
        raise ValueError(f"pebble ({i},{t}) has no parents: t must be >= 1")
    return [(i - 1, t - 1), (i, t - 1), (i + 1, t - 1)]


def cone(i: int, t: int, m: int) -> set[tuple[int, int]]:
    """The dependency cone of ``(i, t)``: every pebble it transitively
    depends on, clipped to columns ``1..m`` (row 0 included).

    Used by the Figure-1 bench to regenerate the dependency structure
    the paper's schematic shows.
    """
    out: set[tuple[int, int]] = set()
    lo, hi = i, i
    for tt in range(t - 1, -1, -1):
        lo, hi = lo - 1, hi + 1
        for j in range(max(1, lo), min(m, hi) + 1):
            out.add((j, tt))
    return out


def cone_size(i: int, t: int, m: int) -> int:
    """Size of :func:`cone` computed in closed form (O(t), no set)."""
    total = 0
    lo, hi = i, i
    for _tt in range(t - 1, -1, -1):
        lo, hi = lo - 1, hi + 1
        total += max(0, min(m, hi) - max(1, lo) + 1)
    return total


def initial_value(i: int) -> int:
    """Row-0 pebble value for column ``i`` (initial input)."""
    return tag_s(0x1417, i)


def boundary_value(side: int, t: int) -> int:
    """Pebble value of virtual columns 0 / m+1 at step ``t``.

    These are known to the host at time 0 (paper, Section 3.2), so they
    carry no scheduling constraint; they only feed the edge columns'
    computations.
    """
    if side not in (BOUNDARY_LEFT, BOUNDARY_RIGHT):
        raise ValueError(f"side must be BOUNDARY_LEFT or BOUNDARY_RIGHT, got {side}")
    return tag_s(side, t)
