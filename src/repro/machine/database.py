"""Replicated database state.

In the paper each guest processor ``g_i`` owns a database ``b_i`` that
is consulted before and updated after every computation.  Databases may
be *copied before the simulation starts* (enabling redundant
computation) but are too large to ship during the simulation; only
per-step updates travel.  Consequently every replica of ``b_i`` must
apply exactly the same update sequence in exactly the same order —
this module makes that checkable.

A :class:`Database` wraps program-defined state together with a running
*digest* that mixes in every applied update in order.  Two replicas that
processed the same update sequence have equal digests; any divergence
(missed update, reordering, wrong value) changes the digest with
overwhelming probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.mixing import mix2_s, tag_s


@dataclass
class Database:
    """One replica of guest database ``b_i``.

    Attributes
    ----------
    column:
        Guest column index ``i`` this database belongs to.
    state:
        Program-defined state (an int for word-state programs, a dict
        for the keyed store, ...).  Mutated only via :meth:`apply`.
    version:
        Number of updates applied == the guest step the replica has
        reached.
    digest:
        Order-sensitive hash of the applied update sequence.
    """

    column: int
    state: Any
    version: int = 0
    digest: int = field(default=0)

    def __post_init__(self) -> None:
        if self.digest == 0:
            self.digest = tag_s(0xDB, self.column)

    def apply(self, program: "Any", update: int) -> None:
        """Apply one update through the program and advance the digest."""
        self.state = program.apply(self.state, update)
        self.version += 1
        self.digest = mix2_s(self.digest, update)

    def fork(self) -> "Database":
        """Copy this replica (only legal before the simulation starts,
        i.e. at version 0 — the paper's copy-before-start rule)."""
        if self.version != 0:
            raise RuntimeError(
                "databases may only be copied before the simulation starts "
                f"(replica of column {self.column} is at version {self.version})"
            )
        state = dict(self.state) if isinstance(self.state, dict) else self.state
        return Database(self.column, state, 0, self.digest)

    def summary(self) -> tuple[int, int, int]:
        """(column, version, digest) triple used by the verifier."""
        return (self.column, self.version, self.digest)


def check_replica_agreement(replicas: list[Database]) -> None:
    """Assert that all replicas of one column ended in the same state.

    Raises
    ------
    AssertionError
        If any two replicas disagree on version or digest — meaning the
        simulation violated the database model's consistency contract.
    """
    if not replicas:
        return
    col = replicas[0].column
    ref = replicas[0]
    for rep in replicas[1:]:
        if rep.column != col:
            raise AssertionError(
                f"mixed columns in replica set: {rep.column} vs {col}"
            )
        if rep.version != ref.version or rep.digest != ref.digest:
            raise AssertionError(
                f"replica divergence on column {col}: "
                f"(v={ref.version}, digest={ref.digest:#x}) vs "
                f"(v={rep.version}, digest={rep.digest:#x})"
            )
