"""User DSL: write a guest program as a plain step function.

The paper's promise is *automatic* latency hiding: "allow the
programmer to assume that there are uniform delays on each link".  The
programmer-facing surface is therefore a single synchronous step
function, exactly as one would write it for the idealised machine::

    from repro.machine.udsl import program_from_step

    def my_step(i, t, state, left, up, right):
        value = (state + left + up + right) % 2**64
        return value, value          # (pebble value, database update)

    prog = program_from_step(my_step, init=lambda i: i * 17,
                             apply=lambda s, u: (s + u) % 2**64)

The wrapper turns this into a :class:`~repro.machine.programs.Program`
that every executor, verifier and experiment in the library accepts.
Determinism is the user's obligation (checked probabilistically by
:func:`check_determinism`); everything else — replica digests, update
ordering, verification plumbing — comes for free.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.machine.mixing import MASK, mix2_s, tag_s
from repro.machine.programs import Program

StepFn = Callable[[int, int, Any, int, int, int], tuple[int, int]]
InitFn = Callable[[int], Any]
ApplyFn = Callable[[Any, int], Any]
DigestFn = Callable[[Any], int]


class UserProgram(Program):
    """A :class:`Program` assembled from user callables."""

    supports_vector = False

    def __init__(
        self,
        step: StepFn,
        init: InitFn | None = None,
        apply: ApplyFn | None = None,
        digest: DigestFn | None = None,
        name: str = "user",
        uses_database: bool = True,
    ) -> None:
        self.name = name
        self.uses_database = uses_database
        self._step = step
        self._init = init or (lambda i: tag_s(0xEE, i))
        self._apply = apply or (lambda s, u: mix2_s(s, u))
        self._digest = digest

    def init_state(self, i: int):
        return self._init(i)

    def compute(self, i, t, state, left, up, right):
        value, update = self._step(i, t, state, left, up, right)
        value = int(value) & MASK
        update = int(update) & MASK
        return value, update

    def apply(self, state, update):
        return self._apply(state, update)

    def state_digest(self, state):
        if self._digest is not None:
            return self._digest(state)
        return super().state_digest(state)


def program_from_step(
    step: StepFn,
    init: InitFn | None = None,
    apply: ApplyFn | None = None,
    digest: DigestFn | None = None,
    name: str = "user",
    uses_database: bool = True,
) -> UserProgram:
    """Wrap a synchronous step function into a runnable guest program.

    Parameters
    ----------
    step:
        ``(i, t, state, left, up, right) -> (value, update)``; values
        and updates are masked to 64 bits.
    init:
        Initial database state per column (default: a column hash).
    apply:
        State-transition ``(state, update) -> state`` (default: 64-bit
        mixing — suitable for word states).
    digest:
        64-bit digest of a state; required when the state is not an
        int (structured states).
    """
    return UserProgram(step, init, apply, digest, name, uses_database)


def check_determinism(program: Program, trials: int = 16, seed: int = 0) -> None:
    """Probabilistic determinism check for user programs.

    Calls ``compute`` twice on identical random inputs and ``apply``
    twice on identical states; any divergence (e.g. hidden randomness,
    mutation of the state inside ``compute``) raises — catching the
    bug before it surfaces as a confusing replica-digest mismatch deep
    in a distributed run.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    for trial in range(trials):
        i = int(rng.integers(1, 100))
        t = int(rng.integers(1, 100))
        left, up, right = (int(x) for x in rng.integers(0, MASK, 3, dtype=np.uint64))
        state = program.init_state(i)
        snapshot = repr(state)
        out1 = program.compute(i, t, state, left, up, right)
        out2 = program.compute(i, t, state, left, up, right)
        if out1 != out2:
            raise AssertionError(
                f"{program.name}: compute() is nondeterministic (trial {trial})"
            )
        if repr(state) != snapshot:
            raise AssertionError(
                f"{program.name}: compute() mutated the state (trial {trial})"
            )
        s1 = program.apply(state, out1[1])
        s2 = program.apply(state, out1[1])
        if repr(s1) != repr(s2):
            raise AssertionError(
                f"{program.name}: apply() is nondeterministic (trial {trial})"
            )
