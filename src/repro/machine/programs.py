"""Concrete guest programs for the database model.

A :class:`Program` defines what pebble ``(i, t)`` computes: a pure
function of the column's database state and the three parent pebbles,
returning a 64-bit *value* (recorded in the pebble) and a 64-bit
*update* (applied to the database, and shipped inside the pebble so
remote replicas can stay consistent).

Programs are deterministic, so the verifier can compare a distributed
run against the direct reference execution bit-for-bit, and replicas of
the same database can be checked for divergence.

The zoo spans the regimes the paper contrasts:

``counter``
    The flagship *database-model* program: the value mixes the database
    state with all three parents, and the state absorbs every value.
    Computation genuinely requires the right database (Sec. 2's point
    that the database model is harder than dataflow).
``dataflow``
    The memoryless model of the companion paper [2]: no database at
    all.  Used to reproduce the paper's dataflow-vs-database contrast.
``keyed``
    A small key-value store per column: reads/writes a parent-dependent
    bucket.  Exercises non-word database state.
``token``
    Left-to-right token passing with a per-column counter: models
    pipeline workloads.
``hashchain``
    Column-local hash chaining (no lateral dependence): the
    communication-free extreme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.machine.mixing import (
    MASK,
    fold_s,
    mix2_s,
    mix2_v,
    mix4_s,
    mix4_v,
    tag_s,
)


class Program(ABC):
    """Interface every guest program implements.

    Scalar methods (`compute`, `apply`) are used by the event-driven
    distributed executors; the optional vector methods (`*_vec`) are
    used by the reference executor to compute a whole guest row per
    step.  ``tests/test_programs.py`` asserts the two paths agree.
    """

    #: short registry name
    name: str = "abstract"
    #: False for pure dataflow programs (empty database)
    uses_database: bool = True
    #: True when the ``*_vec`` methods are implemented
    supports_vector: bool = False

    # -- scalar path ---------------------------------------------------
    @abstractmethod
    def init_state(self, i: int) -> Any:
        """Initial database state of column ``i`` (before step 1)."""

    @abstractmethod
    def compute(
        self, i: int, t: int, state: Any, left: int, up: int, right: int
    ) -> tuple[int, int]:
        """Return ``(value, update)`` of pebble ``(i, t)``.

        Must not mutate ``state`` — the caller applies the update via
        :meth:`apply` so replicas share one code path.
        """

    @abstractmethod
    def apply(self, state: Any, update: int) -> Any:
        """Return the state after applying ``update`` (pure)."""

    def state_digest(self, state: Any) -> int:
        """64-bit digest of a database state (for replica checks)."""
        if isinstance(state, int):
            return state
        raise NotImplementedError

    # -- vector path (optional) ----------------------------------------
    def init_state_vec(self, m: int) -> np.ndarray:
        """States of columns ``1..m`` as a uint64 array."""
        raise NotImplementedError(f"{self.name} has no vector path")

    def compute_row_vec(
        self,
        t: int,
        states: np.ndarray,
        left: np.ndarray,
        up: np.ndarray,
        right: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`compute` over one guest row."""
        raise NotImplementedError(f"{self.name} has no vector path")

    def apply_vec(self, states: np.ndarray, updates: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`apply` over one guest row."""
        raise NotImplementedError(f"{self.name} has no vector path")


class CounterProgram(Program):
    """Word-state database program: state absorbs every pebble value."""

    name = "counter"
    uses_database = True
    supports_vector = True

    def init_state(self, i: int) -> int:
        return tag_s(0xC0, i)

    def compute(self, i, t, state, left, up, right):
        value = mix4_s(state, left, up, right)
        return value, value

    def apply(self, state, update):
        return mix2_s(state, update)

    def init_state_vec(self, m):
        cols = np.arange(1, m + 1, dtype=np.uint64)
        return mix2_v(np.uint64(tag_s(0xC0)), cols)

    def compute_row_vec(self, t, states, left, up, right):
        values = mix4_v(states, left, up, right)
        return values, values

    def apply_vec(self, states, updates):
        return mix2_v(states, updates)


class DataflowProgram(Program):
    """Memoryless dataflow program (the model of the companion paper)."""

    name = "dataflow"
    uses_database = False
    supports_vector = True

    def init_state(self, i: int) -> int:
        return 0

    def compute(self, i, t, state, left, up, right):
        value = mix2_s(mix2_s(left, up), right)
        return value, 0

    def apply(self, state, update):
        return state

    def init_state_vec(self, m):
        return np.zeros(m, dtype=np.uint64)

    def compute_row_vec(self, t, states, left, up, right):
        values = mix2_v(mix2_v(left, up), right)
        return values, np.zeros_like(values)

    def apply_vec(self, states, updates):
        return states


class TokenProgram(Program):
    """Left-to-right pipeline with a per-column step counter."""

    name = "token"
    uses_database = True
    supports_vector = True

    def init_state(self, i: int) -> int:
        return tag_s(0x70, i)

    def compute(self, i, t, state, left, up, right):
        value = mix2_s(left, state)
        return value, 1

    def apply(self, state, update):
        return (state + update) & MASK

    def init_state_vec(self, m):
        cols = np.arange(1, m + 1, dtype=np.uint64)
        return mix2_v(np.uint64(tag_s(0x70)), cols)

    def compute_row_vec(self, t, states, left, up, right):
        values = mix2_v(left, states)
        return values, np.ones_like(values)

    def apply_vec(self, states, updates):
        return states + updates  # uint64 wrap-around == mod 2^64

    def state_digest(self, state):
        return state


class HashChainProgram(Program):
    """Column-local hash chain: no lateral dependence at all."""

    name = "hashchain"
    uses_database = True
    supports_vector = True

    def init_state(self, i: int) -> int:
        return tag_s(0x4C, i)

    def compute(self, i, t, state, left, up, right):
        value = mix2_s(state, up)
        return value, value

    def apply(self, state, update):
        return mix2_s(state, update)

    def init_state_vec(self, m):
        cols = np.arange(1, m + 1, dtype=np.uint64)
        return mix2_v(np.uint64(tag_s(0x4C)), cols)

    def compute_row_vec(self, t, states, left, up, right):
        values = mix2_v(states, up)
        return values, values

    def apply_vec(self, states, updates):
        return mix2_v(states, updates)


class RelaxationProgram(Program):
    """Weighted-stencil relaxation with a local accumulator.

    The value is an integer Jacobi-style combination ``3*left + 5*up +
    7*right + state`` (mod 2^64) — the "linear relaxation" class the
    paper cites as a motivating out-of-core workload [11] — and the
    database accumulates a running checksum of the iterates.  Fully
    vectorised, so it doubles as a numerics-flavoured load for the
    reference executor.
    """

    name = "relax"
    uses_database = True
    supports_vector = True

    def init_state(self, i: int) -> int:
        return tag_s(0x12E, i)

    def compute(self, i, t, state, left, up, right):
        value = (3 * left + 5 * up + 7 * right + state) & MASK
        return value, value

    def apply(self, state, update):
        return (state + (update >> 1)) & MASK

    def init_state_vec(self, m):
        cols = np.arange(1, m + 1, dtype=np.uint64)
        return mix2_v(np.uint64(tag_s(0x12E)), cols)

    def compute_row_vec(self, t, states, left, up, right):
        with np.errstate(over="ignore"):
            values = (
                np.uint64(3) * left
                + np.uint64(5) * up
                + np.uint64(7) * right
                + states
            )
        return values, values

    def apply_vec(self, states, updates):
        with np.errstate(over="ignore"):
            return states + (updates >> np.uint64(1))


class LedgerProgram(Program):
    """A bank-ledger database: structured per-column account state.

    Each column's database is a ledger of ``A`` account balances plus a
    transaction counter.  A step derives (account, amount) from the
    parents, posts the transaction, and emits a value mixing the
    touched balance — the "updates of large local memories or
    databases" workload the paper's introduction motivates, with state
    that is genuinely structural (not a single word).
    """

    name = "ledger"
    uses_database = True
    supports_vector = False
    A = 8  # accounts per ledger

    def init_state(self, i: int) -> dict:
        return {
            "balances": [tag_s(0xBA, i, a) % 10**6 for a in range(self.A)],
            "count": 0,
        }

    def compute(self, i, t, state, left, up, right):
        src = (left ^ up) % self.A
        dst = (up ^ right) % self.A
        amount = mix2_s(left, right) % 997
        value = mix4_s(
            state["balances"][src] + (state["count"] << 20),
            left,
            up,
            right,
        )
        update = ((amount & 0x3FF) << 8) | (src << 4) | dst
        return value, update

    def apply(self, state, update):
        src = (update >> 4) & 0xF
        dst = update & 0xF
        amount = (update >> 8) & 0x3FF
        balances = list(state["balances"])
        balances[src % self.A] = (balances[src % self.A] - amount) & MASK
        balances[dst % self.A] = (balances[dst % self.A] + amount) & MASK
        return {"balances": balances, "count": state["count"] + 1}

    def state_digest(self, state):
        return fold_s([*state["balances"], state["count"]])


class KeyedStoreProgram(Program):
    """Per-column key-value store with ``K`` buckets.

    The bucket consulted depends on the parents, so the database read
    is data-dependent — the strongest form of "computation can only be
    done by processors with the right database".
    """

    name = "keyed"
    uses_database = True
    supports_vector = False
    K = 16

    def init_state(self, i: int) -> list[int]:
        return [tag_s(0x5E, i, k) for k in range(self.K)]

    def compute(self, i, t, state, left, up, right):
        key = (left ^ up ^ right) % self.K
        value = mix4_s(state[key], left, up, right)
        update = (value & ~(self.K - 1) & MASK) | key
        return value, update

    def apply(self, state, update):
        key = update & (self.K - 1)
        new = list(state)
        new[key] = mix2_s(new[key], update)
        return new

    def state_digest(self, state):
        return fold_s(state)


_REGISTRY: dict[str, type[Program]] = {
    p.name: p
    for p in (
        CounterProgram,
        DataflowProgram,
        TokenProgram,
        HashChainProgram,
        KeyedStoreProgram,
        LedgerProgram,
        RelaxationProgram,
    )
}


def get_program(name: str) -> Program:
    """Instantiate a registered program by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_programs() -> list[str]:
    """Names of all registered programs."""
    return sorted(_REGISTRY)
