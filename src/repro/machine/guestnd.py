"""D-dimensional guest arrays (the paper's "higher dimensional" remark).

Section 5 closes with *"Theorem 8 can be generalized to higher
dimensional arrays"*.  This module supplies the guest machine that
generalization needs: an ``m^D`` array whose pebble ``(x, t)`` depends
on its own previous pebble, its ``2D`` axis neighbours' previous
pebbles, and a local database — plus the vectorised reference executor
producing ground truth (values, update digests, final states).

A frame of boundary pebbles (known at time 0, value a hash of
coordinates and time) surrounds the grid on every axis, mirroring the
1-D and 2-D conventions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.machine.mixing import mix2_s, mix2_v, tag_s

_FRAME_SEED = tag_s(0xF7B)
_INIT_SEED = tag_s(0x1419)
_STATE_SEED = tag_s(0x3D)
_DB_SEED = tag_s(0xDBD)


def _coord_mix(seed: int, shape: tuple[int, ...], offset: int = 0) -> np.ndarray:
    """Vectorised ``fold(seed, x_1, ..., x_D)`` over a coordinate grid.

    ``offset`` shifts coordinates (0-based grid -> ``offset``-based
    labels); matches scalar ``tag_s(seed_tag, *coords)`` when ``seed``
    is the folded seed tag.
    """
    acc = np.broadcast_to(np.uint64(seed), shape).copy()
    for axis, size in enumerate(shape):
        coords = np.arange(offset, size + offset, dtype=np.uint64)
        view = coords.reshape([-1 if a == axis else 1 for a in range(len(shape))])
        acc = mix2_v(acc, np.broadcast_to(view, shape))
    return acc


def initial_value_nd(coords: tuple[int, ...]) -> int:
    """Row-0 pebble value at 1-based interior coordinates."""
    return tag_s(0x1419, *coords)


def frame_value_nd(coords: tuple[int, ...], t: int) -> int:
    """Boundary-frame pebble value at framed coordinates and step t."""
    return tag_s(0xF7B, *coords, t)


class ProgramND(ABC):
    """Guest program for D-dimensional arrays."""

    name: str = "abstract-nd"
    uses_database: bool = True

    @abstractmethod
    def init_state_grid(self, shape: tuple[int, ...]) -> np.ndarray:
        """Initial database states over the interior grid."""

    @abstractmethod
    def compute_grid(
        self,
        t: int,
        states: np.ndarray,
        up: np.ndarray,
        neighbours: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised step: ``neighbours[axis] = (negative, positive)``
        previous-step neighbour values along that axis."""

    @abstractmethod
    def apply_grid(self, states: np.ndarray, updates: np.ndarray) -> np.ndarray:
        """Vectorised update application."""


class StencilCounterND(ProgramND):
    """D-dimensional analogue of the 1-D counter / 2-D stencil counter:
    the value mixes the state with the axis-folded neighbourhood and
    the cell's own previous value; the state absorbs every value."""

    name = "stencil-nd"
    uses_database = True

    def init_state_grid(self, shape):
        return _coord_mix(_STATE_SEED, shape, offset=1)

    def compute_grid(self, t, states, up, neighbours):
        acc = states
        for neg, pos in neighbours:
            acc = mix2_v(acc, mix2_v(neg, pos))
        values = mix2_v(acc, up)
        return values, values

    def apply_grid(self, states, updates):
        return mix2_v(states, updates)

    def compute_cell(self, t, state, up, neighbour_pairs) -> tuple[int, int]:
        """Scalar mirror of :meth:`compute_grid` (for tests)."""
        acc = state
        for neg, pos in neighbour_pairs:
            acc = mix2_s(acc, mix2_s(neg, pos))
        value = mix2_s(acc, up)
        return value, value


@dataclass
class ReferenceRunND:
    """Ground truth for a ``shape`` guest over ``T`` steps.

    ``values[t]`` is the framed grid (every axis padded by 1).
    """

    shape: tuple[int, ...]
    steps: int
    values: np.ndarray
    update_digests: np.ndarray
    state_digests: np.ndarray

    def pebble(self, coords: tuple[int, ...], t: int) -> int:
        """Value at 1-based interior coordinates."""
        return int(self.values[(t, *coords)])


class GuestND:
    """A ``shape`` guest array with unit delays."""

    def __init__(self, shape: tuple[int, ...], program: ProgramND) -> None:
        if len(shape) < 1 or any(s < 1 for s in shape):
            raise ValueError(f"bad guest shape {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.program = program

    @property
    def dims(self) -> int:
        """Number of axes."""
        return len(self.shape)

    def framed_shape(self) -> tuple[int, ...]:
        """Shape with a 1-cell frame on every axis."""
        return tuple(s + 2 for s in self.shape)

    def frame_layer(self, t: int) -> np.ndarray:
        """Framed grid whose *every* cell holds the frame hash for
        step ``t`` (interior gets overwritten by the caller)."""
        base = _coord_mix(_FRAME_SEED, self.framed_shape(), offset=0)
        return mix2_v(base, np.broadcast_to(np.uint64(t), base.shape))

    def initial_grid(self) -> np.ndarray:
        """Framed grid at t=0: frame hashes outside, initial values in."""
        g = self.frame_layer(0)
        interior = tuple(slice(1, s + 1) for s in self.shape)
        g[interior] = _coord_mix(_INIT_SEED, self.shape, offset=1)
        return g

    def run_reference(self, steps: int) -> ReferenceRunND:
        """Execute ``steps`` guest steps directly."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        prog = self.program
        shape = self.shape
        interior = tuple(slice(1, s + 1) for s in shape)
        values = np.zeros((steps + 1, *self.framed_shape()), dtype=np.uint64)
        values[0] = self.initial_grid()
        states = prog.init_state_grid(shape)
        digests = _coord_mix(_DB_SEED, shape, offset=1)
        for t in range(1, steps + 1):
            prev = values[t - 1]
            cur = self.frame_layer(t)
            neighbours = []
            for axis in range(self.dims):
                neg = prev[_shifted(interior, axis, -1)]
                pos = prev[_shifted(interior, axis, +1)]
                neighbours.append((neg, pos))
            up = prev[interior]
            vals, updates = prog.compute_grid(t, states, up, neighbours)
            cur[interior] = vals
            values[t] = cur
            states = prog.apply_grid(states, updates)
            digests = mix2_v(digests, updates)
        return ReferenceRunND(shape, steps, values, digests, np.asarray(states))


def _shifted(interior: tuple[slice, ...], axis: int, delta: int) -> tuple[slice, ...]:
    """The interior slice tuple shifted by ``delta`` along ``axis``."""
    out = list(interior)
    s = out[axis]
    out[axis] = slice(s.start + delta, s.stop + delta)
    return tuple(out)


def nd_digest_seed(coords: tuple[int, ...]) -> int:
    """Initial update digest at 1-based coordinates (matches the
    reference's seeding)."""
    return tag_s(0xDBD, *coords)
