"""Host machine descriptions.

The paper's hosts come in two flavours:

* :class:`HostArray` — an ``n``-processor linear array whose ``n-1``
  links carry arbitrary integer delays.  This is the machine algorithm
  OVERLAP actually runs on; every other host is reduced to it.
* :class:`HostGraph` — an arbitrary connected (usually bounded-degree)
  network with per-edge delays.  Section 4 reduces it to a
  :class:`HostArray` via the Fact-3 dilation-3 embedding
  (:mod:`repro.topology.embedding`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.netsim.fabric import LineFabric
from repro.netsim.routing import DELAY_ATTR


@dataclass
class HostArray:
    """An ``n``-processor host linear array with per-link delays.

    ``link_delays[j]`` is the delay between processors ``j`` and
    ``j+1`` (0-indexed positions).  The paper's ``d_ave`` is the mean
    link delay and ``d_max`` the maximum.
    """

    link_delays: list[int]
    name: str = "host-array"
    _prefix: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.link_delays):
            raise ValueError("all link delays must be >= 1")
        self.link_delays = [int(d) for d in self.link_delays]
        self._prefix = [0]
        for d in self.link_delays:
            self._prefix.append(self._prefix[-1] + d)

    @property
    def n(self) -> int:
        """Number of host processors."""
        return len(self.link_delays) + 1

    @property
    def d_ave(self) -> float:
        """Average link delay."""
        if not self.link_delays:
            return 1.0
        return self.total_delay / len(self.link_delays)

    @property
    def d_max(self) -> int:
        """Maximum link delay."""
        return max(self.link_delays, default=1)

    @property
    def total_delay(self) -> int:
        """Sum of all link delays (``~ n * d_ave``)."""
        return self._prefix[-1]

    def distance(self, a: int, b: int) -> int:
        """Uncontended delay between positions ``a`` and ``b``."""
        lo, hi = (a, b) if a <= b else (b, a)
        return self._prefix[hi] - self._prefix[lo]

    def interval_delay(self, lo: int, hi: int) -> int:
        """Total delay of the links strictly inside positions
        ``[lo, hi]`` (used by the Stage-1 killing rule)."""
        return self.distance(lo, hi)

    def fabric(self, bandwidth: int | None = None) -> LineFabric:
        """A fresh :class:`LineFabric`; default bandwidth is the
        paper's assumption ``ceil(log2 n)`` (min 1)."""
        if bandwidth is None:
            bandwidth = self.default_bandwidth()
        return LineFabric(self.link_delays, bandwidth)

    def default_bandwidth(self) -> int:
        """The paper's host/guest bandwidth ratio: ``ceil(log2 n)``."""
        return max(1, math.ceil(math.log2(max(2, self.n))))

    @classmethod
    def uniform(cls, n: int, delay: int = 1, name: str | None = None) -> "HostArray":
        """Array of ``n`` processors, every link with the same delay
        (the host ``H0`` of Theorem 4)."""
        if n < 1:
            raise ValueError("need at least one processor")
        return cls([delay] * (n - 1), name or f"uniform(n={n},d={delay})")

    def as_graph(self) -> nx.Graph:
        """The array as a ``networkx`` path graph with delay attrs."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for j, d in enumerate(self.link_delays):
            g.add_edge(j, j + 1, **{DELAY_ATTR: d})
        return g


@dataclass
class HostGraph:
    """An arbitrary connected host network with per-edge delays."""

    graph: nx.Graph
    name: str = "host-graph"

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise ValueError("host graph is empty")
        if not nx.is_connected(self.graph):
            raise ValueError("host graph must be connected")
        for u, v, data in self.graph.edges(data=True):
            if DELAY_ATTR not in data:
                raise ValueError(f"edge ({u},{v}) missing delay attribute")
            if data[DELAY_ATTR] < 1:
                raise ValueError(f"edge ({u},{v}) has delay < 1")

    @property
    def n(self) -> int:
        """Number of host processors."""
        return self.graph.number_of_nodes()

    @property
    def d_ave(self) -> float:
        """Average edge delay."""
        delays = [d for _, _, d in self.graph.edges(data=DELAY_ATTR)]
        return sum(delays) / len(delays) if delays else 1.0

    @property
    def d_max(self) -> int:
        """Maximum edge delay."""
        return max((d for _, _, d in self.graph.edges(data=DELAY_ATTR)), default=1)

    @property
    def max_degree(self) -> int:
        """Maximum node degree (the paper's bounded-degree parameter)."""
        return max(deg for _, deg in self.graph.degree)

    def is_bounded_degree(self, bound: int = 4) -> bool:
        """Whether every node has degree <= ``bound``."""
        return self.max_degree <= bound


def delays_from_positions(positions: Sequence[float], min_delay: int = 1) -> list[int]:
    """Link delays of an array whose processors sit at physical
    coordinates ``positions`` (a NOW where latency ~ distance)."""
    out = []
    for a, b in zip(positions, positions[1:]):
        out.append(max(min_delay, int(round(abs(b - a)))))
    return out
