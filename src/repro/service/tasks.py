"""Named simulation tasks servable by :class:`SimulationService`.

A network client names a task by string; the service resolves it here
and hands the function to :class:`~repro.runner.SweepRunner`.  Task
functions follow the runner contract — one ``dict`` config in, one
JSON-serialisable row out, importable at module level (worker processes
re-import them by qualified name) — and the registry doubles as the
allow-list: a request naming anything else is rejected before it can
reach the pool.

Configs are plain scalars so they hash canonically
(:func:`repro.runner.canonical_json`).  ``overlap_point`` simulates an
OVERLAP run on a uniform array host; ``ring_point`` simulates a guest
ring.  Both return the flat summary-row dict the experiment tables use.
"""

from __future__ import annotations

from repro.core.overlap import simulate_overlap
from repro.core.ring import simulate_ring
from repro.machine.host import HostArray


def overlap_point(config: dict) -> dict:
    """One OVERLAP simulation on a uniform array host.

    Config keys (all optional): ``n`` hosts, ``delay`` per link,
    ``steps`` guest steps, ``block`` factor, ``c`` window constant,
    ``engine`` tier, ``policy`` execution policy (``single`` /
    ``racing`` / ``stealing`` / ``racing+stealing``; policies other
    than ``single`` need ``min_copies`` >= 2).  Extra keys (e.g. a
    ``rep`` nonce to force distinct cache entries) are ignored by the
    simulation but do participate in the content hash.

    The row carries the raw per-step latency samples alongside the
    summary percentiles, so the service folds every served request
    into its fleet-level ``ServiceMetrics.step_latency_summary()``.
    """
    host = HostArray.uniform(
        int(config.get("n", 32)), delay=int(config.get("delay", 1))
    )
    res = simulate_overlap(
        host,
        steps=int(config.get("steps", 8)),
        c=float(config.get("c", 4.0)),
        block=int(config.get("block", 1)),
        min_copies=int(config.get("min_copies", 1)),
        verify=bool(config.get("verify", False)),
        engine=str(config.get("engine", "auto")),
        policy=str(config.get("policy", "single")),
    )
    row = res.summary()
    row["step_latency_samples"] = res.exec_result.stats.step_latency_samples()
    return row


def ring_point(config: dict) -> dict:
    """One guest-ring simulation on a uniform array host.

    Config keys (all optional): ``n`` hosts, ``delay`` per link,
    ``steps`` guest steps, ``copies`` assignment copies, ``engine``.
    """
    host = HostArray.uniform(
        int(config.get("n", 32)), delay=int(config.get("delay", 1))
    )
    res = simulate_ring(
        host,
        steps=int(config.get("steps", 8)),
        copies=int(config.get("copies", 1)),
        verify=bool(config.get("verify", False)),
        engine=str(config.get("engine", "auto")),
    )
    return {
        "n": res.host.n,
        "m": res.m,
        "steps": res.steps,
        "slowdown": round(res.slowdown, 2),
        "makespan": res.exec_result.stats.makespan,
        "pebbles": res.exec_result.stats.pebbles,
        "engine": res.engine,
        "verified": res.verified,
    }


#: task name -> callable, the network-facing allow-list
TASKS = {
    "overlap_point": overlap_point,
    "ring_point": ring_point,
}


def get_task(name: str):
    """Resolve a task name; raises :class:`KeyError` naming the options."""
    try:
        return TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown task {name!r}; available: {', '.join(sorted(TASKS))}"
        ) from None
