"""JSON-lines TCP transport for :class:`SimulationService`.

One request per line, one event per line back — the dumbest protocol
that still demonstrates the service end-to-end (``nc``-debuggable, no
dependencies).  Request object::

    {"id": "r1", "task": "overlap_point", "config": {"n": 32},
     "version": "1",        # optional, defaults to the service version
     "client": "alice",     # optional, admission-control identity
     "stream": true}        # optional: send progress events, not just
                            # the terminal one

Every response line echoes the request ``id`` and carries an ``event``
field — the lifecycle events of :meth:`SimulationService.stream` plus
``error`` for malformed requests (bad JSON, unknown task name).  The
task registry (:data:`repro.service.tasks.TASKS`) is the allow-list;
nothing else is callable over the wire.

Requests on one connection are served sequentially (responses stay
ordered); concurrency — and therefore coalescing and backpressure —
comes from concurrent connections.  :func:`request` is the matching
one-shot client used by ``repro client`` and the docs examples.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.core import TERMINAL_EVENTS, SimulationService
from repro.service.tasks import get_task


def _send(writer: asyncio.StreamWriter, obj: dict) -> None:
    writer.write((json.dumps(obj, sort_keys=True) + "\n").encode())


async def _serve_request(
    service: SimulationService, writer, req: dict, default_client: str
) -> None:
    rid = req.get("id")
    client = str(req.get("client") or default_client)
    want_stream = bool(req.get("stream"))
    try:
        fn = get_task(str(req.get("task")))
    except KeyError as exc:
        _send(writer, {"id": rid, "event": "error", "error": str(exc)})
        return
    config = req.get("config") or {}
    if not isinstance(config, dict):
        _send(writer, {"id": rid, "event": "error", "error": "config must be an object"})
        return
    version = req.get("version")
    async for event in service.stream(
        fn, config, client=client, version=str(version) if version else None
    ):
        if want_stream or event["event"] in TERMINAL_EVENTS:
            _send(writer, {"id": rid, **event})
            await writer.drain()


async def _handle(service: SimulationService, reader, writer) -> None:
    peer = writer.get_extra_info("peername")
    default_client = f"{peer[0]}:{peer[1]}" if peer else "tcp"
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                req = json.loads(line)
            except json.JSONDecodeError as exc:
                _send(writer, {"event": "error", "error": f"bad request JSON: {exc}"})
                await writer.drain()
                continue
            await _serve_request(service, writer, req, default_client)
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response; the service side is fine
    except asyncio.CancelledError:
        # Event-loop teardown cancels live connection handlers; exit
        # cleanly so asyncio's stream machinery doesn't log a phantom
        # "exception in callback" for the cancelled task.
        pass
    finally:
        writer.close()


async def start_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
):
    """Start serving; returns the :class:`asyncio.Server`.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()[1]``.
    """
    return await asyncio.start_server(
        lambda r, w: _handle(service, r, w), host, port
    )


async def request(host: str, port: int, payload: dict) -> list[dict]:
    """One-shot client: send ``payload``, collect events to terminal.

    Returns every event line received for the request (at least the
    terminal one; all lifecycle events when ``payload["stream"]``).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        _send(writer, payload)
        await writer.drain()
        events: list[dict] = []
        while True:
            line = await reader.readline()
            if not line:
                break
            event = json.loads(line)
            events.append(event)
            if event.get("event") in TERMINAL_EVENTS or event.get("event") == "error":
                break
        return events
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
