"""`SimulationService`: the asyncio front-end over :class:`SweepRunner`.

The paper hides network latency by replicating *state* so every request
finds an answer nearby; this layer applies the same idea at the serving
tier.  A long-lived service fields simulation requests from many
concurrent clients, and most of them should never reach a worker
process:

1. **memory** — an in-memory :class:`~repro.service.lru.LRUCache` of
   serialised results sits above the JSON disk cache; repeat requests
   are served in microseconds without touching the event loop's
   executor, the disk, or the pool.
2. **coalescing** — duplicate requests *in flight* (same content hash)
   join the one execution instead of queueing their own; every waiter
   gets the same bytes when it lands.
3. **runner tiers** — everything else goes through
   :meth:`SweepRunner.submit`, which itself resolves disk hits, delta
   suffix replays, and full computes.

Admission control keeps the service responsive under overload: at most
``max_queue`` requests may be admitted at once and each client name may
hold at most ``per_client`` of them; excess requests are shed
immediately with a typed :class:`ServiceOverloaded` (reason
``queue_full`` or ``client_limit``) rather than queueing unboundedly.
``max_concurrency`` bounds how many admitted requests execute
simultaneously (the rest wait, which is what the queue-depth gauge
measures).

Request lifecycle, cancellation, and fairness semantics are documented
in ``docs/ARCHITECTURE.md``; every request is accounted in exactly one
:class:`~repro.telemetry.service.ServiceMetrics` bucket.
"""

from __future__ import annotations

import asyncio
import json

from repro.runner import SweepRunner
from repro.service.lru import LRUCache
from repro.service.tasks import get_task
from repro.telemetry.service import ServiceMetrics

#: events that end a :meth:`SimulationService.stream` generator
TERMINAL_EVENTS = ("done", "shed", "failed", "cancelled")


class ServiceOverloaded(RuntimeError):
    """Request shed by admission control.

    ``reason`` is ``"queue_full"`` (the service-wide admission bound is
    reached) or ``"client_limit"`` (this client name already holds its
    per-client share); ``detail`` is a human-readable elaboration.
    Shedding is immediate — an overloaded service answers *no* in
    microseconds instead of parking the request on an unbounded queue.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        msg = f"service overloaded ({reason})"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)
        self.reason = reason
        self.detail = detail


class _InFlight:
    """One admitted execution plus everyone waiting on it."""

    __slots__ = ("key", "task", "waiters", "sinks", "origin", "dying")

    def __init__(self, key: str) -> None:
        self.key = key
        self.task: asyncio.Task | None = None
        self.waiters = 0
        #: event callbacks of every request riding this execution
        self.sinks: list = []
        #: runner ticket origin ("cache" / "delta" / "compute"), set at
        #: dispatch
        self.origin: str | None = None
        #: set when the last waiter cancelled — late arrivals must not
        #: join a dying execution
        self.dying = False


class SimulationService:
    """Serve simulation requests with caching, coalescing, backpressure.

    Parameters
    ----------
    runner:
        The :class:`~repro.runner.SweepRunner` to execute on (shared
        disk cache, worker pool, profile).  Defaults to a cache-less
        inline runner — tests and demos pass a configured one.
    lru_entries:
        Capacity of the in-memory result LRU (serialised JSON text).
    max_queue:
        Admission bound: at most this many requests admitted
        (queued + executing) at once; excess is shed (``queue_full``).
    max_concurrency:
        Admitted requests executing simultaneously; the rest wait.
    per_client:
        Admitted requests a single client name may hold; excess is shed
        (``client_limit``) so one chatty client cannot starve the rest.
    version:
        Default task version for cache keying (overridable per request).
    metrics:
        A :class:`~repro.telemetry.service.ServiceMetrics` to record
        into (default: a fresh one on :attr:`metrics`).
    """

    def __init__(
        self,
        runner: SweepRunner | None = None,
        *,
        lru_entries: int = 512,
        max_queue: int = 32,
        max_concurrency: int = 4,
        per_client: int = 8,
        version: str = "1",
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.runner = runner if runner is not None else SweepRunner()
        self.memory = LRUCache(lru_entries)
        self.max_queue = max_queue
        self.per_client = per_client
        self.version = version
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._sem = asyncio.Semaphore(max_concurrency)
        self._inflight: dict[str, _InFlight] = {}
        self._admitted = 0
        self._executing = 0
        self._clients: dict[str, int] = {}

    # -- public entry points ----------------------------------------------
    async def submit(
        self,
        task,
        config: dict,
        *,
        client: str = "default",
        version: str | None = None,
        on_event=None,
    ):
        """Serve one request; returns the result dict.

        ``task`` is a registered task name or a runner-compatible
        callable.  Raises :class:`ServiceOverloaded` when shed,
        propagates task exceptions, and honours ``asyncio`` cancellation
        (a cancelled sole waiter abandons the execution; the compute
        still completes in the worker and lands in the cache).
        ``on_event`` receives the same progress events :meth:`stream`
        yields (minus the terminal one).
        """
        emit = on_event if on_event is not None else _drop
        return await self._request(task, config, client, version, emit)

    async def stream(
        self,
        task,
        config: dict,
        *,
        client: str = "default",
        version: str | None = None,
    ):
        """Async generator of request-lifecycle events.

        Yields ``{"event": ...}`` dicts (``accepted``, ``cache_hit``,
        ``coalesced``, ``queued``, ``started``) and exactly one terminal
        event — ``done`` (with ``result``), ``shed`` (with ``reason``),
        ``failed`` (with ``error``) or ``cancelled`` — then ends.
        Request-level outcomes never raise out of the generator; closing
        it early (``aclose`` / breaking out of the loop) cancels the
        request like any other waiter.
        """
        queue: asyncio.Queue = asyncio.Queue()
        task_ = asyncio.ensure_future(
            self._request(task, config, client, version, queue.put_nowait)
        )

        def _terminal(t: asyncio.Task) -> None:
            if t.cancelled():
                queue.put_nowait({"event": "cancelled"})
                return
            exc = t.exception()
            if exc is None:
                queue.put_nowait({"event": "done", "result": t.result()})
            elif isinstance(exc, ServiceOverloaded):
                queue.put_nowait(
                    {"event": "shed", "reason": exc.reason, "detail": exc.detail}
                )
            else:
                queue.put_nowait(
                    {"event": "failed", "error": f"{type(exc).__name__}: {exc}"}
                )

        task_.add_done_callback(_terminal)
        try:
            while True:
                event = await queue.get()
                yield event
                if event["event"] in TERMINAL_EVENTS:
                    return
        finally:
            if not task_.done():
                task_.cancel()
            try:
                await task_
            except BaseException:  # noqa: BLE001 - outcome already reported
                pass

    async def close(self) -> None:
        """Cancel every in-flight execution and wait for the accounting
        to settle (dispatched worker computes still run to completion in
        the background and land in the disk cache)."""
        tasks = [fl.task for fl in list(self._inflight.values()) if fl.task]
        for t in tasks:
            t.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- request lifecycle ------------------------------------------------
    async def _request(self, task, config, client, version, emit):
        """The whole lifecycle of one request; counts exactly one
        metrics bucket (served tier / shed / cancelled / failed)."""
        m = self.metrics
        m.requests += 1
        t0 = m.clock()
        try:
            fn = get_task(task) if isinstance(task, str) else task
            key, cfg = self.runner.prepare(
                fn, config, version=version or self.version
            )
            span = m.begin_span("request", key=key[:12], client=client)
            try:
                tier, result = await self._serve(
                    fn, cfg, key, client, version or self.version, emit
                )
            finally:
                m.end_span(span)
            m.serve_request(tier, m.clock() - t0)
            if isinstance(result, dict):
                samples = result.get("step_latency_samples")
                if samples:
                    m.note_step_latency(samples)
            return result
        except asyncio.CancelledError:
            m.cancelled += 1
            raise
        except ServiceOverloaded as exc:
            m.shed_request(exc.reason)
            raise
        except Exception:
            m.failed += 1
            raise

    async def _serve(self, fn, cfg, key, client, version, emit):
        """Route one prepared request through the serving tiers.

        Synchronous up to the first ``await`` — under ``asyncio.gather``
        every duplicate's memory lookup, coalesce check, and admission
        decision runs before any execution makes progress, which makes
        coalescing deterministic.
        """
        m = self.metrics
        emit({"event": "accepted", "key": key})

        # Tier 1: in-memory LRU. Stores serialised text, decoded per
        # hit — byte-identical to a disk hit and immune to clients
        # mutating a shared response object.
        text = self.memory.get(key)
        if text is not None:
            emit({"event": "cache_hit", "tier": "memory"})
            return "memory", json.loads(text)

        # Tier 2: coalesce onto an identical in-flight execution.
        fl = self._inflight.get(key)
        if fl is not None and not fl.dying:
            emit({"event": "coalesced", "waiters": fl.waiters + 1})
            fl.sinks.append(emit)
            return "coalesced", await self._join(fl)

        # Admission control — shed before committing any resources.
        if self._admitted >= self.max_queue:
            raise ServiceOverloaded(
                "queue_full",
                f"{self._admitted} requests admitted (max_queue={self.max_queue})",
            )
        held = self._clients.get(client, 0)
        if held >= self.per_client:
            raise ServiceOverloaded(
                "client_limit",
                f"client {client!r} holds {held} requests (per_client={self.per_client})",
            )

        # Leader: admit, dispatch the (shared) execution task, wait.
        self._admitted += 1
        self._clients[client] = held + 1
        fl = _InFlight(key)
        fl.sinks.append(emit)
        fl.task = asyncio.ensure_future(self._execute(fl, fn, cfg, key, client, version))
        self._inflight[key] = fl
        m.note_queue_depth(self._admitted - self._executing)
        emit({"event": "queued", "depth": self._admitted - self._executing})
        result = await self._join(fl)
        return fl.origin or "compute", result

    async def _join(self, fl: _InFlight):
        """Wait on a shared execution without owning it.

        ``shield`` keeps one waiter's cancellation from killing the
        execution other waiters still need; only when the *last* waiter
        cancels is the execution itself cancelled (and marked dying so
        late duplicates start fresh instead of joining a corpse).
        """
        fl.waiters += 1
        try:
            return await asyncio.shield(fl.task)
        finally:
            fl.waiters -= 1
            if fl.waiters == 0 and not fl.task.done():
                fl.dying = True
                fl.task.cancel()

    async def _execute(self, fl: _InFlight, fn, cfg, key, client, version):
        """The one execution task behind an admitted request.

        Runs as its own ``asyncio.Task`` (not in any client's
        coroutine) so accounting and cleanup happen exactly once no
        matter which waiters come and go.  The admission slot is charged
        to the leader's client name for the execution's whole lifetime.
        """
        m = self.metrics
        try:
            async with self._sem:
                self._executing += 1
                m.note_queue_depth(self._admitted - self._executing)
                span = m.begin_span("execute", key=key[:12])
                ticket = None
                try:
                    ticket = self.runner.submit(fn, cfg, version=version)
                    fl.origin = ticket.origin
                    m.count_execution(ticket.origin)
                    self._broadcast(fl, {"event": "started", "origin": ticket.origin})
                    if ticket.origin == "cache":
                        self._broadcast(fl, {"event": "cache_hit", "tier": "disk"})
                    result = await asyncio.wrap_future(ticket.future)
                    self.memory.put(key, json.dumps(result, sort_keys=True))
                    return result
                except asyncio.CancelledError:
                    # Every waiter gave up. Release the ticket (running
                    # worker computes finish anyway and land in the disk
                    # cache) and move the execution to the abandoned
                    # bucket so the profile cross-check stays exact.
                    if ticket is not None:
                        ticket.cancel()
                        if ticket.origin == "delta":
                            m.exec_delta -= 1
                            m.exec_abandoned += 1
                        elif ticket.origin == "compute":
                            m.exec_compute -= 1
                            m.exec_abandoned += 1
                    raise
                finally:
                    m.end_span(span, origin=fl.origin)
                    self._executing -= 1
        finally:
            if self._inflight.get(key) is fl:
                del self._inflight[key]
            self._admitted -= 1
            held = self._clients.get(client, 1) - 1
            if held > 0:
                self._clients[client] = held
            else:
                self._clients.pop(client, None)
            m.note_queue_depth(self._admitted - self._executing)

    def _broadcast(self, fl: _InFlight, event: dict) -> None:
        for sink in fl.sinks:
            try:
                sink(event)
            except Exception:  # noqa: BLE001 - a dead sink must not kill the run
                pass


def _drop(event: dict) -> None:
    """Default no-op event sink for :meth:`SimulationService.submit`."""
