"""Simulation-as-a-service: the long-lived concurrent entry point.

Everything below this package simulates *one* thing when asked; this
package is where the repo turns into a server.  It is deliberately
small — four modules, each one concern:

:mod:`repro.service.core`
    :class:`SimulationService` — request lifecycle: in-memory LRU hit,
    in-flight coalescing, admission control/backpressure
    (:class:`ServiceOverloaded`), dispatch via
    :meth:`SweepRunner.submit`, progress streaming, cancellation.

:mod:`repro.service.lru`
    :class:`LRUCache` — the in-memory hot tier over the JSON disk
    cache.

:mod:`repro.service.tasks`
    The named-task registry (:data:`TASKS`) — the allow-list of
    simulations a network client may request.

:mod:`repro.service.net`
    JSON-lines TCP server/client (``repro serve`` / ``repro client``).

See ``docs/ARCHITECTURE.md`` for the layer map and a full request
walkthrough, and ``docs/OBSERVABILITY.md`` for the service metrics.
"""

from repro.service.core import ServiceOverloaded, SimulationService, TERMINAL_EVENTS
from repro.service.lru import LRUCache
from repro.service.net import request, start_server
from repro.service.tasks import TASKS, get_task, overlap_point, ring_point

__all__ = [
    "LRUCache",
    "ServiceOverloaded",
    "SimulationService",
    "TASKS",
    "TERMINAL_EVENTS",
    "get_task",
    "overlap_point",
    "request",
    "ring_point",
    "start_server",
]
