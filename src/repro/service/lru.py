"""Bounded in-memory LRU — the hot tier above the JSON ``SweepCache``.

The disk cache (content-hash JSON files) makes repeat work *cheap*; a
service fielding many requests a second wants repeats *free* — no open,
no read, no parse of a just-served entry.  :class:`LRUCache` is the
classic ``OrderedDict`` recency cache (modelled on the Redis-over-file
two-tier layout in the CloudRouting cache scripts): ``get`` moves the
entry to the MRU end, ``put`` evicts from the LRU end past capacity.

The service stores serialised JSON *text* here, not objects — each hit
is decoded fresh, so a client mutating its response dict cannot corrupt
the copy served to the next client, and memory hits remain trivially
byte-identical to disk hits (both are ``json.loads`` of the same
serialisation).
"""

from __future__ import annotations

from collections import OrderedDict


class LRUCache:
    """Recency-evicting dict of at most ``capacity`` entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        """The value for ``key`` (freshened to MRU), else ``None``."""
        try:
            self._data.move_to_end(key)
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return self._data[key]

    def put(self, key: str, value) -> None:
        """Insert/refresh ``key``, evicting the LRU entry past capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
