"""Parallel experiment-sweep engine.

Every experiment in this repository is, at heart, a map over a grid of
simulation configs — ``(host, c, block, bandwidth, seed, faults)``
points fed one by one to :func:`repro.core.overlap.simulate_overlap`
or a sibling.  The seed code ran those grids serially, so reproducing
the paper's scaling curves was wall-clock bound by a single core.
:class:`SweepRunner` fixes that:

* **parallel fan-out** — configs are distributed across worker
  *processes* (the work is pure Python compute, so threads would
  serialise on the GIL); results come back in config order, so a sweep
  is bit-for-bit identical at any worker count;
* **deterministic seeding** — :func:`config_seed` derives a stable
  64-bit seed from the *content* of a config (SHA-256 over its
  canonical JSON), so a config always runs with the same seed no matter
  which worker picks it up, in which order, on which machine;
* **result cache** — finished configs are stored as JSON keyed by a
  content hash of ``(task, version, config)``; re-running an identical
  sweep (across invocations, e.g. after editing one grid point) skips
  straight to the cached rows;
* **progress/ETA** — coarse per-config progress on stderr for the long
  ``--full`` sweeps.

Contract for task functions
---------------------------
A task is a **module-level function** taking one JSON-serialisable
``dict`` config and returning a JSON-serialisable result (rows of
scalars, typically).  Module-level matters for two reasons: worker
processes import the task by qualified name, and the cache keys results
by that name.  All randomness inside a task must derive from values in
the config (pass ``seed_key=...`` to have the runner inject a
content-derived seed) — that, plus the simulator's own determinism, is
what makes worker count irrelevant to the output.

Results are round-tripped through JSON even on a cache miss, so a
fresh run and a cache hit are indistinguishable (tuples become lists,
ints stay ints), and a task that returns something non-serialisable
fails loudly on the first run, not on the first cache hit.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import math
import os
import pathlib
import sys
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

#: Default cache location; override per-runner or with $REPRO_SWEEP_CACHE.
DEFAULT_CACHE_DIR = ".sweep_cache"

_SEED_MOD = 2**63

#: Target chunks per worker: small enough to batch away per-task IPC,
#: large enough that a slow chunk cannot leave workers idle at the tail.
_CHUNKS_PER_WORKER = 4


def _name_non_finite(value, path: str = "$") -> str | None:
    """Key path of the first non-finite float in ``value``, or None."""
    if isinstance(value, float):
        if not math.isfinite(value):
            return path
        return None
    if isinstance(value, dict):
        for k, v in value.items():
            found = _name_non_finite(v, f"{path}.{k}")
            if found is not None:
                return found
        return None
    if isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            found = _name_non_finite(v, f"{path}[{i}]")
            if found is not None:
                return found
    return None


def _reject_non_finite(value, where: str) -> None:
    """Raise a :class:`ValueError` naming the first NaN/Infinity path.

    Returns silently when ``value`` holds no non-finite float (the
    caller's original error was about something else — re-raise it).
    """
    path = _name_non_finite(value)
    if path is None:
        return
    raise ValueError(
        f"{where} contains a non-finite float at {path}: NaN/Infinity "
        "have no canonical JSON form (Python would emit non-standard "
        "tokens that happen to survive a local round-trip while other "
        "readers choke).  Encode the sentinel explicitly — e.g. the "
        'string "inf" — before returning it.'
    )


def canonical_json(value) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    The canonical form is the basis of both cache keys and derived
    seeds, so it must be stable across Python versions and platforms;
    plain ``json`` with sorted keys is.  Non-JSON types are a
    ``TypeError`` — configs are data, not objects.  Non-finite floats
    are a ``ValueError`` naming the offending key path: Python's
    ``NaN``/``Infinity`` tokens are not JSON, so letting them through
    would bake non-portable text into cache keys and stored results.
    """
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError:
        _reject_non_finite(value, "value")
        raise  # some other encoding error (e.g. circular reference)


def config_hash(task: str, version: str, config: dict) -> str:
    """Content hash identifying one ``(task, version, config)`` run."""
    payload = canonical_json([task, version, config])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_seed(config: dict, salt: str = "") -> int:
    """Deterministic 63-bit seed derived from a config's content.

    The same config always yields the same seed — on every worker, in
    every process, on every machine — which is the seeding contract
    that makes parallel sweeps reproducible.  ``salt`` derives
    independent seed streams from the same config.
    """
    payload = canonical_json([salt, config])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MOD


class SweepCache:
    """Content-addressed JSON store for finished sweep configs.

    One file per config under ``root/<hh>/<hash>.json`` holding the
    config (for debuggability), its result and — for delta-aware tasks
    (:mod:`repro.delta`) — the task tag, the run's delta metadata and a
    manifest of the checkpoints captured during the run.  The
    checkpoint blobs themselves live in a ``<hash>.ckpt.json`` sidecar
    so plain cache reads never pay for them.  Writes are atomic-rename
    so a killed run never leaves a truncated entry, and a torn/corrupt
    entry found by :meth:`get` is deleted on sight so it cannot poison
    later sweeps.

    ``max_entries`` (default: unbounded) caps the number of *entries*;
    :meth:`put` evicts oldest-modified entries (and their sidecars)
    beyond the cap.
    """

    _SIDECAR = ".ckpt.json"

    def __init__(
        self, root: str | os.PathLike, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _ckpt_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}{self._SIDECAR}"

    def _entry_files(self):
        """Entry files only (checkpoint sidecars excluded)."""
        if not self.root.exists():
            return
        for path in self.root.glob("*/*.json"):
            if not path.name.endswith(self._SIDECAR):
                yield path

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on a miss.

        (Tasks return rows/dicts, never bare ``None`` — the runner
        rejects a ``None`` result at ``put`` time to keep this
        unambiguous.)
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            return None
        except ValueError:
            # Torn or corrupt JSON (a crash mid-write predating the
            # atomic rename, disk corruption...): delete it so the bad
            # bytes cannot shadow a future recompute.
            path.unlink(missing_ok=True)
            self._ckpt_path(key).unlink(missing_ok=True)
            return None
        return entry.get("result")

    def put(
        self,
        key: str,
        config: dict,
        result,
        task: str | None = None,
        version: str | None = None,
        delta: dict | None = None,
    ) -> None:
        """Store ``result`` for ``key`` (atomic write).

        ``task``/``version`` tag the entry for delta-neighbour lookup;
        ``delta`` is ``{"meta": ..., "checkpoints": [blob, ...]}`` from
        a delta-aware run — the blobs go to the sidecar, their
        ``(time, label, epoch)`` manifest into the entry.
        """
        if result is None:
            raise ValueError("sweep tasks must not return None (reserved for cache misses)")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"config": config, "result": result}
        if task is not None:
            entry["task"] = task
            entry["version"] = version
        if delta and delta.get("checkpoints"):
            entry["delta_meta"] = delta.get("meta") or {}
            entry["ckpt_manifest"] = [
                {
                    "time": b.get("time"),
                    "label": b.get("label"),
                    "epoch": b.get("epoch"),
                }
                for b in delta["checkpoints"]
            ]
            # Sidecar first: an entry whose manifest has no blobs yet
            # would claim restore points it cannot serve.
            self._write(
                self._ckpt_path(key),
                {"checkpoints": delta["checkpoints"]},
                "sweep cache checkpoint sidecar",
            )
        self._write(path, entry, "sweep cache entry")
        if self.max_entries is not None:
            self._evict()

    def _write(self, path: pathlib.Path, value, where: str) -> None:
        """Serialise ``value`` and atomically rename it into place."""
        try:
            text = json.dumps(value, allow_nan=False)
        except ValueError:
            _reject_non_finite(value, where)
            raise
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)

    def _evict(self) -> int:
        """Drop oldest-modified entries beyond ``max_entries``."""
        files = sorted(
            self._entry_files(), key=lambda p: (p.stat().st_mtime, p.name)
        )
        excess = len(files) - self.max_entries
        for victim in files[:excess] if excess > 0 else []:
            victim.unlink(missing_ok=True)
            victim.with_name(
                victim.name[: -len(".json")] + self._SIDECAR
            ).unlink(missing_ok=True)
        return max(0, excess)

    def delta_candidates(self, task: str, version: str) -> list[dict]:
        """Entries of ``task``/``version`` carrying a checkpoint
        manifest — the neighbour pool for delta matching.  Only keys
        with a sidecar are read, so mixed caches stay cheap to scan."""
        out = []
        if not self.root.exists():
            return out
        for side in sorted(self.root.glob(f"*/*{self._SIDECAR}")):
            key = side.name[: -len(self._SIDECAR)]
            try:
                with open(self._path(key), "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            if entry.get("task") != task or entry.get("version") != version:
                continue
            manifest = entry.get("ckpt_manifest") or []
            config = entry.get("config")
            if not manifest or not isinstance(config, dict):
                continue
            out.append(
                {
                    "key": key,
                    "config": config,
                    "meta": entry.get("delta_meta") or {},
                    "manifest": manifest,
                }
            )
        return out

    def load_checkpoints(self, key: str) -> list:
        """Raw checkpoint blobs from ``key``'s sidecar ([] if none)."""
        try:
            with open(self._ckpt_path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return []
        blobs = data.get("checkpoints")
        return blobs if isinstance(blobs, list) else []

    def clear(self) -> int:
        """Delete every entry (and sidecar); returns entries removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            if not path.name.endswith(self._SIDECAR):
                removed += 1
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())


# -- worker pool ---------------------------------------------------------
#
# PR 2 created a fresh ProcessPoolExecutor per map() call, so every
# sweep paid full worker spawn + `import repro` before the first config
# ran — on short grids that overhead exceeded the parallel win (the
# BENCH_sweep.json 0.9x "speedup").  The pool below is module-level and
# persistent: workers spawn once, import the simulator once (in the
# initializer, not lazily inside the first task), and are reused by
# every subsequent sweep in the process.

_pool = None
_pool_workers = 0

# Thread executor backing the awaitable submit path when there is no
# process pool to dispatch to (workers == 1) and for delta suffix
# replays (checkpoint blobs are parent-side; shipping them to workers
# costs more than the replay).  Threads serialise pure-Python compute
# on the GIL, but the point of `submit` is keeping the *caller* (an
# asyncio event loop) unblocked, not parallel speedup — `map` remains
# the parallel path.
_threads = None


def _get_threads():
    global _threads
    if _threads is None:
        from concurrent.futures import ThreadPoolExecutor

        _threads = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="sweep-submit"
        )
    return _threads


def _worker_init() -> None:
    """Pay the simulator import once per worker, at spawn time."""
    import repro.core.overlap  # noqa: F401


def _get_pool(workers: int):
    """The shared pool, recreated only when the worker count changes.

    Returns ``(pool, reused)`` — ``reused`` is False when this call had
    to (re)spawn workers.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == workers:
        return _pool, True
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    from concurrent.futures import ProcessPoolExecutor

    _pool = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
    _pool_workers = workers
    return _pool, False


def shutdown_pool() -> None:
    """Tear down the shared worker pool and submit threads (idempotent)."""
    global _pool, _pool_workers, _threads
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_workers = 0
    if _threads is not None:
        _threads.shutdown(wait=False, cancel_futures=True)
        _threads = None


atexit.register(shutdown_pool)


def _run_chunk(fn: Callable[[dict], object], payload: str) -> str:
    """Run one chunk of configs in a worker.

    Configs arrive as one compact JSON string and results leave the
    same way — a single pickled str each direction instead of one
    pickled dict per task, and the decode on the parent side doubles as
    the cache-equivalence JSON round-trip (:meth:`SweepRunner._normalise`).
    The envelope also carries the worker's pid and the chunk's compute
    wall time, which the parent feeds to an attached
    :class:`~repro.telemetry.profile.SweepProfile` (two clock reads per
    *chunk*, so the un-profiled path pays nothing measurable).
    """
    t0 = time.perf_counter()
    out = []
    for cfg in json.loads(payload):
        result = fn(cfg)
        if result is None:
            raise ValueError(
                "sweep tasks must not return None (reserved for cache misses)"
            )
        out.append(result)
    envelope = {
        "results": out,
        "pid": os.getpid(),
        "wall": time.perf_counter() - t0,
    }
    try:
        return json.dumps(envelope, allow_nan=False)
    except ValueError:
        _reject_non_finite(out, "sweep task result")
        raise
    except TypeError as exc:
        raise TypeError(
            f"sweep task returned a non-JSON-serialisable result: {exc}"
        ) from exc


def _run_chunk_delta(fn: Callable[[dict], object], payload: str) -> str:
    """Full-recompute chunk for a *delta-aware* task.

    Same envelope discipline as :func:`_run_chunk`, but runs the task's
    capture hook so each config's checkpoints and delta metadata come
    back with its result (as JSON blobs) for the parent to cache.
    """
    t0 = time.perf_counter()
    spec = fn.__delta__
    out = []
    for cfg in json.loads(payload):
        oc = spec.capture(cfg)
        if oc.result is None:
            raise ValueError(
                "sweep tasks must not return None (reserved for cache misses)"
            )
        out.append(
            {
                "result": oc.result,
                "meta": oc.meta or {},
                "checkpoints": [c.to_json() for c in oc.checkpoints],
            }
        )
    envelope = {
        "outcomes": out,
        "pid": os.getpid(),
        "wall": time.perf_counter() - t0,
    }
    try:
        return json.dumps(envelope, allow_nan=False)
    except ValueError:
        _reject_non_finite(out, "sweep task result")
        raise
    except TypeError as exc:
        raise TypeError(
            f"sweep task returned a non-JSON-serialisable result: {exc}"
        ) from exc


def _match_delta(spec, cands: list[dict], cfg: dict):
    """Best ``(candidate, manifest_entry)`` neighbour for ``cfg``.

    A candidate matches when every differing key has a blast-radius
    rule that accepts the edit (:func:`repro.delta.earliest_affected`)
    and it holds a checkpoint strictly before the earliest affected
    time.  Among matches, the one whose restore point is latest wins
    (least replay); candidates arrive key-sorted, so ties are stable.
    Returns ``None`` when a full recompute is needed.
    """
    from repro.delta import earliest_affected

    best = None
    for cand in cands:
        affected, diff = earliest_affected(
            spec.rules, cand["config"], cfg, cand["meta"]
        )
        if affected is None or not diff:
            continue
        pick = None
        for cm in cand["manifest"]:
            t = cm.get("time")
            if isinstance(t, int) and 1 <= t < affected:
                if pick is None or t > pick["time"]:
                    pick = cm
        if pick is None:
            continue
        if best is None or pick["time"] > best[1]["time"]:
            best = (cand, pick)
    return best


class SubmitTicket:
    """Handle for one :meth:`SweepRunner.submit` request.

    ``future`` is a :class:`concurrent.futures.Future` resolving to the
    config's (JSON-round-tripped) result — awaitable from asyncio via
    ``asyncio.wrap_future``.  ``origin`` says how the request is being
    served: ``"cache"`` (disk hit, already resolved), ``"delta"``
    (matched a cached neighbour, replaying the suffix on a thread) or
    ``"compute"`` (full run on the pool, or a thread at workers == 1).
    """

    __slots__ = ("key", "origin", "future", "_inner")

    def __init__(self, key: str, origin: str, future, inner=None) -> None:
        self.key = key
        self.origin = origin
        self.future = future
        self._inner = inner

    def cancel(self) -> bool:
        """Best-effort cancel: true if any backing future was cancelled.

        Work already running in a worker cannot be interrupted; it runs
        to completion and its result still lands in the cache (so the
        abandoned compute is not wasted), but ``future`` is cancelled
        and nobody waits on it.
        """
        cancelled = self._inner.cancel() if self._inner is not None else False
        return self.future.cancel() or cancelled


def _chain_future(inner, outer, transform=None) -> None:
    """Resolve ``outer`` from ``inner``'s outcome (cancel-safe).

    ``transform`` runs on the inner result *before* ``outer`` resolves
    and runs even when ``outer`` was already cancelled — it carries the
    cache write, which must happen whether or not anyone still waits.
    """

    def _done(f) -> None:
        if f.cancelled():
            outer.cancel()
            return
        exc = f.exception()
        if exc is not None:
            if not outer.cancelled():
                outer.set_exception(exc)
            return
        try:
            value = f.result() if transform is None else transform(f.result())
        except BaseException as exc2:  # noqa: BLE001 - must reach the waiter
            if not outer.cancelled():
                outer.set_exception(exc2)
            return
        if not outer.cancelled():
            outer.set_result(value)

    inner.add_done_callback(_done)


class ProgressMeter:
    """Coarse per-config progress/ETA line on a stream.

    The ETA divides elapsed time by *computed* (non-cached) steps only:
    cache hits finish in microseconds, so counting them as work — as
    the first version did — made a warm-cache sweep's ETA wildly
    optimistic the moment the first real config started.  With no
    computed step yet there is no per-step cost to extrapolate, so no
    ETA is shown.

    An empty grid is announced as a complete ``0/0`` line (with its
    terminating newline) at construction — :meth:`step` never fires, so
    the line cannot come from there, and leaving the stream mid-line
    corrupts whatever the caller prints next.
    """

    def __init__(self, total: int, label: str, stream) -> None:
        self.total = total
        self.label = label
        self.stream = stream
        self.done = 0
        self.computed = 0
        self.t0 = time.perf_counter()
        if total == 0:
            self.stream.write(f"[sweep {label}] 0/0 elapsed 0.0s\n")
            self.stream.flush()

    def step(self, cached: bool = False, delta: bool = False) -> None:
        self.done += 1
        if not cached:
            self.computed += 1
        elapsed = time.perf_counter() - self.t0
        eta_txt = ""
        if self.done < self.total and self.computed:
            eta = elapsed / self.computed * (self.total - self.done)
            eta_txt = f" eta {eta:.1f}s"
        tag = " (cached)" if cached else " (delta)" if delta else ""
        self.stream.write(
            f"\r[sweep {self.label}] {self.done}/{self.total} "
            f"elapsed {elapsed:.1f}s{eta_txt}{tag}    "
        )
        if self.done == self.total:
            self.stream.write("\n")
        self.stream.flush()


class SweepRunner:
    """Fan a grid of configs across worker processes, with caching.

    Parameters
    ----------
    workers:
        Worker processes (``None`` or 1 = run inline, no pool).  The
        result of :meth:`map` is identical for every value — only the
        wall clock changes.
    cache_dir:
        Directory for the :class:`SweepCache` (``None`` disables
        caching entirely).
    progress:
        Emit per-config progress/ETA lines to ``stream`` (stderr).
    profile:
        Attach a :class:`~repro.telemetry.profile.SweepProfile` that
        accumulates wall-time attribution (per worker/chunk, cache-hit
        vs recompute) across every :meth:`map` call this runner serves;
        read it back from :attr:`profile`.  Off by default — the
        un-profiled path takes no extra clock reads.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        progress: bool = False,
        stream=None,
        profile: bool = False,
        delta: bool = True,
        delta_strict: bool = False,
        cache_limit: int | None = None,
    ) -> None:
        self.workers = max(1, int(workers or 1))
        self.cache = (
            SweepCache(cache_dir, max_entries=cache_limit)
            if cache_dir
            else None
        )
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        #: Use cached-neighbour checkpoints for delta-aware tasks
        #: (:mod:`repro.delta`); ``False`` forces full recomputes.
        self.delta = delta
        #: Raise instead of silently recomputing when a matched
        #: checkpoint cannot be restored (differential test mode).
        self.delta_strict = delta_strict
        if profile:
            from repro.telemetry.profile import SweepProfile

            self.profile: "SweepProfile | None" = SweepProfile()
        else:
            self.profile = None
        # Filled by the last map() call — cheap instrumentation for
        # benchmarks and tests.
        self.last_hits = 0
        self.last_misses = 0
        self.last_elapsed = 0.0
        self.last_chunk_size = 0  # 0 = last map() ran inline
        self.last_pool_reused = False
        self.last_delta_hits = 0
        self.last_delta_fallbacks = 0
        self.last_replayed_fraction: float | None = None

    def prepare(
        self,
        fn: Callable[[dict], object],
        config: dict,
        version: str = "1",
        seed_key: str | None = None,
    ) -> tuple[str, dict]:
        """``(cache key, seeded config copy)`` for one request.

        The single source of truth for the key/seed derivation shared
        by :meth:`map` and :meth:`submit` — callers that need the key
        *before* dispatch (the service layer's in-memory LRU and
        request coalescing) call this and then pass the returned config
        on, guaranteed to hash identically.
        """
        cfg = dict(config)
        if seed_key is not None and seed_key not in cfg:
            cfg[seed_key] = config_seed(cfg)
        tag = f"{fn.__module__}:{fn.__qualname__}"
        return config_hash(tag, version, cfg), cfg

    def submit(
        self,
        fn: Callable[[dict], object],
        config: dict,
        version: str = "1",
        seed_key: str | None = None,
    ) -> SubmitTicket:
        """Awaitable single-config path: never blocks the caller.

        Where :meth:`map` runs a whole grid and returns results,
        ``submit`` dispatches **one** config and immediately returns a
        :class:`SubmitTicket` whose ``future`` resolves to the result —
        the submit path a long-lived asyncio front-end
        (:class:`repro.service.SimulationService`) needs.  The full
        :meth:`map` semantics apply per config: cache lookup first
        (a hit returns an already-resolved ticket, ``origin="cache"``),
        then a delta-neighbour match for delta-aware tasks
        (``origin="delta"``, replayed on a thread), then a full compute
        (``origin="compute"``) on the persistent process pool when
        ``workers > 1``, else on a fallback thread.  Results are JSON
        round-tripped and written to the cache exactly as ``map``
        writes them, so the two paths share entries bit-for-bit.

        Cache writes and profile records run on the completing
        worker/callback thread; :class:`SweepCache` writes are
        atomic-rename, so concurrent submits are safe.  The per-map
        ``last_*`` instrumentation fields are **not** touched.
        """
        from concurrent.futures import Future

        key, cfg = self.prepare(fn, config, version, seed_key)
        tag = f"{fn.__module__}:{fn.__qualname__}"
        prof = self.profile
        t0 = time.perf_counter() if prof is not None else 0.0
        cached = self.cache.get(key) if self.cache is not None else None
        if prof is not None:
            prof.record_cache(
                int(cached is not None),
                int(cached is None),
                time.perf_counter() - t0,
            )
        out: Future = Future()
        if cached is not None:
            out.set_result(cached)
            return SubmitTicket(key, "cache", out)

        spec = getattr(fn, "__delta__", None)
        if spec is not None and self.cache is not None and self.delta:
            cands = self.cache.delta_candidates(tag, version)
            match = _match_delta(spec, cands, cfg) if cands else None
            if match is not None:
                cand, ckm = match

                def _replay():
                    blobs = self.cache.load_checkpoints(cand["key"])
                    oc = self._replay_one(spec, cand, ckm, cfg, blobs)
                    self.cache.put(
                        key, cfg, oc["result"],
                        task=tag, version=version, delta=oc["payload"],
                    )
                    if prof is not None:
                        prof.record_delta(
                            int(oc["hit"]), int(not oc["hit"]), oc["frac"]
                        )
                    return oc["result"]

                inner = _get_threads().submit(_replay)
                _chain_future(inner, out)
                return SubmitTicket(key, "delta", out, inner)

        if self.workers > 1:
            pool, _ = _get_pool(self.workers)
            run_chunk = _run_chunk_delta if spec is not None else _run_chunk
            inner = pool.submit(run_chunk, fn, canonical_json([cfg]))

            def _store(raw: str):
                envelope = json.loads(raw)
                if spec is not None:
                    oc = envelope["outcomes"][0]
                    result = oc["result"]
                    delta = {"meta": oc["meta"], "checkpoints": oc["checkpoints"]}
                else:
                    result = envelope["results"][0]
                    delta = None
                if self.cache is not None:
                    if delta is not None:
                        self.cache.put(
                            key, cfg, result,
                            task=tag, version=version, delta=delta,
                        )
                    else:
                        self.cache.put(key, cfg, result)
                if prof is not None:
                    prof.record_chunk(envelope["pid"], 1, envelope["wall"])
                return result

            _chain_future(inner, out, _store)
            return SubmitTicket(key, "compute", out, inner)

        def _compute():
            t1 = time.perf_counter()
            if spec is not None:
                oc = spec.capture(dict(cfg))
                result = self._normalise(oc.result)
                delta = {
                    "meta": self._normalise(oc.meta or {}),
                    "checkpoints": [c.to_json() for c in oc.checkpoints],
                }
            else:
                result = self._normalise(fn(dict(cfg)))
                delta = None
            if self.cache is not None:
                if delta is not None:
                    self.cache.put(
                        key, cfg, result,
                        task=tag, version=version, delta=delta,
                    )
                else:
                    self.cache.put(key, cfg, result)
            if prof is not None:
                prof.record_inline(time.perf_counter() - t1)
            return result

        inner = _get_threads().submit(_compute)
        _chain_future(inner, out)
        return SubmitTicket(key, "compute", out, inner)

    def map(
        self,
        fn: Callable[[dict], object],
        configs: Iterable[dict],
        version: str = "1",
        seed_key: str | None = None,
    ) -> list:
        """Run ``fn`` over ``configs``; results in config order.

        ``version`` is a cache-busting tag — bump it when the task's
        semantics change so stale entries are ignored.  ``seed_key``
        opts into the seeding contract: any config missing that key
        gets ``config_seed(config)`` injected under it before the task
        (or the cache) sees it.
        """
        tag = f"{fn.__module__}:{fn.__qualname__}"
        prepared = [self.prepare(fn, cfg, version, seed_key) for cfg in configs]
        keys = [key for key, _ in prepared]
        configs = [cfg for _, cfg in prepared]

        t0 = time.perf_counter()
        results: list = [None] * len(configs)
        pending: list[int] = []
        hits = 0
        prog = (
            ProgressMeter(len(configs), fn.__qualname__.lstrip("_"), self.stream)
            if self.progress
            else None
        )
        prof = self.profile
        lookup_t0 = time.perf_counter() if prof is not None else 0.0
        for i, key in enumerate(keys):
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                hits += 1
                if prog:
                    prog.step(cached=True)
            else:
                pending.append(i)
        lookup_s = (
            time.perf_counter() - lookup_t0 if prof is not None else 0.0
        )

        self.last_chunk_size = 0
        self.last_pool_reused = False
        self.last_delta_hits = 0
        self.last_delta_fallbacks = 0
        self.last_replayed_fraction = None

        # Delta matching: a task carrying a DeltaSpec (repro.delta) can
        # satisfy a miss from a cached *neighbour* — an entry differing
        # only in delta-eligible keys — by restoring the latest
        # checkpoint strictly before the edit's blast radius and
        # replaying just the suffix.
        spec = getattr(fn, "__delta__", None)
        use_delta = spec is not None and self.cache is not None
        delta_jobs: dict[int, tuple[dict, dict]] = {}
        if use_delta and self.delta and pending:
            cands = self.cache.delta_candidates(tag, version)
            if cands:
                for i in pending:
                    match = _match_delta(spec, cands, configs[i])
                    if match is not None:
                        delta_jobs[i] = match
                pending = [i for i in pending if i not in delta_jobs]
        if delta_jobs:
            self._run_delta_jobs(
                spec, delta_jobs, configs, keys, results, tag, version, prog
            )

        if pending:
            outcomes: dict[int, dict] = {}
            if self.workers == 1 or len(pending) == 1:
                inline_t0 = time.perf_counter() if prof is not None else 0.0
                for i in pending:
                    if use_delta:
                        oc = spec.capture(configs[i])
                        results[i] = self._normalise(oc.result)
                        outcomes[i] = {
                            "meta": self._normalise(oc.meta or {}),
                            "checkpoints": [
                                c.to_json() for c in oc.checkpoints
                            ],
                        }
                    else:
                        results[i] = self._normalise(fn(configs[i]))
                    if prog:
                        prog.step()
                if prof is not None:
                    prof.record_inline(time.perf_counter() - inline_t0)
            else:
                from concurrent.futures import FIRST_COMPLETED, wait

                # Chunk size scales with the grid so a sweep issues
                # ~_CHUNKS_PER_WORKER chunks per worker regardless of
                # grid length (one task per submit was pure overhead).
                chunk = max(
                    1,
                    -(-len(pending) // (self.workers * _CHUNKS_PER_WORKER)),
                )
                self.last_chunk_size = chunk
                pool, reused = _get_pool(self.workers)
                self.last_pool_reused = reused
                run_chunk = _run_chunk_delta if use_delta else _run_chunk
                futures = {}
                for start in range(0, len(pending), chunk):
                    idxs = pending[start : start + chunk]
                    payload = canonical_json([configs[i] for i in idxs])
                    futures[pool.submit(run_chunk, fn, payload)] = idxs
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        # The chunk runner already JSON round-tripped
                        # the results, so the decode is the
                        # normalisation.
                        envelope = json.loads(fut.result())
                        if use_delta:
                            for i, oc in zip(
                                futures[fut], envelope["outcomes"]
                            ):
                                results[i] = oc["result"]
                                outcomes[i] = {
                                    "meta": oc["meta"],
                                    "checkpoints": oc["checkpoints"],
                                }
                                if prog:
                                    prog.step()
                        else:
                            for i, res in zip(
                                futures[fut], envelope["results"]
                            ):
                                results[i] = res
                                if prog:
                                    prog.step()
                        if prof is not None:
                            prof.record_chunk(
                                envelope["pid"],
                                len(futures[fut]),
                                envelope["wall"],
                            )
            if self.cache is not None:
                for i in pending:
                    if use_delta:
                        self.cache.put(
                            keys[i],
                            configs[i],
                            results[i],
                            task=tag,
                            version=version,
                            delta=outcomes.get(i),
                        )
                    else:
                        self.cache.put(keys[i], configs[i], results[i])

        self.last_hits = hits
        self.last_misses = len(pending) + self.last_delta_fallbacks
        self.last_elapsed = time.perf_counter() - t0
        if prof is not None:
            prof.record_cache(hits, self.last_misses, lookup_s)
            prof.record_map(
                len(configs),
                self.last_elapsed,
                self.workers,
                self.last_chunk_size,
                self.last_pool_reused,
            )
            # Harvest per-step latency distributions from result rows
            # that carry them (hits, delta replays and recomputes alike
            # — the sweep distribution must not depend on cache state).
            for res in results:
                if isinstance(res, dict):
                    samples = res.get("step_latency_samples")
                    if samples:
                        prof.record_step_latency(samples)
        return results

    def _run_delta_jobs(
        self, spec, jobs, configs, keys, results, tag, version, prog
    ) -> None:
        """Execute matched delta jobs inline (suffix replays are cheap
        by construction; shipping checkpoint blobs to workers is not).

        Each job restores its matched checkpoint under the new config
        and replays the suffix; a checkpoint the executors decline
        (:class:`repro.delta.DeltaUnsupported`, or missing blobs) falls
        back to a full capture — or raises under ``delta_strict``.  The
        cached entry gets a *merged* checkpoint set: the base entry's
        blobs up to the restore point (still bit-valid for the new
        config — they precede the blast radius) plus the suffix's own
        captures, so the new entry serves future deltas as well as a
        fully recomputed one.
        """
        replayed: list[float] = []
        hits = 0
        fallbacks = 0
        # One-knob grids typically match every edit against the same
        # base entry; decode its sidecar once, not once per job.
        sidecars: dict[str, list] = {}
        for i in sorted(jobs):
            cand, ckm = jobs[i]
            if cand["key"] not in sidecars:
                sidecars[cand["key"]] = self.cache.load_checkpoints(cand["key"])
            oc = self._replay_one(spec, cand, ckm, configs[i], sidecars[cand["key"]])
            results[i] = oc["result"]
            if oc["hit"]:
                hits += 1
                if oc["frac"] is not None:
                    replayed.append(oc["frac"])
            else:
                fallbacks += 1
            self.cache.put(
                keys[i],
                configs[i],
                results[i],
                task=tag,
                version=version,
                delta=oc["payload"],
            )
            if prog:
                prog.step(delta=oc["hit"])
        self.last_delta_hits = hits
        self.last_delta_fallbacks = fallbacks
        if replayed:
            self.last_replayed_fraction = sum(replayed) / len(replayed)
        if self.profile is not None:
            self.profile.record_delta(
                hits, fallbacks, self.last_replayed_fraction
            )

    def _replay_one(self, spec, cand, ckm, cfg: dict, blobs: list) -> dict:
        """Serve one matched delta job; shared by :meth:`map` and
        :meth:`submit`.

        Restores ``cand``'s checkpoint ``ckm`` under the edited config
        ``cfg`` and replays the suffix, falling back to a full capture
        when the checkpoint is unusable (missing blob, or the executor
        declines it) — or raising under ``delta_strict``.  Returns
        ``{"result", "payload", "hit", "frac"}``: the normalised
        result, the cache delta payload (the neighbour's still-valid
        prefix blobs merged with the suffix's own captures), whether a
        replay actually served it, and the replayed fraction of the
        run's makespan (``None`` on fallback or unknown makespan).
        """
        from repro.core.checkpoint import ExecutorCheckpoint
        from repro.delta import DeltaUnsupported

        blob = next(
            (
                b
                for b in blobs
                if b.get("time") == ckm.get("time")
                and b.get("label") == ckm.get("label")
            ),
            None,
        )
        out = None
        if blob is not None:
            try:
                out = spec.resume(dict(cfg), ExecutorCheckpoint.from_json(blob))
            except DeltaUnsupported:
                out = None
        if out is None:
            if self.delta_strict:
                raise RuntimeError(
                    "delta-strict: full recompute fallback for config "
                    f"{cfg!r} (checkpoint t={ckm.get('time')} of "
                    f"entry {cand['key'][:12]} unusable)"
                )
            oc = spec.capture(dict(cfg))
            return {
                "result": self._normalise(oc.result),
                "payload": {
                    "meta": self._normalise(oc.meta or {}),
                    "checkpoints": [c.to_json() for c in oc.checkpoints],
                },
                "hit": False,
                "frac": None,
            }
        out.resumed_at = ckm.get("time")
        result = self._normalise(out.result)
        meta = self._normalise(out.meta or {})
        frac = None
        makespan = meta.get("makespan")
        if isinstance(makespan, int) and makespan > 0:
            frac = max(0.0, min(1.0, (makespan - out.resumed_at) / makespan))
        prefix = [b for b in blobs if b.get("time", 0) <= out.resumed_at]
        return {
            "result": result,
            "payload": {
                "meta": meta,
                "checkpoints": prefix + [c.to_json() for c in out.checkpoints],
            },
            "hit": True,
            "frac": frac,
        }

    @staticmethod
    def _normalise(result):
        """JSON round-trip so fresh and cached results are identical."""
        if result is None:
            raise ValueError("sweep tasks must not return None (reserved for cache misses)")
        try:
            return json.loads(json.dumps(result, allow_nan=False))
        except ValueError:
            _reject_non_finite(result, "sweep task result")
            raise
        except TypeError as exc:
            raise TypeError(
                f"sweep task returned a non-JSON-serialisable result: {exc}"
            ) from exc


# -- ambient runner ------------------------------------------------------
#
# Experiments call the module-level :func:`sweep` helper; the CLI (or a
# test) installs a configured runner around the experiment with
# :func:`using`.  With nothing installed, sweeps run inline and
# uncached — library callers see plain serial behaviour unless they opt
# in.

_active: SweepRunner | None = None


def active_runner() -> SweepRunner:
    """The installed runner, or a fresh serial/uncached one."""
    return _active if _active is not None else SweepRunner()


@contextmanager
def using(runner: SweepRunner):
    """Install ``runner`` as the ambient sweep engine for a block."""
    global _active
    previous = _active
    _active = runner
    try:
        yield runner
    finally:
        _active = previous


def sweep(
    fn: Callable[[dict], object],
    configs: Iterable[dict] | Sequence[dict],
    version: str = "1",
    seed_key: str | None = None,
) -> list:
    """Run a config grid through the ambient :class:`SweepRunner`."""
    return active_runner().map(fn, configs, version=version, seed_key=seed_key)


def default_cache_dir() -> str:
    """Cache directory the CLI uses: ``$REPRO_SWEEP_CACHE`` if set,
    else ``.sweep_cache`` under the current directory."""
    return os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_CACHE_DIR)
