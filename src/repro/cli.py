"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show the experiment index (theorem/figure per id).
``run <id> [--full]``
    Run one experiment and print its paper-style table.
``all [--full] [--out DIR]``
    Run every experiment, print the tables, and write one text file per
    experiment (the inputs to EXPERIMENTS.md).
``serve [--port P | --demo]``
    Run the simulation service (asyncio front-end over the sweep
    engine): JSON-lines TCP server, or an in-process demo workload that
    prints the service metrics.
``client --task NAME --config JSON``
    One-shot client for a running ``repro serve``.
``info``
    Package / paper summary.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import __version__
from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.runner import default_cache_dir

_TITLES = {
    "e1": "Theorem 2  - OVERLAP slowdown O(d_ave log^3 n)",
    "e2": "Theorem 3  - work-efficient blocked variant",
    "e3": "Theorem 4  - sqrt(d) on uniform-delay hosts",
    "e4": "Theorem 5  - composed sqrt(d_ave) polylog",
    "e5": "Theorem 6  - general hosts + Sec.4 clique chain",
    "e6": "Theorems 7-8 - 2-D guests on linear hosts",
    "e7": "Theorem 9  - one-copy lower bound (H1)",
    "e8": "Theorem 10 - two-copy lower bound (H2)",
    "e9": "Section 1  - baselines vs OVERLAP crossover",
    "e10": "Lemmas 1-4 - killing/labelling invariants",
    "f1": "Figure 1   - pebble dependencies",
    "f2": "Figure 2   - interval tree and kill pattern",
    "f3": "Figure 3   - recursive box structure",
    "f4": "Figure 4   - trapezium phase accounting",
    "f5": "Figure 5   - H2 box census",
    "f6": "Figure 6   - zigzag dependency path",
    "a1": "Ablation   - host bandwidth (the log n assumption)",
    "a2": "Ablation   - the constant c of killing/labelling",
    "a3": "Ablation   - dataflow vs database redundancy",
    "a4": "Ablation   - multicast boundary streams",
    "r1": "Robustness - slowdown vs mid-run fault rate",
    "w1": "Tail latency - execution policy vs link-jitter intensity",
    "x1": "Section 7  - open questions: delay variance, rings",
    "x2": "Section 5  - Theorem 8 in D dimensions",
    "x3": "Calibration - measured constants of the bounds",
    "x4": "Planner    - block-factor recommendation vs measured",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiment index (paper item -> `repro run <id>`):")
    for exp_id in list_experiments():
        print(f"  {exp_id:<4} {_TITLES.get(exp_id, '')}")
    return 0


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """SweepRunner knobs shared by ``run`` and ``all``."""
    return {
        "workers": args.workers,
        "cache_dir": None if args.no_cache else default_cache_dir(),
        "progress": args.progress,
        "profile": args.telemetry,
        "delta": not args.no_delta,
        "cache_limit": args.cache_limit,
    }


def _print_profile(result) -> None:
    """Print the sweep profile attached by ``--telemetry`` (if any)."""
    if result.profile:
        from repro.telemetry.profile import format_profile

        print()
        print(format_profile(result.profile))


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        get_experiment(args.id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    result = run_experiment(
        args.id, quick=not args.full, engine=args.engine,
        policy=args.policy, **_sweep_kwargs(args)
    )
    result.print()
    _print_profile(result)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    out = pathlib.Path(args.out) if args.out else None
    if out:
        out.mkdir(parents=True, exist_ok=True)
    sweep_kwargs = _sweep_kwargs(args)
    for exp_id in list_experiments():
        result = run_experiment(
            exp_id, quick=not args.full, engine=args.engine,
            policy=args.policy, **sweep_kwargs
        )
        result.print()
        _print_profile(result)
        if out:
            (out / f"{exp_id}.txt").write_text(result.render() + "\n")
            if args.json:
                (out / f"{exp_id}.json").write_text(result.to_json() + "\n")
    if out:
        print(f"\nwrote {len(list_experiments())} result files to {out}/")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.assignment import assign_databases
    from repro.core.executor import GreedyExecutor, SimulationDeadlock
    from repro.core.killing import kill_and_label
    from repro.machine.host import HostArray
    from repro.machine.programs import get_program
    from repro.netsim.faults import FaultPlan
    from repro.netsim.trace import Trace
    from repro.topology.presets import get_preset

    host = get_preset(args.preset)
    if not isinstance(host, HostArray):
        print(f"preset {args.preset!r} is a graph host; trace needs an array", file=sys.stderr)
        return 2
    if args.engine == "dense":
        print(
            "trace always runs on the greedy tier: the space-time diagram "
            "and --trace-out need per-event trace hooks the dense engine "
            "does not record.  Use --engine auto/greedy here, or "
            "`repro run --engine dense --telemetry` for dense-tier "
            "telemetry without a trace.",
            file=sys.stderr,
        )
        return 2
    faults = None
    min_copies = 1
    if args.faults is not None:
        try:
            faults = FaultPlan.random(
                host.n,
                seed=args.faults,
                horizon=max(8, args.steps * 4),
                node_crash_rate=args.fault_rate,
                drop_rate=args.fault_rate / 2,
            )
        except ValueError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
        min_copies = 2
        print(f"fault plan (seed {args.faults}, rate {args.fault_rate}):")
        print(faults.describe())
        print()
    trace = Trace()
    telemetry = None
    if args.telemetry or args.trace_out:
        from repro.telemetry import MetricsTimeline

        telemetry = MetricsTimeline()
    program = get_program(args.program)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, block=args.block, min_copies=min_copies)
    try:
        result = GreedyExecutor(
            host,
            assignment,
            program,
            args.steps,
            trace=trace,
            faults=faults,
            telemetry=telemetry,
        ).run()
    except SimulationDeadlock as exc:
        print(f"SIMULATION DEADLOCK: {exc}", file=sys.stderr)
        return 1
    print(f"host: {host.name}  d_ave={host.d_ave:.2f}  d_max={host.d_max}")
    print(f"guest: {assignment.m} columns, block beta={args.block}, {args.steps} steps")
    for k, v in trace.summary().items():
        print(f"  {k}: {v}")
    if trace.fault_marks:
        print("\nfault/recovery marks:")
        for t, kind, detail in trace.fault_marks:
            print(f"  t={t:>6} {kind}: {detail}")
    print("\nspace-time diagram (x: host position, y: time):")
    print(trace.spacetime_ascii(host.n, width=72, height=18))
    if args.telemetry:
        print("\ntelemetry summary (per-step counters):")
        for k, v in telemetry.summary().items():
            print(f"  {k}: {v}")
        telemetry.reconcile(result.stats)
        print("\n" + telemetry.ascii_timeline(width=72, height=12))
    if args.trace_out:
        from repro.telemetry import write_chrome_trace

        doc = write_chrome_trace(
            args.trace_out,
            timeline=telemetry,
            trace=trace,
            label=f"{args.preset} beta={args.block} T={args.steps}",
        )
        print(
            f"\nwrote {len(doc['traceEvents'])} trace events to "
            f"{args.trace_out} (open in chrome://tracing or "
            "https://ui.perfetto.dev)"
        )
    print(f"\nslowdown: {trace.makespan / args.steps:.1f}")
    return 0


def _service_from_args(args: argparse.Namespace):
    """Build the (runner, service) pair behind ``repro serve``."""
    from repro.runner import SweepRunner
    from repro.service import SimulationService

    runner = SweepRunner(
        workers=args.workers,
        cache_dir=None if args.no_cache else default_cache_dir(),
        profile=True,
        delta=not args.no_delta,
        cache_limit=args.cache_limit,
    )
    return SimulationService(
        runner,
        lru_entries=args.lru,
        max_queue=args.max_queue,
        max_concurrency=args.concurrency,
        per_client=args.per_client,
    )


async def _serve_forever(service, host: str, port: int) -> None:
    from repro.service import TASKS, start_server

    server = await start_server(service, host=host, port=port)
    addr = server.sockets[0].getsockname()
    print(
        f"repro service listening on {addr[0]}:{addr[1]} "
        f"(tasks: {', '.join(sorted(TASKS))}; ctrl-c to stop)"
    )
    async with server:
        await server.serve_forever()


async def _serve_demo(service, clients: int, requests: int) -> None:
    """In-process demo workload: ``clients`` concurrent clients issuing
    ``requests`` each, cycling a small config set so duplicates hit the
    memory tier and concurrent duplicates coalesce."""
    import asyncio

    from repro.service import ServiceOverloaded

    async def one_client(ci: int) -> None:
        for ri in range(requests):
            config = {"n": 24, "steps": 6, "rep": ri % 3}
            try:
                await service.submit(
                    "overlap_point", config, client=f"demo-{ci}"
                )
            except ServiceOverloaded:
                pass  # counted in the metrics summary

    await asyncio.gather(*(one_client(i) for i in range(clients)))
    await service.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runner import shutdown_pool
    from repro.telemetry.service import format_service_metrics

    service = _service_from_args(args)
    try:
        if args.demo:
            asyncio.run(_serve_demo(service, args.clients, args.requests))
        else:
            asyncio.run(_serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        shutdown_pool()
    print(format_service_metrics(service.metrics))
    if service.runner.profile is not None and not args.demo:
        from repro.telemetry.profile import format_profile

        print(format_profile(service.runner.profile))
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import request

    try:
        config = json.loads(args.config)
    except json.JSONDecodeError as exc:
        print(f"--config must be a JSON object: {exc}", file=sys.stderr)
        return 2
    payload = {
        "id": "cli",
        "task": args.task,
        "config": config,
        "stream": args.stream,
    }
    if args.client:
        payload["client"] = args.client
    try:
        events = asyncio.run(request(args.host, args.port, payload))
    except OSError as exc:
        print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    for event in events:
        print(json.dumps(event, sort_keys=True))
    return 0 if events and events[-1].get("event") == "done" else 1


def _cmd_info(_args: argparse.Namespace) -> int:
    print(
        f"repro {__version__} - reproduction of Andrews, Leighton, Metaxas "
        "& Zhang,\n'Improved Methods for Hiding Latency in High Bandwidth "
        "Networks' (SPAA 1996).\n\n"
        "Core: algorithm OVERLAP - automatic latency hiding for the\n"
        "database model via interval-tree killing/labelling and redundant\n"
        "overlapped database replicas, on a from-scratch discrete-event\n"
        "network simulator.  See DESIGN.md and EXPERIMENTS.md."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for the SPAA'96 latency-hiding paper",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the experiment index").set_defaults(
        func=_cmd_list
    )

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for parameter sweeps (default 1; "
            "the result table is identical at any worker count)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help=f"disable the sweep result cache ({default_cache_dir()}/)",
        )
        p.add_argument(
            "--no-delta",
            action="store_true",
            help="disable checkpoint suffix-replay for near-miss cached "
            "configs (delta-driven sweeps); every miss recomputes fully",
        )
        p.add_argument(
            "--cache-limit",
            type=int,
            default=None,
            metavar="N",
            help="bound the sweep cache to N entries (oldest evicted "
            "first; default unbounded)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="print per-config sweep progress/ETA to stderr",
        )
        p.add_argument(
            "--engine",
            choices=("auto", "dense", "greedy"),
            default="auto",
            help="execution tier for fault-free simulations: auto picks "
            "the dense fast path when possible (default), dense forces "
            "it, greedy forces the event-driven engine; results are "
            "bit-identical either way",
        )
        p.add_argument(
            "--policy",
            choices=(
                "single", "racing", "stealing", "racing+stealing",
            ),
            default=None,
            help="execution policy for policy-aware experiments (w1): "
            "single-issue (default), redundant-issue racing, work "
            "stealing, or both; other experiments ignore it",
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="profile the sweeps (wall time per worker/chunk, cache "
            "hit vs recompute) and print the attribution after the "
            "tables; results are unchanged",
        )

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("id", help="experiment id (e1..e10, f1..f6)")
    p_run.add_argument(
        "--full", action="store_true", help="bigger sweeps (slower, sharper shapes)"
    )
    add_sweep_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--full", action="store_true")
    p_all.add_argument("--out", help="directory for per-experiment text files")
    p_all.add_argument(
        "--json", action="store_true", help="also write <id>.json next to each .txt"
    )
    add_sweep_flags(p_all)
    p_all.set_defaults(func=_cmd_all)

    p_trace = sub.add_parser(
        "trace", help="run OVERLAP on a preset host and draw the space-time diagram"
    )
    p_trace.add_argument(
        "--preset",
        default="dialup-outlier",
        help="host preset (campus, wan, dialup-outlier, mixed-now)",
    )
    p_trace.add_argument("--block", type=int, default=8, help="block factor beta")
    p_trace.add_argument("--steps", type=int, default=24, help="guest steps")
    p_trace.add_argument("--program", default="counter", help="guest program")
    p_trace.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a random FaultPlan with this seed (enables min_copies=2)",
    )
    p_trace.add_argument(
        "--fault-rate",
        type=float,
        default=0.1,
        help="per-node crash rate of the random plan (with --faults)",
    )
    p_trace.add_argument(
        "--engine",
        choices=("auto", "dense", "greedy"),
        default="auto",
        help="execution tier; trace always resolves to greedy because the "
        "space-time diagram and --trace-out rely on per-event trace hooks "
        "(greedy-only).  --telemetry works on both tiers in general, but "
        "under `repro trace` it rides the greedy run; use "
        "`repro run --engine dense --telemetry` for dense-tier telemetry",
    )
    p_trace.add_argument(
        "--telemetry",
        action="store_true",
        help="collect a per-step MetricsTimeline and print its summary "
        "plus an ASCII activity timeline (works on both engine tiers; "
        "here it attaches to the greedy trace run)",
    )
    p_trace.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the run as Chrome trace_event JSON (open in "
        "chrome://tracing or Perfetto)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="run the simulation service (JSON-lines TCP, or --demo)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=7996, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--demo",
        action="store_true",
        help="skip the TCP server: run an in-process demo workload "
        "(--clients x --requests, with duplicates) and print the "
        "service metrics",
    )
    p_serve.add_argument(
        "--clients", type=int, default=4, help="demo: concurrent clients"
    )
    p_serve.add_argument(
        "--requests", type=int, default=6, help="demo: requests per client"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes behind the service (default 1)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", help="disable the JSON disk cache"
    )
    p_serve.add_argument(
        "--no-delta",
        action="store_true",
        help="disable checkpoint suffix-replay for near-miss configs",
    )
    p_serve.add_argument(
        "--cache-limit",
        type=int,
        default=None,
        metavar="N",
        help="bound the disk cache to N entries",
    )
    p_serve.add_argument(
        "--lru",
        type=int,
        default=512,
        metavar="N",
        help="in-memory LRU capacity (serialised results)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        metavar="N",
        help="admission bound: requests admitted at once before shedding",
    )
    p_serve.add_argument(
        "--concurrency",
        type=int,
        default=4,
        metavar="N",
        help="admitted requests executing simultaneously",
    )
    p_serve.add_argument(
        "--per-client",
        type=int,
        default=8,
        metavar="N",
        help="admitted requests one client name may hold",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client", help="one-shot client for a running `repro serve`"
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7996)
    p_client.add_argument(
        "--task", default="overlap_point", help="registered task name"
    )
    p_client.add_argument(
        "--config", default="{}", help='task config as JSON, e.g. \'{"n": 64}\''
    )
    p_client.add_argument(
        "--client", default=None, help="client name for admission control"
    )
    p_client.add_argument(
        "--stream",
        action="store_true",
        help="print lifecycle events as they arrive, not just the result",
    )
    p_client.set_defaults(func=_cmd_client)

    sub.add_parser("info", help="package summary").set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
