"""Service-level telemetry: request counters, latency percentiles, spans.

:class:`~repro.service.SimulationService` serves many concurrent
requests; its questions are *fleet* questions rather than per-run ones:
how deep is the queue, how many requests were coalesced onto one
execution, how many were shed, and what do the latency percentiles look
like per serving tier.  :class:`ServiceMetrics` is the ledger:

* **counters** — every request ends in exactly one bucket: served (by
  tier: ``memory`` / ``cache`` / ``delta`` / ``compute`` /
  ``coalesced``), shed (``queue_full`` / ``client_limit``), cancelled,
  or failed.  :meth:`ServiceMetrics.reconcile` asserts the ledger sums
  and cross-checks the execution-level counters against a
  :class:`~repro.telemetry.profile.SweepProfile` — the service layer's
  analogue of :meth:`MetricsTimeline.reconcile`.
* **latencies** — per-tier request latency lists with p50/p99 views
  (:func:`percentile`), feeding ``benchmarks/bench_service.py``.
* **spans** — one wall-clock ``request`` span per admitted request and
  an ``execute`` span around the runner dispatch, as plain
  :class:`~repro.telemetry.spans.Span` records managed by explicit
  handles (concurrent requests overlap, so the :class:`SpanLog`
  LIFO ``begin``/``end`` discipline cannot be used); :meth:`span_log`
  packs them into a ``SpanLog`` for the Chrome trace exporter.
"""

from __future__ import annotations

import time

# Shared implementation: the same linear-interpolation quantile serves
# SimStats step-latency reporting, MetricsTimeline and this ledger.
# Re-exported here because service callers historically imported it
# from this module.
from repro.netsim.stats import dist_summary, percentile  # noqa: F401
from repro.telemetry.spans import Span, SpanLog


class ServiceMetrics:
    """Counters, latency samples and spans for one service instance."""

    def __init__(self, clock=None) -> None:
        self.clock = clock or time.perf_counter
        #: total requests accepted into :meth:`SimulationService.submit`
        #: / ``stream`` (before any admission decision)
        self.requests = 0
        #: completed requests by serving tier; every completed request
        #: lands in exactly one bucket
        self.served: dict[str, int] = {
            "memory": 0,     # in-memory LRU hit (never queued)
            "cache": 0,      # disk SweepCache hit (queued, no compute)
            "delta": 0,      # checkpoint suffix replay
            "compute": 0,    # full recompute
            "coalesced": 0,  # joined another request's execution
        }
        #: load-shed requests by reason
        self.shed: dict[str, int] = {"queue_full": 0, "client_limit": 0}
        self.cancelled = 0
        self.failed = 0
        #: executions dispatched to the runner, by ticket origin —
        #: these reconcile with the runner's ``SweepProfile``
        self.exec_cache = 0
        self.exec_delta = 0
        self.exec_compute = 0
        #: executions whose every waiter cancelled before completion
        #: (the compute still finishes and lands in the cache)
        self.exec_abandoned = 0
        #: admitted-but-not-executing requests, sampled at transitions
        self.queue_depth = 0
        self.queue_depth_peak = 0
        #: serving tier -> request latency samples (seconds)
        self.latencies: dict[str, list[float]] = {}
        #: simulated per-step latency samples harvested from served
        #: results (host steps, not wall seconds) — the service-level
        #: view of the executor tail-latency distribution
        self.step_latency_samples: list = []
        #: request/execute spans (wall-clock, explicit handles)
        self.spans: list[Span] = []

    # -- recording (called by SimulationService) --------------------------
    def note_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def shed_request(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1

    def serve_request(self, tier: str, latency_s: float) -> None:
        self.served[tier] = self.served.get(tier, 0) + 1
        self.latencies.setdefault(tier, []).append(latency_s)

    def note_step_latency(self, samples) -> None:
        """Fold a served result's per-step latency samples into the
        fleet distribution (see :meth:`step_latency_summary`)."""
        self.step_latency_samples.extend(samples)

    def count_execution(self, origin: str) -> None:
        if origin == "cache":
            self.exec_cache += 1
        elif origin == "delta":
            self.exec_delta += 1
        else:
            self.exec_compute += 1

    def begin_span(self, name: str, **args) -> Span:
        span = Span(name, self.clock(), track="service", args=args)
        self.spans.append(span)
        return span

    def end_span(self, span: Span, **args) -> Span:
        if span.end is None:
            span.end = self.clock()
        span.args.update(args)
        return span

    # -- views ------------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(self.served.values())

    def latency_summary(self) -> dict[str, dict]:
        """Per-tier ``{count, p50_ms, p95_ms, p99_ms}`` (milliseconds)."""
        out = {}
        for tier, samples in sorted(self.latencies.items()):
            out[tier] = {
                "count": len(samples),
                "p50_ms": round(1e3 * percentile(samples, 0.50), 4),
                "p95_ms": round(1e3 * percentile(samples, 0.95), 4),
                "p99_ms": round(1e3 * percentile(samples, 0.99), 4),
            }
        return out

    def step_latency_summary(self) -> dict | None:
        """``{count, mean, p50, p95, p99}`` of harvested per-step
        latencies (simulated host steps), ``None`` before any result
        carried a distribution."""
        if not self.step_latency_samples:
            return None
        return dist_summary(self.step_latency_samples)

    def span_log(self) -> SpanLog:
        """The spans packed into a :class:`SpanLog` (for Chrome export)."""
        log = SpanLog(clock=self.clock)
        log.spans = list(self.spans)
        return log

    def reconcile(self, profile=None) -> dict:
        """Check the request ledger (and, optionally, the runner profile).

        Raises :class:`ValueError` naming the first mismatch; returns
        the totals on success.  Two families of invariants:

        * **ledger** — every request ends in exactly one bucket:
          ``requests == served + shed + cancelled + failed``;
        * **runner cross-check** (with ``profile``, the
          :class:`~repro.telemetry.profile.SweepProfile` of the
          runner the service submits to, used by *only* this service)
          — disk hits seen by the service equal the profile's cache
          hits, and ``exec_delta + exec_compute`` equal its misses.
          Valid on a quiescent service; a request cancelled in the
          instant between runner dispatch and completion is counted in
          ``exec_*`` by origin, so the cross-check still holds.
        """
        total = self.completed + sum(self.shed.values()) + self.cancelled + self.failed
        if total != self.requests:
            raise ValueError(
                f"request ledger does not sum: {self.requests} requests vs "
                f"{self.completed} served + {sum(self.shed.values())} shed + "
                f"{self.cancelled} cancelled + {self.failed} failed = {total}"
            )
        if profile is not None:
            if self.exec_cache != profile.cache_hits:
                raise ValueError(
                    f"disk-hit mismatch: service saw {self.exec_cache} "
                    f"cache-origin tickets, runner profile recorded "
                    f"{profile.cache_hits} cache hits"
                )
            misses = self.exec_delta + self.exec_compute + self.exec_abandoned
            if misses != profile.cache_misses:
                raise ValueError(
                    f"miss mismatch: service dispatched {misses} "
                    f"delta/compute/abandoned executions, runner profile "
                    f"recorded {profile.cache_misses} cache misses"
                )
        return {
            "requests": self.requests,
            "served": dict(self.served),
            "shed": dict(self.shed),
            "cancelled": self.cancelled,
            "failed": self.failed,
        }

    def as_dict(self) -> dict:
        """JSON-ready dump."""
        return {
            "requests": self.requests,
            "served": dict(self.served),
            "shed": dict(self.shed),
            "cancelled": self.cancelled,
            "failed": self.failed,
            "executions": {
                "cache": self.exec_cache,
                "delta": self.exec_delta,
                "compute": self.exec_compute,
                "abandoned": self.exec_abandoned,
            },
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "latency": self.latency_summary(),
            "step_latency": self.step_latency_summary(),
            "spans": len(self.spans),
        }


def format_service_metrics(metrics) -> str:
    """Human-readable multi-line summary (CLI ``repro serve`` output).

    Accepts a :class:`ServiceMetrics` or its :meth:`ServiceMetrics.as_dict`
    form.
    """
    if isinstance(metrics, ServiceMetrics):
        metrics = metrics.as_dict()
    served = metrics.get("served", {})
    shed = metrics.get("shed", {})
    execs = metrics.get("executions", {})
    lines = [
        f"service metrics: {metrics.get('requests', 0)} request(s), "
        f"{sum(served.values())} served, {sum(shed.values())} shed, "
        f"{metrics.get('cancelled', 0)} cancelled, "
        f"{metrics.get('failed', 0)} failed"
    ]
    tier_txt = ", ".join(
        f"{tier} {count}" for tier, count in served.items() if count
    )
    if tier_txt:
        lines.append(f"  served by: {tier_txt}")
    if any(shed.values()):
        lines.append(
            "  shed: "
            + ", ".join(f"{r} {c}" for r, c in shed.items() if c)
        )
    lines.append(
        f"  executions: {execs.get('compute', 0)} compute, "
        f"{execs.get('delta', 0)} delta replay, "
        f"{execs.get('cache', 0)} disk hit, "
        f"{execs.get('abandoned', 0)} abandoned; "
        f"queue depth peak {metrics.get('queue_depth_peak', 0)}"
    )
    for tier, rec in metrics.get("latency", {}).items():
        p95 = rec.get("p95_ms")
        p95_txt = f", p95 {p95:.3f}ms" if p95 is not None else ""
        lines.append(
            f"  {tier}: {rec['count']} request(s), "
            f"p50 {rec['p50_ms']:.3f}ms{p95_txt}, p99 {rec['p99_ms']:.3f}ms"
        )
    steps = metrics.get("step_latency")
    if steps:
        lines.append(
            f"  step latency: {steps['count']} step(s), "
            f"p50 {steps['p50']}, p95 {steps['p95']}, p99 {steps['p99']} "
            "(host steps)"
        )
    return "\n".join(lines)
