"""Observability layer: step-level metrics, spans, traces, profiles.

The paper's claims are about *where time goes* — how much of a run's
slowdown is link delay, how much is bandwidth serialisation, how much
is redundant recomputation.  End-of-run aggregates
(:class:`~repro.netsim.stats.SimStats`) answer "how slow"; this package
answers "why":

:mod:`repro.telemetry.timeline`
    :class:`MetricsTimeline` — per-step counters fed by both execution
    tiers while a run is in flight: pebbles computed, redundant
    recomputations, messages launched/delivered, link injections and
    in-flight occupancy, lost messages, fault/recovery marks.  The
    per-step series **sum to the run's final ``SimStats``** — enforced
    by :meth:`MetricsTimeline.reconcile` and ``tests/test_telemetry.py``.

:mod:`repro.telemetry.spans`
    :class:`SpanLog` — named begin/end intervals (``epoch``,
    ``recovery``, ``run``) in simulated time, or wall-clock spans via
    the ``with log.span("phase"):`` context manager.

:mod:`repro.telemetry.chrome`
    Export a run (pebble trace + timeline counters + spans) as Chrome
    ``trace_event`` JSON, loadable in ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev).

:mod:`repro.telemetry.profile`
    :class:`SweepProfile` — wall-clock attribution for
    :class:`~repro.runner.SweepRunner` sweeps: per-worker/per-chunk
    time, cache-hit vs recompute split.

:mod:`repro.telemetry.service`
    :class:`ServiceMetrics` — request-level counters, latency
    percentiles, and per-request/execute spans for
    :class:`~repro.service.SimulationService`; reconciles its
    execution counters against the runner's :class:`SweepProfile`.

Telemetry is strictly opt-in and observational: with no
:class:`MetricsTimeline` attached, both executors take their pre-existing
hot paths unchanged (the greedy plain loop and the dense bucket replay
contain no telemetry branches), and an attached timeline never alters
event order — results stay bit-identical either way
(``benchmarks/bench_telemetry.py`` is the overhead gate).
"""

from repro.telemetry.chrome import chrome_events, to_chrome_trace, write_chrome_trace
from repro.telemetry.profile import SweepProfile, format_profile
from repro.telemetry.service import ServiceMetrics, format_service_metrics, percentile
from repro.telemetry.spans import Span, SpanLog
from repro.telemetry.timeline import MetricsTimeline

__all__ = [
    "MetricsTimeline",
    "ServiceMetrics",
    "Span",
    "SpanLog",
    "SweepProfile",
    "format_profile",
    "format_service_metrics",
    "percentile",
    "chrome_events",
    "to_chrome_trace",
    "write_chrome_trace",
]
