"""Span tracing: named intervals over simulated or wall-clock time.

A :class:`Span` is a ``(name, start, end, track, args)`` interval; a
:class:`SpanLog` collects them.  Two usage modes:

* **simulated time** — the executors call :meth:`SpanLog.begin` /
  :meth:`SpanLog.end` with explicit step timestamps (``epoch`` and
  ``recovery`` spans around fault restarts, one ``run`` span per
  execution);
* **wall-clock time** — the ``with log.span("chunk", worker=3):``
  context manager stamps ``time.perf_counter()`` seconds, used by the
  sweep profiler.

Spans nest: :meth:`end` closes the innermost open span.  A log is
exportable to Chrome ``trace_event`` JSON via
:mod:`repro.telemetry.chrome`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One named interval; ``end`` is ``None`` while still open."""

    name: str
    start: float
    end: float | None = None
    track: str = "run"
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length (0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class SpanLog:
    """Ordered collection of (possibly nested) spans.

    ``clock`` supplies timestamps for the context-manager form; it
    defaults to :func:`time.perf_counter` (wall seconds).  The explicit
    :meth:`begin`/:meth:`end` form takes timestamps directly and is what
    the executors use with simulated step counts.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock or time.perf_counter
        self.spans: list[Span] = []
        self._open: list[Span] = []

    def begin(self, name: str, t: float | None = None, track: str = "run", **args) -> Span:
        """Open a span at time ``t`` (default: ``clock()``)."""
        span = Span(name, self.clock() if t is None else t, track=track, args=args)
        self.spans.append(span)
        self._open.append(span)
        return span

    def end(self, t: float | None = None) -> Span:
        """Close the innermost open span at time ``t``; returns it.

        ``t`` is clamped to the span's start: a span aborted before the
        time it was scheduled to begin (an epoch cancelled by a crash
        inside the restart window) closes with zero duration, never a
        negative one (trace viewers require ``dur >= 0``).
        """
        if not self._open:
            raise ValueError("SpanLog.end() with no open span")
        span = self._open.pop()
        end = self.clock() if t is None else t
        span.end = end if end >= span.start else span.start
        return span

    def close_all(self, t: float | None = None) -> None:
        """Close every still-open span (end-of-run tidy-up)."""
        while self._open:
            self.end(t)

    @contextmanager
    def span(self, name: str, track: str = "run", **args):
        """``with log.span("phase"): ...`` — clock-stamped span."""
        s = self.begin(name, track=track, **args)
        try:
            yield s
        finally:
            if s.end is None:
                # Close *this* span even if a nested one leaked open.
                while self._open and self._open[-1] is not s:
                    self.end()
                if self._open and self._open[-1] is s:
                    self.end()

    def named(self, name: str) -> list[Span]:
        """All spans called ``name``, in begin order."""
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    def as_dicts(self) -> list[dict]:
        """Plain-dict view (JSON-ready)."""
        return [
            {
                "name": s.name,
                "start": s.start,
                "end": s.end,
                "track": s.track,
                "args": dict(s.args),
            }
            for s in self.spans
        ]

    @classmethod
    def from_dicts(cls, dicts: list[dict], clock=None) -> "SpanLog":
        """Rebuild a log from :meth:`as_dicts` output.

        Open spans survive the round trip: ``_open`` is always the
        in-order subsequence of ``spans`` whose ``end`` is ``None``
        (``end``/``close_all`` are the only closers and both stamp an
        end time), so it is reconstructed from that invariant.
        """
        log = cls(clock=clock)
        for d in dicts:
            span = Span(
                d["name"],
                d["start"],
                d.get("end"),
                track=d.get("track", "run"),
                args=dict(d.get("args", {})),
            )
            log.spans.append(span)
            if span.end is None:
                log._open.append(span)
        return log
