"""Chrome ``trace_event`` export for simulation runs.

Turns a run's observability artifacts — the pebble-level
:class:`~repro.netsim.trace.Trace`, the per-step
:class:`~repro.telemetry.timeline.MetricsTimeline` counters, and any
:class:`~repro.telemetry.spans.SpanLog` spans — into the JSON Object
Format consumed by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): a ``{"traceEvents": [...]}`` document of
``"X"`` (complete), ``"i"`` (instant), ``"C"`` (counter) and ``"M"``
(metadata) events.

Simulated host steps are mapped to trace microseconds at
:data:`TS_SCALE` µs/step, so one host step renders as 1 ms and a
10k-step run spans 10 s of trace time — comfortable zoom range in
either viewer.  Layout:

* one thread row per host position, holding its pebble computations
  (``"X"``, duration = 1 step);
* one thread row per span track (``epoch``/``recovery``/... intervals);
* counter tracks for the timeline series (computation, link occupancy,
  message flow);
* instant markers for fault/recovery events.

Events are emitted sorted by timestamp (metadata first), which both
viewers require for well-formed nesting.
"""

from __future__ import annotations

import json

#: Trace microseconds per simulated host step (1 step == 1 ms on screen).
TS_SCALE = 1000

#: Timeline series exported as counter tracks, grouped by counter name.
_COUNTER_TRACKS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("computation", ("pebbles", "redundant")),
    ("link occupancy", ("in_flight",)),
    ("message flow", ("messages", "deliveries", "lost")),
)


def chrome_events(timeline=None, trace=None, spans=None, label: str = "run") -> list[dict]:
    """Build the ``traceEvents`` list from whichever artifacts exist.

    Any of ``timeline`` / ``trace`` / ``spans`` may be ``None``; each
    contributes its own event families.  When ``spans`` is omitted but
    ``timeline`` carries a span log, that log is exported.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": f"repro {label}"},
        }
    ]
    body: list[dict] = []
    named_threads: dict[int, str] = {}

    if trace is not None:
        for time, pos, col, row in trace.records:
            body.append(
                {
                    "ph": "X",
                    "name": f"pebble c{col} r{row}",
                    "cat": "pebble",
                    "pid": 0,
                    "tid": pos,
                    "ts": (time - 1) * TS_SCALE,
                    "dur": TS_SCALE,
                    "args": {"column": col, "row": row},
                }
            )
            if pos not in named_threads:
                named_threads[pos] = f"position {pos}"

    if spans is None and timeline is not None:
        spans = timeline.spans
    if spans is not None:
        # Span tracks live on high tids so they sort below the positions.
        track_tid: dict[str, int] = {}
        for s in spans:
            tid = track_tid.setdefault(s.track, 1_000_000 + len(track_tid))
            named_threads.setdefault(tid, f"spans: {s.track}")
            end = s.end if s.end is not None else s.start
            body.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": "span",
                    "pid": 0,
                    "tid": tid,
                    "ts": s.start * TS_SCALE,
                    "dur": (end - s.start) * TS_SCALE,
                    "args": dict(s.args),
                }
            )

    fault_marks = None
    if timeline is not None and timeline.faults:
        fault_marks = timeline.faults
    elif trace is not None and trace.fault_marks:
        fault_marks = trace.fault_marks
    if fault_marks:
        for time, kind, detail in fault_marks:
            body.append(
                {
                    "ph": "i",
                    "name": kind,
                    "cat": "fault",
                    "pid": 0,
                    "tid": 0,
                    "ts": time * TS_SCALE,
                    "s": "g",
                    "args": {"detail": detail},
                }
            )

    if timeline is not None:
        for track, names in _COUNTER_TRACKS:
            series = {name: timeline.series(name) for name in names}
            horizon = max((len(v) for v in series.values()), default=0)
            for t in range(horizon):
                args = {name: series[name][t] for name in names if t < len(series[name])}
                if any(args.values()) or t == 0:
                    body.append(
                        {
                            "ph": "C",
                            "name": track,
                            "pid": 0,
                            "tid": 0,
                            "ts": t * TS_SCALE,
                            "args": args,
                        }
                    )

    for tid in sorted(named_threads):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": named_threads[tid]},
            }
        )
    body.sort(key=lambda e: (e["ts"], e["ph"], e["tid"]))
    events.extend(body)
    return events


def to_chrome_trace(timeline=None, trace=None, spans=None, label: str = "run") -> dict:
    """The full JSON-Object-Format document (``traceEvents`` + metadata)."""
    return {
        "traceEvents": chrome_events(timeline=timeline, trace=trace, spans=spans, label=label),
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": f"{TS_SCALE} us per simulated host step"},
    }


def write_chrome_trace(
    path, timeline=None, trace=None, spans=None, label: str = "run"
) -> dict:
    """Write the trace document to ``path``; returns the document."""
    doc = to_chrome_trace(timeline=timeline, trace=trace, spans=spans, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc
