"""Per-step metrics timelines for simulation runs.

A :class:`MetricsTimeline` is the sink both execution tiers feed while
a run is in flight:

* :class:`~repro.core.executor.GreedyExecutor` records from inside its
  event loop (a dedicated instrumented copy of the plain loop, so the
  un-instrumented hot path keeps zero telemetry branches);
* :class:`~repro.core.dense.DenseExecutor` replays its time-bucketed
  event log through the timeline *after* the run (the bucket list **is**
  the full event history, so dense telemetry costs nothing during the
  timed simulation and cannot perturb it).

The recorded series reconcile exactly with the run's final
:class:`~repro.netsim.stats.SimStats`:

``sum(pebbles per step) == stats.pebbles``,
``sum(messages per step) == stats.messages``,
``sum(hops per step) == stats.pebble_hops``,
``sum(lost per step) == stats.lost_messages``,

checked by :meth:`MetricsTimeline.reconcile` (and enforced in
``tests/test_telemetry.py`` over the e1/e3/r1 experiment shapes).

Timestamps are simulated host steps.  A pebble recorded at step ``t``
completed at ``t`` (the processor was busy during ``(t-1, t]``); a hop
recorded at step ``s`` entered its link in slot ``s`` and occupies the
link until its arrival step.
"""

from __future__ import annotations

from repro.netsim.stats import latencies_from_completions, percentile
from repro.telemetry.spans import SpanLog


class MetricsTimeline:
    """Step-indexed counters for one simulation run.

    All hot-path methods are O(1) dictionary updates; series/summary
    methods materialise dense per-step arrays on demand.
    """

    __slots__ = (
        "pebbles",
        "redundant",
        "messages",
        "hops",
        "arrivals",
        "deliveries",
        "lost",
        "cancelled",
        "step_done",
        "faults",
        "spans",
        "positions",
        "_seen",
        "meta",
    )

    def __init__(self) -> None:
        self.pebbles: dict[int, int] = {}
        self.redundant: dict[int, int] = {}
        self.messages: dict[int, int] = {}
        self.hops: dict[int, int] = {}
        self.arrivals: dict[int, int] = {}
        self.deliveries: dict[int, int] = {}
        self.lost: dict[int, int] = {}
        self.cancelled: dict[int, int] = {}
        #: guest row -> host step its last pebble completed (the raced
        #: per-step latency source; see :meth:`step_latencies`)
        self.step_done: dict[int, int] = {}
        self.faults: list[tuple[int, str, str]] = []
        self.spans = SpanLog()
        self.positions: set[int] = set()
        self._seen: set[tuple[int, int]] = set()
        self.meta: dict = {}

    # -- hot-path recording (called by the executors) -------------------
    def pebble(self, t: int, pos: int, col: int, row: int) -> None:
        """One pebble completion at step ``t`` on host position ``pos``.

        ``(col, row)`` identifies the guest pebble; repeats (replica
        recomputation — the paper's redundancy) accumulate in the
        ``redundant`` series.
        """
        d = self.pebbles
        d[t] = d.get(t, 0) + 1
        key = (col, row)
        if key in self._seen:
            r = self.redundant
            r[t] = r.get(t, 0) + 1
        else:
            self._seen.add(key)
        self.positions.add(pos)
        sd = self.step_done
        if t > sd.get(row, 0):
            sd[row] = t

    def send(self, t_inject: int, t_arrive: int) -> None:
        """One link injection in slot ``t_inject``, arriving ``t_arrive``."""
        h = self.hops
        h[t_inject] = h.get(t_inject, 0) + 1
        a = self.arrivals
        a[t_arrive] = a.get(t_arrive, 0) + 1

    def message(self, t: int, n: int = 1) -> None:
        """``n`` end-to-end messages launched at step ``t``."""
        m = self.messages
        m[t] = m.get(t, 0) + n

    def deliver(self, t: int, n: int = 1) -> None:
        """``n`` messages reached their final subscriber at step ``t``."""
        d = self.deliveries
        d[t] = d.get(t, 0) + n

    def drop(self, t: int, n: int = 1) -> None:
        """``n`` messages lost to a fault at step ``t``."""
        d = self.lost
        d[t] = d.get(t, 0) + n

    def cancel(self, t: int, n: int = 1) -> None:
        """``n`` raced sends cancelled at step ``t`` (racing policy:
        the subscriber already advanced past the pebble, so the message
        is abandoned before consuming a link slot)."""
        d = self.cancelled
        d[t] = d.get(t, 0) + n

    def fault(self, t: int, kind: str, detail: str = "") -> None:
        """A fault/recovery state change (crash, retry, recovery...)."""
        self.faults.append((t, kind, detail))

    # -- derived series --------------------------------------------------
    @property
    def horizon(self) -> int:
        """Largest step with any recorded activity."""
        out = 0
        for d in (
            self.pebbles,
            self.messages,
            self.hops,
            self.arrivals,
            self.deliveries,
            self.lost,
            self.cancelled,
        ):
            if d:
                m = max(d)
                if m > out:
                    out = m
        for t, _k, _d in self.faults:
            if t > out:
                out = t
        return out

    def series(self, name: str) -> list[int]:
        """Dense per-step array (index 0..horizon) of one counter.

        Names: ``pebbles``, ``redundant``, ``messages``, ``hops``,
        ``arrivals``, ``deliveries``, ``lost``, ``cancelled``, plus the
        derived ``in_flight`` (pebbles occupying links) and ``stalled``
        (active positions not computing).
        """
        if name == "in_flight":
            return self.in_flight()
        if name == "stalled":
            return self.stalled()
        if name not in (
            "pebbles",
            "redundant",
            "messages",
            "hops",
            "arrivals",
            "deliveries",
            "lost",
            "cancelled",
        ):
            raise KeyError(f"unknown series {name!r}")
        d = getattr(self, name)
        out = [0] * (self.horizon + 1)
        for t, v in d.items():
            out[t] = v
        return out

    def in_flight(self) -> list[int]:
        """Pebbles occupying links at each step (injected, not arrived).

        This is the link-occupancy series: the visual of latency being
        *hidden* is this series staying high while ``pebbles`` also
        stays high — computation and communication overlapped.
        """
        horizon = self.horizon
        out = [0] * (horizon + 1)
        level = 0
        hops = self.hops
        arrivals = self.arrivals
        for t in range(horizon + 1):
            level += hops.get(t, 0)
            level -= arrivals.get(t, 0)
            out[t] = level
        return out

    def stalled(self) -> list[int]:
        """Active-but-idle guest steps: per step, how many positions
        that computed at least once were *not* computing.

        A position completing a pebble at ``t`` was busy during
        ``(t-1, t]``, so ``stalled[t] = |positions| - pebbles[t]``
        (clamped at 0) for ``1 <= t <= horizon``.
        """
        procs = len(self.positions)
        peb = self.pebbles
        out = [0] * (self.horizon + 1)
        for t in range(1, len(out)):
            busy = peb.get(t, 0)
            out[t] = procs - busy if busy < procs else 0
        return out

    # -- totals / reconciliation ----------------------------------------
    def totals(self) -> dict:
        """Sum of every per-step series (the SimStats-facing view)."""
        return {
            "pebbles": sum(self.pebbles.values()),
            "redundant": sum(self.redundant.values()),
            "messages": sum(self.messages.values()),
            "hops": sum(self.hops.values()),
            "deliveries": sum(self.deliveries.values()),
            "lost": sum(self.lost.values()),
            "cancelled": sum(self.cancelled.values()),
            "stalled": sum(self.stalled()),
            "faults": len(self.faults),
        }

    def step_latencies(self) -> list[int]:
        """Per-guest-row latencies derived from the pebble stream.

        Row ``t``'s completion time is the host step its last pebble
        (any replica, any epoch) finished; consecutive differences are
        the per-step latency distribution whose tail the racing and
        stealing policies target.  Empty before any pebble is recorded.
        """
        sd = self.step_done
        if not sd:
            return []
        done = [0] * (max(sd) + 1)
        for row, t in sd.items():
            done[row] = t
        return latencies_from_completions(done)

    def reconcile(self, stats) -> dict:
        """Check the per-step counters sum to a run's ``SimStats``.

        Returns the totals dict on success; raises ``ValueError`` naming
        the first mismatching counter otherwise.  ``redundant`` is only
        checked on runs without recoveries (an epoch restart redefines
        ``stats.redundant`` against the *surviving* guest, while the
        timeline saw every epoch's work).
        """
        totals = self.totals()
        checks = [
            ("pebbles", totals["pebbles"], stats.pebbles),
            ("messages", totals["messages"], stats.messages),
            ("hops", totals["hops"], stats.pebble_hops),
            ("lost", totals["lost"], stats.lost_messages),
            (
                "cancelled",
                totals["cancelled"],
                stats.extras.get("cancelled_messages", 0),
            ),
        ]
        if stats.recoveries == 0:
            checks.append(("redundant", totals["redundant"], stats.redundant))
        for name, have, want in checks:
            if have != want:
                raise ValueError(
                    f"timeline/{name} = {have} does not reconcile with "
                    f"SimStats ({want})"
                )
        samples = (
            stats.step_latency_samples()
            if hasattr(stats, "step_latency_samples")
            else []
        )
        if samples and self.step_done:
            mine = self.step_latencies()
            if mine != list(samples):
                raise ValueError(
                    "timeline/step_latencies does not reconcile with the "
                    f"SimStats step_latency distribution: {len(mine)} vs "
                    f"{len(samples)} sample(s) or differing values"
                )
        return totals

    # -- presentation ----------------------------------------------------
    def summary(self) -> dict:
        """Headline numbers for reports."""
        totals = self.totals()
        horizon = self.horizon
        peb = totals["pebbles"]
        procs = len(self.positions)
        out = {
            "horizon": horizon,
            "positions_active": procs,
            **{k: v for k, v in totals.items() if k != "stalled"},
            "stalled_steps": totals["stalled"],
            "mean_utilization": (
                round(peb / (horizon * procs), 4) if horizon and procs else 0.0
            ),
        }
        inflight = self.in_flight()
        out["peak_in_flight"] = max(inflight, default=0)
        lats = self.step_latencies()
        out["step_p50"] = percentile(lats, 0.50)
        out["step_p95"] = percentile(lats, 0.95)
        out["step_p99"] = percentile(lats, 0.99)
        return out

    def ascii_timeline(
        self,
        series: tuple[str, ...] = ("pebbles", "in_flight"),
        width: int = 64,
        height: int = 12,
        bucket: int | None = None,
    ) -> str:
        """Render selected series as an ASCII line plot (linear axes).

        Steps are averaged into ``bucket``-sized bins (default: sized so
        ~``width`` bins span the run) and plotted with
        :func:`repro.analysis.asciiplot.ascii_plot`.
        """
        from repro.analysis.asciiplot import ascii_plot

        horizon = self.horizon
        if horizon == 0:
            return "(empty timeline)"
        if bucket is None:
            bucket = max(1, (horizon + 1) // width)
        n_bins = (horizon + bucket) // bucket
        xs = [b * bucket for b in range(n_bins)]
        plotted: dict[str, list[float]] = {}
        for name in series:
            dense = self.series(name)
            binned = [0.0] * n_bins
            for t, v in enumerate(dense):
                binned[t // bucket] += v
            plotted[name] = [v / bucket for v in binned]
        return ascii_plot(
            [x + 1 for x in xs],  # keep log-safe even though axes are linear
            plotted,
            width=width,
            height=height,
            logx=False,
            logy=False,
            title=f"per-step activity (bucket={bucket} steps)",
        )

    # -- checkpoint snapshot / restore -----------------------------------
    _COUNTERS = (
        "pebbles",
        "redundant",
        "messages",
        "hops",
        "arrivals",
        "deliveries",
        "lost",
        "cancelled",
        "step_done",
    )

    def snapshot(self) -> dict:
        """Lossless mid-run snapshot (JSON-safe, unlike :meth:`as_dict`).

        Captures raw internal state — sparse counter dicts, the
        redundancy dedup set, open spans — so that
        :meth:`load_snapshot` followed by feeding the remaining suffix
        of a run reproduces the uninterrupted timeline exactly.  Used
        by the executor checkpoints (:mod:`repro.core.checkpoint`).
        """
        return {
            "counters": {
                name: sorted(getattr(self, name).items())
                for name in self._COUNTERS
            },
            "faults": [list(f) for f in self.faults],
            "positions": sorted(self.positions),
            "seen": sorted(map(list, self._seen)),
            "meta": dict(self.meta),
            "spans": self.spans.as_dicts(),
        }

    def load_snapshot(self, snap: dict) -> None:
        """Reset this timeline to a :meth:`snapshot` state in place."""
        for name in self._COUNTERS:
            d = getattr(self, name)
            d.clear()
            d.update((int(t), v) for t, v in snap["counters"].get(name, []))
        self.faults = [tuple(f) for f in snap.get("faults", [])]
        self.positions = set(snap.get("positions", []))
        self._seen = set(map(tuple, snap.get("seen", [])))
        self.meta = dict(snap.get("meta", {}))
        self.spans = SpanLog.from_dicts(snap.get("spans", []))

    def as_dict(self) -> dict:
        """JSON-ready dump: summary, per-step series, faults, spans."""
        return {
            "summary": self.summary(),
            "series": {
                name: self.series(name)
                for name in (
                    "pebbles",
                    "redundant",
                    "messages",
                    "hops",
                    "deliveries",
                    "lost",
                    "cancelled",
                    "in_flight",
                    "stalled",
                )
            },
            "faults": [list(f) for f in self.faults],
            "spans": self.spans.as_dicts(),
            "meta": dict(self.meta),
        }
