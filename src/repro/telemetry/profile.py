"""Wall-clock profiling for :class:`~repro.runner.SweepRunner` sweeps.

A :class:`SweepProfile` attributes where a sweep's real time went:

* **per worker / per chunk** — each pool worker reports its pid and the
  wall seconds it spent computing each chunk of configs, so imbalance
  (one straggler worker) is visible instead of averaged away;
* **cache hit vs recompute** — how many configs were served from the
  content-hash cache, how many were computed, and how long the cache
  lookups themselves took.

Profiles are purely observational: the runner records into one whether
or not anyone reads it, but only when constructed with
``SweepRunner(profile=True)`` (or ``--telemetry`` on the CLI) — the
default path allocates nothing and times nothing.  One profile
accumulates across every ``map()`` call a runner serves, matching how
experiments issue several sweeps per run.
"""

from __future__ import annotations

from repro.netsim.stats import dist_summary


class SweepProfile:
    """Accumulated wall-time attribution for one runner's sweeps."""

    def __init__(self) -> None:
        #: one entry per ``map()`` call: n_configs, walls, pool facts
        self.maps: list[dict] = []
        #: one entry per worker chunk: {"pid", "configs", "wall_s"}
        self.chunks: list[dict] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_lookup_s = 0.0
        #: wall seconds computing configs inline (workers == 1 path)
        self.inline_s = 0.0
        #: configs served by checkpoint suffix-replay (repro.delta)
        self.delta_hits = 0
        #: matched delta jobs that fell back to a full recompute
        self.delta_fallbacks = 0
        #: per-delta-hit replayed fraction of the run's makespan
        self.delta_replayed: list[float] = []
        #: simulated per-step latency samples harvested from result rows
        #: that carry a ``step_latency_samples`` column (host steps, not
        #: wall seconds) — the sweep-level latency distribution
        self.step_latency_samples: list = []

    # -- recording (called by SweepRunner) -------------------------------
    def record_chunk(self, pid: int, configs: int, wall_s: float) -> None:
        self.chunks.append({"pid": pid, "configs": configs, "wall_s": wall_s})

    def record_cache(self, hits: int, misses: int, lookup_s: float) -> None:
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_lookup_s += lookup_s

    def record_inline(self, wall_s: float) -> None:
        self.inline_s += wall_s

    def record_delta(
        self, hits: int, fallbacks: int, replayed_fraction: float | None
    ) -> None:
        self.delta_hits += hits
        self.delta_fallbacks += fallbacks
        if replayed_fraction is not None:
            self.delta_replayed.append(replayed_fraction)

    def record_step_latency(self, samples) -> None:
        """Fold one result's per-step latency samples into the sweep
        distribution (concatenation — percentiles are computed over the
        union, matching the ``SimStats`` dist-merge rule)."""
        self.step_latency_samples.extend(samples)

    def record_map(
        self,
        n_configs: int,
        wall_s: float,
        workers: int,
        chunk_size: int = 0,
        pool_reused: bool = False,
    ) -> None:
        self.maps.append(
            {
                "configs": n_configs,
                "wall_s": wall_s,
                "workers": workers,
                "chunk_size": chunk_size,
                "pool_reused": pool_reused,
            }
        )

    # -- views -----------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        """Parent-side wall seconds across all ``map()`` calls."""
        return sum(m["wall_s"] for m in self.maps)

    @property
    def compute_s(self) -> float:
        """Worker-side (or inline) wall seconds spent computing configs."""
        return sum(c["wall_s"] for c in self.chunks) + self.inline_s

    def per_worker(self) -> dict[int, dict]:
        """pid -> {"chunks", "configs", "wall_s"} aggregation."""
        out: dict[int, dict] = {}
        for c in self.chunks:
            agg = out.setdefault(c["pid"], {"chunks": 0, "configs": 0, "wall_s": 0.0})
            agg["chunks"] += 1
            agg["configs"] += c["configs"]
            agg["wall_s"] += c["wall_s"]
        return out

    def as_dict(self) -> dict:
        """JSON-ready dump."""
        return {
            "maps": [dict(m) for m in self.maps],
            "total_wall_s": round(self.total_wall_s, 6),
            "compute_s": round(self.compute_s, 6),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "lookup_s": round(self.cache_lookup_s, 6),
            },
            "delta": {
                "hits": self.delta_hits,
                "fallbacks": self.delta_fallbacks,
                "mean_replayed_fraction": (
                    round(
                        sum(self.delta_replayed) / len(self.delta_replayed), 4
                    )
                    if self.delta_replayed
                    else None
                ),
            },
            "workers": {
                str(pid): {
                    "chunks": agg["chunks"],
                    "configs": agg["configs"],
                    "wall_s": round(agg["wall_s"], 6),
                }
                for pid, agg in sorted(self.per_worker().items())
            },
            "step_latency": (
                dist_summary(self.step_latency_samples)
                if self.step_latency_samples
                else None
            ),
        }


def format_profile(profile) -> str:
    """Human-readable multi-line summary for CLI output.

    Accepts a :class:`SweepProfile` or its :meth:`SweepProfile.as_dict`
    form (the shape :class:`~repro.experiments.base.ExperimentResult`
    carries).
    """
    if isinstance(profile, SweepProfile):
        profile = profile.as_dict()
    maps = profile.get("maps", [])
    cache = profile.get("cache", {})
    workers = profile.get("workers", {})
    n_maps = len(maps)
    n_configs = sum(m["configs"] for m in maps)
    lines = [
        f"sweep profile: {n_maps} sweep(s), {n_configs} config(s), "
        f"{profile.get('total_wall_s', 0.0):.3f}s wall"
    ]
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    if hits + misses:
        pct = 100.0 * hits / (hits + misses)
        lines.append(
            f"  cache: {hits} hit / {misses} recompute "
            f"({pct:.0f}% hit rate, {cache.get('lookup_s', 0.0) * 1000:.1f}ms lookup)"
        )
    delta = profile.get("delta", {})
    if delta.get("hits") or delta.get("fallbacks"):
        frac = delta.get("mean_replayed_fraction")
        frac_txt = f", {100.0 * frac:.0f}% of run replayed" if frac else ""
        lines.append(
            f"  delta: {delta.get('hits', 0)} suffix replay(s), "
            f"{delta.get('fallbacks', 0)} fallback(s){frac_txt}"
        )
    compute_s = profile.get("compute_s", 0.0)
    if compute_s and not workers:
        lines.append(f"  inline compute: {compute_s:.3f}s")
    if workers:
        reused = sum(1 for m in maps if m.get("pool_reused"))
        lines.append(
            f"  pool: {len(workers)} worker(s), {compute_s:.3f}s total compute, "
            f"pool reused on {reused}/{n_maps} sweep(s)"
        )
        for pid in sorted(workers, key=int):
            agg = workers[pid]
            lines.append(
                f"    pid {pid}: {agg['chunks']} chunk(s), "
                f"{agg['configs']} config(s), {agg['wall_s']:.3f}s"
            )
    steps = profile.get("step_latency")
    if steps:
        lines.append(
            f"  step latency: {steps['count']} step(s), "
            f"p50 {steps['p50']}, p95 {steps['p95']}, p99 {steps['p99']} "
            "(host steps)"
        )
    return "\n".join(lines)
